//! What-if forking — checkpoint a running simulation, then branch it.
//!
//! Runs the first hour of an urban ROBC scenario once, snapshots the
//! engine mid-run, and forks the checkpoint into concurrent branches:
//! a bit-exact control (empty overlay) plus gateway-failure overlays of
//! increasing severity, each resuming the *same* captured past and
//! diverging only when its overlay fires. The control branch proves the
//! mechanism — its report is byte-for-byte the uninterrupted run's —
//! and the deltas against it isolate exactly what each failure costs,
//! with the shared first hour held constant instead of re-rolled.
//!
//! ```sh
//! cargo run --release --example what_if
//! ```

use mlora::sim::prelude::*;
use mlora::simcore::SimTime;

/// An overlay downing gateways `0..count` for the rest of the run,
/// starting ten minutes after the snapshot.
fn outage_overlay(count: usize, after: SimTime) -> DisruptionPlan {
    DisruptionPlan {
        outages: (0..count)
            .map(|g| GatewayOutage {
                gateway: g,
                start: after + mlora::simcore::SimDuration::from_mins(10),
                duration: None, // open-ended: down to the horizon
            })
            .collect(),
        ..DisruptionPlan::default()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size urban network: 225 km², three hours, nine gateways.
    let config = Scenario::urban()
        .scheme(Scheme::Robc)
        .area_side_m(15_000.0)
        .routes(30)
        .buses(150)
        .gateways(9)
        .duration_h(3)
        .build()?;

    // Run the first hour for real, then checkpoint.
    let baseline = Engine::new(config.clone(), 2020).run();
    let mut engine = Engine::new(config, 2020);
    let snap_at = SimTime::from_secs(3600);
    engine.run_until(snap_at);
    let snap = engine.snapshot()?;
    println!(
        "checkpoint at t={}s: {} bytes\n",
        snap.time().as_millis() / 1000,
        snap.as_bytes().len()
    );

    // Snapshots survive serialization: the forked branches below would
    // behave identically if this round trip went through a .mlss file.
    let snap = Snapshot::from_bytes(snap.as_bytes().to_vec())?;

    // Fork: a control branch plus three failure scenarios, driven
    // concurrently from the one captured past.
    let overlays = vec![
        DisruptionPlan::default(),
        outage_overlay(1, snap_at),
        outage_overlay(3, snap_at),
        outage_overlay(6, snap_at),
    ];
    let branches = Runner::new().fork(&snap, &overlays)?;

    assert_eq!(
        branches[0], baseline,
        "control branch must be bit-identical to the uninterrupted run"
    );

    println!("branch        delivered   delivery%   vs control");
    for (overlay, report) in overlays.iter().zip(&branches) {
        let label = match overlay.outages.len() {
            0 => "control".to_string(),
            n => format!("{n} gw down"),
        };
        let delta = report.delivered as i64 - branches[0].delivered as i64;
        println!(
            "{label:<12}  {:>9}   {:>8.1}   {delta:>+10}",
            report.delivered,
            100.0 * report.delivery_ratio(),
        );
    }
    Ok(())
}
