//! Gateway placement study — the §VII.C observation that gateway
//! locations dominate data-transfer performance.
//!
//! Compares the paper's uniform grid against several random layouts at
//! the same density, quantifying the placement variance the authors
//! highlight as future work.
//!
//! ```sh
//! cargo run --release --example gateway_planning
//! ```

use mlora::core::Scheme;
use mlora::sim::{experiment, Environment, GatewayPlacement, SimConfig};
use mlora::simcore::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = {
        let mut cfg = SimConfig::paper_default(Scheme::Robc, Environment::Urban);
        cfg.network.area_side_m = 15_000.0;
        cfg.network.num_routes = 30;
        cfg.network.max_active_buses = 150;
        cfg.num_gateways = 16;
        cfg.horizon = SimDuration::from_hours(4);
        cfg.network.horizon = cfg.horizon;
        cfg
    };

    println!("Grid vs random gateway placement (16 gateways, ROBC, urban)");
    println!();
    println!("placement  layout  delivery%  mean-delay(s)");
    let rows = experiment::placement_compare(&base, &[Scheme::Robc], 4, 11);
    let mut random_ratios = Vec::new();
    for (_, placement, seed, report) in &rows {
        let label = match placement {
            GatewayPlacement::Grid => "grid",
            GatewayPlacement::Random => "random",
        };
        if *placement == GatewayPlacement::Random {
            random_ratios.push(report.delivery_ratio());
        }
        println!(
            "{:10} {:6} {:8.1}% {:14.1}",
            label,
            seed,
            100.0 * report.delivery_ratio(),
            report.mean_delay_s(),
        );
    }
    let lo = random_ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = random_ratios.iter().cloned().fold(0.0f64, f64::max);
    println!();
    println!(
        "Random layouts at identical density span {:.1}%–{:.1}% delivery —",
        100.0 * lo,
        100.0 * hi
    );
    println!("placement, not just count, decides coverage (§VII.C).");
    Ok(())
}
