//! Gateway placement study — the §VII.C observation that gateway
//! locations dominate data-transfer performance.
//!
//! Compares the paper's uniform grid against several random layouts at
//! the same density, quantifying the placement variance the authors
//! highlight as future work. Both plans run their cells in parallel
//! through the experiment [`Runner`].
//!
//! ```sh
//! cargo run --release --example gateway_planning
//! ```

use mlora::sim::prelude::*;
use mlora::simcore::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = Scenario::urban()
        .scheme(Scheme::Robc)
        .area_side_m(15_000.0)
        .routes(30)
        .buses(150)
        .gateways(16)
        .duration(SimDuration::from_hours(4))
        .build()?;

    let runner = Runner::new();
    let grid = runner.run(
        &ExperimentPlan::new(base.clone())
            .placements([GatewayPlacement::Grid])
            .fixed_seeds([11]),
    )?;
    let random = runner.run(
        &ExperimentPlan::new(base)
            .placements([GatewayPlacement::Random])
            .fixed_seeds((1..=4).map(|layout| 11 + layout)),
    )?;

    println!("Grid vs random gateway placement (16 gateways, ROBC, urban)");
    println!();
    println!("placement  layout  delivery%  mean-delay(s)");
    let mut random_ratios = Vec::new();
    for cell in grid.iter().chain(&random) {
        let label = match cell.key.placement {
            GatewayPlacement::Grid => "grid",
            GatewayPlacement::Random => "random",
        };
        for (seed, report) in cell.report.runs() {
            if cell.key.placement == GatewayPlacement::Random {
                random_ratios.push(report.delivery_ratio());
            }
            println!(
                "{:10} {:6} {:8.1}% {:14.1}",
                label,
                seed,
                100.0 * report.delivery_ratio(),
                report.mean_delay_s(),
            );
        }
    }
    let lo = random_ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = random_ratios.iter().cloned().fold(0.0f64, f64::max);
    println!();
    println!(
        "Random layouts at identical density span {:.1}%–{:.1}% delivery —",
        100.0 * lo,
        100.0 * hi
    );
    println!("placement, not just count, decides coverage (§VII.C).");
    Ok(())
}
