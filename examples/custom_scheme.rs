//! A user-defined forwarding policy pitted against the paper's schemes.
//!
//! Implements a spray-and-wait-style DTN baseline on the open
//! [`ForwardingPolicy`] trait — no engine changes, no new enum variant —
//! and sweeps it against LoRaWAN and ROBC through the `policies`
//! experiment axis.
//!
//! ```sh
//! cargo run --release --example custom_scheme
//! ```

use mlora::core::{
    Beacon, ForwardingPolicy, PolicyContext, PolicySpec, RoutingConfig, RCA_ETX_CEILING,
};
use mlora::sim::prelude::*;
use mlora::sim::report;

/// A binary spray-and-wait relay with a contact-gated budget.
///
/// *Spray*: on hearing any not-worse-connected neighbour over a usable
/// link, hand over half the backlog (classic binary spray). *Wait*: each
/// handover spends one unit of a spray budget; once the budget is gone
/// the device holds its remaining copies until a gateway contact refills
/// it — so well-connected devices spray freely while disconnected ones
/// stop flooding after a few relays and wait for coverage.
///
/// The policy keeps private per-device state (the remaining budget) and
/// leans on the shared machinery every policy gets for free: the
/// RCA-ETX estimator, the link metric and the §V.B.2 anti-loop ledger.
#[derive(Debug, Clone)]
struct SprayAndWait {
    /// Handovers granted per gateway contact.
    budget: u32,
    /// Handovers left before the wait phase.
    sprays_left: u32,
}

impl SprayAndWait {
    fn new(budget: u32) -> Self {
        SprayAndWait {
            budget,
            sprays_left: budget,
        }
    }
}

impl ForwardingPolicy for SprayAndWait {
    fn label(&self) -> &str {
        "Spray+Wait"
    }

    fn clone_box(&self) -> Box<dyn ForwardingPolicy> {
        Box::new(self.clone())
    }

    fn forwards(&mut self, ctx: &PolicyContext<'_>, beacon: &Beacon, rssi_dbm: f64) -> bool {
        // Wait phase: the budget is spent, hold the remaining copies.
        if self.sprays_left == 0 {
            return false;
        }
        // Respect the anti-loop ledger and require a usable link.
        if ctx.is_barred(beacon.sender) || ctx.link_rca_etx(rssi_dbm) >= RCA_ETX_CEILING {
            return false;
        }
        // Spray only towards carriers at least as well connected as we
        // currently look (real-time preview, so a grown disconnection
        // gap makes us eager).
        if beacon.rca_etx > ctx.rca_etx_now() {
            return false;
        }
        // The transfer below always moves ≥1 message (the queue is
        // non-empty here), so the offer genuinely spends budget.
        self.sprays_left -= 1;
        true
    }

    fn transfer_amount(&self, ctx: &PolicyContext<'_>, _beacon: &Beacon) -> usize {
        // Binary spray: hand over half the backlog, keep the rest.
        ctx.queue_len().div_ceil(2)
    }

    fn on_sink_slot(&mut self, _t: mlora::simcore::SimTime, capacity: Option<f64>, _wait_s: f64) {
        // A gateway contact refills the spray budget.
        if capacity.is_some() {
            self.sprays_left = self.budget;
        }
    }

    fn default_config(&self) -> RoutingConfig {
        RoutingConfig::paper_default(Scheme::NoRouting)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Smoke scale so the example finishes in seconds; drop `.smoke()`
    // for the paper's 600 km² / 24 h setting.
    let base = Scenario::urban().smoke().build()?;
    let plan = ExperimentPlan::new(base)
        .gateway_counts([6, 9])
        .policies([
            PolicySpec::from(Scheme::NoRouting),
            PolicySpec::from(Scheme::Robc),
            PolicySpec::of(SprayAndWait::new(4)),
        ])
        .fixed_seeds([42]);
    let cells = Runner::new().run(&plan)?;

    println!("{}", report::scheme_table(&cells));
    println!("Spray+Wait is ~60 lines of user code: the ForwardingPolicy");
    println!("trait rides the exact engine path the built-in schemes use,");
    println!("and its label flows into every report table above.");

    // The custom policy must actually relay data in this world.
    let spray = cells
        .iter()
        .find(|c| c.report.single().scheme == "Spray+Wait")
        .expect("spray cell present");
    assert!(
        spray.report.single().handover_frames > 0,
        "Spray+Wait never handed over"
    );
    Ok(())
}
