//! Metro-scale workflow: generate a city once, ship it as a file, run it
//! with memory-bounded streaming sinks.
//!
//! Builds a radial-plus-ring metro world with the seeded generator,
//! streams the whole scenario to a `.mlsc` file, reloads it (bit-exact —
//! the reloaded scenario runs identically to the in-memory one), and
//! executes it with the two sinks sized for open-ended runs: a
//! [`SeriesObserver`] whose four time series fold in place instead of
//! growing, and a [`ReportWriter`] that streams cumulative progress rows
//! to disk as simulation time passes.
//!
//! ```sh
//! cargo run --release --example metro_scale
//! ```

use mlora::mobility::DiurnalProfile;
use mlora::sim::prelude::*;
use mlora::simcore::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A compact metro: 10 km side, 2-hour service window, peak activity
    // capped at 2000 concurrent buses so the example finishes in seconds.
    let metro = MetroConfig {
        area_side_m: 10_000.0,
        num_radials: 16,
        num_rings: 8,
        peak_active_buses: 2_000,
        min_legs: 1,
        max_legs: 2,
        horizon: SimDuration::from_hours(2),
        profile: DiurnalProfile::flat(0.9),
        ..MetroConfig::default()
    };
    let config = Scenario::urban()
        .scheme(Scheme::Robc)
        .gateways(25)
        .metro(&metro, 2020)
        .build()?;
    let world = config.world.as_ref().expect("metro attaches a world");
    println!(
        "generated metro: {} routes, {} buses over {:.0} km²",
        world.routes().len(),
        world.trips().len(),
        world.area().width() * world.area().height() / 1e6
    );

    // Ship the whole scenario — world, fleet, gateways, parameters — as
    // one compact binary file, then reload it.
    let dir = std::env::temp_dir().join("mlora_metro_scale_example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("metro.mlsc");
    config.to_file(&path)?;
    println!(
        "scenario file: {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path)?.len()
    );
    let reloaded = SimConfig::from_file(&path)?;

    // Run the reloaded scenario with bounded streaming sinks: the series
    // never allocates more than 64 buckets per signal, and the report
    // writer appends one cumulative row per 10 simulated minutes.
    let mut series = SeriesObserver::bounded(SimDuration::from_mins(5), 64);
    let mut progress = ReportWriter::new(Vec::new(), SimDuration::from_mins(10));
    let report = {
        let mut pair = (&mut series, &mut progress);
        reloaded.run_with_observer(2020, &mut pair)?
    };
    println!(
        "run: {} generated, {} delivered ({:.1}% delivery, {:.1} s mean delay)",
        report.generated,
        report.delivered,
        100.0 * report.delivery_ratio(),
        report.mean_delay_s()
    );
    println!(
        "bounded series: {} buckets of {:.0} s hold all {} deliveries",
        series.delivered.counts().len(),
        series.delivered.bucket().as_secs_f64(),
        series.delivered.total()
    );
    assert_eq!(series.delivered.total(), report.delivered);

    let rows = String::from_utf8(progress.finish()?)?;
    println!("progress stream ({} rows):", rows.lines().count());
    for line in rows.lines().take(3) {
        println!("  {line}");
    }
    let last = rows.lines().last().expect("final row");
    println!("  ...\n  {last}");
    assert!(last.contains("\"row\":\"final\""));

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
