//! Logistics tracking — the paper's motivating scenario (§VII.A.1).
//!
//! LoRa trackers ride on high-value parcels carried by a vehicle fleet
//! across a city. Coverage is sparse (few gateways), so trackers exploit
//! ROBC to push condition reports through better-connected vehicles.
//! The fleet runs a heterogeneous traffic mix: most vehicles carry the
//! named `tracking` profile (Poisson position fixes, variable 12–32-byte
//! payloads), a twentieth carry `alerts` (bursty, tiny, high-priority
//! tamper reports that jump every queue). This example sweeps gateway
//! density and reports, per profile, how forwarding changes delivery —
//! the numbers a logistics operator actually cares about. The whole
//! 3 × 2 sweep is one experiment plan.
//!
//! ```sh
//! cargo run --release --example logistics_tracking
//! ```

use mlora::sim::prelude::*;
use mlora::simcore::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size deployment: 225 km², four simulated hours, ~120 vehicles.
    let base = Scenario::urban()
        .area_side_m(15_000.0)
        .routes(30)
        .buses(120)
        .duration(SimDuration::from_hours(4))
        .profile(TrafficProfile::tracking())
        .profile(TrafficProfile::alerts())
        .build()?;

    let plan = ExperimentPlan::new(base)
        .gateway_counts([6, 12, 24])
        .schemes([Scheme::NoRouting, Scheme::Robc])
        .fixed_seeds([7]);
    let cells = Runner::new().run(&plan)?;

    println!("Parcel tracking over a 225 km² city, 4 h of service");
    println!();
    println!("gateways scheme     delivery%  track%  alert%  delay(s)  stranded");
    for cell in &cells {
        let r = cell.report.single();
        let by = |name: &str| r.profile(name).map_or(0.0, |p| 100.0 * p.delivery_ratio());
        println!(
            "{:8} {:10} {:8.1}% {:6.1}% {:6.1}% {:9.1} {:9}",
            cell.key.gateways,
            cell.key.scheme.label(),
            100.0 * r.delivery_ratio(),
            by("tracking"),
            by("alerts"),
            r.mean_delay_s(),
            r.stranded,
        );
    }
    println!();
    println!("Fewer stranded reports means fewer parcels going dark between");
    println!("depot scans — the gain is largest where coverage is thinnest,");
    println!("and high-priority tamper alerts ride ahead of routine fixes.");
    Ok(())
}
