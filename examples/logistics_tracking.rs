//! Logistics tracking — the paper's motivating scenario (§VII.A.1).
//!
//! LoRa trackers ride on high-value parcels carried by a vehicle fleet
//! across a city. Coverage is sparse (few gateways), so trackers exploit
//! ROBC to push condition reports through better-connected vehicles.
//! This example sweeps gateway density and reports how forwarding changes
//! delivery ratio and stranding — the metrics a logistics operator
//! actually cares about.
//!
//! ```sh
//! cargo run --release --example logistics_tracking
//! ```

use mlora::core::Scheme;
use mlora::sim::{Environment, SimConfig};
use mlora::simcore::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size deployment: 225 km², four simulated hours, ~120 vehicles.
    let base = {
        let mut cfg = SimConfig::paper_default(Scheme::NoRouting, Environment::Urban);
        cfg.network.area_side_m = 15_000.0;
        cfg.network.num_routes = 30;
        cfg.network.max_active_buses = 120;
        cfg.horizon = SimDuration::from_hours(4);
        cfg.network.horizon = cfg.horizon;
        cfg
    };

    println!("Parcel tracking over a 225 km² city, 4 h of service");
    println!();
    println!("gateways scheme     delivery%  mean-delay(s)  stranded");
    for gateways in [6usize, 12, 24] {
        for scheme in [Scheme::NoRouting, Scheme::Robc] {
            let mut cfg = base.clone();
            cfg.num_gateways = gateways;
            cfg.scheme = scheme;
            let r = cfg.run(7)?;
            println!(
                "{:8} {:10} {:8.1}% {:14.1} {:9}",
                gateways,
                scheme.label(),
                100.0 * r.delivery_ratio(),
                r.mean_delay_s(),
                r.stranded,
            );
        }
    }
    println!();
    println!("Fewer stranded reports means fewer parcels going dark between");
    println!("depot scans — the gain is largest where coverage is thinnest.");
    Ok(())
}
