//! Quickstart: run one simulation per forwarding scheme and compare the
//! headline metrics the paper reports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mlora::sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down urban MLoRa-SS network: 100 km², two simulated hours,
    // a few dozen buses, nine grid gateways. Drop the `.smoke()` preset
    // for the full 600 km² / 24 h paper setting. The fleet runs the
    // named `telemetry` traffic profile — the paper's 20-byte reading
    // roughly every 3 minutes, with ±20 % jitter so devices decorrelate;
    // drop the `.profile(...)` line for the paper's exact periodic clock.
    println!("scheme     delivered  generated  delay(s)   hops  msgs/node");
    for scheme in Scheme::ALL {
        let report = Scenario::urban()
            .smoke()
            .scheme(scheme)
            .profile(TrafficProfile::telemetry())
            .run(42)?;
        println!(
            "{:10} {:9} {:10} {:9.1} {:6.2} {:10.1}",
            scheme.label(),
            report.delivered,
            report.generated,
            report.mean_delay_s(),
            report.mean_hops(),
            report.mean_messages_sent_per_node(),
        );
    }
    println!();
    println!("RCA-ETX and ROBC relay data through better-connected buses;");
    println!("hop counts above 1.0 show device-to-device forwarding at work.");
    Ok(())
}
