//! Modified Class-C vs Queue-based Class-A (§VI, §VII.C).
//!
//! Both classes enable device-to-device overhearing; Queue-based Class-A
//! opens its receive window only in proportion to its RGQ-corrected
//! backlog (Eq. 11), trading a little forwarding opportunity for energy.
//! The paper reports on-par delivery with under 20 % energy saving; this
//! example reproduces that comparison through a device-class plan axis.
//!
//! ```sh
//! cargo run --release --example class_comparison
//! ```

use mlora::sim::prelude::*;
use mlora::simcore::SimDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = Scenario::urban()
        .scheme(Scheme::Robc)
        .area_side_m(15_000.0)
        .routes(30)
        .buses(150)
        .gateways(16)
        .duration(SimDuration::from_hours(4))
        .build()?;

    let plan = ExperimentPlan::new(base)
        .device_classes([
            DeviceClassChoice::ModifiedClassC,
            DeviceClassChoice::QueueBasedClassA,
        ])
        .fixed_seeds([3]);
    let cells = Runner::new().run(&plan)?;

    println!("Device-class comparison under ROBC (16 gateways, urban)");
    println!();
    println!("class              delivery%  delay(s)  hops  energy/node(J)");
    let mut energies = Vec::new();
    for cell in &cells {
        let report = cell.report.single();
        let label = match cell.key.device_class {
            DeviceClassChoice::ModifiedClassC => "Modified Class-C",
            DeviceClassChoice::QueueBasedClassA => "Queue-based Cl-A",
        };
        energies.push(report.mean_energy_per_node_mj());
        println!(
            "{:18} {:8.1}% {:9.1} {:5.2} {:15.1}",
            label,
            100.0 * report.delivery_ratio(),
            report.mean_delay_s(),
            report.mean_hops(),
            report.mean_energy_per_node_mj() / 1000.0,
        );
    }
    if let [class_c, class_a] = energies[..] {
        println!();
        println!(
            "Queue-based Class-A spends {:.0}% of Modified Class-C's radio energy",
            100.0 * class_a / class_c
        );
        println!("while keeping delivery on par (§VII.C reports <20% saving for");
        println!("their duty pattern; the saving grows as queues sit empty).");
    }
    Ok(())
}
