//! Resilience study — how the forwarding schemes degrade when the
//! world stops cooperating.
//!
//! Sweeps gateway-outage density (none → a third of the deployment →
//! two thirds, the heaviest tier adding a fleet withdrawal and a
//! regional noise burst) across the forwarding schemes, using the
//! disruption axis of the experiment [`Runner`]. Opportunistic
//! forwarding exists precisely for intermittent connectivity, so the
//! interesting number is the delivery ratio *during* the outage
//! windows, where the baseline has nowhere to send.
//!
//! ```sh
//! cargo run --release --example resilience
//! ```

use mlora::geo::Point;
use mlora::sim::prelude::*;
use mlora::sim::report::resilience_table;
use mlora::simcore::{SimDuration, SimTime};

/// Outages covering `gateways` of the deployment, staggered through the
/// middle of the run: gateway `g` is down for one hour starting at
/// minute `40 + 10·g`.
fn staggered_outages(gateways: usize) -> Vec<GatewayOutage> {
    (0..gateways)
        .map(|g| GatewayOutage {
            gateway: g,
            start: SimTime::from_secs((40 + 10 * g as u64) * 60),
            duration: Some(SimDuration::from_hours(1)),
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size urban network: 225 km², four hours, nine gateways.
    let base = Scenario::urban()
        .scheme(Scheme::Robc)
        .area_side_m(15_000.0)
        .routes(30)
        .buses(150)
        .gateways(9)
        .duration_h(4)
        .build()?;

    // Disruption tiers of increasing severity. Tier 0 is the paper's
    // static world; the heaviest tier also withdraws a quarter of the
    // fleet and raises the noise floor over the city centre.
    let tiers = vec![
        DisruptionPlan::default(),
        DisruptionPlan {
            outages: staggered_outages(3),
            ..DisruptionPlan::default()
        },
        DisruptionPlan {
            outages: staggered_outages(6),
            withdrawals: vec![BusWithdrawal {
                at: SimTime::from_secs(90 * 60),
                fraction: 0.25,
            }],
            noise_bursts: vec![NoiseBurst {
                center: Point::new(7_500.0, 7_500.0),
                radius_m: 5_000.0,
                start: SimTime::from_secs(60 * 60),
                duration: Some(SimDuration::from_hours(1)),
                extra_loss_db: 12.0,
            }],
        },
    ];
    let tier_labels = ["none", "3 outages", "6 outages + withdrawal + noise"];

    let plan = ExperimentPlan::new(base)
        .schemes([Scheme::NoRouting, Scheme::RcaEtx, Scheme::Robc])
        .disruptions(tiers)
        .fixed_seeds([2020]);
    let cells = Runner::new().run(&plan)?;

    println!("Disruption tiers:");
    for (i, label) in tier_labels.iter().enumerate() {
        println!("  plan {i}: {label}");
    }
    println!();
    print!("{}", resilience_table(&cells));
    println!();

    // Headline: how much delivery the forwarding schemes rescue during
    // the heaviest tier's outage windows, relative to plain LoRaWAN.
    let outage_ratio = |scheme: Scheme| {
        cells
            .iter()
            .find(|c| c.key.scheme == scheme && c.key.disruption == 2)
            .map(|c| c.report.single().outage_delivery_ratio())
            .unwrap_or(0.0)
    };
    let base_ratio = outage_ratio(Scheme::NoRouting);
    let robc_ratio = outage_ratio(Scheme::Robc);
    println!(
        "During the heaviest tier's outages: LoRaWAN delivers {:.1}% , ROBC {:.1}%",
        100.0 * base_ratio,
        100.0 * robc_ratio
    );
    println!("Opportunistic forwarding routes around failed gateways; the");
    println!("delivery gap during outage windows is the resilience dividend.");
    Ok(())
}
