//! Streaming observers: count events, bucket a delivery time series and
//! write a CSV event trace — all from one simulation run.
//!
//! ```sh
//! cargo run --release --example delivery_trace [trace.csv]
//! ```
//!
//! With a path argument the full event trace lands in that file;
//! otherwise only the summary prints.

use mlora::sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Scenario::urban().smoke().scheme(Scheme::Robc).build()?;

    let mut counter = EventCounter::default();
    let mut series = SeriesObserver::new(config.series_bucket, config.horizon);

    let report = match std::env::args().nth(1) {
        Some(path) => {
            let mut sink = TraceSink::csv(std::io::BufWriter::new(std::fs::File::create(&path)?));
            let mut pair = (&mut series, &mut sink);
            let report = config.run_with_observer(42, &mut (&mut counter, &mut pair))?;
            sink.finish()?;
            println!("wrote event trace to {path}");
            report
        }
        None => config.run_with_observer(42, &mut (&mut counter, &mut series))?,
    };

    println!();
    println!("one run, three observers (urban smoke scenario, ROBC):");
    println!("  generated {:6} messages", counter.generated);
    println!(
        "  sent      {:6} frames ({} handovers)",
        counter.frames, counter.handover_frames
    );
    println!("  forwarded {:6} times", counter.forwards);
    println!("  delivered {:6} unique messages", counter.deliveries);
    assert_eq!(counter.deliveries, report.delivered);

    println!();
    println!("deliveries per 10-minute bucket:");
    for (t, n) in series.delivered.iter() {
        let bar = "#".repeat((n / 2) as usize);
        println!("  {:>5}s {:>4} {bar}", t.as_secs(), n);
    }
    Ok(())
}
