//! Vendored no-op implementations of serde's derive macros.
//!
//! Nothing in this workspace performs actual serialization — the derives
//! exist so type definitions stay source-compatible with the real serde.
//! Each derive expands to an empty token stream.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
