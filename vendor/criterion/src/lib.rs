//! Vendored minimal benchmark harness exposing the subset of the
//! `criterion` API this workspace uses: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Each benchmark is warmed up once, then timed over a fixed number of
//! samples; the mean, minimum and maximum per-iteration wall-clock times
//! are printed. There is no statistical analysis, plotting, or baseline
//! comparison — this exists so `cargo bench` runs without registry
//! access.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Entry point handed to benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Runs and reports a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, f);
        self
    }

    /// Finishes the group (a no-op in this stub; kept for API parity).
    pub fn finish(self) {}
}

/// Timer handle passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// True when the binary was invoked with `--test` (as in
/// `cargo bench -- --test`): every benchmark runs exactly once to prove
/// it executes, with no warm-up, calibration or timing — the CI smoke
/// mode real criterion provides.
fn test_mode() -> bool {
    use std::sync::OnceLock;
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Picks an iteration count so one sample takes roughly 10 ms, then runs
/// `sample_size` timed samples and prints summary statistics.
fn run_one<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if test_mode() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
        };
        f(&mut b);
        println!("Testing {id} ... ok");
        return;
    }
    // Calibration: run once to estimate the per-iteration cost.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(10);
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{id:<40} time: [{} {} {}]  ({sample_size} samples x {iters} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
