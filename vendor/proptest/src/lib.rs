//! Vendored minimal property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: the [`proptest!`] macro over
//! `pat in strategy` arguments, range / [`collection::vec`] / `ANY`
//! strategies, and the `prop_assert*` macros.
//!
//! Each property runs a fixed number of deterministic cases (seeded from
//! the test name, so failures reproduce). There is no shrinking — a
//! failing case panics with the assertion message, which in this
//! workspace always embeds the offending values.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs.
pub const CASES: u64 = 96;

/// Deterministic generator driving case construction (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty range");
        // Lemire's unbiased multiply-shift rejection.
        loop {
            let m = (self.next_u64() as u128) * (span as u128);
            if (m as u64) >= span.wrapping_neg() % span {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // unit_f64 never returns 1.0; fold a coin flip in for the endpoint.
        if rng.next_u64().is_multiple_of(4096) {
            hi
        } else {
            lo + rng.unit_f64() * (hi - lo)
        }
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

int_strategy!(u64, u32, usize);

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Numeric "any value" strategies.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Strategy over all `f64` bit patterns, specials included.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Any `f64`, including infinities, NaN and subnormals.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                const SPECIALS: [f64; 8] = [
                    0.0,
                    -0.0,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    f64::NAN,
                    f64::MIN,
                    f64::MAX,
                    f64::EPSILON,
                ];
                if rng.next_u64().is_multiple_of(8) {
                    SPECIALS[(rng.next_u64() % SPECIALS.len() as u64) as usize]
                } else {
                    f64::from_bits(rng.next_u64())
                }
            }
        }
    }
}

/// `bool` strategies.
pub mod bool {
    use crate::{Strategy, TestRng};

    /// Strategy over both boolean values.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either boolean, uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runs `CASES` deterministic cases of a property.
pub fn run_cases(name: &str, case: impl FnMut(&mut TestRng)) {
    let mut case = case;
    // FNV-1a over the test name keeps seeds stable across runs and
    // independent of definition order.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    for i in 0..CASES {
        let mut rng = TestRng::new(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        case(&mut rng);
    }
}

/// Defines property tests: `fn name(pat in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}
