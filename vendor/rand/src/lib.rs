//! Vendored, API-compatible stub of the parts of `rand` 0.8 this
//! workspace uses: [`rngs::SmallRng`] seeded via [`SeedableRng`], and the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ (the algorithm family the real
//! `SmallRng` uses on 64-bit targets), seeded through SplitMix64, so the
//! statistical quality matches the real crate even though exact output
//! streams differ.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// Seeding support for deterministic generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = f64::sample_standard(rng);
        // Clamp keeps rounding at the top of wide ranges inside [start, end).
        let x = self.start + unit * (self.end - self.start);
        if x >= self.end {
            self.end.next_down()
        } else {
            x
        }
    }
}

/// Uniform integer in `[0, span)` without modulo bias (Lemire's method).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_range!(u64, usize, u32);

/// The raw 64-bit output a generator must provide.
pub trait RngCore {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
