//! Vendored stub of `serde`.
//!
//! The workspace only ever writes `use serde::{Deserialize, Serialize}`
//! and `#[derive(Serialize, Deserialize)]`; no code serializes anything.
//! This stub re-exports the no-op derive macros so those sources compile
//! unchanged without registry access.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
