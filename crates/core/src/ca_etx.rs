//! CA-ETX — the prior-work comparator (§III.C).
//!
//! Contact-Aware ETX (Yang et al., IEEE TMC 2017) is the metric RCA-ETX
//! extends. It estimates the node-to-sink cost from the *long-term
//! statistics* of inter-contact gaps — mean and variance accumulated over
//! the device's history — rather than from real-time observations. The
//! paper argues (§III.C) that under MLoRa-SS duty cycles those statistics
//! go stale and degrade scheduling; implementing CA-ETX lets the
//! evaluation quantify that claim.

use mlora_simcore::stats::Welford;
use mlora_simcore::SimTime;
use serde::{Deserialize, Serialize};

use crate::metric::{packet_service_time, RCA_ETX_CEILING};

/// The CA-ETX estimator: long-term mean (and variance) of inter-contact
/// gaps plus the transmission term.
///
/// The node-to-sink cost is estimated as
///
/// ```text
/// CA-ETX_{x,S} = 1/c̄ + E[gap]/2
/// ```
///
/// — the mean transmission time plus the expected residual wait until
/// the next contact under a renewal assumption (half the mean
/// inter-contact gap). Unlike [`crate::RcaEtxEstimator`], nothing here
/// reacts to *how long ago* the last contact happened: two devices with
/// identical histories report identical costs even if one has been dark
/// for an hour. That staleness is exactly the §III.C critique.
///
/// # Example
///
/// ```
/// use mlora_core::CaEtxEstimator;
/// use mlora_simcore::SimTime;
///
/// let mut est = CaEtxEstimator::new(2040.0);
/// est.observe(SimTime::from_secs(0), Some(2_000.0));
/// est.observe(SimTime::from_secs(600), Some(2_000.0));
/// // Mean gap 600 s → expected residual wait 300 s (+ ~1 s tx time).
/// assert!((est.ca_etx() - 301.02).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaEtxEstimator {
    packet_bits: f64,
    gaps: Welford,
    capacities: Welford,
    last_contact: Option<SimTime>,
}

impl CaEtxEstimator {
    /// Creates an estimator for frames of `packet_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `packet_bits` is not strictly positive.
    pub fn new(packet_bits: f64) -> Self {
        assert!(packet_bits > 0.0, "packet size must be positive");
        CaEtxEstimator {
            packet_bits,
            gaps: Welford::new(),
            capacities: Welford::new(),
            last_contact: None,
        }
    }

    /// Records the outcome of a device-to-sink slot at `t`:
    /// `capacity_bps` is `Some` with the observed capacity on success,
    /// `None` on failure. Failures do not update the statistics — CA-ETX
    /// only learns from contacts.
    pub fn observe(&mut self, t: SimTime, capacity_bps: Option<f64>) {
        let Some(cap) = capacity_bps else {
            return;
        };
        if let Some(prev) = self.last_contact {
            self.gaps.push(t.saturating_since(prev).as_secs_f64());
        }
        self.capacities.push(cap.max(0.0));
        self.last_contact = Some(t);
    }

    /// The CA-ETX node-to-sink cost, seconds. Devices with no contact
    /// history report [`RCA_ETX_CEILING`].
    pub fn ca_etx(&self) -> f64 {
        if self.capacities.count() == 0 {
            return RCA_ETX_CEILING;
        }
        let tx = packet_service_time(self.capacities.mean(), self.packet_bits);
        let wait = if self.gaps.count() == 0 {
            // One contact ever: no gap statistics yet; be optimistic about
            // the wait (the device is presumably still in contact).
            0.0
        } else {
            self.gaps.mean() / 2.0
        };
        (tx + wait).min(RCA_ETX_CEILING)
    }

    /// Standard deviation of the inter-contact gaps (the σ the paper
    /// notes goes stale), seconds.
    pub fn gap_std_dev(&self) -> f64 {
        self.gaps.std_dev()
    }

    /// Mean inter-contact gap, seconds.
    pub fn mean_gap(&self) -> f64 {
        self.gaps.mean()
    }

    /// Number of successful contacts observed.
    pub fn contacts(&self) -> u64 {
        self.capacities.count()
    }

    /// The estimator's raw state `(packet_bits, gaps, capacities,
    /// last_contact)` — the checkpoint counterpart of
    /// [`CaEtxEstimator::from_raw_parts`].
    pub fn raw_parts(&self) -> (f64, Welford, Welford, Option<SimTime>) {
        (
            self.packet_bits,
            self.gaps,
            self.capacities,
            self.last_contact,
        )
    }

    /// Rebuilds an estimator from state captured by
    /// [`CaEtxEstimator::raw_parts`].
    ///
    /// # Panics
    ///
    /// Panics if `packet_bits` is not strictly positive.
    pub fn from_raw_parts(
        packet_bits: f64,
        gaps: Welford,
        capacities: Welford,
        last_contact: Option<SimTime>,
    ) -> Self {
        assert!(packet_bits > 0.0, "packet size must be positive");
        CaEtxEstimator {
            packet_bits,
            gaps,
            capacities,
            last_contact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BITS: f64 = 2_040.0;

    #[test]
    fn unobserved_is_ceiling() {
        assert_eq!(CaEtxEstimator::new(BITS).ca_etx(), RCA_ETX_CEILING);
    }

    #[test]
    fn single_contact_only_tx_term() {
        let mut e = CaEtxEstimator::new(BITS);
        e.observe(SimTime::from_secs(10), Some(2_040.0));
        assert!((e.ca_etx() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_gap_drives_wait_term() {
        let mut e = CaEtxEstimator::new(BITS);
        for i in 0..5u64 {
            e.observe(SimTime::from_secs(i * 400), Some(2_040.0));
        }
        assert_eq!(e.mean_gap(), 400.0);
        assert!((e.ca_etx() - (1.0 + 200.0)).abs() < 1e-9);
    }

    #[test]
    fn failures_are_invisible() {
        let mut with_failures = CaEtxEstimator::new(BITS);
        let mut without = CaEtxEstimator::new(BITS);
        for i in 0..5u64 {
            let t = SimTime::from_secs(i * 400);
            with_failures.observe(t, Some(2_040.0));
            without.observe(t, Some(2_040.0));
            // Interleave failures; CA-ETX must not notice.
            with_failures.observe(t + mlora_simcore::SimDuration::from_secs(100), None);
        }
        assert_eq!(with_failures.ca_etx(), without.ca_etx());
    }

    #[test]
    fn staleness_blind_spot() {
        // The §III.C critique in miniature: after the same history, the
        // CA-ETX of a device dark for an hour equals its fresh value,
        // while RCA-ETX's real-time preview diverges.
        let mut ca = CaEtxEstimator::new(BITS);
        let mut rca = crate::RcaEtxEstimator::new(0.5, BITS);
        for i in 0..5u64 {
            let t = SimTime::from_secs(i * 300);
            ca.observe(t, Some(2_040.0));
            rca.observe(t, Some(2_040.0), 0.0);
        }
        // Both devices then lose the gateway and go dark for an hour.
        let t_fail = SimTime::from_secs(5 * 300);
        ca.observe(t_fail, None);
        rca.observe(t_fail, None, 0.0);
        let fresh_ca = ca.ca_etx();
        let hour_later = t_fail + mlora_simcore::SimDuration::from_hours(1);
        assert_eq!(ca.ca_etx(), fresh_ca); // blind to elapsed time
        assert!(rca.rca_etx_at(hour_later, 0.0) > rca.rca_etx());
    }

    #[test]
    fn variance_tracked() {
        let mut e = CaEtxEstimator::new(BITS);
        for t in [0u64, 100, 500, 600, 1_400] {
            e.observe(SimTime::from_secs(t), Some(2_040.0));
        }
        assert!(e.gap_std_dev() > 0.0);
        assert_eq!(e.contacts(), 5);
    }
}
