//! ROBC weights, partial transfers, and the anti-loop ledger (§V.B).

use std::collections::HashSet;

use mlora_simcore::NodeId;
use serde::{Deserialize, Serialize};

/// The ROBC scheduling weight of Eq. 10:
///
/// ```text
/// ω_{x,y}(t) = Qx(t)/φx(t) − Qy(t)/φy(t)
/// ```
///
/// `Q/φ` is the *expected waiting time* of the backlog: raw queue lengths
/// corrected by each device's gateway quality. `x` forwards to `y` only
/// when `ω > 0`, i.e. its backlog would drain strictly faster through
/// `y`.
pub fn robc_weight(queue_x: usize, phi_x: f64, queue_y: usize, phi_y: f64) -> f64 {
    debug_assert!(phi_x > 0.0 && phi_y > 0.0, "RGQ must be positive");
    queue_x as f64 / phi_x - queue_y as f64 / phi_y
}

/// The partial transfer size of §V.B.2:
///
/// ```text
/// δ_{x,y}(t) = Qx(t) − Qy(t)·φx/φy
/// ```
///
/// Unlike classic backpressure, which saturates the link, ROBC moves only
/// the amount that equalises RGQ-corrected backlogs — transferring more
/// would immediately create reverse pressure and ping-pong packets under
/// the sparse transmission opportunities of MLoRa-SS. Returns 0 when the
/// weight is non-positive.
pub fn robc_transfer_amount(queue_x: usize, phi_x: f64, queue_y: usize, phi_y: f64) -> usize {
    let delta = queue_x as f64 - queue_y as f64 * phi_x / phi_y;
    if delta <= 0.0 {
        return 0;
    }
    // Never hand over more than we hold.
    (delta.floor() as usize).min(queue_x)
}

/// The anti-loop rule of §V.B.2: "device y will not send data received
/// from x back even if y hears from x before its next forwarding
/// opportunity to the sinks."
///
/// A device records every donor it accepted data from; donors are barred
/// as forwarding targets until the device next gets a chance to push data
/// towards the sinks (its next own uplink slot), at which point the
/// ledger clears.
///
/// # Example
///
/// ```
/// use mlora_core::DonorLedger;
/// use mlora_simcore::NodeId;
///
/// let mut ledger = DonorLedger::new();
/// ledger.record_donor(NodeId::new(7));
/// assert!(ledger.is_barred(NodeId::new(7)));
/// ledger.clear_on_sink_opportunity();
/// assert!(!ledger.is_barred(NodeId::new(7)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DonorLedger {
    donors: HashSet<NodeId>,
}

impl DonorLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        DonorLedger::default()
    }

    /// Records that data was accepted from `donor`.
    pub fn record_donor(&mut self, donor: NodeId) {
        self.donors.insert(donor);
    }

    /// True if forwarding to `node` is currently barred.
    pub fn is_barred(&self, node: NodeId) -> bool {
        self.donors.contains(&node)
    }

    /// Clears the ledger — called at the device's next opportunity to
    /// forward towards the sinks (its own uplink slot).
    pub fn clear_on_sink_opportunity(&mut self) {
        self.donors.clear();
    }

    /// Number of barred donors.
    pub fn len(&self) -> usize {
        self.donors.len()
    }

    /// True if no donors are barred.
    pub fn is_empty(&self) -> bool {
        self.donors.is_empty()
    }

    /// The barred donors in ascending id order — a deterministic view of
    /// the internal set, the checkpoint counterpart of
    /// [`DonorLedger::from_donors`].
    pub fn donors_sorted(&self) -> Vec<NodeId> {
        let mut donors: Vec<NodeId> = self.donors.iter().copied().collect();
        donors.sort_unstable();
        donors
    }

    /// Rebuilds a ledger barring exactly `donors`.
    pub fn from_donors(donors: impl IntoIterator<Item = NodeId>) -> Self {
        DonorLedger {
            donors: donors.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_sign_drives_decision() {
        // Equal quality: heavier queue pushes towards lighter.
        assert!(robc_weight(10, 1.0, 2, 1.0) > 0.0);
        assert!(robc_weight(2, 1.0, 10, 1.0) < 0.0);
        // Equal queues, better-connected neighbour attracts data.
        assert!(robc_weight(5, 0.1, 5, 1.0) > 0.0);
        // Zero either side.
        assert_eq!(robc_weight(0, 1.0, 0, 1.0), 0.0);
    }

    #[test]
    fn transfer_equalises_corrected_backlogs() {
        // Same φ: transfer half the difference... δ = Qx − Qy = 8.
        assert_eq!(robc_transfer_amount(10, 1.0, 2, 1.0), 8);
        // After moving 8, weights reverse direction — no further motion:
        assert_eq!(robc_transfer_amount(2, 1.0, 10, 1.0), 0);
    }

    #[test]
    fn transfer_zero_when_weight_nonpositive() {
        assert_eq!(robc_transfer_amount(5, 1.0, 5, 1.0), 0);
        assert_eq!(robc_transfer_amount(3, 1.0, 4, 1.0), 0);
    }

    #[test]
    fn transfer_scales_with_quality_ratio() {
        // x poorly connected (φx=0.1), y well connected (φy=1.0): x keeps
        // almost nothing. δ = 10 − 3·0.1 = 9.7 → 9.
        assert_eq!(robc_transfer_amount(10, 0.1, 3, 1.0), 9);
        // Reverse: x well connected; δ = 10 − 3·10 < 0 → 0.
        assert_eq!(robc_transfer_amount(10, 1.0, 3, 0.1), 0);
    }

    #[test]
    fn transfer_never_exceeds_own_queue() {
        for qx in 0..20 {
            for qy in 0..20 {
                let d = robc_transfer_amount(qx, 1.0, qy, 0.01);
                assert!(d <= qx, "δ {d} exceeds queue {qx}");
            }
        }
    }

    #[test]
    fn ledger_bars_until_sink_opportunity() {
        let mut l = DonorLedger::new();
        assert!(l.is_empty());
        l.record_donor(NodeId::new(1));
        l.record_donor(NodeId::new(2));
        l.record_donor(NodeId::new(1));
        assert_eq!(l.len(), 2);
        assert!(l.is_barred(NodeId::new(1)));
        assert!(!l.is_barred(NodeId::new(3)));
        l.clear_on_sink_opportunity();
        assert!(l.is_empty());
    }

    #[test]
    fn ledger_bars_immediately_after_record() {
        // The §V.B.2 boundary: the bar must hold from the instant of
        // acceptance — there is no grace window.
        let mut l = DonorLedger::new();
        assert!(!l.is_barred(NodeId::new(7)), "fresh ledger bars nobody");
        l.record_donor(NodeId::new(7));
        assert!(l.is_barred(NodeId::new(7)));
        assert_eq!(l.len(), 1);
        // Only the recorded donor is barred, not neighbours of it.
        assert!(!l.is_barred(NodeId::new(6)));
        assert!(!l.is_barred(NodeId::new(8)));
    }

    #[test]
    fn ledger_clears_completely_on_sink_opportunity() {
        let mut l = DonorLedger::new();
        for i in 0..16 {
            l.record_donor(NodeId::new(i));
        }
        assert_eq!(l.len(), 16);
        l.clear_on_sink_opportunity();
        assert_eq!(l.len(), 0);
        assert!(l.is_empty());
        for i in 0..16 {
            assert!(!l.is_barred(NodeId::new(i)), "donor {i} survived clear");
        }
        // The ledger is reusable after clearing.
        l.record_donor(NodeId::new(3));
        assert!(l.is_barred(NodeId::new(3)));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn ledger_empty_and_len_invariants() {
        let mut l = DonorLedger::default();
        // Default and new are indistinguishable, and emptiness tracks len.
        assert_eq!(l, DonorLedger::new());
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        // Clearing an empty ledger is a harmless no-op.
        l.clear_on_sink_opportunity();
        assert!(l.is_empty());
        // Re-recording the same donor is idempotent: len counts distinct
        // donors, and is_empty tracks len through every transition.
        l.record_donor(NodeId::new(5));
        l.record_donor(NodeId::new(5));
        assert_eq!(l.len(), 1);
        assert!(!l.is_empty());
        l.clear_on_sink_opportunity();
        assert_eq!(l.len(), 0);
        assert!(l.is_empty());
    }
}
