//! Exponentially weighted moving average (paper Eq. 4).

use serde::{Deserialize, Serialize};

/// The EWMA of Eq. 4:
///
/// ```text
/// E[µ′(t)] = (1 − α)·E[µ′(t − Δt)] + α·µ′(t)    t > 0
/// E[µ′(0)] = µ′(0)
/// ```
///
/// Because MLoRa-SS devices transmit rarely (1 % duty cycle) while the
/// topology changes quickly, a long-term mean would be stale; the EWMA
/// weights recent service times by `α`. Higher `α` adapts faster at the
/// cost of scheduling stability (§IV.B); the paper's evaluation uses
/// `α = 0.5`.
///
/// # Example
///
/// ```
/// use mlora_core::Ewma;
///
/// let mut e = Ewma::new(0.5);
/// assert_eq!(e.value(), None);     // no observation yet
/// e.push(10.0);
/// assert_eq!(e.value(), Some(10.0)); // first sample taken as-is
/// e.push(20.0);
/// assert_eq!(e.value(), Some(15.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` lies in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Adds an observation and returns the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(prev) => (1.0 - self.alpha) * prev + self.alpha * x,
        };
        self.value = Some(next);
        next
    }

    /// The current average, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Discards all history.
    pub fn reset(&mut self) {
        self.value = None;
    }

    /// Rebuilds an average from `(alpha, value)` parts — the checkpoint
    /// counterpart of [`Ewma::alpha`] and [`Ewma::value`].
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` lies in `(0, 1]`.
    pub fn from_raw_parts(alpha: f64, value: Option<f64>) -> Self {
        let mut ewma = Ewma::new(alpha);
        ewma.value = value;
        ewma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_taken_verbatim() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.push(7.0), 7.0);
    }

    #[test]
    fn alpha_one_tracks_last_sample() {
        let mut e = Ewma::new(1.0);
        e.push(5.0);
        e.push(9.0);
        assert_eq!(e.value(), Some(9.0));
    }

    #[test]
    fn small_alpha_is_sluggish() {
        let mut slow = Ewma::new(0.1);
        let mut fast = Ewma::new(0.9);
        slow.push(0.0);
        fast.push(0.0);
        slow.push(100.0);
        fast.push(100.0);
        assert!(slow.value().unwrap() < fast.value().unwrap());
        assert_eq!(slow.value(), Some(10.0));
        assert_eq!(fast.value(), Some(90.0));
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.5);
        for _ in 0..64 {
            e.push(42.0);
        }
        assert!((e.value().unwrap() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let mut e = Ewma::new(0.5);
        e.push(1.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.push(3.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn zero_alpha_rejected() {
        let _ = Ewma::new(0.0);
    }
}
