//! RCA-ETX and ROBC — the paper's core contribution.
//!
//! This crate implements *Real-Time Contact-Aware Expected Transmission
//! Count* (RCA-ETX) and *Real-Time Opportunistic Backpressure Collection*
//! (ROBC) exactly as specified in §IV–§V of the paper:
//!
//! * [`Ewma`] — the exponentially weighted moving average of Eq. 4.
//! * [`ContactTracker`] — per-device bookkeeping of gateway contacts,
//!   yielding the real-time packet service time (RPST) of Eq. 3.
//! * [`RcaEtxEstimator`] — combines the two into the node-to-sink metric
//!   `RCA-ETX_{x,S}(t) = E[µ′_{x,S}(t)]`.
//! * [`link_rca_etx`] — the device-to-device metric of Eq. 6 over the
//!   Eq. 5 RSSI→capacity map.
//! * [`greedy_forward_rule`] — the handover predicate of Eq. 1.
//! * [`Rgq`] — real-time gateway quality `φ = 1/RCA-ETX` with the
//!   stability bounds of §V.B.1.
//! * [`robc_weight`] / [`robc_transfer_amount`] — Eq. 10 and the partial
//!   transfer `δ = Qx − Qy·φx/φy`.
//! * [`DonorLedger`] — the §V.B.2 anti-loop rule.
//! * [`ForwardingPolicy`] — the open, object-safe forwarding-strategy
//!   layer every decision dispatches through, with the paper schemes as
//!   built-in policies and [`PolicySpec`] as their configuration-level
//!   handle.
//! * [`RoutingState`] + [`Scheme`] — one device's complete routing brain;
//!   `Scheme` is a thin constructor over the built-in policies.
//! * [`CaEtxEstimator`] — the prior-work CA-ETX comparator of §III.C,
//!   exposing the staleness problem RCA-ETX fixes.

#![deny(missing_docs)]

mod ca_etx;
mod contact;
mod ewma;
mod forwarding;
mod metric;
mod policy;
mod rgq;
mod robc;

pub use ca_etx::CaEtxEstimator;
pub use contact::{ContactTracker, RcaEtxEstimator};
pub use ewma::Ewma;
pub use forwarding::{Beacon, ForwardDecision, RoutingConfig, RoutingState, Scheme};
pub use metric::{greedy_forward_rule, link_rca_etx, packet_service_time, RCA_ETX_CEILING};
pub use policy::{
    CaEtxPolicy, ForwardingPolicy, NoRoutingPolicy, PolicyContext, PolicySpec, RcaEtxPolicy,
    RobcPolicy,
};
pub use rgq::Rgq;
pub use robc::{robc_transfer_amount, robc_weight, DonorLedger};
