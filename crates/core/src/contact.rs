//! Gateway-contact bookkeeping and the real-time PST of Eq. 3.

use mlora_simcore::SimTime;
use serde::{Deserialize, Serialize};

use crate::metric::{packet_service_time, RCA_ETX_CEILING};
use crate::Ewma;

/// Tracks a device's contacts with the gateway set `S` and computes the
/// real-time packet service time (RPST, Eq. 3):
///
/// ```text
/// µ′(t) = 1/c(t_last_slot) + t_Δ                     while in contact
/// µ′(t) = 1/c(ẗⁿ) + (t − ẗⁿ) + t_Δ                  while disconnected
/// ```
///
/// where `ẗⁿ` is the end of the last contact, `c(·)` the capacity
/// observed at the most recent *successful* slot, and `t_Δ` the wait
/// until the device may next transmit. The paper replaces the
/// non-causal "time until next contact" of Eq. 2 with the observable
/// "time since last contact" — the estimator is deliberately
/// backward-looking.
///
/// # Example
///
/// ```
/// use mlora_core::ContactTracker;
/// use mlora_simcore::SimTime;
///
/// let mut ct = ContactTracker::new();
/// ct.record_success(SimTime::from_secs(100), 2_000.0);
/// // In contact: service time is just the transmission time (+ wait).
/// let connected = ct.rpst(SimTime::from_secs(100), 0.0, 2_000.0);
/// assert_eq!(connected, 1.0);
/// ct.record_failure(SimTime::from_secs(280));
/// // Disconnected: the elapsed gap is added.
/// let gap = ct.rpst(SimTime::from_secs(400), 0.0, 2_000.0);
/// assert_eq!(gap, 1.0 + 300.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ContactTracker {
    /// End time and capacity (bit/s) of the most recent successful slot.
    last_success: Option<(SimTime, f64)>,
    /// Whether the most recent slot succeeded (device "in contact").
    in_contact: bool,
    successes: u64,
    failures: u64,
}

impl ContactTracker {
    /// Creates a tracker that has never seen a gateway.
    pub fn new() -> Self {
        ContactTracker::default()
    }

    /// Records a successful device-to-sink slot at `t` with the observed
    /// link capacity.
    pub fn record_success(&mut self, t: SimTime, capacity_bps: f64) {
        self.last_success = Some((t, capacity_bps.max(0.0)));
        self.in_contact = true;
        self.successes += 1;
    }

    /// Records a failed device-to-sink slot at `t`; the device leaves
    /// contact (the `n`-th contact window closed at the last success).
    pub fn record_failure(&mut self, _t: SimTime) {
        self.in_contact = false;
        self.failures += 1;
    }

    /// True if the last slot reached a gateway.
    pub fn in_contact(&self) -> bool {
        self.in_contact
    }

    /// End time of the last successful slot, if any.
    pub fn last_success_time(&self) -> Option<SimTime> {
        self.last_success.map(|(t, _)| t)
    }

    /// Successful slots seen.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Failed slots seen.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// The tracker's raw state `(last_success, in_contact, successes,
    /// failures)` — the checkpoint counterpart of
    /// [`ContactTracker::from_raw_parts`]. Unlike the individual
    /// accessors this exposes the capacity observed at the last
    /// successful slot, which the RPST of Eq. 3 depends on.
    pub fn raw_parts(&self) -> (Option<(SimTime, f64)>, bool, u64, u64) {
        (
            self.last_success,
            self.in_contact,
            self.successes,
            self.failures,
        )
    }

    /// Rebuilds a tracker from state captured by
    /// [`ContactTracker::raw_parts`].
    pub fn from_raw_parts(
        last_success: Option<(SimTime, f64)>,
        in_contact: bool,
        successes: u64,
        failures: u64,
    ) -> Self {
        ContactTracker {
            last_success,
            in_contact,
            successes,
            failures,
        }
    }

    /// The real-time packet service time µ′(t) of Eq. 3, in seconds.
    ///
    /// `wait_s` is `t_Δ`, the time before the device may next transmit
    /// (duty-cycle gate); `packet_bits` scales the `1/c` transmission
    /// term to a full frame. A device that has never reached any gateway
    /// reports [`RCA_ETX_CEILING`].
    pub fn rpst(&self, now: SimTime, wait_s: f64, packet_bits: f64) -> f64 {
        let Some((t_last, cap)) = self.last_success else {
            return RCA_ETX_CEILING;
        };
        let tx_time = packet_service_time(cap, packet_bits);
        let value = if self.in_contact {
            tx_time + wait_s
        } else {
            tx_time + now.saturating_since(t_last).as_secs_f64() + wait_s
        };
        value.min(RCA_ETX_CEILING)
    }
}

/// The complete node-to-sink metric: RPST observations smoothed by the
/// Eq. 4 EWMA, i.e. `RCA-ETX_{x,S}(t) = E[µ′_{x,S}(t)]`.
///
/// Call [`RcaEtxEstimator::observe`] at every device-to-sink slot
/// (§IV.B: "computed at the beginning of every time slot reserved for
/// its device-to-sink communication") and read
/// [`RcaEtxEstimator::rca_etx`] whenever a forwarding decision is made.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RcaEtxEstimator {
    tracker: ContactTracker,
    ewma: Ewma,
    packet_bits: f64,
}

impl RcaEtxEstimator {
    /// Creates an estimator with EWMA factor `alpha` (paper default 0.5)
    /// for frames of `packet_bits`.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` is in `(0, 1]` or if `packet_bits` is not
    /// strictly positive.
    pub fn new(alpha: f64, packet_bits: f64) -> Self {
        assert!(packet_bits > 0.0, "packet size must be positive");
        RcaEtxEstimator {
            tracker: ContactTracker::new(),
            ewma: Ewma::new(alpha),
            packet_bits,
        }
    }

    /// Records the outcome of a device-to-sink slot at `t` and folds the
    /// resulting RPST into the EWMA. `capacity_bps` is `Some` with the
    /// observed capacity on success, `None` on failure. `wait_s` is the
    /// duty-cycle wait the device would face for an immediate retry.
    pub fn observe(&mut self, t: SimTime, capacity_bps: Option<f64>, wait_s: f64) -> f64 {
        match capacity_bps {
            Some(c) => self.tracker.record_success(t, c),
            None => self.tracker.record_failure(t),
        }
        let rpst = self.tracker.rpst(t, wait_s, self.packet_bits);
        self.ewma.push(rpst)
    }

    /// The current `RCA-ETX_{x,S}`, in seconds. Devices with no
    /// observations yet report [`RCA_ETX_CEILING`].
    pub fn rca_etx(&self) -> f64 {
        self.ewma.value().unwrap_or(RCA_ETX_CEILING)
    }

    /// The metric *previewed at `now`*: the Eq. 4 update evaluated against
    /// the instantaneous RPST without committing it to the EWMA.
    ///
    /// Forwarding decisions happen between slots (Eq. 1 compares
    /// `RCA-ETX_{x,S}(t)` at overhear time `t`), when a disconnection gap
    /// may have grown well past the last slot's estimate; previewing keeps
    /// the decision real-time while leaving slot bookkeeping untouched.
    pub fn rca_etx_at(&self, now: SimTime, wait_s: f64) -> f64 {
        let rpst = self.tracker.rpst(now, wait_s, self.packet_bits);
        match self.ewma.value() {
            None => rpst,
            Some(prev) => (1.0 - self.ewma.alpha()) * prev + self.ewma.alpha() * rpst,
        }
    }

    /// The instantaneous (un-smoothed) RPST at `now`.
    pub fn rpst_now(&self, now: SimTime, wait_s: f64) -> f64 {
        self.tracker.rpst(now, wait_s, self.packet_bits)
    }

    /// The underlying contact tracker.
    pub fn tracker(&self) -> &ContactTracker {
        &self.tracker
    }

    /// The EWMA smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.ewma.alpha()
    }

    /// The estimator's raw state `(tracker, ewma, packet_bits)` — the
    /// checkpoint counterpart of [`RcaEtxEstimator::from_raw_parts`].
    pub fn raw_parts(&self) -> (ContactTracker, Ewma, f64) {
        (self.tracker, self.ewma, self.packet_bits)
    }

    /// Rebuilds an estimator from state captured by
    /// [`RcaEtxEstimator::raw_parts`].
    ///
    /// # Panics
    ///
    /// Panics if `packet_bits` is not strictly positive.
    pub fn from_raw_parts(tracker: ContactTracker, ewma: Ewma, packet_bits: f64) -> Self {
        assert!(packet_bits > 0.0, "packet size must be positive");
        RcaEtxEstimator {
            tracker,
            ewma,
            packet_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BITS: f64 = 2_000.0;

    #[test]
    fn never_contacted_is_ceiling() {
        let ct = ContactTracker::new();
        assert_eq!(ct.rpst(SimTime::from_secs(999), 0.0, BITS), RCA_ETX_CEILING);
    }

    #[test]
    fn in_contact_uses_tx_time_plus_wait() {
        let mut ct = ContactTracker::new();
        ct.record_success(SimTime::from_secs(10), 1_000.0);
        assert_eq!(ct.rpst(SimTime::from_secs(10), 3.0, BITS), 2.0 + 3.0);
    }

    #[test]
    fn disconnected_adds_elapsed_gap() {
        let mut ct = ContactTracker::new();
        ct.record_success(SimTime::from_secs(10), 1_000.0);
        ct.record_failure(SimTime::from_secs(100));
        // Gap measured from the last success, not the failure.
        assert_eq!(ct.rpst(SimTime::from_secs(110), 0.0, BITS), 2.0 + 100.0);
    }

    #[test]
    fn regaining_contact_resets_gap() {
        let mut ct = ContactTracker::new();
        ct.record_success(SimTime::from_secs(10), 1_000.0);
        ct.record_failure(SimTime::from_secs(100));
        ct.record_success(SimTime::from_secs(200), 2_000.0);
        assert_eq!(ct.rpst(SimTime::from_secs(200), 0.0, BITS), 1.0);
        assert!(ct.in_contact());
        assert_eq!(ct.successes(), 2);
        assert_eq!(ct.failures(), 1);
    }

    #[test]
    fn rpst_capped_at_ceiling() {
        let mut ct = ContactTracker::new();
        ct.record_success(SimTime::ZERO, 1_000.0);
        ct.record_failure(SimTime::from_secs(1));
        let far_future = SimTime::from_secs(2_000_000_000);
        assert_eq!(ct.rpst(far_future, 0.0, BITS), RCA_ETX_CEILING);
    }

    #[test]
    fn estimator_smooths_with_alpha() {
        let mut est = RcaEtxEstimator::new(0.5, BITS);
        est.observe(SimTime::from_secs(0), Some(1_000.0), 0.0); // RPST 2
        assert_eq!(est.rca_etx(), 2.0);
        est.observe(SimTime::from_secs(180), None, 0.0); // RPST 2 + 180
        assert_eq!(est.rca_etx(), 0.5 * 2.0 + 0.5 * 182.0);
    }

    #[test]
    fn estimator_unobserved_reports_ceiling() {
        let est = RcaEtxEstimator::new(0.5, BITS);
        assert_eq!(est.rca_etx(), RCA_ETX_CEILING);
    }

    #[test]
    fn good_contact_beats_bad_contact() {
        let mut good = RcaEtxEstimator::new(0.5, BITS);
        let mut bad = RcaEtxEstimator::new(0.5, BITS);
        for i in 0..10u64 {
            let t = SimTime::from_secs(i * 180);
            good.observe(t, Some(4_000.0), 0.0);
            bad.observe(t, if i % 4 == 0 { Some(4_000.0) } else { None }, 0.0);
        }
        assert!(good.rca_etx() < bad.rca_etx());
    }
}
