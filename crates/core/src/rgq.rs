//! Real-time gateway quality (RGQ, §V.B.1).

use serde::{Deserialize, Serialize};

/// Real-time gateway quality:
///
/// ```text
/// φx(t) = 1 / RCA-ETX_{x,S}(t),    0 < φ_min ≤ φx ≤ φ_max < ∞
/// ```
///
/// RGQ is the average rate at which a device drains data towards the
/// sinks; ROBC uses it to correct raw queue lengths into *expected
/// waiting times*. The bounds guarantee ROBC stability (§V.B.1, following
/// Yang et al.).
///
/// # Example
///
/// ```
/// use mlora_core::Rgq;
///
/// let rgq = Rgq::new(1e-5, 10.0);
/// assert_eq!(rgq.phi(0.5), 2.0);      // 1/0.5
/// assert_eq!(rgq.phi(0.01), 10.0);    // clamped to φ_max
/// assert_eq!(rgq.phi(1e9), 1e-5);     // clamped to φ_min
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rgq {
    phi_min: f64,
    phi_max: f64,
}

impl Rgq {
    /// Creates RGQ bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < phi_min <= phi_max < ∞`.
    pub fn new(phi_min: f64, phi_max: f64) -> Self {
        assert!(
            phi_min > 0.0 && phi_min <= phi_max && phi_max.is_finite(),
            "need 0 < φ_min ≤ φ_max < ∞, got [{phi_min}, {phi_max}]"
        );
        Rgq { phi_min, phi_max }
    }

    /// Defaults matched to the paper's scales: `φ_min` corresponds to one
    /// packet per [`crate::RCA_ETX_CEILING`] (a device that has never met
    /// a gateway) and `φ_max` to the fastest service rate the 1 % duty
    /// cycle physically allows — one full SF7 bundle every ≈37 s
    /// (0.368 s time-on-air × 100). Keeping `φ_max` at the physical
    /// ceiling also keeps Eq. 11's window fraction meaningful: a γ
    /// computed against an unreachable rate would clamp to 1 for every
    /// backlogged device.
    pub fn paper_default() -> Self {
        Rgq::new(1.0 / crate::RCA_ETX_CEILING, 1.0 / 37.0)
    }

    /// Lower bound `φ_min`.
    pub fn phi_min(&self) -> f64 {
        self.phi_min
    }

    /// Upper bound `φ_max`.
    pub fn phi_max(&self) -> f64 {
        self.phi_max
    }

    /// The bounded gateway quality for a node-to-sink RCA-ETX value.
    ///
    /// Non-positive or non-finite metrics clamp to `φ_max` / `φ_min`
    /// respectively rather than panicking: they arise transiently from
    /// ceiling-capped metrics.
    pub fn phi(&self, rca_etx_s: f64) -> f64 {
        if !rca_etx_s.is_finite() || rca_etx_s <= 0.0 {
            return if rca_etx_s <= 0.0 {
                self.phi_max
            } else {
                self.phi_min
            };
        }
        (1.0 / rca_etx_s).clamp(self.phi_min, self.phi_max)
    }
}

impl Default for Rgq {
    fn default() -> Self {
        Rgq::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocal_inside_bounds() {
        let rgq = Rgq::new(0.001, 100.0);
        assert_eq!(rgq.phi(2.0), 0.5);
        assert_eq!(rgq.phi(0.1), 10.0);
    }

    #[test]
    fn clamps_at_bounds() {
        let rgq = Rgq::new(0.01, 1.0);
        assert_eq!(rgq.phi(0.001), 1.0);
        assert_eq!(rgq.phi(1e6), 0.01);
    }

    #[test]
    fn pathological_inputs_stay_bounded() {
        let rgq = Rgq::paper_default();
        for x in [0.0, -1.0, f64::INFINITY, f64::NAN] {
            let phi = rgq.phi(x);
            assert!(
                phi >= rgq.phi_min() && phi <= rgq.phi_max(),
                "phi({x}) = {phi} out of bounds"
            );
        }
    }

    #[test]
    fn monotone_nonincreasing_in_metric() {
        let rgq = Rgq::paper_default();
        let mut last = f64::INFINITY;
        for rca in [0.1, 1.0, 10.0, 1e3, 1e5, 1e7] {
            let phi = rgq.phi(rca);
            assert!(phi <= last);
            last = phi;
        }
    }

    #[test]
    #[should_panic(expected = "φ_min")]
    fn inverted_bounds_rejected() {
        let _ = Rgq::new(2.0, 1.0);
    }
}
