//! Per-device routing state and the three forwarding schemes (§VII.A.7).

use mlora_phy::CapacityModel;
use mlora_simcore::{NodeId, SimTime};
use serde::{Deserialize, Serialize};

use crate::{greedy_forward_rule, link_rca_etx, CaEtxEstimator, DonorLedger, RcaEtxEstimator, Rgq};

/// The three data-forwarding schemes the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Plain LoRaWAN with the application-layer queue but no
    /// device-to-device forwarding — the paper's baseline.
    NoRouting,
    /// Greedy handover by the Eq. 1 RCA-ETX comparison (§IV).
    RcaEtx,
    /// Real-time opportunistic backpressure collection (§V).
    Robc,
    /// The prior-work CA-ETX comparator (§III.C): the same greedy rule as
    /// [`Scheme::RcaEtx`] but driven by long-term contact statistics that
    /// cannot react to the current disconnection gap.
    CaEtx,
}

impl Scheme {
    /// The paper's three evaluated schemes, in figure order.
    pub const ALL: [Scheme; 3] = [Scheme::NoRouting, Scheme::RcaEtx, Scheme::Robc];

    /// The evaluated schemes plus the CA-ETX comparator, for the
    /// staleness ablation.
    pub const WITH_CA_ETX: [Scheme; 4] = [
        Scheme::NoRouting,
        Scheme::CaEtx,
        Scheme::RcaEtx,
        Scheme::Robc,
    ];

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::NoRouting => "LoRaWAN",
            Scheme::RcaEtx => "RCA-ETX",
            Scheme::Robc => "ROBC",
            Scheme::CaEtx => "CA-ETX",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The routing metadata a device piggybacks on every uplink and that
/// neighbours overhear (§IV.A, §V.B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Beacon {
    /// The broadcasting device.
    pub sender: NodeId,
    /// Sender's node-to-sink RCA-ETX, seconds.
    pub rca_etx: f64,
    /// Sender's queue length, messages.
    pub queue_len: usize,
}

/// What a device does with its queue after overhearing a beacon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForwardDecision {
    /// Hold the data until the next own opportunity.
    Keep,
    /// Hand over `count` messages to `target`.
    Forward {
        /// The opportunistic next hop.
        target: NodeId,
        /// Messages to transfer (bounded by the frame bundle limit).
        count: usize,
    },
}

/// Static configuration shared by every device's [`RoutingState`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// Active scheme.
    pub scheme: Scheme,
    /// EWMA smoothing factor α of Eq. 4 (paper evaluation: 0.5).
    pub alpha: f64,
    /// Frame size used to convert capacities into packet service times,
    /// bits.
    pub packet_bits: f64,
    /// RGQ stability bounds.
    pub rgq: Rgq,
    /// The Eq. 5 RSSI→capacity map.
    pub capacity: CapacityModel,
    /// Most messages movable in one handover frame.
    pub max_bundle: usize,
}

impl RoutingConfig {
    /// The paper's evaluation setting for a given scheme: α = 0.5,
    /// 255-byte frames, default RGQ bounds and capacity map, 12-message
    /// bundles.
    pub fn paper_default(scheme: Scheme) -> Self {
        RoutingConfig {
            scheme,
            alpha: 0.5,
            packet_bits: 255.0 * 8.0,
            rgq: Rgq::paper_default(),
            capacity: CapacityModel::paper_default(),
            max_bundle: mlora_mac::MAX_BUNDLE,
        }
    }
}

/// One device's complete routing brain: the RCA-ETX estimator, the RGQ
/// bounds, and the ROBC donor ledger, dispatching on the configured
/// [`Scheme`].
///
/// The embedding simulator calls:
///
/// * [`RoutingState::on_sink_slot`] after every device-to-sink uplink
///   attempt (success or failure) — updates the metric and clears the
///   anti-loop ledger (a sink-forwarding opportunity occurred);
/// * [`RoutingState::on_received_data`] when accepting a handover;
/// * [`RoutingState::decide`] when overhearing a neighbour's beacon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingState {
    config: RoutingConfig,
    estimator: RcaEtxEstimator,
    ca_estimator: CaEtxEstimator,
    ledger: DonorLedger,
}

impl RoutingState {
    /// Creates the routing state for one device.
    pub fn new(config: RoutingConfig) -> Self {
        RoutingState {
            estimator: RcaEtxEstimator::new(config.alpha, config.packet_bits),
            ca_estimator: CaEtxEstimator::new(config.packet_bits),
            ledger: DonorLedger::new(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// Records the outcome of a device-to-sink slot: `capacity_bps` is
    /// `Some` with the observed capacity when a gateway acknowledged,
    /// `None` otherwise. `wait_s` is the duty-cycle wait an immediate
    /// retry would face. Clears the donor ledger — this slot *was* the
    /// next sink-forwarding opportunity.
    pub fn on_sink_slot(&mut self, t: SimTime, capacity_bps: Option<f64>, wait_s: f64) {
        self.estimator.observe(t, capacity_bps, wait_s);
        self.ca_estimator.observe(t, capacity_bps);
        self.ledger.clear_on_sink_opportunity();
    }

    /// Records acceptance of a handover from `donor` (anti-loop rule).
    pub fn on_received_data(&mut self, donor: NodeId) {
        self.ledger.record_donor(donor);
    }

    /// The device's current node-to-sink RCA-ETX, seconds.
    pub fn rca_etx(&self) -> f64 {
        self.estimator.rca_etx()
    }

    /// The device's CA-ETX comparator value (§III.C), seconds.
    pub fn ca_etx(&self) -> f64 {
        self.ca_estimator.ca_etx()
    }

    /// The metric this device piggybacks on its uplinks: CA-ETX under
    /// [`Scheme::CaEtx`], RCA-ETX otherwise.
    pub fn beacon_metric(&self) -> f64 {
        match self.config.scheme {
            Scheme::CaEtx => self.ca_etx(),
            _ => self.rca_etx(),
        }
    }

    /// The node-to-sink metric previewed at `now`
    /// (see [`RcaEtxEstimator::rca_etx_at`]): Eq. 1 and Eq. 10 are
    /// evaluated against real time, so a disconnection gap that has grown
    /// since the last slot raises the device's own cost.
    pub fn rca_etx_at(&self, now: SimTime, wait_s: f64) -> f64 {
        self.estimator.rca_etx_at(now, wait_s)
    }

    /// The bounded gateway quality φ previewed at `now`.
    pub fn phi_at(&self, now: SimTime, wait_s: f64) -> f64 {
        self.config.rgq.phi(self.rca_etx_at(now, wait_s))
    }

    /// The device's bounded gateway quality φ.
    pub fn phi(&self) -> f64 {
        self.config.rgq.phi(self.rca_etx())
    }

    /// The Eq. 11 receive-window fraction for Queue-based Class-A.
    pub fn gamma(&self, queue_len: usize, queue_max: usize) -> f64 {
        mlora_mac::queue_based_window_fraction(
            self.phi(),
            self.config.rgq.phi_max(),
            queue_len,
            queue_max,
        )
    }

    /// True if the anti-loop ledger currently bars `node` as a target.
    pub fn is_barred(&self, node: NodeId) -> bool {
        self.ledger.is_barred(node)
    }

    /// Decides whether to hand queued data to the beacon's sender.
    ///
    /// `now` and `wait_s` (the duty-cycle wait an immediate transmission
    /// would face) feed the real-time metric preview; `queue_len` is the
    /// device's current backlog and `rssi_dbm` the received strength of
    /// the overheard frame (driving the Eq. 5–6 link metric).
    pub fn decide(
        &self,
        now: SimTime,
        wait_s: f64,
        queue_len: usize,
        beacon: &Beacon,
        rssi_dbm: f64,
    ) -> ForwardDecision {
        if queue_len == 0 {
            return ForwardDecision::Keep;
        }
        match self.config.scheme {
            Scheme::NoRouting => ForwardDecision::Keep,
            Scheme::CaEtx => {
                let link = link_rca_etx(rssi_dbm, &self.config.capacity, self.config.packet_bits);
                // Long-term statistics only: no real-time preview.
                if greedy_forward_rule(self.ca_etx(), beacon.rca_etx, link) {
                    ForwardDecision::Forward {
                        target: beacon.sender,
                        count: queue_len.min(self.config.max_bundle),
                    }
                } else {
                    ForwardDecision::Keep
                }
            }
            Scheme::RcaEtx => {
                let link = link_rca_etx(rssi_dbm, &self.config.capacity, self.config.packet_bits);
                if greedy_forward_rule(self.rca_etx_at(now, wait_s), beacon.rca_etx, link) {
                    ForwardDecision::Forward {
                        target: beacon.sender,
                        count: queue_len.min(self.config.max_bundle),
                    }
                } else {
                    ForwardDecision::Keep
                }
            }
            Scheme::Robc => {
                if self.ledger.is_barred(beacon.sender) {
                    return ForwardDecision::Keep;
                }
                let phi_x = self.phi_at(now, wait_s);
                let phi_y = self.config.rgq.phi(beacon.rca_etx);
                let weight = crate::robc_weight(queue_len, phi_x, beacon.queue_len, phi_y);
                if weight <= 0.0 {
                    return ForwardDecision::Keep;
                }
                let delta = crate::robc_transfer_amount(queue_len, phi_x, beacon.queue_len, phi_y);
                let count = delta.min(self.config.max_bundle);
                if count == 0 {
                    ForwardDecision::Keep
                } else {
                    ForwardDecision::Forward {
                        target: beacon.sender,
                        count,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(scheme: Scheme) -> RoutingState {
        RoutingState::new(RoutingConfig::paper_default(scheme))
    }

    /// Gives `s` a contact history: `good` devices reach the gateway every
    /// slot, others only once at t=0 then decay.
    fn warm_up(s: &mut RoutingState, good: bool) {
        for i in 0..8u64 {
            let t = SimTime::from_secs(i * 180);
            let cap = if good || i == 0 { Some(4_000.0) } else { None };
            s.on_sink_slot(t, cap, 0.0);
        }
    }

    #[test]
    fn no_routing_always_keeps() {
        let mut s = state(Scheme::NoRouting);
        warm_up(&mut s, false);
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 0.001,
            queue_len: 0,
        };
        assert_eq!(
            s.decide(SimTime::from_secs(1260), 0.0, 10, &beacon, -80.0),
            ForwardDecision::Keep
        );
    }

    #[test]
    fn rca_etx_forwards_to_better_neighbour() {
        let mut s = state(Scheme::RcaEtx);
        warm_up(&mut s, false); // poorly connected
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 1.0, // well connected neighbour
            queue_len: 3,
        };
        match s.decide(SimTime::from_secs(1260), 0.0, 5, &beacon, -85.0) {
            ForwardDecision::Forward { target, count } => {
                assert_eq!(target, NodeId::new(2));
                assert_eq!(count, 5);
            }
            other => panic!("expected Forward, got {other:?}"),
        }
    }

    #[test]
    fn rca_etx_keeps_when_neighbour_worse() {
        let mut s = state(Scheme::RcaEtx);
        warm_up(&mut s, true); // well connected
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 5_000.0, // poorly connected neighbour
            queue_len: 3,
        };
        assert_eq!(
            s.decide(SimTime::from_secs(1260), 0.0, 5, &beacon, -85.0),
            ForwardDecision::Keep
        );
    }

    #[test]
    fn rca_etx_keeps_on_dead_link() {
        let mut s = state(Scheme::RcaEtx);
        warm_up(&mut s, false);
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 1.0,
            queue_len: 0,
        };
        // RSSI below γ_min: the link metric hits the ceiling.
        assert_eq!(
            s.decide(SimTime::from_secs(1260), 0.0, 5, &beacon, -140.0),
            ForwardDecision::Keep
        );
    }

    #[test]
    fn empty_queue_never_forwards() {
        let mut s = state(Scheme::Robc);
        warm_up(&mut s, false);
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 0.5,
            queue_len: 0,
        };
        assert_eq!(
            s.decide(SimTime::from_secs(1260), 0.0, 0, &beacon, -70.0),
            ForwardDecision::Keep
        );
    }

    #[test]
    fn robc_forwards_down_pressure_gradient() {
        let mut s = state(Scheme::Robc);
        warm_up(&mut s, false); // poorly connected, so low φ
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 1.0, // φy near max
            queue_len: 0,
        };
        match s.decide(SimTime::from_secs(1260), 0.0, 10, &beacon, -85.0) {
            ForwardDecision::Forward { count, .. } => {
                assert!(count > 0 && count <= mlora_mac::MAX_BUNDLE);
            }
            other => panic!("expected Forward, got {other:?}"),
        }
    }

    #[test]
    fn robc_respects_reverse_pressure() {
        let mut s = state(Scheme::Robc);
        warm_up(&mut s, true); // well connected
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 5_000.0, // poorly connected, heavy queue
            queue_len: 50,
        };
        assert_eq!(
            s.decide(SimTime::from_secs(1260), 0.0, 2, &beacon, -85.0),
            ForwardDecision::Keep
        );
    }

    #[test]
    fn robc_anti_loop_bars_donor_until_sink_slot() {
        let mut s = state(Scheme::Robc);
        warm_up(&mut s, false);
        s.on_received_data(NodeId::new(2));
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 0.5,
            queue_len: 0,
        };
        assert_eq!(
            s.decide(SimTime::from_secs(1260), 0.0, 10, &beacon, -85.0),
            ForwardDecision::Keep
        );
        // The next sink slot clears the bar.
        s.on_sink_slot(SimTime::from_secs(10_000), None, 0.0);
        assert!(matches!(
            s.decide(SimTime::from_secs(1260), 0.0, 10, &beacon, -85.0),
            ForwardDecision::Forward { .. }
        ));
    }

    #[test]
    fn gamma_uses_eq11() {
        let mut s = state(Scheme::Robc);
        warm_up(&mut s, true);
        let g_empty = s.gamma(0, 100);
        let g_half = s.gamma(50, 100);
        let g_full = s.gamma(100, 100);
        assert_eq!(g_empty, 0.0);
        assert!(g_half > 0.0 && g_half <= 1.0);
        assert!(g_full >= g_half);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::NoRouting.label(), "LoRaWAN");
        assert_eq!(Scheme::RcaEtx.to_string(), "RCA-ETX");
        assert_eq!(Scheme::ALL.len(), 3);
    }
}
