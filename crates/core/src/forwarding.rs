//! Per-device routing state and the three forwarding schemes (§VII.A.7).

use mlora_phy::CapacityModel;
use mlora_simcore::{NodeId, SimTime};
use serde::{Deserialize, Serialize};

use crate::{CaEtxEstimator, DonorLedger, ForwardingPolicy, PolicyContext, RcaEtxEstimator, Rgq};

/// The three data-forwarding schemes the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Plain LoRaWAN with the application-layer queue but no
    /// device-to-device forwarding — the paper's baseline.
    NoRouting,
    /// Greedy handover by the Eq. 1 RCA-ETX comparison (§IV).
    RcaEtx,
    /// Real-time opportunistic backpressure collection (§V).
    Robc,
    /// The prior-work CA-ETX comparator (§III.C): the same greedy rule as
    /// [`Scheme::RcaEtx`] but driven by long-term contact statistics that
    /// cannot react to the current disconnection gap.
    CaEtx,
}

impl Scheme {
    /// The paper's three evaluated schemes, in figure order.
    pub const ALL: [Scheme; 3] = [Scheme::NoRouting, Scheme::RcaEtx, Scheme::Robc];

    /// The evaluated schemes plus the CA-ETX comparator, for the
    /// staleness ablation.
    pub const WITH_CA_ETX: [Scheme; 4] = [
        Scheme::NoRouting,
        Scheme::CaEtx,
        Scheme::RcaEtx,
        Scheme::Robc,
    ];

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::NoRouting => "LoRaWAN",
            Scheme::RcaEtx => "RCA-ETX",
            Scheme::Robc => "ROBC",
            Scheme::CaEtx => "CA-ETX",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The routing metadata a device piggybacks on every uplink and that
/// neighbours overhear (§IV.A, §V.B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Beacon {
    /// The broadcasting device.
    pub sender: NodeId,
    /// Sender's node-to-sink RCA-ETX, seconds.
    pub rca_etx: f64,
    /// Sender's queue length, messages.
    pub queue_len: usize,
}

/// What a device does with its queue after overhearing a beacon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForwardDecision {
    /// Hold the data until the next own opportunity.
    Keep,
    /// Hand over `count` messages to `target`.
    Forward {
        /// The opportunistic next hop.
        target: NodeId,
        /// Messages to transfer (bounded by the frame bundle limit).
        count: usize,
    },
}

/// Static configuration shared by every device's [`RoutingState`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// Active scheme.
    pub scheme: Scheme,
    /// EWMA smoothing factor α of Eq. 4 (paper evaluation: 0.5).
    pub alpha: f64,
    /// Frame size used to convert capacities into packet service times,
    /// bits.
    pub packet_bits: f64,
    /// RGQ stability bounds.
    pub rgq: Rgq,
    /// The Eq. 5 RSSI→capacity map.
    pub capacity: CapacityModel,
    /// Most messages movable in one handover frame.
    pub max_bundle: usize,
}

impl RoutingConfig {
    /// The paper's evaluation setting for a given scheme: α = 0.5,
    /// 255-byte frames, default RGQ bounds and capacity map, 12-message
    /// bundles.
    pub fn paper_default(scheme: Scheme) -> Self {
        RoutingConfig {
            scheme,
            alpha: 0.5,
            packet_bits: 255.0 * 8.0,
            rgq: Rgq::paper_default(),
            capacity: CapacityModel::paper_default(),
            max_bundle: mlora_mac::MAX_BUNDLE,
        }
    }
}

/// One device's complete routing brain: the RCA-ETX estimator, the RGQ
/// bounds, the ROBC donor ledger, and the pluggable
/// [`ForwardingPolicy`] the decisions dispatch through.
///
/// [`RoutingState::new`] instantiates the built-in policy for the
/// configured [`Scheme`]; [`RoutingState::with_policy`] plugs in any
/// user-defined one. The shared machinery (estimators, ledger) is owned
/// here and updated on every hook *before* the policy sees it, so every
/// policy — built-in or custom — observes the same world.
///
/// The embedding simulator calls:
///
/// * [`RoutingState::on_sink_slot`] after every device-to-sink uplink
///   attempt (success or failure) — updates the metric and clears the
///   anti-loop ledger (a sink-forwarding opportunity occurred);
/// * [`RoutingState::on_received_data`] when accepting a handover;
/// * [`RoutingState::decide`] when overhearing a neighbour's beacon.
#[derive(Debug)]
pub struct RoutingState {
    config: RoutingConfig,
    estimator: RcaEtxEstimator,
    ca_estimator: CaEtxEstimator,
    ledger: DonorLedger,
    policy: Box<dyn ForwardingPolicy>,
}

impl Clone for RoutingState {
    fn clone(&self) -> Self {
        RoutingState {
            config: self.config,
            estimator: self.estimator,
            ca_estimator: self.ca_estimator,
            ledger: self.ledger.clone(),
            policy: self.policy.clone_box(),
        }
    }
}

impl RoutingState {
    /// Creates the routing state for one device running the built-in
    /// policy of `config.scheme`.
    pub fn new(config: RoutingConfig) -> Self {
        let policy = config.scheme.policy();
        RoutingState::with_policy(config, policy)
    }

    /// Creates the routing state for one device running an explicit
    /// policy under `config`.
    pub fn with_policy(config: RoutingConfig, policy: Box<dyn ForwardingPolicy>) -> Self {
        RoutingState {
            estimator: RcaEtxEstimator::new(config.alpha, config.packet_bits),
            ca_estimator: CaEtxEstimator::new(config.packet_bits),
            ledger: DonorLedger::new(),
            policy,
            config,
        }
    }

    /// Creates the routing state for one device running `policy` under
    /// the policy's own
    /// [`default_config`](ForwardingPolicy::default_config).
    pub fn for_policy(policy: Box<dyn ForwardingPolicy>) -> Self {
        let config = policy.default_config();
        RoutingState::with_policy(config, policy)
    }

    /// The configuration.
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// The active forwarding policy.
    pub fn policy(&self) -> &dyn ForwardingPolicy {
        self.policy.as_ref()
    }

    /// The routing brain's raw state `(estimator, ca_estimator, ledger)`
    /// — the checkpoint counterpart of [`RoutingState::from_raw_parts`].
    /// The config and policy are not included: built-in policies are
    /// stateless values reconstructible from the scheme, so a checkpoint
    /// stores only the scenario configuration they derive from.
    pub fn raw_parts(&self) -> (RcaEtxEstimator, CaEtxEstimator, DonorLedger) {
        (self.estimator, self.ca_estimator, self.ledger.clone())
    }

    /// Rebuilds a routing state running `policy` under `config`, with
    /// the estimator/ledger state captured by
    /// [`RoutingState::raw_parts`].
    pub fn from_raw_parts(
        config: RoutingConfig,
        policy: Box<dyn ForwardingPolicy>,
        estimator: RcaEtxEstimator,
        ca_estimator: CaEtxEstimator,
        ledger: DonorLedger,
    ) -> Self {
        RoutingState {
            config,
            estimator,
            ca_estimator,
            ledger,
            policy,
        }
    }

    /// The context view policies receive, for the given hook inputs.
    fn ctx(&self, now: SimTime, wait_s: f64, queue_len: usize) -> PolicyContext<'_> {
        PolicyContext::new(
            now,
            wait_s,
            queue_len,
            &self.config,
            &self.estimator,
            &self.ca_estimator,
            &self.ledger,
        )
    }

    /// Records the outcome of a device-to-sink slot: `capacity_bps` is
    /// `Some` with the observed capacity when a gateway acknowledged,
    /// `None` otherwise. `wait_s` is the duty-cycle wait an immediate
    /// retry would face. Clears the donor ledger — this slot *was* the
    /// next sink-forwarding opportunity — then forwards the observation
    /// to the policy's own hook.
    pub fn on_sink_slot(&mut self, t: SimTime, capacity_bps: Option<f64>, wait_s: f64) {
        self.estimator.observe(t, capacity_bps, wait_s);
        self.ca_estimator.observe(t, capacity_bps);
        self.ledger.clear_on_sink_opportunity();
        self.policy.on_sink_slot(t, capacity_bps, wait_s);
    }

    /// Records acceptance of a handover from `donor` (anti-loop rule),
    /// then forwards the event to the policy's own hook.
    pub fn on_received_data(&mut self, donor: NodeId) {
        self.ledger.record_donor(donor);
        self.policy.on_received_data(donor);
    }

    /// The device's current node-to-sink RCA-ETX, seconds.
    pub fn rca_etx(&self) -> f64 {
        self.estimator.rca_etx()
    }

    /// The device's CA-ETX comparator value (§III.C), seconds.
    pub fn ca_etx(&self) -> f64 {
        self.ca_estimator.ca_etx()
    }

    /// The metric this device piggybacks on its uplinks, as chosen by
    /// the policy's [`beacon_metric`](ForwardingPolicy::beacon_metric)
    /// hook: CA-ETX under [`Scheme::CaEtx`], RCA-ETX for the other
    /// built-ins.
    ///
    /// Beacons are composed at the device's own uplink slot — the
    /// committed metric, no real-time preview — so the hook context
    /// carries no meaningful `now`. Embedders with the current time at
    /// hand (the engine) call [`RoutingState::beacon_metric_at`].
    pub fn beacon_metric(&self) -> f64 {
        self.beacon_metric_at(SimTime::ZERO, 0)
    }

    /// The beacon metric with the full hook context: `now` is the
    /// composition time and `queue_len` the device's backlog, for
    /// policies whose beaconed metric is time- or queue-dependent.
    pub fn beacon_metric_at(&self, now: SimTime, queue_len: usize) -> f64 {
        self.policy.beacon_metric(&self.ctx(now, 0.0, queue_len))
    }

    /// The node-to-sink metric previewed at `now`
    /// (see [`RcaEtxEstimator::rca_etx_at`]): Eq. 1 and Eq. 10 are
    /// evaluated against real time, so a disconnection gap that has grown
    /// since the last slot raises the device's own cost.
    pub fn rca_etx_at(&self, now: SimTime, wait_s: f64) -> f64 {
        self.estimator.rca_etx_at(now, wait_s)
    }

    /// The bounded gateway quality φ previewed at `now`.
    pub fn phi_at(&self, now: SimTime, wait_s: f64) -> f64 {
        self.config.rgq.phi(self.rca_etx_at(now, wait_s))
    }

    /// The device's bounded gateway quality φ.
    pub fn phi(&self) -> f64 {
        self.config.rgq.phi(self.rca_etx())
    }

    /// The Eq. 11 receive-window fraction for Queue-based Class-A.
    pub fn gamma(&self, queue_len: usize, queue_max: usize) -> f64 {
        mlora_mac::queue_based_window_fraction(
            self.phi(),
            self.config.rgq.phi_max(),
            queue_len,
            queue_max,
        )
    }

    /// True if the anti-loop ledger currently bars `node` as a target.
    pub fn is_barred(&self, node: NodeId) -> bool {
        self.ledger.is_barred(node)
    }

    /// Decides whether to hand queued data to the beacon's sender, by
    /// dispatching to the policy's [`decide`](ForwardingPolicy::decide)
    /// hook.
    ///
    /// `now` and `wait_s` (the duty-cycle wait an immediate transmission
    /// would face) feed the real-time metric preview; `queue_len` is the
    /// device's current backlog and `rssi_dbm` the received strength of
    /// the overheard frame (driving the Eq. 5–6 link metric). Takes
    /// `&mut self` because policies may carry mutable per-device state
    /// (spray budgets, timers); the shared estimators and ledger are
    /// never mutated here.
    pub fn decide(
        &mut self,
        now: SimTime,
        wait_s: f64,
        queue_len: usize,
        beacon: &Beacon,
        rssi_dbm: f64,
    ) -> ForwardDecision {
        let RoutingState {
            config,
            estimator,
            ca_estimator,
            ledger,
            policy,
        } = self;
        let ctx = PolicyContext::new(
            now,
            wait_s,
            queue_len,
            config,
            estimator,
            ca_estimator,
            ledger,
        );
        policy.decide(&ctx, beacon, rssi_dbm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(scheme: Scheme) -> RoutingState {
        RoutingState::new(RoutingConfig::paper_default(scheme))
    }

    /// Gives `s` a contact history: `good` devices reach the gateway every
    /// slot, others only once at t=0 then decay.
    fn warm_up(s: &mut RoutingState, good: bool) {
        for i in 0..8u64 {
            let t = SimTime::from_secs(i * 180);
            let cap = if good || i == 0 { Some(4_000.0) } else { None };
            s.on_sink_slot(t, cap, 0.0);
        }
    }

    #[test]
    fn no_routing_always_keeps() {
        let mut s = state(Scheme::NoRouting);
        warm_up(&mut s, false);
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 0.001,
            queue_len: 0,
        };
        assert_eq!(
            s.decide(SimTime::from_secs(1260), 0.0, 10, &beacon, -80.0),
            ForwardDecision::Keep
        );
    }

    #[test]
    fn rca_etx_forwards_to_better_neighbour() {
        let mut s = state(Scheme::RcaEtx);
        warm_up(&mut s, false); // poorly connected
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 1.0, // well connected neighbour
            queue_len: 3,
        };
        match s.decide(SimTime::from_secs(1260), 0.0, 5, &beacon, -85.0) {
            ForwardDecision::Forward { target, count } => {
                assert_eq!(target, NodeId::new(2));
                assert_eq!(count, 5);
            }
            other => panic!("expected Forward, got {other:?}"),
        }
    }

    #[test]
    fn rca_etx_keeps_when_neighbour_worse() {
        let mut s = state(Scheme::RcaEtx);
        warm_up(&mut s, true); // well connected
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 5_000.0, // poorly connected neighbour
            queue_len: 3,
        };
        assert_eq!(
            s.decide(SimTime::from_secs(1260), 0.0, 5, &beacon, -85.0),
            ForwardDecision::Keep
        );
    }

    #[test]
    fn rca_etx_keeps_on_dead_link() {
        let mut s = state(Scheme::RcaEtx);
        warm_up(&mut s, false);
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 1.0,
            queue_len: 0,
        };
        // RSSI below γ_min: the link metric hits the ceiling.
        assert_eq!(
            s.decide(SimTime::from_secs(1260), 0.0, 5, &beacon, -140.0),
            ForwardDecision::Keep
        );
    }

    #[test]
    fn empty_queue_never_forwards() {
        let mut s = state(Scheme::Robc);
        warm_up(&mut s, false);
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 0.5,
            queue_len: 0,
        };
        assert_eq!(
            s.decide(SimTime::from_secs(1260), 0.0, 0, &beacon, -70.0),
            ForwardDecision::Keep
        );
    }

    #[test]
    fn robc_forwards_down_pressure_gradient() {
        let mut s = state(Scheme::Robc);
        warm_up(&mut s, false); // poorly connected, so low φ
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 1.0, // φy near max
            queue_len: 0,
        };
        match s.decide(SimTime::from_secs(1260), 0.0, 10, &beacon, -85.0) {
            ForwardDecision::Forward { count, .. } => {
                assert!(count > 0 && count <= mlora_mac::MAX_BUNDLE);
            }
            other => panic!("expected Forward, got {other:?}"),
        }
    }

    #[test]
    fn robc_respects_reverse_pressure() {
        let mut s = state(Scheme::Robc);
        warm_up(&mut s, true); // well connected
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 5_000.0, // poorly connected, heavy queue
            queue_len: 50,
        };
        assert_eq!(
            s.decide(SimTime::from_secs(1260), 0.0, 2, &beacon, -85.0),
            ForwardDecision::Keep
        );
    }

    #[test]
    fn robc_anti_loop_bars_donor_until_sink_slot() {
        let mut s = state(Scheme::Robc);
        warm_up(&mut s, false);
        s.on_received_data(NodeId::new(2));
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 0.5,
            queue_len: 0,
        };
        assert_eq!(
            s.decide(SimTime::from_secs(1260), 0.0, 10, &beacon, -85.0),
            ForwardDecision::Keep
        );
        // The next sink slot clears the bar.
        s.on_sink_slot(SimTime::from_secs(10_000), None, 0.0);
        assert!(matches!(
            s.decide(SimTime::from_secs(1260), 0.0, 10, &beacon, -85.0),
            ForwardDecision::Forward { .. }
        ));
    }

    #[test]
    fn gamma_uses_eq11() {
        let mut s = state(Scheme::Robc);
        warm_up(&mut s, true);
        let g_empty = s.gamma(0, 100);
        let g_half = s.gamma(50, 100);
        let g_full = s.gamma(100, 100);
        assert_eq!(g_empty, 0.0);
        assert!(g_half > 0.0 && g_half <= 1.0);
        assert!(g_full >= g_half);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::NoRouting.label(), "LoRaWAN");
        assert_eq!(Scheme::RcaEtx.to_string(), "RCA-ETX");
        assert_eq!(Scheme::ALL.len(), 3);
    }
}
