//! Packet service times and the RCA-ETX metrics (paper Eq. 2–6).

use mlora_phy::CapacityModel;

/// Upper bound applied to every RCA-ETX value, in seconds.
///
/// A device that has never reached a gateway would otherwise report an
/// unbounded metric; capping keeps the RGQ bounds of §V.B.1 meaningful
/// (`0 < φ_min ≤ φ ≤ φ_max < ∞`).
pub const RCA_ETX_CEILING: f64 = 1.0e6;

/// Time to push one packet of `packet_bits` through a link of
/// `capacity_bps` — the `1/c` term of Eq. 2–3 and Eq. 6, in seconds.
///
/// Returns [`RCA_ETX_CEILING`] for a dead link (`capacity_bps <= 0`).
pub fn packet_service_time(capacity_bps: f64, packet_bits: f64) -> f64 {
    if capacity_bps <= 0.0 {
        return RCA_ETX_CEILING;
    }
    (packet_bits / capacity_bps).min(RCA_ETX_CEILING)
}

/// The device-to-device metric `RCA-ETX_{x,y}(t) = 1/c_{x,y}(t)` (Eq. 6),
/// with the capacity derived from the overheard frame's RSSI through the
/// Eq. 5 map.
///
/// # Example
///
/// ```
/// use mlora_core::link_rca_etx;
/// use mlora_phy::CapacityModel;
///
/// let cap = CapacityModel::paper_default();
/// // A strong overhear is cheap, a marginal one expensive:
/// let strong = link_rca_etx(-85.0, &cap, 2048.0);
/// let weak = link_rca_etx(-120.0, &cap, 2048.0);
/// assert!(strong < weak);
/// ```
pub fn link_rca_etx(rssi_dbm: f64, capacity: &CapacityModel, packet_bits: f64) -> f64 {
    packet_service_time(capacity.capacity_bps(rssi_dbm), packet_bits)
}

/// The greedy handover predicate of Eq. 1: device `x` hands its queue to
/// `y` iff
///
/// ```text
/// RCA-ETX_{x,S}(t) > RCA-ETX_{y,S}(t) + RCA-ETX_{x,y}(t)
/// ```
///
/// i.e. relaying through `y` promises a strictly earlier gateway
/// delivery than waiting for `x`'s own next contact.
pub fn greedy_forward_rule(rca_x_sink: f64, rca_y_sink: f64, rca_link: f64) -> bool {
    rca_x_sink > rca_y_sink + rca_link
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlora_phy::CapacityModel;

    #[test]
    fn service_time_inverse_in_capacity() {
        assert_eq!(packet_service_time(1000.0, 2000.0), 2.0);
        assert_eq!(packet_service_time(2000.0, 2000.0), 1.0);
    }

    #[test]
    fn dead_link_hits_ceiling() {
        assert_eq!(packet_service_time(0.0, 100.0), RCA_ETX_CEILING);
        assert_eq!(packet_service_time(-5.0, 100.0), RCA_ETX_CEILING);
    }

    #[test]
    fn tiny_capacity_clamped_to_ceiling() {
        assert_eq!(packet_service_time(1e-9, 1e6), RCA_ETX_CEILING);
    }

    #[test]
    fn link_metric_monotone_in_rssi() {
        let cap = CapacityModel::paper_default();
        let bits = 255.0 * 8.0;
        let mut last = f64::INFINITY;
        for rssi in [-122.0, -110.0, -100.0, -90.0, -80.0] {
            let m = link_rca_etx(rssi, &cap, bits);
            assert!(m <= last, "metric rose at {rssi}");
            last = m;
        }
    }

    #[test]
    fn below_floor_link_is_ceiling() {
        let cap = CapacityModel::paper_default();
        assert_eq!(link_rca_etx(-140.0, &cap, 100.0), RCA_ETX_CEILING);
    }

    #[test]
    fn greedy_rule_strict_inequality() {
        assert!(greedy_forward_rule(10.0, 4.0, 5.0));
        assert!(!greedy_forward_rule(9.0, 4.0, 5.0)); // equal: keep
        assert!(!greedy_forward_rule(8.0, 4.0, 5.0));
    }

    #[test]
    fn greedy_rule_never_fires_towards_worse_node() {
        // y's own metric already exceeds x's: no link quality can help.
        assert!(!greedy_forward_rule(10.0, 11.0, 0.0));
    }
}
