//! The pluggable forwarding-policy layer.
//!
//! The paper evaluates a *family* of forwarding schemes under one
//! simulated world. [`ForwardingPolicy`] opens that family up: a policy
//! is an object-safe strategy plugged into a device's
//! [`RoutingState`](crate::RoutingState), deciding what metric the
//! device beacons, whether an overheard beacon triggers a handover, and
//! how much of the queue moves. The four paper schemes are built-in
//! policies ([`NoRoutingPolicy`], [`CaEtxPolicy`], [`RcaEtxPolicy`],
//! [`RobcPolicy`]); [`Scheme`] stays as a thin constructor over them via
//! [`Scheme::policy`]. User-defined policies (epidemic or
//! spray-and-wait-style DTN baselines, queue-aware hybrids, learned
//! heuristics) implement the same trait and ride the identical engine
//! path.
//!
//! The shared routing machinery — the RCA-ETX/CA-ETX estimators, the RGQ
//! bounds and the anti-loop [`DonorLedger`](crate::DonorLedger) — stays
//! owned by `RoutingState`; policies read it through the borrowed
//! [`PolicyContext`] passed into every hook, so stateless policies stay
//! zero-cost and stateful ones (copy budgets, timers) carry their own
//! fields.
//!
//! # A custom policy
//!
//! ```
//! use mlora_core::{
//!     Beacon, ForwardingPolicy, PolicyContext, RoutingState, Scheme,
//! };
//!
//! /// Forward a fixed quota to any strictly better-connected neighbour.
//! #[derive(Debug, Clone)]
//! struct Quota(usize);
//!
//! impl ForwardingPolicy for Quota {
//!     fn label(&self) -> &str {
//!         "quota"
//!     }
//!     fn clone_box(&self) -> Box<dyn ForwardingPolicy> {
//!         Box::new(self.clone())
//!     }
//!     fn forwards(&mut self, ctx: &PolicyContext<'_>, beacon: &Beacon, _rssi_dbm: f64) -> bool {
//!         beacon.rca_etx < ctx.rca_etx()
//!     }
//!     fn transfer_amount(&self, _ctx: &PolicyContext<'_>, _beacon: &Beacon) -> usize {
//!         self.0
//!     }
//! }
//!
//! let state = RoutingState::for_policy(Box::new(Quota(3)));
//! assert_eq!(state.policy().label(), "quota");
//! assert_eq!(state.config().scheme, Scheme::NoRouting); // default config
//! ```

use mlora_simcore::{NodeId, SimTime};

use crate::{
    greedy_forward_rule, link_rca_etx, robc_transfer_amount, robc_weight, Beacon, CaEtxEstimator,
    DonorLedger, ForwardDecision, RcaEtxEstimator, Rgq, RoutingConfig, Scheme,
};

/// A policy's read-only window into its device's routing machinery.
///
/// Borrowed views over the state a [`RoutingState`](crate::RoutingState)
/// owns — the estimators, the RGQ bounds, the anti-loop ledger and the
/// static [`RoutingConfig`] — plus the real-time inputs of the current
/// hook invocation (`now`, the duty-cycle wait, the queue backlog).
#[derive(Debug, Clone, Copy)]
pub struct PolicyContext<'a> {
    now: SimTime,
    wait_s: f64,
    queue_len: usize,
    config: &'a RoutingConfig,
    estimator: &'a RcaEtxEstimator,
    ca_estimator: &'a CaEtxEstimator,
    ledger: &'a DonorLedger,
}

impl<'a> PolicyContext<'a> {
    pub(crate) fn new(
        now: SimTime,
        wait_s: f64,
        queue_len: usize,
        config: &'a RoutingConfig,
        estimator: &'a RcaEtxEstimator,
        ca_estimator: &'a CaEtxEstimator,
        ledger: &'a DonorLedger,
    ) -> Self {
        PolicyContext {
            now,
            wait_s,
            queue_len,
            config,
            estimator,
            ca_estimator,
            ledger,
        }
    }

    /// Simulation time of the hook invocation.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The duty-cycle wait an immediate transmission would face, seconds.
    pub fn wait_s(&self) -> f64 {
        self.wait_s
    }

    /// The device's current application backlog, messages.
    pub fn queue_len(&self) -> usize {
        self.queue_len
    }

    /// The device's static routing configuration.
    pub fn config(&self) -> &RoutingConfig {
        self.config
    }

    /// Most messages movable in one handover frame.
    pub fn max_bundle(&self) -> usize {
        self.config.max_bundle
    }

    /// The RGQ stability bounds.
    pub fn rgq(&self) -> &Rgq {
        &self.config.rgq
    }

    /// The committed node-to-sink RCA-ETX (as of the last slot), seconds.
    pub fn rca_etx(&self) -> f64 {
        self.estimator.rca_etx()
    }

    /// The node-to-sink RCA-ETX previewed against real time: a
    /// disconnection gap grown since the last slot raises the cost
    /// (Eq. 1 / Eq. 10 are evaluated on this).
    pub fn rca_etx_now(&self) -> f64 {
        self.estimator.rca_etx_at(self.now, self.wait_s)
    }

    /// The prior-work CA-ETX comparator value (§III.C), seconds.
    pub fn ca_etx(&self) -> f64 {
        self.ca_estimator.ca_etx()
    }

    /// The committed bounded gateway quality φ.
    pub fn phi(&self) -> f64 {
        self.config.rgq.phi(self.rca_etx())
    }

    /// The bounded gateway quality φ previewed against real time.
    pub fn phi_now(&self) -> f64 {
        self.config.rgq.phi(self.rca_etx_now())
    }

    /// The bounded gateway quality φ of an arbitrary metric — e.g. a
    /// neighbour's beaconed value.
    pub fn phi_of(&self, metric_s: f64) -> f64 {
        self.config.rgq.phi(metric_s)
    }

    /// The Eq. 5–6 device-to-device link metric for a frame received at
    /// `rssi_dbm`, seconds.
    pub fn link_rca_etx(&self, rssi_dbm: f64) -> f64 {
        link_rca_etx(rssi_dbm, &self.config.capacity, self.config.packet_bits)
    }

    /// True if the anti-loop ledger currently bars `node` as a target.
    pub fn is_barred(&self, node: NodeId) -> bool {
        self.ledger.is_barred(node)
    }
}

/// An object-safe forwarding strategy plugged into a device's
/// [`RoutingState`](crate::RoutingState).
///
/// Required: an identity ([`ForwardingPolicy::label`],
/// [`ForwardingPolicy::clone_box`]) and the forwarding predicate
/// ([`ForwardingPolicy::forwards`]). Everything else has defaults
/// reproducing the common scheme shape: beacon the committed RCA-ETX,
/// move the whole backlog (capped at the frame bundle limit) when
/// forwarding, no extra per-slot state.
///
/// The default [`ForwardingPolicy::decide`] composes the hooks exactly
/// like the paper schemes: an empty queue never forwards, the predicate
/// gates the handover, [`ForwardingPolicy::transfer_amount`] sizes it,
/// and a zero-sized transfer degenerates to
/// [`ForwardDecision::Keep`]. Policies with decision shapes that do not
/// fit the predicate/amount split override `decide` wholesale.
pub trait ForwardingPolicy: std::fmt::Debug + Send + Sync {
    /// The label identifying this policy in figures, reports and sweep
    /// cells.
    fn label(&self) -> &str;

    /// Clones the policy into a fresh box — the per-device instantiation
    /// primitive (each device carries its own policy state).
    fn clone_box(&self) -> Box<dyn ForwardingPolicy>;

    /// The metric this device piggybacks on its uplinks for neighbours
    /// to compare against. Defaults to the committed RCA-ETX.
    fn beacon_metric(&self, ctx: &PolicyContext<'_>) -> f64 {
        ctx.rca_etx()
    }

    /// Whether an overheard `beacon` (received at `rssi_dbm`) should
    /// trigger a handover to its sender. Called only with a non-empty
    /// queue.
    fn forwards(&mut self, ctx: &PolicyContext<'_>, beacon: &Beacon, rssi_dbm: f64) -> bool;

    /// How many queued messages to move once
    /// [`ForwardingPolicy::forwards`] fired (the engine caps the result
    /// at the frame bundle limit). Defaults to the whole backlog.
    fn transfer_amount(&self, ctx: &PolicyContext<'_>, _beacon: &Beacon) -> usize {
        ctx.queue_len()
    }

    /// Decides what to do with the queue after overhearing `beacon`.
    ///
    /// The default composes the predicate and amount hooks; override for
    /// decision shapes that do not fit that split.
    fn decide(
        &mut self,
        ctx: &PolicyContext<'_>,
        beacon: &Beacon,
        rssi_dbm: f64,
    ) -> ForwardDecision {
        if ctx.queue_len() == 0 || !self.forwards(ctx, beacon, rssi_dbm) {
            return ForwardDecision::Keep;
        }
        // Clamp to both invariants the enum path always enforced: never
        // offer more than the backlog holds, never more than one
        // handover frame carries.
        let count = self
            .transfer_amount(ctx, beacon)
            .min(ctx.queue_len())
            .min(ctx.max_bundle());
        if count == 0 {
            ForwardDecision::Keep
        } else {
            ForwardDecision::Forward {
                target: beacon.sender,
                count,
            }
        }
    }

    /// Hook: the device finished a device-to-sink slot (`capacity_bps`
    /// is `Some` when a gateway acknowledged). The shared estimators and
    /// ledger are updated by `RoutingState` before this fires; override
    /// to advance policy-private state (timers, spray budgets).
    fn on_sink_slot(&mut self, _t: SimTime, _capacity_bps: Option<f64>, _wait_s: f64) {}

    /// Hook: the device accepted a handover from `donor`. The ledger has
    /// already recorded the donor.
    fn on_received_data(&mut self, _donor: NodeId) {}

    /// The routing configuration a standalone device of this policy runs
    /// ([`RoutingState::for_policy`](crate::RoutingState::for_policy)
    /// uses it). Defaults to the paper's evaluation setting.
    fn default_config(&self) -> RoutingConfig {
        RoutingConfig::paper_default(Scheme::NoRouting)
    }
}

/// Plain LoRaWAN: never forwards — the paper's baseline as a policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoRoutingPolicy;

impl ForwardingPolicy for NoRoutingPolicy {
    fn label(&self) -> &str {
        Scheme::NoRouting.label()
    }

    fn clone_box(&self) -> Box<dyn ForwardingPolicy> {
        Box::new(*self)
    }

    fn forwards(&mut self, _ctx: &PolicyContext<'_>, _beacon: &Beacon, _rssi_dbm: f64) -> bool {
        false
    }

    fn transfer_amount(&self, _ctx: &PolicyContext<'_>, _beacon: &Beacon) -> usize {
        0
    }

    fn default_config(&self) -> RoutingConfig {
        RoutingConfig::paper_default(Scheme::NoRouting)
    }
}

/// The prior-work CA-ETX comparator (§III.C): the greedy Eq. 1 rule
/// driven by long-term contact statistics that cannot react to the
/// current disconnection gap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaEtxPolicy;

impl ForwardingPolicy for CaEtxPolicy {
    fn label(&self) -> &str {
        Scheme::CaEtx.label()
    }

    fn clone_box(&self) -> Box<dyn ForwardingPolicy> {
        Box::new(*self)
    }

    fn beacon_metric(&self, ctx: &PolicyContext<'_>) -> f64 {
        ctx.ca_etx()
    }

    fn forwards(&mut self, ctx: &PolicyContext<'_>, beacon: &Beacon, rssi_dbm: f64) -> bool {
        // Long-term statistics only: no real-time preview.
        greedy_forward_rule(ctx.ca_etx(), beacon.rca_etx, ctx.link_rca_etx(rssi_dbm))
    }

    fn default_config(&self) -> RoutingConfig {
        RoutingConfig::paper_default(Scheme::CaEtx)
    }
}

/// Greedy handover by the Eq. 1 RCA-ETX comparison (§IV).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RcaEtxPolicy;

impl ForwardingPolicy for RcaEtxPolicy {
    fn label(&self) -> &str {
        Scheme::RcaEtx.label()
    }

    fn clone_box(&self) -> Box<dyn ForwardingPolicy> {
        Box::new(*self)
    }

    fn forwards(&mut self, ctx: &PolicyContext<'_>, beacon: &Beacon, rssi_dbm: f64) -> bool {
        greedy_forward_rule(
            ctx.rca_etx_now(),
            beacon.rca_etx,
            ctx.link_rca_etx(rssi_dbm),
        )
    }

    fn default_config(&self) -> RoutingConfig {
        RoutingConfig::paper_default(Scheme::RcaEtx)
    }
}

/// Real-time opportunistic backpressure collection (§V): forward down
/// the RGQ-corrected pressure gradient, moving only the equalising
/// partial transfer δ, with the §V.B.2 anti-loop rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobcPolicy;

impl ForwardingPolicy for RobcPolicy {
    fn label(&self) -> &str {
        Scheme::Robc.label()
    }

    fn clone_box(&self) -> Box<dyn ForwardingPolicy> {
        Box::new(*self)
    }

    fn forwards(&mut self, ctx: &PolicyContext<'_>, beacon: &Beacon, _rssi_dbm: f64) -> bool {
        if ctx.is_barred(beacon.sender) {
            return false;
        }
        let weight = robc_weight(
            ctx.queue_len(),
            ctx.phi_now(),
            beacon.queue_len,
            ctx.phi_of(beacon.rca_etx),
        );
        weight > 0.0
    }

    fn transfer_amount(&self, ctx: &PolicyContext<'_>, beacon: &Beacon) -> usize {
        robc_transfer_amount(
            ctx.queue_len(),
            ctx.phi_now(),
            beacon.queue_len,
            ctx.phi_of(beacon.rca_etx),
        )
    }

    fn default_config(&self) -> RoutingConfig {
        RoutingConfig::paper_default(Scheme::Robc)
    }
}

impl Scheme {
    /// The built-in policy implementing this scheme — [`Scheme`] as a
    /// thin constructor over the open [`ForwardingPolicy`] family.
    pub fn policy(self) -> Box<dyn ForwardingPolicy> {
        match self {
            Scheme::NoRouting => Box::new(NoRoutingPolicy),
            Scheme::CaEtx => Box::new(CaEtxPolicy),
            Scheme::RcaEtx => Box::new(RcaEtxPolicy),
            Scheme::Robc => Box::new(RobcPolicy),
        }
    }
}

/// A cloneable, comparable handle around a boxed policy *prototype* —
/// the form forwarding policies take inside configurations and sweep
/// axes, where the surrounding types need `Clone` and `PartialEq`.
///
/// Cloning a spec clones the prototype ([`ForwardingPolicy::clone_box`]);
/// [`PolicySpec::build`] instantiates a fresh per-device policy the same
/// way. Two specs compare **equal when their labels match** — the label
/// is the policy's identity throughout reports and experiment cells, so
/// distinct policies must carry distinct labels.
#[derive(Debug)]
pub struct PolicySpec {
    prototype: Box<dyn ForwardingPolicy>,
}

impl PolicySpec {
    /// Wraps a boxed policy prototype.
    pub fn new(prototype: Box<dyn ForwardingPolicy>) -> Self {
        PolicySpec { prototype }
    }

    /// Wraps a policy value (`PolicySpec::of(RobcPolicy)`).
    pub fn of(policy: impl ForwardingPolicy + 'static) -> Self {
        PolicySpec::new(Box::new(policy))
    }

    /// The policy's identifying label.
    pub fn label(&self) -> &str {
        self.prototype.label()
    }

    /// Instantiates a fresh policy for one device.
    pub fn build(&self) -> Box<dyn ForwardingPolicy> {
        self.prototype.clone_box()
    }

    /// The policy's default routing configuration.
    pub fn default_config(&self) -> RoutingConfig {
        self.prototype.default_config()
    }
}

impl Clone for PolicySpec {
    fn clone(&self) -> Self {
        PolicySpec::new(self.prototype.clone_box())
    }
}

impl PartialEq for PolicySpec {
    /// Label equality — the label is the policy's identity.
    fn eq(&self, other: &Self) -> bool {
        self.label() == other.label()
    }
}

impl From<Scheme> for PolicySpec {
    fn from(scheme: Scheme) -> Self {
        PolicySpec::new(scheme.policy())
    }
}

impl std::fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingState;

    fn warmed(scheme: Scheme, good: bool) -> RoutingState {
        let mut s = RoutingState::new(RoutingConfig::paper_default(scheme));
        for i in 0..8u64 {
            let t = SimTime::from_secs(i * 180);
            let cap = if good || i == 0 { Some(4_000.0) } else { None };
            s.on_sink_slot(t, cap, 0.0);
        }
        s
    }

    #[test]
    fn builtin_labels_match_schemes() {
        for scheme in Scheme::WITH_CA_ETX {
            assert_eq!(scheme.policy().label(), scheme.label());
            assert_eq!(PolicySpec::from(scheme).label(), scheme.label());
        }
    }

    #[test]
    fn builtin_default_configs_match_paper_defaults() {
        for scheme in Scheme::WITH_CA_ETX {
            assert_eq!(
                scheme.policy().default_config(),
                RoutingConfig::paper_default(scheme)
            );
            let state = RoutingState::for_policy(scheme.policy());
            assert_eq!(state.config().scheme, scheme);
        }
    }

    #[test]
    fn spec_compares_and_clones_by_label() {
        let a = PolicySpec::of(RobcPolicy);
        let b = PolicySpec::from(Scheme::Robc);
        assert_eq!(a, b);
        assert_eq!(a.clone(), a);
        assert_ne!(a, PolicySpec::of(RcaEtxPolicy));
        assert_eq!(a.to_string(), "ROBC");
        assert_eq!(a.default_config().scheme, Scheme::Robc);
    }

    #[test]
    fn trait_path_matches_enum_semantics() {
        // A poorly connected RCA-ETX device forwards to a well-connected
        // beacon through both construction paths, with identical counts.
        let beacon = Beacon {
            sender: NodeId::new(2),
            rca_etx: 1.0,
            queue_len: 3,
        };
        let mut by_enum = warmed(Scheme::RcaEtx, false);
        let mut by_trait = RoutingState::with_policy(
            RoutingConfig::paper_default(Scheme::RcaEtx),
            Box::new(RcaEtxPolicy),
        );
        for i in 0..8u64 {
            let t = SimTime::from_secs(i * 180);
            let cap = if i == 0 { Some(4_000.0) } else { None };
            by_trait.on_sink_slot(t, cap, 0.0);
        }
        let now = SimTime::from_secs(1260);
        assert_eq!(
            by_enum.decide(now, 0.0, 5, &beacon, -85.0),
            by_trait.decide(now, 0.0, 5, &beacon, -85.0)
        );
        assert_eq!(
            by_enum.beacon_metric().to_bits(),
            by_trait.beacon_metric().to_bits()
        );
    }

    #[test]
    fn default_decide_composes_predicate_and_amount() {
        /// Always forward exactly two messages to anyone.
        #[derive(Debug, Clone)]
        struct TwoToAnyone;
        impl ForwardingPolicy for TwoToAnyone {
            fn label(&self) -> &str {
                "two"
            }
            fn clone_box(&self) -> Box<dyn ForwardingPolicy> {
                Box::new(self.clone())
            }
            fn forwards(
                &mut self,
                _ctx: &PolicyContext<'_>,
                _beacon: &Beacon,
                _rssi_dbm: f64,
            ) -> bool {
                true
            }
            fn transfer_amount(&self, _ctx: &PolicyContext<'_>, _beacon: &Beacon) -> usize {
                2
            }
        }
        let mut state = RoutingState::for_policy(Box::new(TwoToAnyone));
        let beacon = Beacon {
            sender: NodeId::new(9),
            rca_etx: 1.0,
            queue_len: 0,
        };
        // Empty queue short-circuits before the predicate.
        assert_eq!(
            state.decide(SimTime::ZERO, 0.0, 0, &beacon, -80.0),
            ForwardDecision::Keep
        );
        assert_eq!(
            state.decide(SimTime::ZERO, 0.0, 10, &beacon, -80.0),
            ForwardDecision::Forward {
                target: NodeId::new(9),
                count: 2
            }
        );
    }

    #[test]
    fn stateful_policy_hooks_fire() {
        /// Counts its own hook invocations.
        #[derive(Debug, Clone, Default)]
        struct Counting {
            sink_slots: u32,
            receptions: u32,
        }
        impl ForwardingPolicy for Counting {
            fn label(&self) -> &str {
                "counting"
            }
            fn clone_box(&self) -> Box<dyn ForwardingPolicy> {
                Box::new(self.clone())
            }
            fn forwards(
                &mut self,
                _ctx: &PolicyContext<'_>,
                _beacon: &Beacon,
                _rssi_dbm: f64,
            ) -> bool {
                false
            }
            fn on_sink_slot(&mut self, _t: SimTime, _cap: Option<f64>, _wait_s: f64) {
                self.sink_slots += 1;
            }
            fn on_received_data(&mut self, _donor: NodeId) {
                self.receptions += 1;
            }
        }
        let mut state = RoutingState::for_policy(Box::<Counting>::default());
        state.on_sink_slot(SimTime::ZERO, None, 0.0);
        state.on_received_data(NodeId::new(1));
        state.on_received_data(NodeId::new(2));
        // The shared ledger recorded both donors alongside the policy.
        assert!(state.is_barred(NodeId::new(1)));
        let dump = format!("{:?}", state.policy());
        assert!(
            dump.contains("sink_slots: 1") && dump.contains("receptions: 2"),
            "policy state not advanced: {dump}"
        );
    }
}
