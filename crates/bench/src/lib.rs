//! Shared configuration for the benchmark harness.
//!
//! Criterion benches run the [`bench_config`] scale (full area, 6-hour
//! horizon) so `cargo bench` finishes in minutes; the `repro` binary runs
//! [`paper_config`] (24 h, full fleet) to regenerate the figures at paper
//! scale. Both use the same code paths — only fleet size and horizon
//! differ.

use mlora_core::Scheme;
use mlora_sim::{Environment, SimConfig};

/// The seed every harness run uses, so printed numbers are reproducible.
pub const HARNESS_SEED: u64 = 2020;

/// Gateway counts for bench-scale sweeps (subset of the paper's 40–100).
pub const BENCH_GATEWAY_COUNTS: [usize; 3] = [40, 70, 100];

/// The bench-scale configuration for a scheme/environment pair.
pub fn bench_config(scheme: Scheme, environment: Environment) -> SimConfig {
    SimConfig::bench_scale(scheme, environment)
}

/// The paper-scale configuration for a scheme/environment pair.
pub fn paper_config(scheme: Scheme, environment: Environment) -> SimConfig {
    SimConfig::paper_default(scheme, environment)
}

/// A quick configuration for Criterion micro-runs that must iterate many
/// times (sub-second per run).
pub fn quick_config(scheme: Scheme, environment: Environment) -> SimConfig {
    let mut cfg = SimConfig::smoke_test(scheme, environment);
    cfg.horizon = mlora_simcore::SimDuration::from_mins(30);
    cfg.network.horizon = cfg.horizon;
    cfg
}
