//! Shared configuration for the benchmark harness.
//!
//! Criterion benches run the [`bench_config`] scale (full area, 6-hour
//! horizon) so `cargo bench` finishes in minutes; the `repro` binary runs
//! [`paper_config`] (24 h, full fleet) to regenerate the figures at paper
//! scale. Both use the same code paths — only fleet size and horizon
//! differ.
//!
//! Sweeps are expressed as [`ExperimentPlan`]s and executed through the
//! parallel [`Runner`](mlora_sim::Runner); [`figure_sweep_plan`] is the
//! shared gateway-density sweep behind Figs. 8, 9, 12 and 13.

use mlora_core::Scheme;
use mlora_sim::{Environment, ExperimentPlan, MetroConfig, Scenario, SimConfig};
use mlora_simcore::SimDuration;

/// The seed every harness run uses, so printed numbers are reproducible.
pub const HARNESS_SEED: u64 = 2020;

/// Gateway counts for bench-scale sweeps (subset of the paper's 40–100).
pub const BENCH_GATEWAY_COUNTS: [usize; 3] = [40, 70, 100];

/// The bench-scale configuration for a scheme/environment pair.
pub fn bench_config(scheme: Scheme, environment: Environment) -> SimConfig {
    Scenario::custom(environment)
        .scheme(scheme)
        .bench()
        .build()
        .expect("bench preset is valid")
}

/// The paper-scale configuration for a scheme/environment pair.
pub fn paper_config(scheme: Scheme, environment: Environment) -> SimConfig {
    Scenario::custom(environment)
        .scheme(scheme)
        .build()
        .expect("paper preset is valid")
}

/// The engine-throughput scenario behind `micro_engine` and the
/// `engine_events` binary: a `buses`-vehicle fleet on the full 600 km²
/// area with a *flat* activity profile (the whole fleet stays in service,
/// so event density is constant) over a 1-hour horizon, running ROBC in
/// the urban environment.
pub fn engine_throughput_config(buses: usize) -> SimConfig {
    let mut cfg = bench_config(Scheme::Robc, Environment::Urban);
    cfg.network.max_active_buses = buses;
    cfg.network.profile = mlora_mobility::DiurnalProfile::flat(1.0);
    cfg.network.horizon = SimDuration::from_hours(1);
    cfg.horizon = SimDuration::from_hours(1);
    cfg
}

/// The metro-scale engine-throughput scenario behind the
/// `engine_events` 20k/100k tiers: a radial-plus-ring metro world with
/// a flat activity profile and a 1-hour horizon, running ROBC in the
/// urban environment. Routes are single-leg and brisk (8–12 m/s, so a
/// line cycle stays well under the window at every tier) and the
/// staggered fleet reaches its full `buses`-wide steady state; the area
/// and line count scale with the square root of the fleet so bus
/// density — and therefore per-event neighbourhood cost — is constant
/// across tiers. The world is prebuilt once with [`HARNESS_SEED`], so
/// the engine skips seeded generation and every run is reproducible.
pub fn metro_throughput_config(buses: usize) -> SimConfig {
    let scale = (buses as f64 / 20_000.0).sqrt();
    let metro = MetroConfig {
        area_side_m: 20_000.0 * scale,
        num_radials: (48.0 * scale).round() as usize,
        num_rings: (24.0 * scale).round() as usize,
        min_speed_mps: 8.0,
        max_speed_mps: 12.0,
        peak_active_buses: buses,
        min_legs: 1,
        max_legs: 1,
        horizon: SimDuration::from_hours(1),
        profile: mlora_mobility::DiurnalProfile::flat(1.0),
        ..MetroConfig::default()
    };
    Scenario::custom(Environment::Urban)
        .scheme(Scheme::Robc)
        .bench()
        .metro(&metro, HARNESS_SEED)
        .build()
        .expect("metro bench preset is valid")
}

/// A quick configuration for Criterion micro-runs that must iterate many
/// times (sub-second per run).
pub fn quick_config(scheme: Scheme, environment: Environment) -> SimConfig {
    Scenario::custom(environment)
        .scheme(scheme)
        .smoke()
        .duration(SimDuration::from_mins(30))
        .build()
        .expect("quick preset is valid")
}

/// The shared gateway-density sweep behind Figs. 8, 9, 12 and 13 over
/// `base`: both environments × `gateway_counts` × every scheme. Callers
/// choose the seed policy — `.fixed_seeds([seed])` for the paper's
/// same-fleet-everywhere comparison, or `.seed(s).replicate(n)` for
/// multi-seed confidence intervals.
pub fn figure_sweep_plan(base: SimConfig, gateway_counts: &[usize]) -> ExperimentPlan {
    ExperimentPlan::new(base)
        .environments([Environment::Urban, Environment::Rural])
        .gateway_counts(gateway_counts.iter().copied())
        .schemes(Scheme::ALL)
}
