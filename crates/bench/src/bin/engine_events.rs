//! Engine throughput measurement: events per second at fleet scale.
//!
//! Runs the `micro_engine` scenarios (200- and 2000-bus fleets on a flat
//! activity profile, see [`mlora_bench::engine_throughput_config`]) plus
//! a 20 000-bus metro-generator tier
//! ([`mlora_bench::metro_throughput_config`]) and prints one JSON object
//! per scenario with the processed-event count, wall-clock time,
//! events/sec and the host's available parallelism (so a recorded
//! artifact says on its face whether sharded tiers had real cores). The 2000- and 20 000-bus tiers are additionally measured
//! with the spatially partitioned engine at 4 shards (the `_4shards`
//! rows) and on the calendar event queue (the `_calendar` rows), so the
//! CI regression gate covers the parallel and calendar paths like the
//! serial heap ones. The repo-level `BENCH_engine.json` baseline/after
//! pair is recorded with this binary; passing `full` adds the
//! 100 000-bus metro tier, which is measured out-of-gate (it runs for
//! minutes).
//!
//! Usage:
//! `cargo run --release -p mlora-bench --bin engine_events [runs] [full] [--shards <n>] [--queue <kind>]`
//!
//! `--shards <n>` overrides the shard count of every tier (the default
//! scenario list then drops the built-in `_4shards` rows), for probing
//! scaling at other widths. `--queue <heap|calendar>` overrides the
//! event-queue kind of every tier the same way (dropping the built-in
//! `_calendar` rows); both produce bit-identical reports, so the rows
//! measure pure queue mechanics.

use std::time::Instant;

use mlora_bench::{engine_throughput_config, metro_throughput_config, HARNESS_SEED};
use mlora_sim::{Engine, QueueKind, SimConfig};

fn sharded(cfg: &SimConfig, shards: usize) -> SimConfig {
    let mut cfg = cfg.clone();
    cfg.shards = shards;
    cfg
}

fn on_queue(cfg: &SimConfig, queue: QueueKind) -> SimConfig {
    let mut cfg = cfg.clone();
    cfg.queue = queue;
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shards_override: Option<usize> = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let queue_override: Option<QueueKind> = args
        .iter()
        .position(|a| a == "--queue")
        .and_then(|i| args.get(i + 1))
        .map(|s| match s.parse() {
            Ok(kind) => kind,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        });
    let positional: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--shards" || *a == "--queue" {
                    skip_next = true;
                    return false;
                }
                true
            })
            .collect()
    };
    let runs: usize = positional.first().and_then(|s| s.parse().ok()).unwrap_or(3);
    let full = positional.iter().any(|a| **a == "full");

    let mut scenarios = vec![
        ("200_buses".to_string(), engine_throughput_config(200)),
        ("2000_buses".to_string(), engine_throughput_config(2000)),
        (
            "20000_buses_metro".to_string(),
            metro_throughput_config(20_000),
        ),
    ];
    match shards_override {
        // Probe mode: run every tier at the requested width instead.
        Some(n) => {
            for (name, cfg) in &mut scenarios {
                cfg.shards = n;
                name.push_str(&format!("_{n}shards"));
            }
        }
        // Default list: serial tiers plus the two gated 4-shard rows
        // (skipped when probing a specific queue kind — those runs
        // compare queue mechanics, not partitioning).
        None if queue_override.is_none() => {
            let d2d = sharded(&scenarios[1].1, 4);
            let metro = sharded(&scenarios[2].1, 4);
            scenarios.push(("2000_buses_4shards".to_string(), d2d));
            scenarios.push(("20000_buses_metro_4shards".to_string(), metro));
        }
        None => {}
    }
    match queue_override {
        // Probe mode: run every tier (including any `_Nshards` rows)
        // on the requested queue kind instead.
        Some(kind) => {
            for (name, cfg) in &mut scenarios {
                cfg.queue = kind;
                name.push_str(&format!("_{kind}"));
            }
        }
        // Default list: add the two gated calendar rows.
        None if shards_override.is_none() => {
            let d2d = on_queue(&scenarios[1].1, QueueKind::Calendar);
            let metro = on_queue(&scenarios[2].1, QueueKind::Calendar);
            scenarios.push(("2000_buses_calendar".to_string(), d2d));
            scenarios.push(("20000_buses_metro_calendar".to_string(), metro));
        }
        None => {}
    }
    if full {
        let mut cfg = metro_throughput_config(100_000);
        let mut name = "100000_buses_metro".to_string();
        if let Some(n) = shards_override {
            cfg.shards = n;
            name.push_str(&format!("_{n}shards"));
        }
        if let Some(kind) = queue_override {
            cfg.queue = kind;
            name.push_str(&format!("_{kind}"));
        }
        scenarios.push((name, cfg));
    }

    // Host parallelism goes into every row: sharded-tier ratios are only
    // interpretable against the hardware threads actually available (the
    // recorded baselines come from a single-hardware-thread box).
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);

    println!("[");
    for (i, (name, cfg)) in scenarios.iter().enumerate() {
        // One warm-up, then the timed runs; report the best (least-noise)
        // run, which is the standard wall-clock benching convention.
        let mut best_s = f64::INFINITY;
        let mut setup_s = f64::INFINITY;
        let mut events = 0u64;
        let _ = Engine::new(cfg.clone(), HARNESS_SEED).run_instrumented();
        for _ in 0..runs {
            let start = Instant::now();
            let engine = Engine::new(cfg.clone(), HARNESS_SEED);
            setup_s = setup_s.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            let (_, stats) = engine.run_instrumented();
            let elapsed = start.elapsed().as_secs_f64();
            events = stats.events_processed;
            best_s = best_s.min(elapsed);
        }
        let eps = events as f64 / best_s;
        let comma = if i + 1 < scenarios.len() { "," } else { "" };
        println!(
            "  {{\"scenario\": \"{name}\", \"events\": {events}, \
             \"setup_wall_s\": {setup_s:.4}, \"best_wall_s\": {best_s:.4}, \
             \"events_per_sec\": {eps:.0}, \"host_threads\": {host_threads}}}{comma}"
        );
    }
    println!("]");
}
