//! Engine throughput measurement: events per second at fleet scale.
//!
//! Runs the `micro_engine` scenarios (200- and 2000-bus fleets on a flat
//! activity profile, see [`mlora_bench::engine_throughput_config`]) plus
//! a 20 000-bus metro-generator tier
//! ([`mlora_bench::metro_throughput_config`]) and prints one JSON object
//! per scenario with the processed-event count, wall-clock time and
//! events/sec. The repo-level `BENCH_engine.json` baseline/after pair is
//! recorded with this binary; passing `full` adds the 100 000-bus metro
//! tier, which is measured out-of-gate (it runs for minutes).
//!
//! Usage: `cargo run --release -p mlora-bench --bin engine_events [runs] [full]`

use std::time::Instant;

use mlora_bench::{engine_throughput_config, metro_throughput_config, HARNESS_SEED};
use mlora_sim::Engine;

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let full = std::env::args().any(|a| a == "full");
    let mut scenarios = vec![
        ("200_buses".to_string(), engine_throughput_config(200)),
        ("2000_buses".to_string(), engine_throughput_config(2000)),
        (
            "20000_buses_metro".to_string(),
            metro_throughput_config(20_000),
        ),
    ];
    if full {
        scenarios.push((
            "100000_buses_metro".to_string(),
            metro_throughput_config(100_000),
        ));
    }
    println!("[");
    for (i, (name, cfg)) in scenarios.iter().enumerate() {
        // One warm-up, then the timed runs; report the best (least-noise)
        // run, which is the standard wall-clock benching convention.
        let mut best_s = f64::INFINITY;
        let mut setup_s = f64::INFINITY;
        let mut events = 0u64;
        let _ = Engine::new(cfg.clone(), HARNESS_SEED).run_instrumented();
        for _ in 0..runs {
            let start = Instant::now();
            let engine = Engine::new(cfg.clone(), HARNESS_SEED);
            setup_s = setup_s.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            let (_, stats) = engine.run_instrumented();
            let elapsed = start.elapsed().as_secs_f64();
            events = stats.events_processed;
            best_s = best_s.min(elapsed);
        }
        let eps = events as f64 / best_s;
        let comma = if i + 1 < scenarios.len() { "," } else { "" };
        println!(
            "  {{\"scenario\": \"{name}\", \"events\": {events}, \
             \"setup_wall_s\": {setup_s:.4}, \"best_wall_s\": {best_s:.4}, \
             \"events_per_sec\": {eps:.0}}}{comma}"
        );
    }
    println!("]");
}
