//! Metro-world generation and scenario-file tooling.
//!
//! Three subcommands over the `.mlsc` binary scenario format:
//!
//! * `generate <out.mlsc> [--buses N] [--seed S] [--horizon-h H]` —
//!   builds a seeded metro world (radial + ring arterials, scaled from
//!   [`MetroConfig::default`]) wrapped in the urban ROBC scenario and
//!   streams it to `out.mlsc`.
//! * `inspect <file.mlsc>` — walks the container section by section and
//!   prints each section's id, name and record count without
//!   materializing the world.
//! * `verify-roundtrip <file.mlsc>` — loads the scenario, re-serializes
//!   it and checks the bytes are identical to the file; exits non-zero
//!   on any mismatch.
//!
//! Usage: `cargo run --release -p mlora-bench --bin worldgen -- <command> ...`

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use mlora_scenario_io::ScenarioReader;
use mlora_sim::{MetroConfig, Scenario, SimConfig};
use mlora_simcore::SimDuration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: worldgen generate <out.mlsc> [--buses N] [--seed S] [--horizon-h H]\n\
         \x20      worldgen inspect <file.mlsc>\n\
         \x20      worldgen verify-roundtrip <file.mlsc>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((command, rest)) => (command.as_str(), rest),
        None => return usage(),
    };
    let result = match (command, rest) {
        ("generate", [path, flags @ ..]) => generate(path, flags),
        ("inspect", [path]) => inspect(path),
        ("verify-roundtrip", [path]) => verify_roundtrip(path),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("worldgen: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--key value` flags into the generation parameters.
fn generate(path: &str, flags: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut buses = 20_000usize;
    let mut seed = 2020u64;
    let mut horizon_h = 24u64;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--buses" => buses = value.parse()?,
            "--seed" => seed = value.parse()?,
            "--horizon-h" => horizon_h = value.parse()?,
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    let metro = MetroConfig {
        peak_active_buses: buses,
        horizon: SimDuration::from_hours(horizon_h),
        ..MetroConfig::default()
    };
    let config = Scenario::urban().metro(&metro, seed).build()?;
    config.to_file(path)?;
    let bytes = std::fs::metadata(path)?.len();
    println!("wrote {path}: {buses} buses, {horizon_h} h horizon, seed {seed}, {bytes} bytes");
    Ok(ExitCode::SUCCESS)
}

/// Names for the section ids both layers of the format use.
fn section_name(id: u8) -> &'static str {
    match id {
        mlora_scenario_io::section::NETWORK_CONFIG => "network-config",
        mlora_scenario_io::section::WORLD => "world",
        mlora_scenario_io::section::ROUTES => "routes",
        mlora_scenario_io::section::FLEET => "fleet",
        5 => "sim-params",
        6 => "gateways",
        7 => "traffic",
        8 => "disruptions",
        _ => "unknown",
    }
}

fn inspect(path: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut reader = ScenarioReader::new(BufReader::new(File::open(path)?))?;
    println!("{path}:");
    while let Some((id, records)) = reader.next_section()? {
        println!(
            "  section {id:3} {:<15} {records:>10} records",
            section_name(id)
        );
        reader.skip_section()?;
    }
    Ok(ExitCode::SUCCESS)
}

fn verify_roundtrip(path: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let original = std::fs::read(path)?;
    let config = SimConfig::from_file(path)?;
    let mut rewritten = Vec::with_capacity(original.len());
    config.to_writer(&mut rewritten)?;
    if original == rewritten {
        println!(
            "ok: {path} round-trips bit-identically ({} bytes)",
            original.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "MISMATCH: {path} re-serializes to {} bytes (file has {})",
            rewritten.len(),
            original.len()
        );
        Ok(ExitCode::FAILURE)
    }
}
