//! `repro` — regenerates every table and figure of the paper's §VII.
//!
//! ```sh
//! repro [--quick] [--seed N] [--gateways 40,70,100] [--replicate N]
//!       [--jobs N] [FIGURE...]
//! ```
//!
//! `FIGURE` is any of `fig7 fig8 fig9 fig10 fig11 fig12 fig13 alpha
//! placement class` (default: all of them). `--quick` switches from the
//! paper-scale configuration (600 km², 24 h, ~2000 peak buses) to the
//! bench-scale one (6 h, ~800 peak buses) so a full pass finishes in
//! about a minute. `--replicate N` reruns every cell of the shared
//! Fig. 8/9/12/13 gateway sweep over `N` derived seeds and reports
//! mean ± 95 % CI instead of single-seed values (the remaining figures
//! always run their single fixed seed). `--jobs N` caps the worker
//! threads (default: all cores).

use std::collections::HashSet;

use mlora_core::Scheme;
use mlora_mobility::{active_bus_series, trip_duration_histogram, BusNetwork};
use mlora_sim::{
    report, DeviceClassChoice, Environment, ExperimentPlan, GatewayPlacement, Runner, SimConfig,
    SweepPoint,
};
use mlora_simcore::SimDuration;

struct Options {
    quick: bool,
    seed: u64,
    gateways: Vec<usize>,
    replicate: usize,
    jobs: Option<usize>,
    figures: HashSet<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        seed: mlora_bench::HARNESS_SEED,
        gateways: mlora_sim::PAPER_GATEWAY_COUNTS.to_vec(),
        replicate: 1,
        jobs: None,
        figures: HashSet::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                opts.seed = v.parse().expect("seed must be an integer");
            }
            "--gateways" => {
                let v = args.next().expect("--gateways needs a list");
                opts.gateways = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("gateway counts must be integers"))
                    .collect();
            }
            "--replicate" => {
                let v = args.next().expect("--replicate needs a value");
                opts.replicate = v.parse().expect("replication count must be an integer");
            }
            "--jobs" => {
                let v = args.next().expect("--jobs needs a value");
                opts.jobs = Some(v.parse().expect("job count must be an integer"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick] [--seed N] [--gateways 40,70,100] \
                     [--replicate N] [--jobs N] [FIGURE...]"
                );
                println!("figures: fig7 fig8 fig9 fig10 fig11 fig12 fig13 alpha placement class");
                std::process::exit(0);
            }
            fig => {
                opts.figures.insert(fig.to_string());
            }
        }
    }
    opts
}

fn base_config(opts: &Options, scheme: Scheme, env: Environment) -> SimConfig {
    if opts.quick {
        mlora_bench::bench_config(scheme, env)
    } else {
        mlora_bench::paper_config(scheme, env)
    }
}

fn runner(opts: &Options) -> Runner {
    match opts.jobs {
        Some(n) => Runner::new().workers(n),
        None => Runner::new(),
    }
}

/// Applies the options' seed policy to a plan: one fixed seed by
/// default, `--replicate N` derived seeds otherwise.
fn seeded(plan: ExperimentPlan, opts: &Options) -> ExperimentPlan {
    if opts.replicate > 1 {
        plan.seed(opts.seed).replicate(opts.replicate)
    } else {
        plan.fixed_seeds([opts.seed])
    }
}

fn wants(opts: &Options, fig: &str) -> bool {
    opts.figures.is_empty() || opts.figures.contains(fig)
}

/// Runs a plan, exiting with the runner's error message (no backtrace)
/// when the requested sweep is invalid.
fn run_plan(runner: &Runner, plan: &ExperimentPlan) -> Vec<mlora_sim::CellResult> {
    runner.run(plan).unwrap_or_else(|err| {
        eprintln!("repro: {err}");
        std::process::exit(2);
    })
}

fn main() {
    let opts = parse_args();
    let scale = if opts.quick {
        "bench-scale (--quick)"
    } else {
        "paper-scale"
    };
    println!("== repro: {scale}, seed {} ==", opts.seed);

    if wants(&opts, "fig7") {
        fig7(&opts);
    }

    // Figs. 8, 9, 12 and 13 share one gateway-density sweep.
    if ["fig8", "fig9", "fig12", "fig13"]
        .iter()
        .any(|f| wants(&opts, f))
    {
        let base = base_config(&opts, Scheme::NoRouting, Environment::Urban);
        eprintln!(
            "[sweep] {} gateway counts x 2 environments x 3 schemes x {} seed(s) ...",
            opts.gateways.len(),
            opts.replicate
        );
        let plan = seeded(mlora_bench::figure_sweep_plan(base, &opts.gateways), &opts);
        let cells = run_plan(&runner(&opts), &plan);
        if opts.replicate > 1 {
            if wants(&opts, "fig8") {
                println!("\n== Fig. 8: average end-to-end delay ==");
                print!(
                    "{}",
                    report::replicated_table(&cells, "mean end-to-end delay (s)", |r| r
                        .mean_delay_s())
                );
            }
            if wants(&opts, "fig9") {
                println!("\n== Fig. 9: total network throughput ==");
                print!(
                    "{}",
                    report::replicated_table(&cells, "unique msgs received", |r| r.delivered
                        as f64)
                );
            }
            if wants(&opts, "fig12") {
                println!("\n== Fig. 12: average number of hops ==");
                print!(
                    "{}",
                    report::replicated_table(&cells, "mean hops", |r| r.mean_hops())
                );
            }
            if wants(&opts, "fig13") {
                println!("\n== Fig. 13: average messages sent per node ==");
                print!(
                    "{}",
                    report::replicated_table(&cells, "mean msgs sent per node", |r| r
                        .mean_messages_sent_per_node())
                );
            }
        } else {
            let points = SweepPoint::from_cells(&cells);
            if wants(&opts, "fig8") {
                println!("\n== Fig. 8: average end-to-end delay ==");
                print!("{}", report::fig8_delay_table(&points));
            }
            if wants(&opts, "fig9") {
                println!("\n== Fig. 9: total network throughput ==");
                print!("{}", report::fig9_throughput_table(&points));
            }
            if wants(&opts, "fig12") {
                println!("\n== Fig. 12: average number of hops ==");
                print!("{}", report::fig12_hops_table(&points));
            }
            if wants(&opts, "fig13") {
                println!("\n== Fig. 13: average messages sent per node ==");
                print!("{}", report::fig13_overhead_table(&points));
            }
        }
    }

    for (fig, env) in [("fig10", Environment::Urban), ("fig11", Environment::Rural)] {
        if !wants(&opts, fig) {
            continue;
        }
        let number = &fig[3..];
        let base = base_config(&opts, Scheme::NoRouting, env);
        let gws = *opts.gateways.last().expect("at least one gateway count");
        eprintln!("[{fig}] {env} time series at {gws} gateways ...");
        let plan = ExperimentPlan::new(base)
            .environments([env])
            .gateway_counts([gws])
            .schemes(Scheme::ALL)
            .fixed_seeds([opts.seed]);
        let cells = run_plan(&runner(&opts), &plan);
        let rows: Vec<(Scheme, mlora_sim::SimReport)> = cells
            .into_iter()
            .map(|c| (c.key.scheme, c.report.single().clone()))
            .collect();
        println!("\n== Fig. {number}: throughput over time, {env} ({gws} gateways) ==");
        print!("{}", report::time_series_table(&rows, env));
    }

    if wants(&opts, "alpha") {
        let mut base = base_config(&opts, Scheme::RcaEtx, Environment::Urban);
        base.num_gateways = opts.gateways[opts.gateways.len() / 2];
        eprintln!("[alpha] EWMA sensitivity ...");
        let plan = ExperimentPlan::new(base.clone())
            .alphas([0.1, 0.3, 0.5, 0.7, 0.9])
            .fixed_seeds([opts.seed]);
        let cells = run_plan(&runner(&opts), &plan);
        println!(
            "\n== Ablation A: EWMA factor α (RCA-ETX, urban, {} gws) ==",
            base.num_gateways
        );
        println!(
            "{:>6} {:>12} {:>12} {:>8}",
            "alpha", "delay(s)", "delivered", "hops"
        );
        for cell in cells {
            let r = cell.report.single();
            println!(
                "{:>6.1} {:>12.1} {:>12} {:>8.2}",
                cell.key.alpha,
                r.mean_delay_s(),
                r.delivered,
                r.mean_hops()
            );
        }
    }

    if wants(&opts, "placement") {
        let mut base = base_config(&opts, Scheme::NoRouting, Environment::Urban);
        base.num_gateways = opts.gateways[opts.gateways.len() / 2];
        eprintln!("[placement] grid vs random ...");
        let run = runner(&opts);
        let grid = run_plan(
            &run,
            &ExperimentPlan::new(base.clone())
                .schemes(Scheme::ALL)
                .placements([GatewayPlacement::Grid])
                .fixed_seeds([opts.seed]),
        );
        let random = run_plan(
            &run,
            &ExperimentPlan::new(base.clone())
                .schemes(Scheme::ALL)
                .placements([GatewayPlacement::Random])
                .fixed_seeds((1..=3).map(|i| opts.seed.wrapping_add(i))),
        );
        println!(
            "\n== Ablation B: gateway placement (urban, {} gws) ==",
            base.num_gateways
        );
        println!(
            "{:>10} {:>10} {:>8} {:>12} {:>12}",
            "scheme", "placement", "layout", "delay(s)", "delivered"
        );
        for cell in grid.iter().chain(&random) {
            for (layout, r) in cell.report.runs() {
                println!(
                    "{:>10} {:>10} {:>8} {:>12.1} {:>12}",
                    cell.key.scheme.label(),
                    format!("{:?}", cell.key.placement),
                    layout,
                    r.mean_delay_s(),
                    r.delivered
                );
            }
        }
    }

    if wants(&opts, "class") {
        let mut base = base_config(&opts, Scheme::Robc, Environment::Urban);
        base.num_gateways = opts.gateways[opts.gateways.len() / 2];
        eprintln!("[class] Modified Class-C vs Queue-based Class-A ...");
        let plan = ExperimentPlan::new(base.clone())
            .device_classes([
                DeviceClassChoice::ModifiedClassC,
                DeviceClassChoice::QueueBasedClassA,
            ])
            .fixed_seeds([opts.seed]);
        let cells = run_plan(&runner(&opts), &plan);
        println!(
            "\n== Ablation C: device classes (ROBC, urban, {} gws) ==",
            base.num_gateways
        );
        println!(
            "{:>20} {:>12} {:>12} {:>16}",
            "class", "delay(s)", "delivered", "energy/node(J)"
        );
        for cell in cells {
            let r = cell.report.single();
            println!(
                "{:>20} {:>12.1} {:>12} {:>16.1}",
                format!("{:?}", cell.key.device_class),
                r.mean_delay_s(),
                r.delivered,
                r.mean_energy_per_node_mj() / 1000.0
            );
        }
    }

    eprintln!("done.");
}

/// Fig. 7: properties of the bus network itself.
fn fig7(opts: &Options) {
    let cfg = base_config(opts, Scheme::NoRouting, Environment::Urban);
    let mut net_cfg = cfg.network.clone();
    net_cfg.horizon = cfg.horizon;
    // The engine derives the mobility seed the same way (fork 11).
    let net_seed = mlora_simcore::SimRng::new(opts.seed).fork(11).seed();
    let net = BusNetwork::generate(&net_cfg, net_seed);

    println!("\n== Fig. 7a: number of active buses over the day ==");
    println!("{:>9} {:>8}", "t_start_s", "active");
    for (t, count) in active_bus_series(&net, SimDuration::from_mins(30)) {
        println!("{:>9} {:>8}", t.as_secs(), count);
    }

    println!("\n== Fig. 7b: distribution of bus active duration ==");
    println!("{:>12} {:>8}", "midpoint_min", "buses");
    let hist =
        trip_duration_histogram(&net, SimDuration::from_mins(30), SimDuration::from_hours(8));
    for (mid_s, count) in hist.iter() {
        println!("{:>12.0} {:>8}", mid_s / 60.0, count);
    }
}
