use mlora_core::Scheme;
use mlora_sim::{Environment, SimConfig};

fn main() {
    for env in [Environment::Urban, Environment::Rural] {
        for gws in [40usize, 100] {
            for scheme in Scheme::ALL {
                let mut cfg = SimConfig::paper_default(scheme, env);
                cfg.num_gateways = gws;
                let t0 = std::time::Instant::now();
                let r = cfg.run(2020).unwrap();
                println!(
                    "{env:6} gws={gws:3} {s:8} delay={d:8.1}s thr={thr:6} hops={h:4.2} frames/node={f:6.1} msgs/node={m:7.1} gen={g} coll={c} [{el:.1?}]",
                    s = scheme.label(), d = r.mean_delay_s(), thr = r.delivered,
                    h = r.mean_hops(), f = r.mean_frames_per_node(), m = r.mean_messages_sent_per_node(), g = r.generated,
                    c = r.collisions, el = t0.elapsed()
                );
            }
        }
    }
}
