//! Quick qualitative check of the paper-scale result shapes: one row per
//! `(environment, gateway-density, scheme)` cell, run in parallel through
//! the experiment Runner.

use mlora_core::Scheme;
use mlora_sim::{Environment, ExperimentPlan, Runner};

fn main() {
    let t0 = std::time::Instant::now();
    let plan = ExperimentPlan::new(mlora_bench::paper_config(
        Scheme::NoRouting,
        Environment::Urban,
    ))
    .environments([Environment::Urban, Environment::Rural])
    .gateway_counts([40, 100])
    .schemes(Scheme::ALL)
    .fixed_seeds([mlora_bench::HARNESS_SEED]);
    let cells = Runner::new().run(&plan).expect("shape-check plan is valid");
    for cell in cells {
        let r = cell.report.single();
        println!(
            "{env:6} gws={gws:3} {s:8} delay={d:8.1}s thr={thr:6} hops={h:4.2} frames/node={f:6.1} msgs/node={m:7.1} gen={g} coll={c}",
            env = cell.key.environment, gws = cell.key.gateways,
            s = cell.key.scheme.label(), d = r.mean_delay_s(), thr = r.delivered,
            h = r.mean_hops(), f = r.mean_frames_per_node(), m = r.mean_messages_sent_per_node(), g = r.generated,
            c = r.collisions
        );
    }
    eprintln!("total: {:.1?}", t0.elapsed());
}
