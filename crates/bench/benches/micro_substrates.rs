//! Micro-benchmarks of the substrates: airtime, path loss, collisions,
//! spatial index, queues, duty cycling.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlora_geo::{GridIndex, Point};
use mlora_mac::{AppMessage, DataQueue, DutyCycleTracker};
use mlora_phy::{resolve_collision, time_on_air, LogDistanceModel, PhyParams, CAPTURE_MARGIN_DB};
use mlora_simcore::{MessageId, NodeId, SimDuration, SimRng, SimTime};

fn bench(c: &mut Criterion) {
    let phy = PhyParams::paper_default();
    c.bench_function("micro_substrates/time_on_air_255B", |b| {
        b.iter(|| time_on_air(black_box(255), &phy))
    });

    let model = LogDistanceModel::paper_default();
    c.bench_function("micro_substrates/sample_rssi", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| model.sample_rssi_dbm(14.0, black_box(740.0), &mut rng))
    });

    c.bench_function("micro_substrates/resolve_collision_8", |b| {
        let frames: Vec<(u32, f64)> = (0..8).map(|i| (i, -80.0 - f64::from(i) * 2.0)).collect();
        b.iter(|| resolve_collision(&frames, -123.0, CAPTURE_MARGIN_DB))
    });

    c.bench_function("micro_substrates/grid_build_query_2000", |b| {
        let mut rng = SimRng::new(4);
        let pts: Vec<(u32, Point)> = (0..2000)
            .map(|i| {
                (
                    i,
                    Point::new(
                        rng.gen_range_f64(0.0, 24_495.0),
                        rng.gen_range_f64(0.0, 24_495.0),
                    ),
                )
            })
            .collect();
        b.iter(|| {
            let grid = GridIndex::build(pts.iter().copied(), 500.0);
            grid.within(Point::new(12_000.0, 12_000.0), 500.0).count()
        })
    });

    c.bench_function("micro_substrates/queue_cycle", |b| {
        b.iter(|| {
            let mut q = DataQueue::new(256);
            for i in 0..64u64 {
                q.push(AppMessage::new(
                    MessageId::new(i),
                    NodeId::new(0),
                    SimTime::ZERO,
                ));
            }
            let bundle = q.peek_front(12);
            q.remove(&bundle);
            q.len()
        })
    });

    c.bench_function("micro_substrates/duty_cycle_day", |b| {
        b.iter(|| {
            let mut dc = DutyCycleTracker::new(0.01);
            let toa = SimDuration::from_millis(368);
            let mut t = SimTime::ZERO;
            let end = SimTime::from_secs(86_400);
            while t < end {
                t = dc.next_opportunity(t);
                if t >= end {
                    break;
                }
                dc.record_tx(t, toa);
                t += toa;
            }
            dc.tx_count()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
