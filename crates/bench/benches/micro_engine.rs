//! Hot-path micro-benchmarks for the dense-state engine:
//!
//! * end-to-end engine throughput (events/sec) at 200- and 2000-bus
//!   fleet scale — the `BENCH_engine.json` scenarios,
//! * incremental `GridIndex` maintenance versus the from-scratch rebuild
//!   the engine used to perform every query window,
//! * `EventQueue` schedule/pop churn at simulation queue depths,
//! * the shard worker's batched interferer prefilter versus the
//!   per-flight reference walk it replaced (bit-identical plans, so the
//!   pair measures pure data-layout/batching win).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlora_bench::{engine_throughput_config, HARNESS_SEED};
use mlora_geo::{GridIndex, Point};
use mlora_sim::probe::WorkerProbe;
use mlora_sim::Engine;
use mlora_simcore::{EventQueue, SimRng, SimTime};

const AREA_SIDE: f64 = 24_495.0;
const CELL: f64 = 500.0;

fn fleet_positions(n: u32, seed: u64) -> Vec<(u32, Point)> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|i| {
            (
                i,
                Point::new(
                    rng.gen_range_f64(0.0, AREA_SIDE),
                    rng.gen_range_f64(0.0, AREA_SIDE),
                ),
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    // End-to-end engine throughput. One iteration is a full 1-hour run
    // of a flat-profile fleet; wall time per iteration divided into the
    // processed-event count gives events/sec (see engine_events bin).
    let mut group = c.benchmark_group("micro_engine");
    group.sample_size(5);
    for buses in [200usize, 2000] {
        let cfg = engine_throughput_config(buses);
        group.bench_function(format!("engine_run_{buses}_buses"), |b| {
            b.iter(|| {
                let (_, stats) = Engine::new(cfg.clone(), HARNESS_SEED).run_instrumented();
                stats.events_processed
            })
        });
    }
    group.finish();

    // Spatial index: what the engine used to do every query window
    // (rebuild from scratch) versus what it does now (relocate drifted
    // entries in place), both followed by one neighbour query.
    let items = fleet_positions(2_000, 4);
    c.bench_function("micro_engine/grid_rebuild_2000", |b| {
        b.iter(|| {
            let grid = GridIndex::build(items.iter().copied(), CELL);
            grid.within(Point::new(12_000.0, 12_000.0), 620.0).count()
        })
    });
    c.bench_function("micro_engine/grid_incremental_2000", |b| {
        let mut grid = GridIndex::build(items.iter().copied(), CELL);
        let mut positions: Vec<Point> = items.iter().map(|&(_, p)| p).collect();
        let mut scratch: Vec<(u32, Point)> = Vec::new();
        b.iter(|| {
            // ~52 m of drift per window at top speed, wrapping at the
            // area edge like the buses ping-ponging their routes.
            for (i, pos) in positions.iter_mut().enumerate() {
                let next = Point::new((pos.x + 52.0) % AREA_SIDE, pos.y);
                grid.relocate(i as u32, *pos, next);
                *pos = next;
            }
            grid.within_into(Point::new(12_000.0, 12_000.0), 620.0, &mut scratch);
            scratch.len()
        })
    });

    // Shard-worker plan computation over a generated 2000-bus network
    // with 96 frames in flight: the batched prefilter (one near-overlap
    // cut per transmission + bucket-sweep candidate scan) against the
    // per-flight reference walk. Both produce bit-identical plans —
    // asserted once up front — so the delta is pure prefilter cost.
    {
        let mut probe = WorkerProbe::new(HARNESS_SEED, 2_000, 96);
        assert_eq!(
            probe.plan_batched(),
            probe.plan_reference(),
            "batched and reference worker plans diverged"
        );
        c.bench_function("micro_engine/worker_plan_batched_2000", |b| {
            b.iter(|| black_box(probe.plan_batched()))
        });
        c.bench_function("micro_engine/worker_plan_per_flight_2000", |b| {
            b.iter(|| black_box(probe.plan_reference()))
        });
    }

    // Event queue churn at a 2000-device queue depth: every pop
    // schedules a follow-up, the discrete-event steady state.
    c.bench_function("micro_engine/event_queue_churn_2000", |b| {
        let mut queue: EventQueue<u32> = EventQueue::with_capacity(4096);
        let mut rng = SimRng::new(9);
        for i in 0..2_000u32 {
            queue.schedule(SimTime::from_millis(rng.gen_range_u64(0, 180_000)), i);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..64 {
                let (t, ev) = queue.pop().expect("queue never drains");
                acc = acc.wrapping_add(u64::from(ev));
                queue.schedule(t + mlora_simcore::SimDuration::from_millis(180_000), ev);
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
