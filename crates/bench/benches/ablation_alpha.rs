//! Ablation A harness: EWMA factor α sensitivity (§IV.B) — prints the
//! sweep at bench scale and times metric updates in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use mlora_core::{RcaEtxEstimator, Scheme};
use mlora_sim::{Environment, ExperimentPlan, Runner};
use mlora_simcore::SimTime;

fn bench(c: &mut Criterion) {
    let mut base = mlora_bench::bench_config(Scheme::RcaEtx, Environment::Urban);
    base.num_gateways = 70;
    let plan = ExperimentPlan::new(base)
        .alphas([0.1, 0.3, 0.5, 0.7, 0.9])
        .fixed_seeds([mlora_bench::HARNESS_SEED]);
    let cells = Runner::new().run(&plan).expect("alpha plan is valid");
    println!("\n== Ablation A: alpha sweep (RCA-ETX, urban, 70 gws, bench scale) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "alpha", "delay(s)", "delivered", "hops"
    );
    for cell in &cells {
        let r = cell.report.single();
        println!(
            "{:>6.1} {:>12.1} {:>12} {:>8.2}",
            cell.key.alpha,
            r.mean_delay_s(),
            r.delivered,
            r.mean_hops()
        );
    }

    c.bench_function("ablation_alpha/estimator_observe", |b| {
        b.iter(|| {
            let mut est = RcaEtxEstimator::new(0.5, 2040.0);
            for i in 0..1000u64 {
                let cap = if i % 3 == 0 { Some(4000.0) } else { None };
                est.observe(SimTime::from_secs(i * 180), cap, 36.6);
            }
            est.rca_etx()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
