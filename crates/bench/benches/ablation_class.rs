//! Ablation C harness: Modified Class-C vs Queue-based Class-A (§VI).

use criterion::{criterion_group, criterion_main, Criterion};
use mlora_core::Scheme;
use mlora_sim::{DeviceClassChoice, Environment, ExperimentPlan, Runner};

fn bench(c: &mut Criterion) {
    let mut base = mlora_bench::bench_config(Scheme::Robc, Environment::Urban);
    base.num_gateways = 70;
    let plan = ExperimentPlan::new(base)
        .device_classes([
            DeviceClassChoice::ModifiedClassC,
            DeviceClassChoice::QueueBasedClassA,
        ])
        .fixed_seeds([mlora_bench::HARNESS_SEED]);
    let cells = Runner::new().run(&plan).expect("class plan is valid");
    println!("\n== Ablation C: device classes (ROBC, urban, 70 gws, bench scale) ==");
    println!(
        "{:>20} {:>12} {:>12} {:>16}",
        "class", "delay(s)", "delivered", "energy/node(J)"
    );
    for cell in &cells {
        let r = cell.report.single();
        println!(
            "{:>20} {:>12.1} {:>12} {:>16.1}",
            format!("{:?}", cell.key.device_class),
            r.mean_delay_s(),
            r.delivered,
            r.mean_energy_per_node_mj() / 1000.0
        );
    }

    let mut group = c.benchmark_group("ablation_class");
    group.sample_size(10);
    for class in [
        DeviceClassChoice::ModifiedClassC,
        DeviceClassChoice::QueueBasedClassA,
    ] {
        group.bench_function(format!("{class:?}"), |b| {
            let mut cfg = mlora_bench::quick_config(Scheme::Robc, Environment::Urban);
            cfg.device_class = class;
            b.iter(|| cfg.run(mlora_bench::HARNESS_SEED).expect("valid config"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
