//! Fig11 harness: the rural throughput-over-time series (one column
//! per scheme) plus a timing of the series experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use mlora_core::Scheme;
use mlora_sim::{report, Environment, ExperimentPlan, Runner, SimReport};

fn bench(c: &mut Criterion) {
    let base = mlora_bench::bench_config(Scheme::NoRouting, Environment::Rural);
    let gws = *mlora_bench::BENCH_GATEWAY_COUNTS.last().unwrap();
    let plan = ExperimentPlan::new(base)
        .gateway_counts([gws])
        .schemes(Scheme::ALL)
        .fixed_seeds([mlora_bench::HARNESS_SEED]);
    let cells = Runner::new().run(&plan).expect("series plan is valid");
    let rows: Vec<(Scheme, SimReport)> = cells
        .into_iter()
        .map(|cell| (cell.key.scheme, cell.report.single().clone()))
        .collect();
    println!("\n== Fig11: rural series, {gws} gateways (bench scale) ==");
    print!("{}", report::time_series_table(&rows, Environment::Rural));

    let mut group = c.benchmark_group("fig11_rural_series");
    group.sample_size(10);
    group.bench_function("robc_quick", |b| {
        let cfg = mlora_bench::quick_config(Scheme::Robc, Environment::Rural);
        b.iter(|| cfg.run(mlora_bench::HARNESS_SEED).expect("valid config"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
