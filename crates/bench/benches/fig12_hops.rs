//! Fig12 harness: regenerates the hops table at bench scale through the
//! parallel experiment Runner and times the underlying simulation per
//! scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use mlora_core::Scheme;
use mlora_sim::{report, Environment, Runner, SweepPoint};

fn bench(c: &mut Criterion) {
    // Regenerate the figure once (bench scale: 6 h horizon, 800-bus
    // peak); the sweep's cells run across all cores.
    let base = mlora_bench::bench_config(Scheme::NoRouting, Environment::Urban);
    let plan = mlora_bench::figure_sweep_plan(base, &mlora_bench::BENCH_GATEWAY_COUNTS)
        .fixed_seeds([mlora_bench::HARNESS_SEED]);
    let cells = Runner::new().run(&plan).expect("sweep plan is valid");
    let points = SweepPoint::from_cells(&cells);
    println!("\n== Fig12 (bench scale) ==");
    print!("{}", report::fig12_hops_table(&points));

    // Time one quick-config run per scheme.
    let mut group = c.benchmark_group("fig12_hops");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_function(scheme.label(), |b| {
            let cfg = mlora_bench::quick_config(scheme, Environment::Urban);
            b.iter(|| cfg.run(mlora_bench::HARNESS_SEED).expect("valid config"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
