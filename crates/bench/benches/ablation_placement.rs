//! Ablation B harness: grid vs random gateway placement (§VII.C).

use criterion::{criterion_group, criterion_main, Criterion};
use mlora_core::Scheme;
use mlora_geo::Point;
use mlora_sim::{place_gateways, Environment, ExperimentPlan, GatewayPlacement, Runner};
use mlora_simcore::SimRng;

fn bench(c: &mut Criterion) {
    let mut base = mlora_bench::bench_config(Scheme::NoRouting, Environment::Urban);
    base.num_gateways = 70;
    let runner = Runner::new();
    let grid = runner
        .run(
            &ExperimentPlan::new(base.clone())
                .schemes(Scheme::ALL)
                .placements([GatewayPlacement::Grid])
                .fixed_seeds([mlora_bench::HARNESS_SEED]),
        )
        .expect("grid plan is valid");
    let random = runner
        .run(
            &ExperimentPlan::new(base.clone())
                .schemes(Scheme::ALL)
                .placements([GatewayPlacement::Random])
                .fixed_seeds((1..=3).map(|i| mlora_bench::HARNESS_SEED + i)),
        )
        .expect("random plan is valid");
    println!("\n== Ablation B: placement (urban, 70 gws, bench scale) ==");
    println!(
        "{:>10} {:>10} {:>8} {:>12} {:>12}",
        "scheme", "placement", "layout", "delay(s)", "delivered"
    );
    for cell in grid.iter().chain(&random) {
        for (layout, r) in cell.report.runs() {
            println!(
                "{:>10} {:>10} {layout:>8} {:>12.1} {:>12}",
                cell.key.scheme.label(),
                format!("{:?}", cell.key.placement),
                r.mean_delay_s(),
                r.delivered
            );
        }
    }

    let area = mlora_geo::BBox::square(Point::ORIGIN, 24_495.0);
    c.bench_function("ablation_placement/grid_100", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| place_gateways(area, 100, GatewayPlacement::Grid, &mut rng))
    });
    c.bench_function("ablation_placement/random_100", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| place_gateways(area, 100, GatewayPlacement::Random, &mut rng))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
