//! Fig. 7 harness: regenerates the bus-network statistics and times the
//! mobility substrate (network generation + a day of position queries).

use criterion::{criterion_group, criterion_main, Criterion};
use mlora_mobility::{active_bus_series, trip_duration_histogram, BusNetwork, BusNetworkConfig};
use mlora_simcore::{SimDuration, SimTime};

fn bench(c: &mut Criterion) {
    let cfg = BusNetworkConfig::default();
    let net = BusNetwork::generate(&cfg, mlora_bench::HARNESS_SEED);

    // Print the Fig. 7 series once so `cargo bench` regenerates the figure.
    println!("\n== Fig. 7a: active buses per 30 min ==");
    for (t, n) in active_bus_series(&net, SimDuration::from_mins(30)) {
        println!("{:>9} {n:>8}", t.as_secs());
    }
    println!("== Fig. 7b: trip duration histogram (30 min bins) ==");
    let h = trip_duration_histogram(&net, SimDuration::from_mins(30), SimDuration::from_hours(8));
    for (mid, n) in h.iter() {
        println!("{:>8.0}min {n:>8}", mid / 60.0);
    }

    c.bench_function("fig7/generate_network", |b| {
        b.iter(|| BusNetwork::generate(&cfg, mlora_bench::HARNESS_SEED))
    });
    c.bench_function("fig7/active_series_24h", |b| {
        b.iter(|| active_bus_series(&net, SimDuration::from_mins(10)))
    });
    c.bench_function("fig7/position_queries", |b| {
        let noon = SimTime::from_secs(12 * 3600);
        let nodes: Vec<_> = net.active_trips(noon).map(|t| t.node()).collect();
        b.iter(|| nodes.iter().map(|&n| net.position(n, noon).x).sum::<f64>())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
