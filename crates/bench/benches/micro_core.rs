//! Micro-benchmarks of the paper's core primitives: the metric maths the
//! hot path executes on every overheard frame.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mlora_core::{
    greedy_forward_rule, link_rca_etx, robc_transfer_amount, robc_weight, Beacon, Ewma,
    RoutingConfig, RoutingState, Scheme,
};
use mlora_phy::CapacityModel;
use mlora_simcore::{NodeId, SimTime};

fn bench(c: &mut Criterion) {
    let cap = CapacityModel::paper_default();

    c.bench_function("micro_core/ewma_push", |b| {
        let mut e = Ewma::new(0.5);
        b.iter(|| e.push(black_box(123.4)))
    });

    c.bench_function("micro_core/link_rca_etx", |b| {
        b.iter(|| link_rca_etx(black_box(-95.0), &cap, 2040.0))
    });

    c.bench_function("micro_core/greedy_rule", |b| {
        b.iter(|| greedy_forward_rule(black_box(100.0), black_box(40.0), black_box(2.0)))
    });

    c.bench_function("micro_core/robc_weight_and_delta", |b| {
        b.iter(|| {
            let w = robc_weight(black_box(30), 0.01, black_box(5), 0.05);
            let d = robc_transfer_amount(30, 0.01, 5, 0.05);
            (w, d)
        })
    });

    c.bench_function("micro_core/decide_robc", |b| {
        let mut state = RoutingState::new(RoutingConfig::paper_default(Scheme::Robc));
        state.on_sink_slot(SimTime::from_secs(180), Some(2000.0), 36.6);
        let beacon = Beacon {
            sender: NodeId::new(9),
            rca_etx: 42.0,
            queue_len: 3,
        };
        b.iter(|| state.decide(SimTime::from_secs(360), 36.6, black_box(20), &beacon, -92.0))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
