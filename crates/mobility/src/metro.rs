//! Metro-scale world generation: city-sized route graphs with
//! depot/line/headway/fleet structure.
//!
//! [`BusNetwork::generate`] draws every route independently, which is
//! fine for the paper's 2 000-bus evaluation but produces structureless
//! geometry and one scheduling loop per route at city scale. The
//! [`MetroWorld`] generator instead lays out a metropolitan arterial
//! plan — radial lines fanning out of the centre plus concentric ring
//! lines — and staffs each line with an explicit vehicle roster sized in
//! proportion to its cycle time, the way a real operator allocates a
//! fleet. Departures are staggered per line at the steady-state headway,
//! so a 100 000-bus day builds in seconds and the resulting
//! [`BusNetwork`] drops into the engine unchanged.
//!
//! Generation is a pure function of `(config, seed)`; the emitted
//! network satisfies every [`BusNetwork::from_parts`] invariant by
//! construction.
//!
//! # Example
//!
//! ```
//! use mlora_mobility::{MetroConfig, MetroWorld};
//! use mlora_simcore::SimDuration;
//!
//! let cfg = MetroConfig {
//!     peak_active_buses: 200, // keep the doctest fast
//!     num_radials: 8,
//!     num_rings: 4,
//!     horizon: SimDuration::from_hours(2),
//!     ..MetroConfig::default()
//! };
//! let world = MetroWorld::generate(&cfg, 7);
//! assert_eq!(world.lines().len(), 12);
//! assert!(world.network().trips().len() >= 12);
//! ```

use mlora_geo::{Point, Polyline};
use mlora_simcore::{NodeId, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::{BusNetwork, DiurnalProfile, Route, RouteId, Trip};

/// Parameters of a metro-scale world.
///
/// Defaults describe a large metropolitan network: a 40 km square, 96
/// radial arterials and 48 ring lines, a 20 000-bus peak fleet and a
/// 24-hour service day under the London diurnal profile. Scale the
/// fleet with [`MetroConfig::peak_active_buses`]; everything else
/// follows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetroConfig {
    /// Side of the square service area, metres.
    pub area_side_m: f64,
    /// Number of radial (centre-to-edge) lines.
    pub num_radials: usize,
    /// Number of concentric ring lines.
    pub num_rings: usize,
    /// Intermediate waypoints per radial line (ring lines use twice as
    /// many vertices to stay round).
    pub waypoints_per_line: usize,
    /// Slowest line service speed, m/s.
    pub min_speed_mps: f64,
    /// Fastest line service speed, m/s.
    pub max_speed_mps: f64,
    /// Peak number of simultaneously active buses across the fleet.
    pub peak_active_buses: usize,
    /// Fewest one-way legs a vehicle serves before returning to depot.
    pub min_legs: u32,
    /// Most one-way legs a vehicle serves.
    pub max_legs: u32,
    /// Service day to schedule departures over.
    pub horizon: SimDuration,
    /// Time-of-day activity profile.
    pub profile: DiurnalProfile,
    /// Distance from the city centre to a radial line's depot, metres.
    pub depot_spur_m: f64,
}

impl Default for MetroConfig {
    fn default() -> Self {
        MetroConfig {
            area_side_m: 40_000.0,
            num_radials: 96,
            num_rings: 48,
            waypoints_per_line: 8,
            min_speed_mps: crate::mph_to_mps(5.4),
            max_speed_mps: crate::mph_to_mps(23.1),
            peak_active_buses: 20_000,
            min_legs: 1,
            max_legs: 4,
            horizon: SimDuration::from_hours(24),
            profile: DiurnalProfile::london_buses(),
            depot_spur_m: 400.0,
        }
    }
}

impl MetroConfig {
    /// Total number of lines (radials plus rings).
    pub fn num_lines(&self) -> usize {
        self.num_radials + self.num_rings
    }

    fn validate(&self) {
        assert!(self.area_side_m > 0.0, "area side must be positive");
        assert!(self.num_lines() > 0, "need at least one line");
        assert!(
            self.min_speed_mps > 0.0 && self.min_speed_mps <= self.max_speed_mps,
            "bad speed range"
        );
        assert!(
            self.min_legs >= 1 && self.min_legs <= self.max_legs,
            "bad leg range"
        );
        assert!(self.peak_active_buses > 0, "need at least one bus");
        assert!(
            self.depot_spur_m >= 0.0 && self.depot_spur_m < self.area_side_m / 2.0,
            "bad depot spur"
        );
    }
}

/// The kind of arterial a metro line is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineKind {
    /// A centre-to-edge radial arterial.
    Radial,
    /// A concentric ring line.
    Ring,
}

/// Operator-level metadata for one metro line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetroLine {
    /// The route this line serves.
    pub route: RouteId,
    /// Radial or ring.
    pub kind: LineKind,
    /// Where the line's vehicles pull out from (the first path vertex).
    pub depot: Point,
    /// Vehicles allocated to the line's roster.
    pub fleet: usize,
    /// Steady-state headway between departures at full service level.
    pub peak_headway: SimDuration,
}

/// A generated metro world: the runnable [`BusNetwork`] plus per-line
/// operator metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetroWorld {
    network: BusNetwork,
    lines: Vec<MetroLine>,
}

impl MetroWorld {
    /// Generates a metro world from a configuration and a seed.
    ///
    /// Identical `(config, seed)` pairs generate identical worlds. Cost
    /// is `O(lines + trips + trips log trips)` — a 100 000-bus day is a
    /// few million trips and builds in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (non-positive area,
    /// no lines, inverted speed or leg ranges).
    pub fn generate(config: &MetroConfig, seed: u64) -> Self {
        config.validate();
        let mut geom_rng = SimRng::new(seed).fork(3);
        let mut sched_rng = SimRng::new(seed).fork(4);

        let mut routes = Vec::with_capacity(config.num_lines());
        let mut kinds = Vec::with_capacity(config.num_lines());
        for i in 0..config.num_radials {
            let id = RouteId::new(routes.len() as u32);
            routes.push(generate_radial(config, id, i, &mut geom_rng));
            kinds.push(LineKind::Radial);
        }
        for j in 0..config.num_rings {
            let id = RouteId::new(routes.len() as u32);
            routes.push(generate_ring(config, id, j, &mut geom_rng));
            kinds.push(LineKind::Ring);
        }

        let fleets = allocate_fleet(&routes, config.peak_active_buses);
        let mean_legs = f64::from(config.min_legs + config.max_legs) / 2.0;

        let mut raw = Vec::new();
        let mut lines = Vec::with_capacity(routes.len());
        for (route, &fleet) in routes.iter().zip(&fleets) {
            let cycle = route.one_way_duration().as_secs_f64() * mean_legs;
            lines.push(MetroLine {
                route: route.id(),
                kind: kinds[route.id().index()],
                depot: route.path().start(),
                fleet,
                peak_headway: SimDuration::from_secs_f64(cycle / fleet as f64),
            });
            schedule_line(config, route, fleet, &mut sched_rng, &mut raw);
        }

        raw.sort_by_key(|t: &RawDeparture| (t.depart, t.route_idx));
        let trips = raw
            .into_iter()
            .enumerate()
            .map(|(i, rt)| {
                Trip::new(
                    NodeId::new(i as u32),
                    &routes[rt.route_idx],
                    rt.depart,
                    rt.legs,
                )
            })
            .collect();

        let area = mlora_geo::BBox::square(Point::ORIGIN, config.area_side_m);
        let network = BusNetwork::from_parts(routes, trips, area, config.horizon)
            .expect("generated metro parts satisfy the network invariants");
        MetroWorld { network, lines }
    }

    /// The runnable mobility network.
    pub fn network(&self) -> &BusNetwork {
        &self.network
    }

    /// Per-line operator metadata, indexed like the network's routes.
    pub fn lines(&self) -> &[MetroLine] {
        &self.lines
    }

    /// Consumes the world, keeping only the network the engine needs.
    pub fn into_network(self) -> BusNetwork {
        self.network
    }
}

struct RawDeparture {
    route_idx: usize,
    depart: SimTime,
    legs: u32,
}

/// A radial arterial: depot near the centre, fanning out to the edge at
/// a jittered bearing with laterally jittered waypoints.
fn generate_radial(config: &MetroConfig, id: RouteId, index: usize, rng: &mut SimRng) -> Route {
    let area = mlora_geo::BBox::square(Point::ORIGIN, config.area_side_m);
    let c = area.center();
    let base_angle = index as f64 / config.num_radials.max(1) as f64 * std::f64::consts::TAU;
    let angle = base_angle + rng.normal(0.0, 0.35 / config.num_radials.max(1) as f64);
    let dir = Point::new(angle.cos(), angle.sin());
    let perp = Point::new(-dir.y, dir.x);
    let r_max = config.area_side_m * 0.48;
    let r_out = r_max * rng.gen_range_f64(0.55, 1.0);

    let n = config.waypoints_per_line;
    let mut points = Vec::with_capacity(n + 2);
    // Depot spur just off the centre, then waypoints out to the edge.
    points.push(area.clamp(
        c + dir
            * rng.gen_range_f64(
                config.depot_spur_m * 0.5,
                config.depot_spur_m.max(1.0) * 1.5,
            ),
    ));
    for i in 1..=n {
        let t = i as f64 / (n + 1) as f64;
        let lateral = rng.normal(0.0, r_out * 0.05);
        points.push(area.clamp(c + dir * (r_out * t) + perp * lateral));
    }
    points.push(area.clamp(c + dir * r_out));
    let path = Polyline::new(points).expect("radial has >= 2 finite points");
    let speed = rng.gen_range_f64(config.min_speed_mps, config.max_speed_mps + f64::EPSILON);
    Route::new(id, path, speed)
}

/// A ring line: a closed polygon around the centre. A vehicle serving it
/// ping-pongs around the loop, so one "leg" is one full circuit.
fn generate_ring(config: &MetroConfig, id: RouteId, index: usize, rng: &mut SimRng) -> Route {
    let area = mlora_geo::BBox::square(Point::ORIGIN, config.area_side_m);
    let c = area.center();
    let r_max = config.area_side_m * 0.45;
    let base_r = r_max * (index as f64 + 1.0) / (config.num_rings.max(1) as f64 + 1.0);
    let r = (base_r * rng.gen_range_f64(0.92, 1.08)).max(config.area_side_m * 0.02);

    let vertices = (config.waypoints_per_line * 2).max(6);
    let phase = rng.gen_range_f64(0.0, std::f64::consts::TAU);
    let mut points = Vec::with_capacity(vertices + 1);
    for k in 0..vertices {
        let angle = phase + k as f64 / vertices as f64 * std::f64::consts::TAU;
        let jitter = rng.normal(0.0, r * 0.03);
        let radius = (r + jitter).max(config.area_side_m * 0.01);
        points.push(area.clamp(c + Point::new(angle.cos(), angle.sin()) * radius));
    }
    points.push(points[0]); // close the loop
    let path = Polyline::new(points).expect("ring has >= 2 finite points");
    let speed = rng.gen_range_f64(config.min_speed_mps, config.max_speed_mps + f64::EPSILON);
    Route::new(id, path, speed)
}

/// Allocates the peak fleet across lines in proportion to cycle time
/// (largest-remainder rounding, at least one vehicle per line).
///
/// Longer lines need proportionally more vehicles to hold the same
/// headway — exactly the steady-state relation `fleet = cycle / headway`.
fn allocate_fleet(routes: &[Route], peak: usize) -> Vec<usize> {
    let weights: Vec<f64> = routes
        .iter()
        .map(|r| r.one_way_duration().as_secs_f64())
        .collect();
    let total: f64 = weights.iter().sum();
    let mut fleets: Vec<usize> = Vec::with_capacity(routes.len());
    let mut fractions: Vec<(usize, f64)> = Vec::with_capacity(routes.len());
    let mut assigned = 0usize;
    for (i, w) in weights.iter().enumerate() {
        let quota = peak as f64 * w / total;
        let base = quota.floor() as usize;
        fleets.push(base);
        assigned += base;
        fractions.push((i, quota - base as f64));
    }
    // Hand the leftover vehicles to the largest fractional remainders;
    // ties break on line index so allocation is deterministic.
    fractions.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut leftover = peak.saturating_sub(assigned);
    for &(i, _) in fractions.iter().cycle().take(leftover.min(peak)) {
        fleets[i] += 1;
        leftover -= 1;
        if leftover == 0 {
            break;
        }
    }
    // Every line runs at least one vehicle, even on tiny fleets.
    for f in &mut fleets {
        *f = (*f).max(1);
    }
    fleets
}

/// Schedules one line's departures: staggered pull-outs at the
/// steady-state headway for the current service level, mirroring
/// [`BusNetwork::generate`]'s per-route loop but sized by the line's
/// explicit roster.
fn schedule_line(
    config: &MetroConfig,
    route: &Route,
    fleet: usize,
    rng: &mut SimRng,
    out: &mut Vec<RawDeparture>,
) {
    let mean_legs = f64::from(config.min_legs + config.max_legs) / 2.0;
    let cycle = route.one_way_duration().as_secs_f64() * mean_legs;
    let horizon = config.horizon.as_secs_f64();

    // Pull out staggered across one peak headway, starting one cycle
    // before t = 0 so the line is populated at the day boundary.
    let peak_headway = cycle / fleet as f64;
    let mut t = -cycle + rng.gen_range_f64(0.0, peak_headway.clamp(1.0, 900.0));
    while t < horizon {
        let now = SimTime::from_secs_f64(t.max(0.0));
        let target_active = (config.profile.level(now) * fleet as f64).max(1e-3);
        let headway = (cycle / target_active).min(4.0 * 3600.0);
        t += headway * rng.gen_range_f64(0.9, 1.1);
        if t >= horizon {
            break;
        }
        if t < 0.0 {
            continue;
        }
        let legs =
            rng.gen_range_u64(u64::from(config.min_legs), u64::from(config.max_legs) + 1) as u32;
        out.push(RawDeparture {
            route_idx: route.id().index(),
            depart: SimTime::from_secs_f64(t),
            legs,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> MetroConfig {
        MetroConfig {
            area_side_m: 12_000.0,
            num_radials: 10,
            num_rings: 5,
            waypoints_per_line: 4,
            peak_active_buses: 300,
            horizon: SimDuration::from_hours(6),
            ..MetroConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_config();
        let a = MetroWorld::generate(&cfg, 7);
        let b = MetroWorld::generate(&cfg, 7);
        assert_eq!(a, b);
        assert_ne!(a, MetroWorld::generate(&cfg, 8));
    }

    #[test]
    fn line_structure_matches_config() {
        let cfg = small_config();
        let world = MetroWorld::generate(&cfg, 1);
        assert_eq!(world.lines().len(), cfg.num_lines());
        assert_eq!(world.network().routes().len(), cfg.num_lines());
        let radials = world
            .lines()
            .iter()
            .filter(|l| l.kind == LineKind::Radial)
            .count();
        assert_eq!(radials, cfg.num_radials);
        for (i, line) in world.lines().iter().enumerate() {
            assert_eq!(line.route.index(), i);
            assert!(world.network().area().contains(line.depot));
            assert!(line.fleet >= 1);
            assert!(!line.peak_headway.is_zero());
        }
    }

    #[test]
    fn fleet_allocation_sums_to_peak() {
        let cfg = small_config();
        let world = MetroWorld::generate(&cfg, 2);
        let total: usize = world.lines().iter().map(|l| l.fleet).sum();
        // Largest-remainder allocation hits the peak exactly unless the
        // at-least-one floor forces a small overshoot.
        assert!(total >= cfg.peak_active_buses);
        assert!(total <= cfg.peak_active_buses + cfg.num_lines());
    }

    #[test]
    fn active_fleet_tracks_peak() {
        let cfg = MetroConfig {
            profile: DiurnalProfile::flat(1.0),
            ..small_config()
        };
        let world = MetroWorld::generate(&cfg, 3);
        let net = world.network();
        let mid = SimTime::from_secs(3 * 3600);
        let active = net.active_trips(mid).count();
        assert!(
            active >= cfg.peak_active_buses / 2 && active <= cfg.peak_active_buses * 2,
            "active fleet {active} far from target {}",
            cfg.peak_active_buses
        );
    }

    #[test]
    fn network_satisfies_from_parts_invariants() {
        let world = MetroWorld::generate(&small_config(), 4);
        let net = world.network();
        let rebuilt = BusNetwork::from_parts(
            net.routes().to_vec(),
            net.trips().to_vec(),
            net.area(),
            net.horizon(),
        )
        .expect("metro network is consistent");
        assert_eq!(*net, rebuilt);
    }

    #[test]
    fn positions_resolve_inside_area() {
        let world = MetroWorld::generate(&small_config(), 5);
        let net = world.network();
        let t = SimTime::from_secs(2 * 3600);
        for trip in net.active_trips(t).take(200) {
            let p = net.position(trip.node(), t);
            assert!(net.area().contains(p), "bus at {p} outside area");
        }
    }

    #[test]
    fn into_network_drops_metadata_only() {
        let world = MetroWorld::generate(&small_config(), 6);
        let net = world.network().clone();
        assert_eq!(world.into_network(), net);
    }
}
