//! Trace-style mobility substrate: a synthetic London bus network.
//!
//! The paper drives its evaluation with Transport-for-London timetables
//! replayed through SUMO. That dataset is not redistributable, so this
//! crate generates a statistically equivalent network from a seed (see
//! DESIGN.md for the substitution argument):
//!
//! * [`DiurnalProfile`] — the time-of-day activity curve of Fig. 7(a)
//!   (night trough, morning/evening commuter peaks).
//! * [`Route`] — a bus line: a polyline with a service speed drawn from
//!   the paper's 5.4–23.1 mph range.
//! * [`Trip`] — one vehicle serving a route for a number of laps; its
//!   position at any instant is computed analytically (no tick stepping).
//! * [`BusNetwork`] — the full generated network: routes + trips, with
//!   O(1) position queries and the Fig. 7 statistics.
//! * [`MetroWorld`] — the metro-scale generator: radial + ring arterial
//!   lines with depots, per-line vehicle rosters and staggered headway
//!   schedules, emitting a city-sized [`BusNetwork`] in seconds.
//!
//! # Example
//!
//! ```
//! use mlora_mobility::{BusNetwork, BusNetworkConfig};
//! use mlora_simcore::SimTime;
//!
//! let cfg = BusNetworkConfig {
//!     max_active_buses: 40, // keep the doctest fast
//!     num_routes: 8,
//!     ..BusNetworkConfig::default()
//! };
//! let net = BusNetwork::generate(&cfg, 42);
//! let noon = SimTime::from_secs(12 * 3600);
//! assert!(net.active_trips(noon).count() > 0);
//! ```

#![deny(missing_docs)]

mod diurnal;
mod metro;
mod network;
mod route;
mod stats;
mod trip;

pub use diurnal::DiurnalProfile;
pub use metro::{LineKind, MetroConfig, MetroLine, MetroWorld};
pub use network::{BusNetwork, BusNetworkConfig, NetworkError};
pub use route::{Route, RouteId};
pub use stats::{active_bus_series, trip_duration_histogram};
pub use trip::Trip;

/// Converts miles per hour to metres per second.
///
/// The paper quotes London bus speeds of 5.4–23.1 mph.
pub fn mph_to_mps(mph: f64) -> f64 {
    mph * 0.44704
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mph_conversion() {
        assert!((mph_to_mps(5.4) - 2.414).abs() < 1e-3);
        assert!((mph_to_mps(23.1) - 10.327).abs() < 1e-3);
    }
}
