//! Bus routes.

use mlora_geo::{Point, Polyline};
use mlora_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a bus route within a [`crate::BusNetwork`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RouteId(u32);

impl RouteId {
    /// Creates a route identifier from its raw index.
    pub const fn new(raw: u32) -> Self {
        RouteId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The raw index as `usize` for vector indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RouteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "route-{}", self.0)
    }
}

/// A bus line: a fixed path served at a fixed nominal speed.
///
/// Vehicles ping-pong along the path (out-and-back), exactly like a
/// bidirectional bus line. Positions are resolved analytically from the
/// distance travelled, so there is no per-tick state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    id: RouteId,
    path: Polyline,
    speed_mps: f64,
}

impl Route {
    /// Creates a route.
    ///
    /// # Panics
    ///
    /// Panics if `speed_mps` is not strictly positive and finite, or if the
    /// path has zero length.
    pub fn new(id: RouteId, path: Polyline, speed_mps: f64) -> Self {
        assert!(
            speed_mps.is_finite() && speed_mps > 0.0,
            "bad speed {speed_mps}"
        );
        assert!(path.length() > 0.0, "route path must have positive length");
        Route {
            id,
            path,
            speed_mps,
        }
    }

    /// The route identifier.
    pub fn id(&self) -> RouteId {
        self.id
    }

    /// The route path.
    pub fn path(&self) -> &Polyline {
        &self.path
    }

    /// Nominal service speed, metres per second.
    pub fn speed_mps(&self) -> f64 {
        self.speed_mps
    }

    /// One-way route length in metres.
    pub fn length_m(&self) -> f64 {
        self.path.length()
    }

    /// Time to traverse the route once, end to end.
    pub fn one_way_duration(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.length_m() / self.speed_mps)
    }

    /// Position after travelling `travelled_m` metres from the start,
    /// ping-ponging at the terminals.
    pub fn position_after(&self, travelled_m: f64) -> Point {
        self.path.point_at(self.fold_distance(travelled_m))
    }

    /// [`Route::position_after`] with a segment cursor (see
    /// [`Polyline::point_at_hinted`]): bit-identical results, O(1)
    /// amortised when consecutive queries are close in time.
    pub fn position_after_hinted(&self, travelled_m: f64, hint: &mut u32) -> Point {
        self.path
            .point_at_hinted(self.fold_distance(travelled_m), hint)
    }

    /// Folds a raw travelled distance onto the out-and-back path: the
    /// shared ping-pong arithmetic behind both position queries.
    fn fold_distance(&self, travelled_m: f64) -> f64 {
        let len = self.length_m();
        let d = travelled_m.max(0.0) % (2.0 * len);
        if d <= len {
            d
        } else {
            2.0 * len - d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight() -> Route {
        let path = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)]).unwrap();
        Route::new(RouteId::new(0), path, 10.0)
    }

    #[test]
    fn one_way_duration() {
        assert_eq!(straight().one_way_duration(), SimDuration::from_secs(100));
    }

    #[test]
    fn ping_pong_positions() {
        let r = straight();
        assert_eq!(r.position_after(0.0), Point::new(0.0, 0.0));
        assert_eq!(r.position_after(250.0), Point::new(250.0, 0.0));
        assert_eq!(r.position_after(1000.0), Point::new(1000.0, 0.0));
        // Past the far terminal the bus turns back.
        assert_eq!(r.position_after(1200.0), Point::new(800.0, 0.0));
        assert_eq!(r.position_after(2000.0), Point::new(0.0, 0.0));
        // And starts over.
        assert_eq!(r.position_after(2300.0), Point::new(300.0, 0.0));
    }

    #[test]
    fn negative_distance_clamps_to_start() {
        assert_eq!(straight().position_after(-5.0), Point::new(0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "bad speed")]
    fn zero_speed_rejected() {
        let path = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap();
        let _ = Route::new(RouteId::new(0), path, 0.0);
    }

    #[test]
    fn route_id_display() {
        assert_eq!(RouteId::new(3).to_string(), "route-3");
    }
}
