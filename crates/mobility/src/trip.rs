//! Individual vehicle trips.

use mlora_simcore::{NodeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::{Route, RouteId};

/// One vehicle serving a route: it departs, ping-pongs along the path for
/// a number of one-way legs, then leaves service.
///
/// A trip *is* a LoRa device for the duration of its service window — the
/// paper's Fig. 7(b) "bus active duration" is exactly this window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trip {
    node: NodeId,
    route: RouteId,
    depart: SimTime,
    legs: u32,
    /// Cached duration so callers do not need the route to ask for it.
    duration: SimDuration,
}

impl Trip {
    /// Creates a trip for `node` on `route`, departing at `depart` and
    /// serving `legs` one-way traversals.
    ///
    /// # Panics
    ///
    /// Panics if `legs == 0`.
    pub fn new(node: NodeId, route: &Route, depart: SimTime, legs: u32) -> Self {
        assert!(legs > 0, "a trip needs at least one leg");
        Trip {
            node,
            route: route.id(),
            depart,
            legs,
            duration: route.one_way_duration() * u64::from(legs),
        }
    }

    /// The device identity of this vehicle.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The route served.
    pub fn route(&self) -> RouteId {
        self.route
    }

    /// Service start.
    pub fn depart(&self) -> SimTime {
        self.depart
    }

    /// Number of one-way legs served.
    pub fn legs(&self) -> u32 {
        self.legs
    }

    /// Total time in service.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// Service end (exclusive).
    pub fn end(&self) -> SimTime {
        self.depart + self.duration
    }

    /// Withdraws the vehicle from service at `at`, truncating the
    /// service window in place.
    ///
    /// After withdrawal the trip ends at `at` (clamped into the original
    /// window, so a withdrawal before departure leaves a zero-length
    /// window and one after the scheduled end is a no-op), and position
    /// queries for any later instant clamp to the withdrawal point — the
    /// roadside where the vehicle parked. The scheduled leg count is kept
    /// for bookkeeping; only the cached duration shrinks.
    ///
    /// # Example
    ///
    /// ```
    /// use mlora_geo::{Point, Polyline};
    /// use mlora_mobility::{Route, RouteId, Trip};
    /// use mlora_simcore::{NodeId, SimTime};
    ///
    /// let path = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)]).unwrap();
    /// let route = Route::new(RouteId::new(0), path, 10.0);
    /// let mut trip = Trip::new(NodeId::new(1), &route, SimTime::ZERO, 2);
    /// trip.withdraw(SimTime::from_secs(50));
    /// assert_eq!(trip.end(), SimTime::from_secs(50));
    /// assert!(!trip.is_active(SimTime::from_secs(60)));
    /// // The bus stays parked where it was withdrawn.
    /// assert_eq!(trip.position(&route, SimTime::from_secs(90)), Point::new(500.0, 0.0));
    /// ```
    pub fn withdraw(&mut self, at: SimTime) {
        let at = at.max(self.depart).min(self.end());
        self.duration = at - self.depart;
    }

    /// True if the vehicle is in service at `t`.
    pub fn is_active(&self, t: SimTime) -> bool {
        t >= self.depart && t < self.end()
    }

    /// Position at time `t`.
    ///
    /// Outside the service window the position clamps to the nearest
    /// endpoint of the window (the terminus where the bus parks).
    ///
    /// # Panics
    ///
    /// Panics if `route` is not the route this trip serves.
    pub fn position(&self, route: &Route, t: SimTime) -> mlora_geo::Point {
        route.position_after(self.travelled_m(route, t))
    }

    /// [`Trip::position`] with a per-trip segment cursor: bit-identical
    /// results, O(1) amortised when `t` advances monotonically (see
    /// [`mlora_geo::Polyline::point_at_hinted`]).
    ///
    /// # Panics
    ///
    /// Panics if `route` is not the route this trip serves.
    pub fn position_hinted(&self, route: &Route, t: SimTime, hint: &mut u32) -> mlora_geo::Point {
        route.position_after_hinted(self.travelled_m(route, t), hint)
    }

    /// Distance travelled along the route at time `t` (clamped to the
    /// service window): the shared arithmetic behind both position
    /// queries.
    fn travelled_m(&self, route: &Route, t: SimTime) -> f64 {
        assert_eq!(route.id(), self.route, "position queried with wrong route");
        let t = t.max(self.depart).min(self.end());
        route.speed_mps() * (t - self.depart).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlora_geo::{Point, Polyline};

    fn route() -> Route {
        let path = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)]).unwrap();
        Route::new(RouteId::new(0), path, 10.0)
    }

    #[test]
    fn window_and_duration() {
        let r = route();
        let t = Trip::new(NodeId::new(1), &r, SimTime::from_secs(100), 3);
        assert_eq!(t.duration(), SimDuration::from_secs(300));
        assert_eq!(t.end(), SimTime::from_secs(400));
        assert!(!t.is_active(SimTime::from_secs(99)));
        assert!(t.is_active(SimTime::from_secs(100)));
        assert!(t.is_active(SimTime::from_secs(399)));
        assert!(!t.is_active(SimTime::from_secs(400)));
    }

    #[test]
    fn positions_along_legs() {
        let r = route();
        let t = Trip::new(NodeId::new(1), &r, SimTime::from_secs(0), 2);
        assert_eq!(
            t.position(&r, SimTime::from_secs(50)),
            Point::new(500.0, 0.0)
        );
        assert_eq!(
            t.position(&r, SimTime::from_secs(100)),
            Point::new(1000.0, 0.0)
        );
        // Second leg runs back towards the start.
        assert_eq!(
            t.position(&r, SimTime::from_secs(150)),
            Point::new(500.0, 0.0)
        );
        assert_eq!(
            t.position(&r, SimTime::from_secs(200)),
            Point::new(0.0, 0.0)
        );
    }

    #[test]
    fn position_clamps_outside_window() {
        let r = route();
        let t = Trip::new(NodeId::new(1), &r, SimTime::from_secs(100), 1);
        assert_eq!(t.position(&r, SimTime::ZERO), Point::new(0.0, 0.0));
        assert_eq!(
            t.position(&r, SimTime::from_secs(10_000)),
            Point::new(1000.0, 0.0)
        );
    }

    #[test]
    fn withdraw_truncates_window_and_parks() {
        let r = route();
        let mut t = Trip::new(NodeId::new(1), &r, SimTime::from_secs(100), 3);
        t.withdraw(SimTime::from_secs(250));
        assert_eq!(t.end(), SimTime::from_secs(250));
        assert_eq!(t.duration(), SimDuration::from_secs(150));
        assert!(t.is_active(SimTime::from_secs(249)));
        assert!(!t.is_active(SimTime::from_secs(250)));
        // 150 s into the trip: one full leg out (100 s) plus 50 s back.
        let parked = t.position(&r, SimTime::from_secs(250));
        assert_eq!(parked, Point::new(500.0, 0.0));
        // Later queries keep returning the parking spot.
        assert_eq!(t.position(&r, SimTime::from_secs(10_000)), parked);
        // Leg count is bookkeeping, not the live window.
        assert_eq!(t.legs(), 3);
    }

    #[test]
    fn withdraw_clamps_to_service_window() {
        let r = route();
        // Before departure: zero-length window at the origin terminal.
        let mut early = Trip::new(NodeId::new(1), &r, SimTime::from_secs(100), 1);
        early.withdraw(SimTime::from_secs(10));
        assert_eq!(early.end(), early.depart());
        assert!(!early.is_active(early.depart()));
        assert_eq!(
            early.position(&r, SimTime::from_secs(500)),
            Point::new(0.0, 0.0)
        );
        // After the scheduled end: a no-op.
        let mut late = Trip::new(NodeId::new(1), &r, SimTime::from_secs(100), 1);
        late.withdraw(SimTime::from_secs(9_999));
        assert_eq!(late.end(), SimTime::from_secs(200));
    }

    #[test]
    #[should_panic(expected = "at least one leg")]
    fn zero_legs_rejected() {
        let _ = Trip::new(NodeId::new(1), &route(), SimTime::ZERO, 0);
    }

    #[test]
    #[should_panic(expected = "wrong route")]
    fn wrong_route_rejected() {
        let r = route();
        let other = Route::new(
            RouteId::new(9),
            Polyline::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).unwrap(),
            1.0,
        );
        let t = Trip::new(NodeId::new(1), &r, SimTime::ZERO, 1);
        let _ = t.position(&other, SimTime::ZERO);
    }
}
