//! Time-of-day activity profiles (Fig. 7a).

use mlora_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// A 24-hour activity curve: the fraction of the peak fleet that is on the
/// road at each time of day.
///
/// The default reproduces the shape of Fig. 7(a) in the paper — a deep
/// night trough, a steep morning ramp, a daytime plateau with morning and
/// evening commuter peaks, and an evening wind-down. The curve is
/// piecewise-linear between hourly control points and wraps around
/// midnight.
///
/// # Example
///
/// ```
/// use mlora_mobility::DiurnalProfile;
/// use mlora_simcore::SimTime;
///
/// let p = DiurnalProfile::london_buses();
/// let night = p.level(SimTime::from_secs(3 * 3600));
/// let rush = p.level(SimTime::from_secs(8 * 3600));
/// assert!(rush > 3.0 * night);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    /// Activity level at each hour 0..24, in `[0, 1]`.
    hourly: Vec<f64>,
}

impl DiurnalProfile {
    /// Builds a profile from 24 hourly levels.
    ///
    /// # Panics
    ///
    /// Panics unless exactly 24 values are given, all within `[0, 1]`.
    pub fn from_hourly(hourly: Vec<f64>) -> Self {
        assert_eq!(hourly.len(), 24, "need 24 hourly levels");
        assert!(
            hourly.iter().all(|&v| (0.0..=1.0).contains(&v)),
            "levels must lie in [0, 1]"
        );
        DiurnalProfile { hourly }
    }

    /// A flat profile pinned at `level`; useful for tests and ablations.
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside `[0, 1]`.
    pub fn flat(level: f64) -> Self {
        DiurnalProfile::from_hourly(vec![level; 24])
    }

    /// The Fig. 7(a)-shaped London bus profile: ~12 % of peak at night,
    /// commuter peaks around 08:00 and 17:00–18:00.
    pub fn london_buses() -> Self {
        DiurnalProfile::from_hourly(vec![
            0.22, 0.15, 0.12, 0.12, 0.14, 0.30, // 00–05: night service
            0.60, 0.90, 1.00, 0.92, 0.88, 0.88, // 06–11: morning ramp + peak
            0.88, 0.88, 0.90, 0.94, 0.98, 1.00, // 12–17: plateau to evening peak
            0.95, 0.85, 0.70, 0.55, 0.42, 0.30, // 18–23: wind-down
        ])
    }

    /// Activity level in `[0, 1]` at `time` (time of day wraps every 24 h),
    /// linearly interpolated between hourly control points.
    pub fn level(&self, time: SimTime) -> f64 {
        let day_s = 86_400.0;
        let t = (time.as_secs_f64() % day_s + day_s) % day_s;
        let h = t / 3_600.0;
        let i = h.floor() as usize % 24;
        let j = (i + 1) % 24;
        let frac = h - h.floor();
        self.hourly[i] + (self.hourly[j] - self.hourly[i]) * frac
    }

    /// The hourly control points.
    pub fn hourly(&self) -> &[f64] {
        &self.hourly
    }

    /// The mean level across the day.
    pub fn mean_level(&self) -> f64 {
        self.hourly.iter().sum::<f64>() / 24.0
    }
}

impl Default for DiurnalProfile {
    fn default() -> Self {
        DiurnalProfile::london_buses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_between_hours() {
        let p =
            DiurnalProfile::from_hourly((0..24).map(|h| if h == 6 { 1.0 } else { 0.0 }).collect());
        assert_eq!(p.level(SimTime::from_secs(6 * 3600)), 1.0);
        assert_eq!(p.level(SimTime::from_secs(5 * 3600 + 1800)), 0.5);
        assert_eq!(p.level(SimTime::from_secs(6 * 3600 + 1800)), 0.5);
    }

    #[test]
    fn wraps_midnight() {
        let p = DiurnalProfile::london_buses();
        assert_eq!(p.level(SimTime::ZERO), p.level(SimTime::from_secs(86_400)));
        // Interpolation from hour 23 wraps to hour 0.
        let h23_30 = p.level(SimTime::from_secs(23 * 3600 + 1800));
        let expect = (p.hourly()[23] + p.hourly()[0]) / 2.0;
        assert!((h23_30 - expect).abs() < 1e-12);
    }

    #[test]
    fn london_shape_has_night_trough_and_peaks() {
        let p = DiurnalProfile::london_buses();
        let night = p.level(SimTime::from_secs(3 * 3600));
        let morning = p.level(SimTime::from_secs(8 * 3600));
        let midday = p.level(SimTime::from_secs(13 * 3600));
        let evening = p.level(SimTime::from_secs(17 * 3600));
        assert!(night < 0.2);
        assert!(morning >= 0.9);
        assert!(evening >= 0.9);
        assert!(midday > night && midday < morning.max(evening) + 1e-9);
    }

    #[test]
    fn flat_profile() {
        let p = DiurnalProfile::flat(0.5);
        for h in 0..48 {
            assert_eq!(p.level(SimTime::from_secs(h * 1800)), 0.5);
        }
        assert_eq!(p.mean_level(), 0.5);
    }

    #[test]
    #[should_panic(expected = "24 hourly levels")]
    fn wrong_length_rejected() {
        let _ = DiurnalProfile::from_hourly(vec![0.5; 23]);
    }

    #[test]
    #[should_panic(expected = "levels must lie")]
    fn out_of_range_rejected() {
        let mut v = vec![0.5; 24];
        v[3] = 1.5;
        let _ = DiurnalProfile::from_hourly(v);
    }
}
