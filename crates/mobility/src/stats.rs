//! Fleet statistics reproducing Fig. 7 of the paper.

use mlora_simcore::stats::Histogram;
use mlora_simcore::{SimDuration, SimTime};

use crate::BusNetwork;

/// Number of active buses sampled every `bucket` across the network's
/// horizon — the series of Fig. 7(a).
///
/// # Panics
///
/// Panics if `bucket` is zero.
pub fn active_bus_series(net: &BusNetwork, bucket: SimDuration) -> Vec<(SimTime, usize)> {
    assert!(!bucket.is_zero(), "bucket must be positive");
    let horizon = net.horizon();
    let mut out = Vec::new();
    let mut t = SimTime::ZERO;
    while t < SimTime::ZERO + horizon {
        out.push((t, net.active_trips(t).count()));
        t += bucket;
    }
    out
}

/// Histogram of trip (bus active) durations — the distribution of
/// Fig. 7(b). Bins are `bin_width` wide covering `[0, max_duration)`.
///
/// # Panics
///
/// Panics if `bin_width` is zero or `max_duration <= bin_width`.
pub fn trip_duration_histogram(
    net: &BusNetwork,
    bin_width: SimDuration,
    max_duration: SimDuration,
) -> Histogram {
    assert!(!bin_width.is_zero(), "bin width must be positive");
    assert!(max_duration > bin_width, "need more than one bin");
    let bins = (max_duration.as_millis() / bin_width.as_millis()) as usize;
    let mut h = Histogram::new(0.0, max_duration.as_secs_f64(), bins.max(1));
    for trip in net.trips() {
        h.push(trip.duration().as_secs_f64());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BusNetwork, BusNetworkConfig};

    fn net() -> BusNetwork {
        let cfg = BusNetworkConfig {
            area_side_m: 10_000.0,
            num_routes: 12,
            max_active_buses: 60,
            min_route_length_m: 2_000.0,
            ..BusNetworkConfig::default()
        };
        BusNetwork::generate(&cfg, 11)
    }

    #[test]
    fn series_covers_horizon() {
        let n = net();
        let series = active_bus_series(&n, SimDuration::from_mins(30));
        assert_eq!(series.len(), 48);
        assert_eq!(series[0].0, SimTime::ZERO);
        // At least some sample shows activity.
        assert!(series.iter().any(|&(_, c)| c > 0));
    }

    #[test]
    fn series_shape_matches_profile() {
        let n = net();
        let series = active_bus_series(&n, SimDuration::from_mins(60));
        let night = series[3].1; // 03:00
        let noon = series[12].1; // 12:00
        assert!(noon > night, "noon {noon} vs night {night}");
    }

    #[test]
    fn histogram_counts_every_trip() {
        let n = net();
        let h = trip_duration_histogram(&n, SimDuration::from_mins(15), SimDuration::from_hours(6));
        assert_eq!(h.count(), n.trips().len() as u64);
    }

    #[test]
    fn durations_mostly_under_four_hours() {
        let n = net();
        let h = trip_duration_histogram(&n, SimDuration::from_mins(30), SimDuration::from_hours(8));
        let total = h.count() as f64;
        let under_4h: u64 = h
            .iter()
            .filter(|&(mid, _)| mid < 4.0 * 3600.0)
            .map(|(_, c)| c)
            .sum();
        assert!(under_4h as f64 / total > 0.8);
    }
}
