//! Seeded generation of the synthetic bus network.

use mlora_geo::{BBox, Point, Polyline};
use mlora_simcore::{NodeId, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::{DiurnalProfile, Route, RouteId, Trip};

/// Parameters of the synthetic London-scale bus network.
///
/// Defaults reproduce the paper's setting at a tractable scale: a 600 km²
/// square area, service speeds spanning the quoted 5.4–23.1 mph, a
/// Fig. 7(a)-shaped diurnal fleet profile, and trip durations distributed
/// like Fig. 7(b). `max_active_buses` scales the whole fleet; the paper's
/// full TfL replay runs thousands of buses, which simulates fine but slows
/// parameter sweeps, so experiments default to a few hundred (documented
/// in EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusNetworkConfig {
    /// Side of the square simulation area, metres (default 24 495 m ≈ 600 km²).
    pub area_side_m: f64,
    /// Number of bus routes.
    pub num_routes: usize,
    /// Intermediate waypoints per route (plus the two terminals).
    pub waypoints_per_route: usize,
    /// Minimum one-way route length, metres.
    pub min_route_length_m: f64,
    /// Slowest route service speed, m/s (paper: 5.4 mph ≈ 2.41 m/s).
    pub min_speed_mps: f64,
    /// Fastest route service speed, m/s (paper: 23.1 mph ≈ 10.33 m/s).
    pub max_speed_mps: f64,
    /// Peak number of simultaneously active buses.
    pub max_active_buses: usize,
    /// Fewest one-way legs a vehicle serves before leaving service.
    pub min_legs: u32,
    /// Most one-way legs a vehicle serves.
    pub max_legs: u32,
    /// Time horizon to schedule departures over.
    pub horizon: SimDuration,
    /// Time-of-day activity profile.
    pub profile: DiurnalProfile,
    /// Fraction of terminals biased towards the city centre.
    pub center_bias: f64,
}

impl Default for BusNetworkConfig {
    fn default() -> Self {
        BusNetworkConfig {
            area_side_m: 24_495.0,
            num_routes: 120,
            waypoints_per_route: 6,
            min_route_length_m: 4_000.0,
            min_speed_mps: crate::mph_to_mps(5.4),
            max_speed_mps: crate::mph_to_mps(23.1),
            max_active_buses: 2_000,
            min_legs: 1,
            max_legs: 4,
            horizon: SimDuration::from_hours(24),
            profile: DiurnalProfile::london_buses(),
            center_bias: 0.5,
        }
    }
}

impl BusNetworkConfig {
    /// The simulation area as a bounding box anchored at the origin.
    pub fn area(&self) -> BBox {
        BBox::square(Point::ORIGIN, self.area_side_m)
    }

    fn validate(&self) {
        assert!(self.area_side_m > 0.0, "area side must be positive");
        assert!(self.num_routes > 0, "need at least one route");
        assert!(
            self.min_speed_mps > 0.0 && self.min_speed_mps <= self.max_speed_mps,
            "bad speed range"
        );
        assert!(
            self.min_legs >= 1 && self.min_legs <= self.max_legs,
            "bad leg range"
        );
        assert!(self.max_active_buses > 0, "need at least one bus");
        assert!(
            self.min_route_length_m < self.area_side_m * 2.0,
            "min route length larger than area"
        );
        assert!((0.0..=1.0).contains(&self.center_bias), "bad center bias");
    }
}

/// A fully generated bus network: routes plus the day's trips.
///
/// Trips are sorted by departure time and indexed by [`NodeId`]; each trip
/// is one LoRa device for its service window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusNetwork {
    routes: Vec<Route>,
    trips: Vec<Trip>,
    area: BBox,
    horizon: SimDuration,
}

/// Error returned when externally supplied network parts (a deserialized
/// or hand-assembled world) are internally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// The route set was empty.
    NoRoutes,
    /// Route at position `index` does not carry `RouteId(index)`.
    RouteIdMismatch {
        /// Position in the route vector.
        index: usize,
    },
    /// A trip references a route the network does not contain.
    UnknownRoute {
        /// Position of the offending trip.
        trip: usize,
    },
    /// Trip at position `index` does not carry `NodeId(index)`.
    NodeIdMismatch {
        /// Position in the trip vector.
        index: usize,
    },
    /// Trips are not sorted by departure time.
    UnsortedTrips {
        /// Position of the first out-of-order trip.
        trip: usize,
    },
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::NoRoutes => write!(f, "network has no routes"),
            NetworkError::RouteIdMismatch { index } => {
                write!(f, "route at position {index} does not carry id {index}")
            }
            NetworkError::UnknownRoute { trip } => {
                write!(f, "trip {trip} references a route outside the network")
            }
            NetworkError::NodeIdMismatch { index } => {
                write!(f, "trip at position {index} does not carry node id {index}")
            }
            NetworkError::UnsortedTrips { trip } => {
                write!(f, "trip {trip} departs before its predecessor")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

impl BusNetwork {
    /// Assembles a network from externally supplied parts — the seam the
    /// metro generator and the binary scenario reader build worlds
    /// through.
    ///
    /// The parts must satisfy the invariants [`BusNetwork::generate`]
    /// guarantees by construction: route `i` carries `RouteId(i)`, trip
    /// `i` carries `NodeId(i)`, every trip references a contained route,
    /// and trips are sorted by departure time.
    ///
    /// # Errors
    ///
    /// Returns the [`NetworkError`] naming the first violated invariant.
    pub fn from_parts(
        routes: Vec<Route>,
        trips: Vec<Trip>,
        area: BBox,
        horizon: SimDuration,
    ) -> Result<Self, NetworkError> {
        if routes.is_empty() {
            return Err(NetworkError::NoRoutes);
        }
        for (index, route) in routes.iter().enumerate() {
            if route.id().index() != index {
                return Err(NetworkError::RouteIdMismatch { index });
            }
        }
        let mut last_depart = SimTime::ZERO;
        for (index, trip) in trips.iter().enumerate() {
            if trip.route().index() >= routes.len() {
                return Err(NetworkError::UnknownRoute { trip: index });
            }
            if trip.node().index() != index {
                return Err(NetworkError::NodeIdMismatch { index });
            }
            if trip.depart() < last_depart {
                return Err(NetworkError::UnsortedTrips { trip: index });
            }
            last_depart = trip.depart();
        }
        Ok(BusNetwork {
            routes,
            trips,
            area,
            horizon,
        })
    }

    /// Generates a network from a configuration and a seed.
    ///
    /// Identical `(config, seed)` pairs generate identical networks.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (non-positive area,
    /// empty route set, inverted speed or leg ranges).
    pub fn generate(config: &BusNetworkConfig, seed: u64) -> Self {
        config.validate();
        let mut route_rng = SimRng::new(seed).fork(1);
        let mut sched_rng = SimRng::new(seed).fork(2);

        let routes: Vec<Route> = (0..config.num_routes)
            .map(|i| generate_route(config, RouteId::new(i as u32), &mut route_rng))
            .collect();

        let mut raw_trips = Vec::new();
        for route in &routes {
            schedule_route(config, route, &mut sched_rng, &mut raw_trips);
        }
        // Sort by departure (then route) and assign stable NodeIds.
        raw_trips.sort_by_key(|t: &RawTrip| (t.depart, t.route_idx));
        let trips = raw_trips
            .into_iter()
            .enumerate()
            .map(|(i, rt)| {
                Trip::new(
                    NodeId::new(i as u32),
                    &routes[rt.route_idx],
                    rt.depart,
                    rt.legs,
                )
            })
            .collect();

        BusNetwork {
            routes,
            trips,
            area: config.area(),
            horizon: config.horizon,
        }
    }

    /// All routes.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Looks up a route.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn route(&self, id: RouteId) -> &Route {
        &self.routes[id.index()]
    }

    /// All trips, sorted by departure time; index `i` is `NodeId(i)`.
    pub fn trips(&self) -> &[Trip] {
        &self.trips
    }

    /// Looks up a trip by device identity.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this network.
    pub fn trip(&self, node: NodeId) -> &Trip {
        &self.trips[node.index()]
    }

    /// The device's position at time `t`.
    pub fn position(&self, node: NodeId, t: SimTime) -> Point {
        let trip = self.trip(node);
        trip.position(self.route(trip.route()), t)
    }

    /// [`BusNetwork::position`] with a per-device segment cursor.
    ///
    /// `hint` is the opaque cursor for `node` (start at 0, keep one per
    /// device); results are bit-identical to [`BusNetwork::position`] and
    /// O(1) amortised when each device's queries advance monotonically in
    /// time — the access pattern of a discrete-event hot loop.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this network.
    pub fn position_hinted(&self, node: NodeId, t: SimTime, hint: &mut u32) -> Point {
        let trip = self.trip(node);
        trip.position_hinted(self.route(trip.route()), t, hint)
    }

    /// Withdraws `node`'s trip from service at `at` (see
    /// [`Trip::withdraw`]): the service window truncates to `at` and the
    /// vehicle parks at its withdrawal position for all later queries.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this network.
    pub fn withdraw(&mut self, node: NodeId, at: SimTime) {
        self.trips[node.index()].withdraw(at);
    }

    /// Trips in service at time `t`.
    pub fn active_trips(&self, t: SimTime) -> impl Iterator<Item = &Trip> + '_ {
        self.trips.iter().filter(move |trip| trip.is_active(t))
    }

    /// The simulation area.
    pub fn area(&self) -> BBox {
        self.area
    }

    /// The scheduling horizon.
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }
}

struct RawTrip {
    route_idx: usize,
    depart: SimTime,
    legs: u32,
}

fn sample_terminal(config: &BusNetworkConfig, rng: &mut SimRng) -> Point {
    let area = config.area();
    if rng.gen_bool(config.center_bias) {
        let c = area.center();
        let sigma = config.area_side_m / 8.0;
        area.clamp(Point::new(rng.normal(c.x, sigma), rng.normal(c.y, sigma)))
    } else {
        Point::new(
            rng.gen_range_f64(0.0, config.area_side_m),
            rng.gen_range_f64(0.0, config.area_side_m),
        )
    }
}

fn generate_route(config: &BusNetworkConfig, id: RouteId, rng: &mut SimRng) -> Route {
    // Draw terminals until the route is long enough (bounded retries so a
    // tiny test area cannot loop forever).
    let (a, b) = {
        let mut best = (sample_terminal(config, rng), sample_terminal(config, rng));
        for _ in 0..64 {
            if best.0.distance(best.1) >= config.min_route_length_m {
                break;
            }
            best = (sample_terminal(config, rng), sample_terminal(config, rng));
        }
        best
    };
    let area = config.area();
    let n = config.waypoints_per_route;
    let span = a.distance(b).max(1.0);
    let mut points = Vec::with_capacity(n + 2);
    points.push(a);
    // Perpendicular unit vector for lateral jitter around the main axis.
    let dir = Point::new((b.x - a.x) / span, (b.y - a.y) / span);
    let perp = Point::new(-dir.y, dir.x);
    for i in 1..=n {
        let t = i as f64 / (n + 1) as f64;
        let lateral = rng.normal(0.0, span * 0.08);
        let base = a.lerp(b, t);
        points.push(area.clamp(base + perp * lateral));
    }
    points.push(b);
    let path = Polyline::new(points).expect("route has >= 2 finite points");
    let speed = rng.gen_range_f64(config.min_speed_mps, config.max_speed_mps + f64::EPSILON);
    Route::new(id, path, speed)
}

fn schedule_route(
    config: &BusNetworkConfig,
    route: &Route,
    rng: &mut SimRng,
    out: &mut Vec<RawTrip>,
) {
    let one_way = route.one_way_duration().as_secs_f64();
    let mean_legs = f64::from(config.min_legs + config.max_legs) / 2.0;
    let mean_duration = one_way * mean_legs;
    let per_route_peak = config.max_active_buses as f64 / config.num_routes as f64;
    let horizon = config.horizon.as_secs_f64();

    // Start slightly before 0 so the network is already populated at t=0,
    // mirroring a day boundary in a continuously running service.
    let mut t = -mean_duration;
    // Random phase so routes do not all depart in lockstep.
    t += rng.gen_range_f64(0.0, 600.0);
    while t < horizon {
        let now = SimTime::from_secs_f64(t.max(0.0));
        let target_active = (config.profile.level(now) * per_route_peak).max(1e-3);
        // Steady state: active = duration / headway  =>  headway = duration / target.
        let headway = (mean_duration / target_active).min(4.0 * 3600.0);
        let jitter = rng.gen_range_f64(0.8, 1.2);
        t += headway * jitter;
        if t >= horizon {
            break;
        }
        if t < 0.0 {
            continue;
        }
        let legs =
            rng.gen_range_u64(u64::from(config.min_legs), u64::from(config.max_legs) + 1) as u32;
        out.push(RawTrip {
            route_idx: route.id().index(),
            depart: SimTime::from_secs_f64(t),
            legs,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> BusNetworkConfig {
        BusNetworkConfig {
            area_side_m: 10_000.0,
            num_routes: 10,
            max_active_buses: 50,
            min_route_length_m: 2_000.0,
            ..BusNetworkConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = small_config();
        let a = BusNetwork::generate(&cfg, 7);
        let b = BusNetwork::generate(&cfg, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small_config();
        let a = BusNetwork::generate(&cfg, 1);
        let b = BusNetwork::generate(&cfg, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn routes_stay_in_area_and_meet_length() {
        let cfg = small_config();
        let net = BusNetwork::generate(&cfg, 3);
        assert_eq!(net.routes().len(), cfg.num_routes);
        for route in net.routes() {
            for p in route.path().points() {
                assert!(net.area().contains(*p), "waypoint {p} outside area");
            }
            assert!(
                route.speed_mps() >= cfg.min_speed_mps
                    && route.speed_mps() <= cfg.max_speed_mps + 1e-9
            );
        }
    }

    #[test]
    fn trips_sorted_and_ids_sequential() {
        let net = BusNetwork::generate(&small_config(), 4);
        assert!(!net.trips().is_empty());
        for (i, w) in net.trips().windows(2).enumerate() {
            assert!(w[0].depart() <= w[1].depart(), "unsorted at {i}");
        }
        for (i, trip) in net.trips().iter().enumerate() {
            assert_eq!(trip.node().index(), i);
        }
    }

    #[test]
    fn daytime_activity_tracks_profile() {
        let net = BusNetwork::generate(&BusNetworkConfig::default(), 5);
        let night = net.active_trips(SimTime::from_secs(3 * 3600)).count();
        let noon = net.active_trips(SimTime::from_secs(12 * 3600)).count();
        assert!(
            noon > 2 * night,
            "expected daytime ({noon}) well above night ({night})"
        );
        // Near the configured ceiling (2000) at the busiest hour but not
        // far above it.
        let peak = net.active_trips(SimTime::from_secs(8 * 3600)).count();
        assert!(peak <= 2_600, "peak {peak} exploded past ceiling");
        assert!(peak >= 1_000, "peak {peak} far below target 2000");
    }

    #[test]
    fn positions_resolve_for_all_active_trips() {
        let net = BusNetwork::generate(&small_config(), 6);
        let t = SimTime::from_secs(10 * 3600);
        for trip in net.active_trips(t) {
            let p = net.position(trip.node(), t);
            assert!(net.area().contains(p), "bus at {p} outside area");
        }
    }

    #[test]
    fn hinted_positions_match_bitwise() {
        use mlora_simcore::SimRng;
        let net = BusNetwork::generate(&small_config(), 11);
        let mut rng = SimRng::new(5);
        let mut hints = vec![0u32; net.trips().len()];
        // Per-device monotone time sweeps with occasional cross-device
        // interleaving — the engine's access pattern.
        for step in 0..2_000u64 {
            let t = SimTime::from_millis(step * 7_321);
            let node = NodeId::new(rng.gen_range_u64(0, net.trips().len() as u64) as u32);
            let want = net.position(node, t);
            let got = net.position_hinted(node, t, &mut hints[node.index()]);
            assert_eq!(want.x.to_bits(), got.x.to_bits(), "x at {t} for {node}");
            assert_eq!(want.y.to_bits(), got.y.to_bits(), "y at {t} for {node}");
        }
    }

    #[test]
    fn withdraw_removes_bus_from_active_set() {
        let mut net = BusNetwork::generate(&small_config(), 9);
        let t = SimTime::from_secs(10 * 3600);
        let node = net.active_trips(t).next().expect("daytime bus").node();
        let before = net.active_trips(t).count();
        let pos = net.position(node, t);
        net.withdraw(node, t);
        assert_eq!(net.active_trips(t).count(), before - 1);
        assert!(!net.trip(node).is_active(t));
        // Position queries stay valid and pinned to the parking spot.
        assert_eq!(net.position(node, t + SimDuration::from_hours(1)), pos);
    }

    #[test]
    fn from_parts_roundtrips_generated_network() {
        let net = BusNetwork::generate(&small_config(), 12);
        let rebuilt = BusNetwork::from_parts(
            net.routes().to_vec(),
            net.trips().to_vec(),
            net.area(),
            net.horizon(),
        )
        .expect("generated parts are consistent");
        assert_eq!(net, rebuilt);
    }

    #[test]
    fn from_parts_rejects_inconsistencies() {
        let net = BusNetwork::generate(&small_config(), 13);
        let (routes, trips) = (net.routes().to_vec(), net.trips().to_vec());

        assert_eq!(
            BusNetwork::from_parts(Vec::new(), Vec::new(), net.area(), net.horizon()),
            Err(NetworkError::NoRoutes)
        );

        let mut swapped = trips.clone();
        swapped.swap(0, 1);
        assert!(matches!(
            BusNetwork::from_parts(routes.clone(), swapped, net.area(), net.horizon()),
            Err(NetworkError::NodeIdMismatch { .. } | NetworkError::UnsortedTrips { .. })
        ));

        let mut missing_route = routes.clone();
        missing_route.truncate(1);
        assert!(matches!(
            BusNetwork::from_parts(missing_route, trips, net.area(), net.horizon()),
            Err(NetworkError::UnknownRoute { .. })
        ));
    }

    #[test]
    fn legs_within_bounds() {
        let cfg = small_config();
        let net = BusNetwork::generate(&cfg, 8);
        for trip in net.trips() {
            assert!(trip.legs() >= cfg.min_legs && trip.legs() <= cfg.max_legs);
        }
    }
}
