//! Wire encoding of uplink frames.
//!
//! The simulator never needs real bytes, but a deployable implementation
//! of the paper's protocol does: the RCA-ETX metric and the queue length
//! ride in every uplink (§VII.A.5), so peers must agree on a layout.
//! This codec defines that layout and is the reference for an on-device
//! port:
//!
//! ```text
//! offset  size  field
//! 0       1     MHDR (0x40: unconfirmed data up)
//! 1       4     DevAddr (sender NodeId, little-endian)
//! 5       4     RCA-ETX metric, f32 seconds, little-endian
//! 9       2     queue length, u16 little-endian (saturating)
//! 11      1     message count (0–12)
//! 12      24·n  messages: id u64 | origin u32 | created-ms u64 |
//!               payload-len u16 | profile u8 | priority u8
//! ...     4     MIC (CRC32 over all preceding bytes)
//! ```
//!
//! The payload bytes themselves are not materialised (the simulator
//! carries sizes, not contents), but their length, originating traffic
//! profile and priority class ride every message record so a receiver
//! reconstructs the frame's true airtime footprint.
//!
//! Every encoded frame decodes back to an equal [`UplinkFrame`] (up to
//! the f32 rounding of the metric); corrupt frames are rejected by the
//! MIC.

use mlora_simcore::{MessageId, NodeId, SimTime};

use crate::{AppMessage, Priority, UplinkFrame, MAX_BUNDLE};

/// MHDR value for an unconfirmed data uplink.
const MHDR_UNCONFIRMED_UP: u8 = 0x40;

/// Fixed per-message wire size: 8 (id) + 4 (origin) + 8 (created) +
/// 2 (payload length) + 1 (profile) + 1 (priority) = 24 bytes.
const MESSAGE_WIRE_BYTES: usize = 24;

/// Error returned when decoding a wire frame fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the fixed header + MIC.
    Truncated,
    /// The MHDR byte is not an unconfirmed data uplink.
    BadHeader,
    /// The message count exceeds [`MAX_BUNDLE`] or the buffer length
    /// disagrees with it.
    BadLength,
    /// A message record carries an unknown priority class byte.
    BadPriority,
    /// The declared per-message payload sizes sum past what one frame
    /// can carry.
    BadPayload,
    /// The integrity check failed.
    BadMic,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "frame shorter than header and MIC"),
            DecodeError::BadHeader => write!(f, "unexpected MHDR byte"),
            DecodeError::BadLength => write!(f, "message count disagrees with frame length"),
            DecodeError::BadPriority => write!(f, "unknown priority class byte"),
            DecodeError::BadPayload => {
                write!(f, "declared payload sizes overflow the frame budget")
            }
            DecodeError::BadMic => write!(f, "integrity check failed"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// CRC32 (IEEE, reflected) used as the stand-in MIC.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encodes a frame to wire bytes.
///
/// # Example
///
/// ```
/// use mlora_mac::{decode_frame, encode_frame, UplinkFrame};
/// use mlora_simcore::NodeId;
///
/// let frame = UplinkFrame::new(NodeId::new(7), Vec::new(), 42.5, 3);
/// let bytes = encode_frame(&frame);
/// let back = decode_frame(&bytes).unwrap();
/// assert_eq!(back.sender, frame.sender);
/// assert_eq!(back.queue_len, 3);
/// ```
pub fn encode_frame(frame: &UplinkFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + frame.messages.len() * MESSAGE_WIRE_BYTES + 4);
    out.push(MHDR_UNCONFIRMED_UP);
    out.extend_from_slice(&frame.sender.raw().to_le_bytes());
    out.extend_from_slice(&(frame.rca_etx as f32).to_le_bytes());
    let qlen = u16::try_from(frame.queue_len).unwrap_or(u16::MAX);
    out.extend_from_slice(&qlen.to_le_bytes());
    out.push(frame.messages.len() as u8);
    for msg in &frame.messages {
        out.extend_from_slice(&msg.id.raw().to_le_bytes());
        out.extend_from_slice(&msg.origin.raw().to_le_bytes());
        out.extend_from_slice(&msg.created.as_millis().to_le_bytes());
        out.extend_from_slice(&msg.payload_bytes.to_le_bytes());
        out.push(msg.profile);
        out.push(match msg.priority {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        });
    }
    let mic = crc32(&out);
    out.extend_from_slice(&mic.to_le_bytes());
    out
}

/// Decodes wire bytes back into a frame.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, header mismatch, length
/// disagreement, or MIC failure.
pub fn decode_frame(bytes: &[u8]) -> Result<UplinkFrame, DecodeError> {
    if bytes.len() < 12 + 4 {
        return Err(DecodeError::Truncated);
    }
    let (body, mic_bytes) = bytes.split_at(bytes.len() - 4);
    let mic = u32::from_le_bytes(mic_bytes.try_into().expect("4 bytes"));
    if crc32(body) != mic {
        return Err(DecodeError::BadMic);
    }
    if body[0] != MHDR_UNCONFIRMED_UP {
        return Err(DecodeError::BadHeader);
    }
    let sender = NodeId::new(u32::from_le_bytes(body[1..5].try_into().expect("4 bytes")));
    let rca_etx = f32::from_le_bytes(body[5..9].try_into().expect("4 bytes")) as f64;
    let queue_len = u16::from_le_bytes(body[9..11].try_into().expect("2 bytes")) as usize;
    let count = body[11] as usize;
    if count > MAX_BUNDLE || body.len() != 12 + count * MESSAGE_WIRE_BYTES {
        return Err(DecodeError::BadLength);
    }
    let mut messages = Vec::with_capacity(count);
    for i in 0..count {
        let off = 12 + i * MESSAGE_WIRE_BYTES;
        let id = u64::from_le_bytes(body[off..off + 8].try_into().expect("8 bytes"));
        let origin = u32::from_le_bytes(body[off + 8..off + 12].try_into().expect("4 bytes"));
        let created = u64::from_le_bytes(body[off + 12..off + 20].try_into().expect("8 bytes"));
        let payload = u16::from_le_bytes(body[off + 20..off + 22].try_into().expect("2 bytes"));
        let profile = body[off + 22];
        let priority = match body[off + 23] {
            0 => Priority::Low,
            1 => Priority::Normal,
            2 => Priority::High,
            _ => return Err(DecodeError::BadPriority),
        };
        messages.push(
            AppMessage::new(
                MessageId::new(id),
                NodeId::new(origin),
                SimTime::from_millis(created),
            )
            .with_traffic(payload, profile, priority),
        );
    }
    // Reject (rather than panic on) frames whose declared payload sizes
    // could never have fit the PHY maximum.
    if messages
        .iter()
        .map(|m| m.payload_bytes as usize)
        .sum::<usize>()
        > crate::MAX_BUNDLE_BYTES
    {
        return Err(DecodeError::BadPayload);
    }
    Ok(UplinkFrame::new(sender, messages, rca_etx, queue_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame(n: usize) -> UplinkFrame {
        let messages = (0..n as u64)
            .map(|i| {
                AppMessage::new(
                    MessageId::new(1000 + i),
                    NodeId::new(5),
                    SimTime::from_millis(123_456 + i),
                )
            })
            .collect();
        UplinkFrame::new(NodeId::new(77), messages, 321.5, 42)
    }

    #[test]
    fn roundtrip_empty_and_full() {
        for n in [0usize, 1, 5, MAX_BUNDLE] {
            let frame = sample_frame(n);
            let decoded = decode_frame(&encode_frame(&frame)).unwrap();
            assert_eq!(decoded, frame, "roundtrip failed for {n} messages");
        }
    }

    #[test]
    fn metric_survives_as_f32() {
        let mut frame = sample_frame(0);
        frame.rca_etx = 123_456.789;
        let decoded = decode_frame(&encode_frame(&frame)).unwrap();
        let rel = (decoded.rca_etx - frame.rca_etx).abs() / frame.rca_etx;
        assert!(rel < 1e-6, "f32 rounding too coarse: {rel}");
    }

    #[test]
    fn queue_len_saturates_at_u16() {
        let mut frame = sample_frame(0);
        frame.queue_len = 1_000_000;
        let decoded = decode_frame(&encode_frame(&frame)).unwrap();
        assert_eq!(decoded.queue_len, usize::from(u16::MAX));
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = encode_frame(&sample_frame(3));
        for idx in [0usize, 5, 20, 40] {
            let mut corrupt = bytes.clone();
            corrupt[idx] ^= 0x55;
            assert!(
                decode_frame(&corrupt).is_err(),
                "corruption at byte {idx} went unnoticed"
            );
        }
        // Clean frame still decodes (sanity).
        assert!(decode_frame(&bytes).is_ok());
        // Truncation detected.
        bytes.truncate(10);
        assert_eq!(decode_frame(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_header_rejected_after_mic() {
        let mut bytes = encode_frame(&sample_frame(0));
        bytes[0] = 0x80; // confirmed data up — not ours
                         // Fix up the MIC so only the header check can fail.
        let body_len = bytes.len() - 4;
        let mic = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&mic.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(DecodeError::BadHeader));
    }

    #[test]
    fn traffic_tags_roundtrip() {
        let messages =
            vec![
                AppMessage::new(MessageId::new(1), NodeId::new(2), SimTime::from_secs(3))
                    .with_traffic(48, 3, Priority::High),
                AppMessage::new(MessageId::new(4), NodeId::new(5), SimTime::from_secs(6))
                    .with_traffic(8, 0, Priority::Low),
            ];
        let frame = UplinkFrame::new(NodeId::new(9), messages, 12.5, 7);
        let decoded = decode_frame(&encode_frame(&frame)).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn bad_priority_byte_rejected() {
        let frame = sample_frame(1);
        let mut bytes = encode_frame(&frame);
        // The priority byte is the last of the single message record.
        let idx = 12 + MESSAGE_WIRE_BYTES - 1;
        bytes[idx] = 9;
        let body_len = bytes.len() - 4;
        let mic = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&mic.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(DecodeError::BadPriority));
    }

    #[test]
    fn oversized_declared_payload_rejected() {
        let frame = sample_frame(1);
        let mut bytes = encode_frame(&frame);
        // Declare a payload length that could never fit one frame.
        let idx = 12 + 20;
        bytes[idx..idx + 2].copy_from_slice(&1_000u16.to_le_bytes());
        let body_len = bytes.len() - 4;
        let mic = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&mic.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(DecodeError::BadPayload));
    }

    #[test]
    fn wire_size_tracks_bundle() {
        let empty = encode_frame(&sample_frame(0)).len();
        let full = encode_frame(&sample_frame(MAX_BUNDLE)).len();
        assert_eq!(full - empty, MAX_BUNDLE * MESSAGE_WIRE_BYTES);
    }

    #[test]
    fn crc32_known_vector() {
        // CRC32("123456789") = 0xCBF43926 (IEEE reference vector).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
