//! EU868 duty-cycle enforcement.

use mlora_phy::duty_cycle_wait;
use mlora_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Tracks when a device may next transmit under a duty-cycle cap.
///
/// EU868 general data channels allow 1 % duty cycle (§III.B): after a
/// transmission of airtime *T*, the device must stay silent for *99 T*.
///
/// # Example
///
/// ```
/// use mlora_mac::DutyCycleTracker;
/// use mlora_simcore::{SimDuration, SimTime};
///
/// let mut dc = DutyCycleTracker::new(0.01);
/// let t0 = SimTime::from_secs(100);
/// assert!(dc.can_transmit(t0));
/// dc.record_tx(t0, SimDuration::from_millis(400));
/// assert!(!dc.can_transmit(SimTime::from_secs(120)));
/// assert!(dc.can_transmit(t0 + SimDuration::from_millis(40_000)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DutyCycleTracker {
    duty_cycle: f64,
    next_allowed: SimTime,
    total_airtime: SimDuration,
    tx_count: u64,
}

impl DutyCycleTracker {
    /// Creates a tracker for the given duty cycle (e.g. `0.01` for 1 %).
    ///
    /// # Panics
    ///
    /// Panics if `duty_cycle` is not in `(0, 1]`.
    pub fn new(duty_cycle: f64) -> Self {
        assert!(
            duty_cycle > 0.0 && duty_cycle <= 1.0,
            "duty cycle must be in (0, 1], got {duty_cycle}"
        );
        DutyCycleTracker {
            duty_cycle,
            next_allowed: SimTime::ZERO,
            total_airtime: SimDuration::ZERO,
            tx_count: 0,
        }
    }

    /// True if the device may start a transmission at `t`.
    pub fn can_transmit(&self, t: SimTime) -> bool {
        t >= self.next_allowed
    }

    /// Earliest instant at or after `t` when transmission is allowed.
    pub fn next_opportunity(&self, t: SimTime) -> SimTime {
        t.max(self.next_allowed)
    }

    /// Records a transmission starting at `t` lasting `airtime`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the transmission violates the duty cycle
    /// (the caller should have gated on [`DutyCycleTracker::can_transmit`]).
    pub fn record_tx(&mut self, t: SimTime, airtime: SimDuration) {
        debug_assert!(self.can_transmit(t), "duty-cycle violation at {t}");
        self.next_allowed = t + airtime + duty_cycle_wait(airtime, self.duty_cycle);
        self.total_airtime += airtime;
        self.tx_count += 1;
    }

    /// The configured duty cycle.
    pub fn duty_cycle(&self) -> f64 {
        self.duty_cycle
    }

    /// Cumulative airtime used.
    pub fn total_airtime(&self) -> SimDuration {
        self.total_airtime
    }

    /// Number of transmissions recorded.
    pub fn tx_count(&self) -> u64 {
        self.tx_count
    }

    /// The tracker's raw state `(duty_cycle, next_allowed, total_airtime,
    /// tx_count)` — the checkpoint counterpart of
    /// [`DutyCycleTracker::from_raw_parts`]. Unlike the individual
    /// accessors this exposes `next_allowed`, the silent-until instant the
    /// duty-cycle gate turns on.
    pub fn raw_parts(&self) -> (f64, SimTime, SimDuration, u64) {
        (
            self.duty_cycle,
            self.next_allowed,
            self.total_airtime,
            self.tx_count,
        )
    }

    /// Rebuilds a tracker from state captured by
    /// [`DutyCycleTracker::raw_parts`].
    ///
    /// # Panics
    ///
    /// Panics if `duty_cycle` is not in `(0, 1]`.
    pub fn from_raw_parts(
        duty_cycle: f64,
        next_allowed: SimTime,
        total_airtime: SimDuration,
        tx_count: u64,
    ) -> Self {
        let mut dc = DutyCycleTracker::new(duty_cycle);
        dc.next_allowed = next_allowed;
        dc.total_airtime = total_airtime;
        dc.tx_count = tx_count;
        dc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforces_one_percent() {
        let mut dc = DutyCycleTracker::new(0.01);
        let toa = SimDuration::from_millis(100);
        dc.record_tx(SimTime::ZERO, toa);
        // Busy until 100 ms + 9 900 ms.
        assert!(!dc.can_transmit(SimTime::from_millis(9_999)));
        assert!(dc.can_transmit(SimTime::from_millis(10_000)));
        assert_eq!(
            dc.next_opportunity(SimTime::ZERO),
            SimTime::from_millis(10_000)
        );
    }

    #[test]
    fn full_duty_cycle_only_waits_airtime() {
        let mut dc = DutyCycleTracker::new(1.0);
        dc.record_tx(SimTime::ZERO, SimDuration::from_millis(100));
        assert!(dc.can_transmit(SimTime::from_millis(100)));
    }

    #[test]
    fn accumulates_airtime_and_count() {
        let mut dc = DutyCycleTracker::new(0.01);
        dc.record_tx(SimTime::ZERO, SimDuration::from_millis(50));
        dc.record_tx(
            dc.next_opportunity(SimTime::ZERO),
            SimDuration::from_millis(70),
        );
        assert_eq!(dc.total_airtime(), SimDuration::from_millis(120));
        assert_eq!(dc.tx_count(), 2);
    }

    #[test]
    fn long_run_respects_cap() {
        // Transmit greedily for a simulated hour; airtime share must stay
        // at or below 1 %.
        let mut dc = DutyCycleTracker::new(0.01);
        let toa = SimDuration::from_millis(400);
        let horizon = SimTime::from_secs(3600);
        let mut t = SimTime::ZERO;
        while t < horizon {
            t = dc.next_opportunity(t);
            if t >= horizon {
                break;
            }
            dc.record_tx(t, toa);
            t += toa;
        }
        let share = dc.total_airtime().as_secs_f64() / 3600.0;
        assert!(share <= 0.0101, "duty share {share}");
        assert!(share > 0.009, "duty share suspiciously low {share}");
    }

    #[test]
    fn window_boundary_is_inclusive() {
        // The first legal instant after a transmission is exactly
        // `t + airtime + wait`: one millisecond earlier is refused, the
        // boundary itself is accepted, and transmitting at the boundary
        // does not trip the debug-mode violation check.
        let mut dc = DutyCycleTracker::new(0.01);
        let t0 = SimTime::from_secs(10);
        dc.record_tx(t0, SimDuration::from_millis(100));
        let boundary = t0 + SimDuration::from_millis(10_000);
        assert!(!dc.can_transmit(boundary - SimDuration::from_millis(1)));
        assert!(dc.can_transmit(boundary));
        assert_eq!(dc.next_opportunity(boundary), boundary);
        // A query from beyond the boundary never moves backwards in time.
        let later = boundary + SimDuration::from_secs(5);
        assert_eq!(dc.next_opportunity(later), later);
        dc.record_tx(boundary, SimDuration::from_millis(100));
        assert_eq!(dc.tx_count(), 2);
    }

    #[test]
    fn zero_airtime_leaves_window_open() {
        // A degenerate zero-length transmission consumes no budget: the
        // device may transmit again at the same instant.
        let mut dc = DutyCycleTracker::new(0.01);
        let t0 = SimTime::from_secs(3);
        dc.record_tx(t0, SimDuration::ZERO);
        assert!(dc.can_transmit(t0));
        assert_eq!(dc.next_opportunity(t0), t0);
        assert_eq!(dc.total_airtime(), SimDuration::ZERO);
    }

    #[test]
    fn fresh_tracker_allows_time_zero() {
        let dc = DutyCycleTracker::new(0.01);
        assert!(dc.can_transmit(SimTime::ZERO));
        assert_eq!(dc.next_opportunity(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(dc.tx_count(), 0);
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn invalid_duty_cycle_rejected() {
        let _ = DutyCycleTracker::new(1.5);
    }
}
