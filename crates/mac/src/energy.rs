//! Radio energy accounting.

use mlora_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Radio operating states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioState {
    /// Transmitting.
    Tx,
    /// Receiving / listening.
    Rx,
    /// Awake but radio idle.
    Idle,
    /// Deep sleep.
    Sleep,
}

/// Per-state power draw of the radio, in milliwatts.
///
/// Defaults approximate an SX1276 at +14 dBm on a 3.3 V supply:
/// TX ≈ 120 mA, RX ≈ 12 mA, idle ≈ 2 mA, sleep ≈ 1 µA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Transmit power draw, mW.
    pub tx_mw: f64,
    /// Receive/listen power draw, mW.
    pub rx_mw: f64,
    /// Idle power draw, mW.
    pub idle_mw: f64,
    /// Sleep power draw, mW.
    pub sleep_mw: f64,
}

impl EnergyModel {
    /// SX1276-style defaults at +14 dBm / 3.3 V.
    pub const fn sx1276() -> Self {
        EnergyModel {
            tx_mw: 396.0,
            rx_mw: 39.6,
            idle_mw: 6.6,
            sleep_mw: 0.0033,
        }
    }

    /// Power draw in the given state, mW.
    pub fn power_mw(&self, state: RadioState) -> f64 {
        match state {
            RadioState::Tx => self.tx_mw,
            RadioState::Rx => self.rx_mw,
            RadioState::Idle => self.idle_mw,
            RadioState::Sleep => self.sleep_mw,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::sx1276()
    }
}

/// Accumulates time in each radio state and converts to energy.
///
/// # Example
///
/// ```
/// use mlora_mac::{EnergyAccount, EnergyModel, RadioState};
/// use mlora_simcore::SimDuration;
///
/// let mut acct = EnergyAccount::new();
/// acct.add(RadioState::Tx, SimDuration::from_secs(1));
/// acct.add(RadioState::Sleep, SimDuration::from_secs(99));
/// let mj = acct.energy_mj(&EnergyModel::sx1276());
/// assert!(mj > 396.0 && mj < 397.0); // dominated by the 1 s of TX
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyAccount {
    tx: SimDuration,
    rx: SimDuration,
    idle: SimDuration,
    sleep: SimDuration,
}

impl EnergyAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        EnergyAccount::default()
    }

    /// Adds `dur` spent in `state`.
    pub fn add(&mut self, state: RadioState, dur: SimDuration) {
        match state {
            RadioState::Tx => self.tx += dur,
            RadioState::Rx => self.rx += dur,
            RadioState::Idle => self.idle += dur,
            RadioState::Sleep => self.sleep += dur,
        }
    }

    /// Time spent in `state`.
    pub fn time_in(&self, state: RadioState) -> SimDuration {
        match state {
            RadioState::Tx => self.tx,
            RadioState::Rx => self.rx,
            RadioState::Idle => self.idle,
            RadioState::Sleep => self.sleep,
        }
    }

    /// Total accounted time.
    pub fn total_time(&self) -> SimDuration {
        self.tx + self.rx + self.idle + self.sleep
    }

    /// Total energy in millijoules under `model`.
    pub fn energy_mj(&self, model: &EnergyModel) -> f64 {
        self.tx.as_secs_f64() * model.tx_mw
            + self.rx.as_secs_f64() * model.rx_mw
            + self.idle.as_secs_f64() * model.idle_mw
            + self.sleep.as_secs_f64() * model.sleep_mw
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &EnergyAccount) {
        self.tx += other.tx;
        self.rx += other.rx;
        self.idle += other.idle;
        self.sleep += other.sleep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_state() {
        let mut a = EnergyAccount::new();
        a.add(RadioState::Tx, SimDuration::from_secs(2));
        a.add(RadioState::Rx, SimDuration::from_secs(3));
        a.add(RadioState::Tx, SimDuration::from_secs(1));
        assert_eq!(a.time_in(RadioState::Tx), SimDuration::from_secs(3));
        assert_eq!(a.time_in(RadioState::Rx), SimDuration::from_secs(3));
        assert_eq!(a.total_time(), SimDuration::from_secs(6));
    }

    #[test]
    fn energy_weighted_by_power() {
        let model = EnergyModel {
            tx_mw: 100.0,
            rx_mw: 10.0,
            idle_mw: 1.0,
            sleep_mw: 0.0,
        };
        let mut a = EnergyAccount::new();
        a.add(RadioState::Tx, SimDuration::from_secs(1));
        a.add(RadioState::Rx, SimDuration::from_secs(10));
        a.add(RadioState::Sleep, SimDuration::from_hours(10));
        assert_eq!(a.energy_mj(&model), 200.0);
    }

    #[test]
    fn rx_dominates_always_on_listener() {
        // A Modified Class-C day is RX-dominated; a Queue-based Class-A
        // day with γ=0.2 saves roughly 80 % of that RX energy.
        let model = EnergyModel::sx1276();
        let mut class_c = EnergyAccount::new();
        class_c.add(RadioState::Rx, SimDuration::from_hours(24));
        let mut class_qa = EnergyAccount::new();
        class_qa.add(RadioState::Rx, SimDuration::from_hours(24).mul_f64(0.2));
        class_qa.add(RadioState::Sleep, SimDuration::from_hours(24).mul_f64(0.8));
        assert!(class_qa.energy_mj(&model) < 0.25 * class_c.energy_mj(&model));
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = EnergyAccount::new();
        a.add(RadioState::Idle, SimDuration::from_secs(5));
        let mut b = EnergyAccount::new();
        b.add(RadioState::Idle, SimDuration::from_secs(7));
        a.merge(&b);
        assert_eq!(a.time_in(RadioState::Idle), SimDuration::from_secs(12));
    }
}
