//! LoRaWAN MAC substrate for MLoRa-SS.
//!
//! Implements the medium-access behaviour the paper's §III.B and §VI rely
//! on:
//!
//! * [`AppMessage`] / [`UplinkFrame`] — application readings (20-byte
//!   default, arbitrary per-profile sizes), bundled up to twelve per
//!   frame — within the 255-byte PHY budget — with the sender's RCA-ETX
//!   and queue length piggybacked (§VII.A.5). Frames report their
//!   *actual* payload size, so airtime downstream is byte-true.
//! * [`DataQueue`] — the per-device application buffer: [`Priority`]
//!   classes ahead of each other, FIFO within a class.
//! * [`DutyCycleTracker`] — EU868 1 % duty-cycle enforcement.
//! * [`RetransmitPolicy`] — up to eight attempts, reset when a new packet
//!   is generated.
//! * [`DeviceClass`] — Class A/B/C plus the paper's **Modified Class-C**
//!   (always listening on the uplink channel) and **Queue-based Class-A**
//!   (receive window scaled by normalised backlog, Eq. 11).
//! * [`EnergyModel`] / [`EnergyAccount`] — time-in-state energy
//!   accounting for the class comparison (§VII.C).
//! * [`encode_frame`] / [`decode_frame`] — the reference wire layout for
//!   the metric-piggybacking uplink, for on-device ports.

#![deny(missing_docs)]

mod class;
mod codec;
mod dutycycle;
mod energy;
mod frame;
mod queue;
mod retransmit;

pub use class::{queue_based_window_fraction, ClassAWindows, DeviceClass};
pub use codec::{decode_frame, encode_frame, DecodeError};
pub use dutycycle::DutyCycleTracker;
pub use energy::{EnergyAccount, EnergyModel, RadioState};
pub use frame::{
    AppMessage, Priority, UplinkFrame, APP_MESSAGE_BYTES, FRAME_HEADER_BYTES, MAX_BUNDLE,
    MAX_BUNDLE_BYTES, MAX_FRAME_BYTES, METADATA_BYTES,
};
pub use queue::DataQueue;
pub use retransmit::RetransmitPolicy;
