//! LoRaWAN MAC substrate for MLoRa-SS.
//!
//! Implements the medium-access behaviour the paper's §III.B and §VI rely
//! on:
//!
//! * [`AppMessage`] / [`UplinkFrame`] — 20-byte application readings,
//!   bundled up to twelve per frame with the sender's RCA-ETX and queue
//!   length piggybacked (§VII.A.5).
//! * [`DataQueue`] — the per-device FIFO application buffer.
//! * [`DutyCycleTracker`] — EU868 1 % duty-cycle enforcement.
//! * [`RetransmitPolicy`] — up to eight attempts, reset when a new packet
//!   is generated.
//! * [`DeviceClass`] — Class A/B/C plus the paper's **Modified Class-C**
//!   (always listening on the uplink channel) and **Queue-based Class-A**
//!   (receive window scaled by normalised backlog, Eq. 11).
//! * [`EnergyModel`] / [`EnergyAccount`] — time-in-state energy
//!   accounting for the class comparison (§VII.C).
//! * [`encode_frame`] / [`decode_frame`] — the reference wire layout for
//!   the metric-piggybacking uplink, for on-device ports.

#![deny(missing_docs)]

mod class;
mod codec;
mod dutycycle;
mod energy;
mod frame;
mod queue;
mod retransmit;

pub use class::{queue_based_window_fraction, ClassAWindows, DeviceClass};
pub use codec::{decode_frame, encode_frame, DecodeError};
pub use dutycycle::DutyCycleTracker;
pub use energy::{EnergyAccount, EnergyModel, RadioState};
pub use frame::{
    AppMessage, UplinkFrame, APP_MESSAGE_BYTES, FRAME_HEADER_BYTES, MAX_BUNDLE, METADATA_BYTES,
};
pub use queue::DataQueue;
pub use retransmit::RetransmitPolicy;
