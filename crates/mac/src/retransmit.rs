//! Retransmission policy.

use serde::{Deserialize, Serialize};

/// The paper's retransmission rule (§VII.A.5): a device retries an
/// unacknowledged frame once its duty-cycle timer expires, up to eight
/// attempts, and the counter resets whenever a new packet is generated.
///
/// # Example
///
/// ```
/// use mlora_mac::RetransmitPolicy;
///
/// let mut rt = RetransmitPolicy::paper_default();
/// for _ in 0..7 {
///     assert!(rt.record_failure());
/// }
/// assert!(!rt.record_failure()); // eighth failure: give up
/// rt.reset();                    // new packet generated
/// assert!(rt.record_failure());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetransmitPolicy {
    max_attempts: u32,
    attempts: u32,
}

impl RetransmitPolicy {
    /// Creates a policy allowing `max_attempts` transmissions per frame.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn new(max_attempts: u32) -> Self {
        assert!(max_attempts > 0, "need at least one attempt");
        RetransmitPolicy {
            max_attempts,
            attempts: 0,
        }
    }

    /// The paper's setting: eight attempts.
    pub fn paper_default() -> Self {
        RetransmitPolicy::new(8)
    }

    /// Records a failed attempt; returns `true` if another retry is
    /// permitted.
    pub fn record_failure(&mut self) -> bool {
        self.attempts += 1;
        self.attempts < self.max_attempts
    }

    /// Resets the attempt counter (new packet generated, or a success).
    pub fn reset(&mut self) {
        self.attempts = 0;
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Maximum attempts per frame.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// True when no retries remain.
    pub fn exhausted(&self) -> bool {
        self.attempts >= self.max_attempts
    }

    /// Rebuilds a policy from `(max_attempts, attempts)` parts — the
    /// checkpoint counterpart of [`RetransmitPolicy::max_attempts`] and
    /// [`RetransmitPolicy::attempts`]. `attempts` may exceed
    /// `max_attempts`: denied post-exhaustion failures still count.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn from_parts(max_attempts: u32, attempts: u32) -> Self {
        let mut rt = RetransmitPolicy::new(max_attempts);
        rt.attempts = attempts;
        rt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_attempts_then_exhausted() {
        let mut rt = RetransmitPolicy::paper_default();
        let mut allowed = 0;
        while rt.record_failure() {
            allowed += 1;
        }
        assert_eq!(allowed, 7); // 8th failure exhausts
        assert!(rt.exhausted());
    }

    #[test]
    fn reset_restores_budget() {
        let mut rt = RetransmitPolicy::new(2);
        assert!(rt.record_failure());
        assert!(!rt.record_failure());
        rt.reset();
        assert_eq!(rt.attempts(), 0);
        assert!(!rt.exhausted());
        assert!(rt.record_failure());
    }

    #[test]
    fn failures_past_exhaustion_stay_denied() {
        // Once the budget is spent, further failures keep reporting
        // "give up" (the engine may race one more settle in) and the
        // policy stays exhausted until an explicit reset.
        let mut rt = RetransmitPolicy::new(3);
        while rt.record_failure() {}
        assert!(rt.exhausted());
        for _ in 0..4 {
            assert!(!rt.record_failure());
            assert!(rt.exhausted());
        }
        assert_eq!(rt.attempts(), 7); // 3 to exhaust + 4 denied
    }

    #[test]
    fn single_attempt_policy_exhausts_immediately() {
        let mut rt = RetransmitPolicy::new(1);
        assert!(!rt.exhausted());
        assert!(!rt.record_failure()); // the only attempt fails: give up
        assert!(rt.exhausted());
    }

    #[test]
    fn accessors_track_configuration() {
        let rt = RetransmitPolicy::paper_default();
        assert_eq!(rt.max_attempts(), 8);
        assert_eq!(rt.attempts(), 0);
        assert!(!rt.exhausted());
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = RetransmitPolicy::new(0);
    }
}
