//! LoRaWAN device classes, including the paper's two new classes (§VI).

use mlora_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The receive windows a Class-A device opens after an uplink: RX1 one
/// second after the uplink ends, RX2 two seconds after (§III.B, Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassAWindows {
    /// Delay from uplink end to RX1 opening.
    pub rx1_delay: SimDuration,
    /// Delay from uplink end to RX2 opening.
    pub rx2_delay: SimDuration,
    /// Length of each receive window.
    pub window: SimDuration,
}

impl Default for ClassAWindows {
    fn default() -> Self {
        ClassAWindows {
            rx1_delay: SimDuration::from_secs(1),
            rx2_delay: SimDuration::from_secs(2),
            window: SimDuration::from_millis(160),
        }
    }
}

/// A LoRaWAN device class, governing when the radio listens.
///
/// Standard classes listen on the *downlink* channel, so they can hear
/// gateways but never overhear peers. The paper's two new classes retune
/// reception to the shared uplink channel to enable device-to-device
/// forwarding (Fig. 5):
///
/// * [`DeviceClass::ModifiedClassC`] — always listening on the uplink
///   channel (except while transmitting); maximum overhearing, maximum
///   energy.
/// * [`DeviceClass::QueueBasedClassA`] — after each uplink, listens on
///   the uplink channel for `Δt · γ` where `γ` is the Eq. 11 normalised
///   backlog (see [`queue_based_window_fraction`]); heavier queues buy
///   longer windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Standard Class A: RX1/RX2 downlink windows only.
    ClassA,
    /// Standard Class B: Class A plus periodic downlink ping slots.
    ClassB {
        /// Interval between ping slots.
        ping_period: SimDuration,
    },
    /// Standard Class C: continuously listening on the downlink channel.
    ClassC,
    /// The paper's Modified Class-C: continuously listening on the
    /// **uplink** channel, switching away only to receive gateway
    /// acknowledgements.
    ModifiedClassC,
    /// The paper's Queue-based Class-A: uplink-channel receive window of
    /// length `Δt · γ` after each transmission (Eq. 11).
    QueueBasedClassA,
}

impl DeviceClass {
    /// Whether this device can overhear a peer's uplink at `now`.
    ///
    /// `last_tx_end` is the end of the device's most recent uplink,
    /// `comm_interval` is the device-to-sink interval `Δt`, and `gamma`
    /// the Eq. 11 window fraction (ignored by other classes). Transmission
    /// time itself is excluded by the caller (half-duplex radio).
    pub fn overhears(
        &self,
        now: SimTime,
        last_tx_end: Option<SimTime>,
        comm_interval: SimDuration,
        gamma: f64,
    ) -> bool {
        match self {
            // Standard classes listen on the downlink channel: no
            // device-to-device overhearing.
            DeviceClass::ClassA | DeviceClass::ClassB { .. } | DeviceClass::ClassC => false,
            DeviceClass::ModifiedClassC => true,
            DeviceClass::QueueBasedClassA => {
                let Some(end) = last_tx_end else {
                    return false;
                };
                let window = comm_interval.mul_f64(gamma.clamp(0.0, 1.0));
                now >= end && now < end + window
            }
        }
    }

    /// Average fraction of non-transmit time the radio spends in receive,
    /// for energy accounting.
    pub fn receive_duty(&self, gamma: f64) -> f64 {
        match self {
            DeviceClass::ClassA => 0.002, // two ~160 ms windows per uplink
            DeviceClass::ClassB { .. } => 0.01,
            DeviceClass::ClassC | DeviceClass::ModifiedClassC => 1.0,
            DeviceClass::QueueBasedClassA => gamma.clamp(0.0, 1.0),
        }
    }

    /// True for the classes able to take part in opportunistic
    /// device-to-device forwarding.
    pub fn supports_d2d(&self) -> bool {
        matches!(
            self,
            DeviceClass::ModifiedClassC | DeviceClass::QueueBasedClassA
        )
    }
}

/// The Eq. 11 receive-window fraction of Queue-based Class-A:
///
/// ```text
/// γx(t) = φ_max · Qx(t) / (φx(t) · Q_max)   clamped to ≤ 1
/// ```
///
/// Devices with heavier (RGQ-corrected) backlogs open longer windows,
/// raising their chance of hearing a neighbour they could offload to.
///
/// # Panics
///
/// Panics if `phi` or `phi_max` is not strictly positive, or if
/// `queue_max` is zero.
pub fn queue_based_window_fraction(
    phi: f64,
    phi_max: f64,
    queue_len: usize,
    queue_max: usize,
) -> f64 {
    assert!(phi > 0.0 && phi_max > 0.0, "RGQ must be positive");
    assert!(queue_max > 0, "queue capacity must be positive");
    let gamma = phi_max * queue_len as f64 / (phi * queue_max as f64);
    gamma.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: SimDuration = SimDuration::from_mins(3);

    #[test]
    fn standard_classes_never_overhear() {
        let t = SimTime::from_secs(100);
        for class in [
            DeviceClass::ClassA,
            DeviceClass::ClassB {
                ping_period: SimDuration::from_secs(32),
            },
            DeviceClass::ClassC,
        ] {
            assert!(!class.overhears(t, Some(SimTime::ZERO), DT, 1.0));
            assert!(!class.supports_d2d());
        }
    }

    #[test]
    fn modified_class_c_always_overhears() {
        let c = DeviceClass::ModifiedClassC;
        assert!(c.overhears(SimTime::ZERO, None, DT, 0.0));
        assert!(c.overhears(SimTime::from_secs(9999), Some(SimTime::ZERO), DT, 0.0));
        assert!(c.supports_d2d());
    }

    #[test]
    fn queue_based_window_gates_on_gamma() {
        let c = DeviceClass::QueueBasedClassA;
        let end = SimTime::from_secs(60);
        // γ = 0.5 of a 180 s interval: listening for 90 s after the uplink.
        assert!(c.overhears(end, Some(end), DT, 0.5));
        assert!(c.overhears(end + SimDuration::from_secs(89), Some(end), DT, 0.5));
        assert!(!c.overhears(end + SimDuration::from_secs(90), Some(end), DT, 0.5));
        // Never transmitted yet: no window.
        assert!(!c.overhears(end, None, DT, 1.0));
        // Zero backlog: no window.
        assert!(!c.overhears(end, Some(end), DT, 0.0));
    }

    #[test]
    fn window_fraction_eq11() {
        // φ = φ_max and a half-full queue: γ = 0.5.
        assert_eq!(queue_based_window_fraction(1.0, 1.0, 5, 10), 0.5);
        // Worse gateway quality (smaller φ) lengthens the window.
        assert_eq!(queue_based_window_fraction(0.5, 1.0, 5, 10), 1.0);
        // Clamped at 1.
        assert_eq!(queue_based_window_fraction(0.1, 1.0, 10, 10), 1.0);
        // Empty queue: no window.
        assert_eq!(queue_based_window_fraction(1.0, 1.0, 0, 10), 0.0);
    }

    #[test]
    fn receive_duty_ordering() {
        let gamma = 0.3;
        let a = DeviceClass::ClassA.receive_duty(gamma);
        let qa = DeviceClass::QueueBasedClassA.receive_duty(gamma);
        let mc = DeviceClass::ModifiedClassC.receive_duty(gamma);
        assert!(a < qa && qa < mc);
        assert_eq!(qa, gamma);
    }

    #[test]
    #[should_panic(expected = "RGQ must be positive")]
    fn zero_phi_rejected() {
        let _ = queue_based_window_fraction(0.0, 1.0, 1, 10);
    }
}
