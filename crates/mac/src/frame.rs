//! Application messages and uplink frames.

use mlora_simcore::{MessageId, NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// Size of one default application reading, bytes (§VII.A.4: 20-byte
/// message). Traffic profiles may generate readings of other sizes; this
/// is the paper's homogeneous default.
pub const APP_MESSAGE_BYTES: usize = 20;

/// LoRaWAN overhead per uplink frame, bytes: MHDR (1) + DevAddr (4) +
/// MIC (4). Kept compact so a full 12-message bundle plus the routing
/// metadata is exactly the 255-byte LoRa maximum the paper quotes.
pub const FRAME_HEADER_BYTES: usize = 9;

/// Most application messages bundled into one frame (§VII.A.5: "devices
/// select up to 12 messages from the queue").
pub const MAX_BUNDLE: usize = 12;

/// Bytes spent piggybacking the routing metadata (RCA-ETX as f32 plus a
/// 16-bit queue length).
pub const METADATA_BYTES: usize = 6;

/// The LoRa PHY payload maximum, bytes: no frame may exceed this.
pub const MAX_FRAME_BYTES: usize = mlora_phy::LORA_MAX_PAYLOAD_BYTES;

/// Byte budget for the bundled application payloads of one frame: the
/// PHY maximum minus the frame header and the piggybacked metadata.
/// Twelve default 20-byte readings fill it exactly.
pub const MAX_BUNDLE_BYTES: usize = MAX_FRAME_BYTES - FRAME_HEADER_BYTES - METADATA_BYTES;

/// Link-layer priority class of an application message.
///
/// Higher-priority messages are queued ahead of lower-priority ones
/// (FIFO within a class), so they ride the next available uplink slot
/// first. The paper's homogeneous workload is all [`Priority::Normal`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Priority {
    /// Background traffic: queued behind everything else.
    Low,
    /// The default class; the paper's whole workload runs here.
    #[default]
    Normal,
    /// Urgent traffic (alerts, panic buttons): jumps the queue.
    High,
}

impl Priority {
    /// All classes, lowest first.
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];

    /// A short label for tables and traces.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// One application reading.
///
/// Identity, provenance and traffic-model tags — the simulation never
/// materialises the payload bytes, but it carries the payload *size*
/// end-to-end so frame airtime reflects what was actually sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AppMessage {
    /// Globally unique message identity.
    pub id: MessageId,
    /// The device that generated the reading.
    pub origin: NodeId,
    /// Generation timestamp (`t_d(x)` in the paper's delay metric).
    pub created: SimTime,
    /// Application payload size, bytes (the paper's default reading is
    /// [`APP_MESSAGE_BYTES`]; traffic profiles may vary it).
    pub payload_bytes: u16,
    /// Index of the traffic profile that generated this reading (0 for
    /// the paper's homogeneous workload).
    pub profile: u8,
    /// Link-layer priority class.
    pub priority: Priority,
}

impl AppMessage {
    /// Creates a message record with the paper's defaults: a
    /// [`APP_MESSAGE_BYTES`]-byte, [`Priority::Normal`] reading from
    /// profile 0.
    pub fn new(id: MessageId, origin: NodeId, created: SimTime) -> Self {
        AppMessage {
            id,
            origin,
            created,
            payload_bytes: APP_MESSAGE_BYTES as u16,
            profile: 0,
            priority: Priority::Normal,
        }
    }

    /// Tags the message with a traffic profile's payload size, profile
    /// index and priority class (consuming builder style).
    ///
    /// # Example
    ///
    /// ```
    /// use mlora_mac::{AppMessage, Priority};
    /// use mlora_simcore::{MessageId, NodeId, SimTime};
    ///
    /// let msg = AppMessage::new(MessageId::new(1), NodeId::new(0), SimTime::ZERO)
    ///     .with_traffic(48, 2, Priority::High);
    /// assert_eq!(msg.payload_bytes, 48);
    /// assert_eq!(msg.priority, Priority::High);
    /// ```
    pub fn with_traffic(mut self, payload_bytes: u16, profile: u8, priority: Priority) -> Self {
        self.payload_bytes = payload_bytes;
        self.profile = profile;
        self.priority = priority;
        self
    }
}

/// An uplink data frame: up to [`MAX_BUNDLE`] bundled messages plus the
/// sender's routing metadata (§VII.A.5: devices "append their RCA-ETX
/// value and data queue size to the data packets").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UplinkFrame {
    /// Transmitting device.
    pub sender: NodeId,
    /// Bundled application messages, oldest first.
    pub messages: Vec<AppMessage>,
    /// Sender's node-to-sink RCA-ETX estimate, seconds.
    pub rca_etx: f64,
    /// Sender's queue length (messages) at transmission time.
    pub queue_len: usize,
}

impl UplinkFrame {
    /// Builds a frame.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_BUNDLE`] messages are supplied or the
    /// bundled payloads overflow the [`MAX_FRAME_BYTES`] PHY maximum.
    pub fn new(sender: NodeId, messages: Vec<AppMessage>, rca_etx: f64, queue_len: usize) -> Self {
        assert!(
            messages.len() <= MAX_BUNDLE,
            "frame bundles at most {MAX_BUNDLE} messages, got {}",
            messages.len()
        );
        let frame = UplinkFrame {
            sender,
            messages,
            rca_etx,
            queue_len,
        };
        assert!(
            frame.payload_bytes() <= MAX_FRAME_BYTES,
            "frame payload {} exceeds the {MAX_FRAME_BYTES}-byte LoRa maximum",
            frame.payload_bytes()
        );
        frame
    }

    /// PHY payload size of this frame, bytes: header, metadata and the
    /// *actual* bundled payload sizes (not a per-message constant), so
    /// airtime downstream reflects what each profile put on the air.
    pub fn payload_bytes(&self) -> usize {
        FRAME_HEADER_BYTES
            + METADATA_BYTES
            + self
                .messages
                .iter()
                .map(|m| m.payload_bytes as usize)
                .sum::<usize>()
    }

    /// Number of bundled messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True if the frame carries no application messages (a pure metric
    /// beacon).
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(i: u64) -> AppMessage {
        AppMessage::new(MessageId::new(i), NodeId::new(0), SimTime::ZERO)
    }

    #[test]
    fn payload_size_fits_lora_maximum() {
        let msgs: Vec<AppMessage> = (0..MAX_BUNDLE as u64).map(msg).collect();
        let frame = UplinkFrame::new(NodeId::new(1), msgs, 10.0, 30);
        // 9 + 6 + 12*20 = 255, the LoRa PHY maximum exactly.
        assert_eq!(
            frame.payload_bytes(),
            FRAME_HEADER_BYTES + METADATA_BYTES + 240
        );
        assert!(frame.payload_bytes() <= MAX_FRAME_BYTES);
        assert_eq!(MAX_BUNDLE_BYTES, 240);
    }

    #[test]
    fn payload_size_tracks_actual_message_bytes() {
        let msgs = vec![
            msg(1).with_traffic(8, 1, Priority::High),
            msg(2).with_traffic(100, 2, Priority::Low),
        ];
        let frame = UplinkFrame::new(NodeId::new(1), msgs, 10.0, 2);
        assert_eq!(
            frame.payload_bytes(),
            FRAME_HEADER_BYTES + METADATA_BYTES + 108
        );
    }

    #[test]
    fn empty_frame_is_beacon() {
        let frame = UplinkFrame::new(NodeId::new(1), Vec::new(), 5.0, 0);
        assert!(frame.is_empty());
        assert_eq!(frame.payload_bytes(), FRAME_HEADER_BYTES + METADATA_BYTES);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn overfull_bundle_rejected() {
        let msgs: Vec<AppMessage> = (0..(MAX_BUNDLE as u64 + 1)).map(msg).collect();
        let _ = UplinkFrame::new(NodeId::new(1), msgs, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "LoRa maximum")]
    fn oversized_bundle_rejected() {
        let msgs: Vec<AppMessage> = (0..3u64)
            .map(|i| msg(i).with_traffic(100, 0, Priority::Normal))
            .collect();
        let _ = UplinkFrame::new(NodeId::new(1), msgs, 1.0, 0);
    }

    #[test]
    fn message_equality_by_fields() {
        assert_eq!(msg(1), msg(1));
        assert_ne!(msg(1), msg(2));
        assert_ne!(msg(1), msg(1).with_traffic(21, 0, Priority::Normal));
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::High.label(), "high");
    }
}
