//! Application messages and uplink frames.

use mlora_simcore::{MessageId, NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// Size of one application reading, bytes (§VII.A.4: 20-byte message).
pub const APP_MESSAGE_BYTES: usize = 20;

/// LoRaWAN overhead per uplink frame, bytes: MHDR (1) + DevAddr (4) +
/// MIC (4). Kept compact so a full 12-message bundle plus the routing
/// metadata is exactly the 255-byte LoRa maximum the paper quotes.
pub const FRAME_HEADER_BYTES: usize = 9;

/// Most application messages bundled into one frame (§VII.A.5: "devices
/// select up to 12 messages from the queue").
pub const MAX_BUNDLE: usize = 12;

/// Bytes spent piggybacking the routing metadata (RCA-ETX as f32 plus a
/// 16-bit queue length).
pub const METADATA_BYTES: usize = 6;

/// One 20-byte application reading.
///
/// Identity and provenance only — the simulation never materialises the
/// payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AppMessage {
    /// Globally unique message identity.
    pub id: MessageId,
    /// The device that generated the reading.
    pub origin: NodeId,
    /// Generation timestamp (`t_d(x)` in the paper's delay metric).
    pub created: SimTime,
}

impl AppMessage {
    /// Creates a message record.
    pub fn new(id: MessageId, origin: NodeId, created: SimTime) -> Self {
        AppMessage {
            id,
            origin,
            created,
        }
    }
}

/// An uplink data frame: up to [`MAX_BUNDLE`] bundled messages plus the
/// sender's routing metadata (§VII.A.5: devices "append their RCA-ETX
/// value and data queue size to the data packets").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UplinkFrame {
    /// Transmitting device.
    pub sender: NodeId,
    /// Bundled application messages, oldest first.
    pub messages: Vec<AppMessage>,
    /// Sender's node-to-sink RCA-ETX estimate, seconds.
    pub rca_etx: f64,
    /// Sender's queue length (messages) at transmission time.
    pub queue_len: usize,
}

impl UplinkFrame {
    /// Builds a frame.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_BUNDLE`] messages are supplied.
    pub fn new(sender: NodeId, messages: Vec<AppMessage>, rca_etx: f64, queue_len: usize) -> Self {
        assert!(
            messages.len() <= MAX_BUNDLE,
            "frame bundles at most {MAX_BUNDLE} messages, got {}",
            messages.len()
        );
        UplinkFrame {
            sender,
            messages,
            rca_etx,
            queue_len,
        }
    }

    /// PHY payload size of this frame, bytes.
    pub fn payload_bytes(&self) -> usize {
        FRAME_HEADER_BYTES + METADATA_BYTES + self.messages.len() * APP_MESSAGE_BYTES
    }

    /// Number of bundled messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True if the frame carries no application messages (a pure metric
    /// beacon).
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(i: u64) -> AppMessage {
        AppMessage::new(MessageId::new(i), NodeId::new(0), SimTime::ZERO)
    }

    #[test]
    fn payload_size_fits_lora_maximum() {
        let msgs: Vec<AppMessage> = (0..MAX_BUNDLE as u64).map(msg).collect();
        let frame = UplinkFrame::new(NodeId::new(1), msgs, 10.0, 30);
        // 9 + 6 + 12*20 = 255, the LoRa PHY maximum exactly.
        assert_eq!(
            frame.payload_bytes(),
            FRAME_HEADER_BYTES + METADATA_BYTES + 240
        );
        assert!(frame.payload_bytes() <= 255);
    }

    #[test]
    fn empty_frame_is_beacon() {
        let frame = UplinkFrame::new(NodeId::new(1), Vec::new(), 5.0, 0);
        assert!(frame.is_empty());
        assert_eq!(frame.payload_bytes(), FRAME_HEADER_BYTES + METADATA_BYTES);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn overfull_bundle_rejected() {
        let msgs: Vec<AppMessage> = (0..(MAX_BUNDLE as u64 + 1)).map(msg).collect();
        let _ = UplinkFrame::new(NodeId::new(1), msgs, 1.0, 0);
    }

    #[test]
    fn message_equality_by_fields() {
        assert_eq!(msg(1), msg(1));
        assert_ne!(msg(1), msg(2));
    }
}
