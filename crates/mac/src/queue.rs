//! Per-device FIFO application data queue.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::AppMessage;

/// The first-in-first-out application buffer of a device (§VII.A.4).
///
/// Messages stay queued until the device learns they were delivered (a
/// gateway acknowledgement) or hands them to a neighbour. The queue is
/// bounded; when full, the **oldest** message is dropped (freshest-data
/// retention, the usual choice for telemetry) and counted.
///
/// # Example
///
/// ```
/// use mlora_mac::{AppMessage, DataQueue};
/// use mlora_simcore::{MessageId, NodeId, SimTime};
///
/// let mut q = DataQueue::new(2);
/// for i in 0..3 {
///     q.push(AppMessage::new(MessageId::new(i), NodeId::new(0), SimTime::ZERO));
/// }
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.dropped(), 1);
/// assert_eq!(q.peek_front(2)[0].id, MessageId::new(1)); // msg-0 was dropped
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataQueue {
    buf: VecDeque<AppMessage>,
    capacity: usize,
    dropped: u64,
}

impl DataQueue {
    /// Creates a queue holding at most `capacity` messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        DataQueue {
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a message; drops (and counts) the oldest if full.
    pub fn push(&mut self, msg: AppMessage) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(msg);
    }

    /// The oldest `n` messages without removing them (fewer if the queue
    /// is shorter).
    pub fn peek_front(&self, n: usize) -> Vec<AppMessage> {
        self.buf.iter().take(n).copied().collect()
    }

    /// Removes and returns the oldest `n` messages.
    pub fn pop_front(&mut self, n: usize) -> Vec<AppMessage> {
        let n = n.min(self.buf.len());
        self.buf.drain(..n).collect()
    }

    /// Removes the specific `messages` (by identity) wherever they sit in
    /// the queue; returns how many were found and removed.
    ///
    /// Used when an acknowledgement confirms delivery of an earlier
    /// bundle: new messages may have arrived since, so removal cannot
    /// assume the bundle is still at the front.
    pub fn remove(&mut self, messages: &[AppMessage]) -> usize {
        let before = self.buf.len();
        self.buf.retain(|m| !messages.iter().any(|d| d.id == m.id));
        before - self.buf.len()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Messages dropped so far due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over queued messages, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &AppMessage> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlora_simcore::{MessageId, NodeId, SimTime};

    fn msg(i: u64) -> AppMessage {
        AppMessage::new(MessageId::new(i), NodeId::new(0), SimTime::ZERO)
    }

    #[test]
    fn fifo_order() {
        let mut q = DataQueue::new(10);
        for i in 0..5 {
            q.push(msg(i));
        }
        let popped = q.pop_front(3);
        assert_eq!(
            popped.iter().map(|m| m.id.raw()).collect::<Vec<_>>(),
            [0, 1, 2]
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut q = DataQueue::new(3);
        for i in 0..5 {
            q.push(msg(i));
        }
        assert_eq!(q.dropped(), 2);
        let ids: Vec<u64> = q.iter().map(|m| m.id.raw()).collect();
        assert_eq!(ids, [2, 3, 4]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = DataQueue::new(10);
        q.push(msg(1));
        let peeked = q.peek_front(5);
        assert_eq!(peeked.len(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn remove_by_identity_anywhere() {
        let mut q = DataQueue::new(10);
        for i in 0..6 {
            q.push(msg(i));
        }
        let removed = q.remove(&[msg(1), msg(4), msg(99)]);
        assert_eq!(removed, 2);
        let ids: Vec<u64> = q.iter().map(|m| m.id.raw()).collect();
        assert_eq!(ids, [0, 2, 3, 5]);
    }

    #[test]
    fn pop_more_than_available() {
        let mut q = DataQueue::new(4);
        q.push(msg(1));
        assert_eq!(q.pop_front(10).len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = DataQueue::new(0);
    }
}
