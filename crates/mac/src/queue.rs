//! Per-device priority-aware application data queue.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::{AppMessage, Priority};

/// The application buffer of a device (§VII.A.4).
///
/// Messages stay queued until the device learns they were delivered (a
/// gateway acknowledgement) or hands them to a neighbour. The queue
/// orders by [`Priority`] — higher classes ahead of lower ones, FIFO
/// within a class — which degenerates to plain FIFO (and costs nothing
/// extra) when every message shares one class, as in the paper's
/// homogeneous workload. The queue is bounded; when full, the **oldest
/// message of the lowest class present** is dropped (freshest-data
/// retention, and urgent traffic is never evicted by background
/// readings) and counted.
///
/// # Example
///
/// ```
/// use mlora_mac::{AppMessage, DataQueue};
/// use mlora_simcore::{MessageId, NodeId, SimTime};
///
/// let mut q = DataQueue::new(2);
/// for i in 0..3 {
///     q.push(AppMessage::new(MessageId::new(i), NodeId::new(0), SimTime::ZERO));
/// }
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.dropped(), 1);
/// assert_eq!(q.peek_front(2)[0].id, MessageId::new(1)); // msg-0 was dropped
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataQueue {
    buf: VecDeque<AppMessage>,
    capacity: usize,
    dropped: u64,
}

impl DataQueue {
    /// Creates a queue holding at most `capacity` messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        DataQueue {
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Enqueues a message behind every message of its class or higher;
    /// drops (and counts) the oldest lowest-class message if full.
    ///
    /// When all messages share one priority this is exactly the old
    /// FIFO: the back-scan terminates immediately and overflow drops the
    /// head of the queue.
    pub fn push(&mut self, msg: AppMessage) {
        if self.buf.len() == self.capacity {
            self.drop_one_for(msg.priority);
            if self.buf.len() == self.capacity {
                // The newcomer itself is the lowest class in a full
                // queue of strictly higher classes: it is the drop.
                self.dropped += 1;
                return;
            }
        }
        // The buffer is ordered by descending priority (stable within a
        // class), so the insertion point is found scanning from the back
        // — zero iterations in the single-class case.
        let mut at = self.buf.len();
        while at > 0 && self.buf[at - 1].priority < msg.priority {
            at -= 1;
        }
        if at == self.buf.len() {
            self.buf.push_back(msg);
        } else {
            self.buf.insert(at, msg);
        }
    }

    /// Evicts the oldest message of the lowest class present, provided
    /// that class is no higher than `incoming` (so a low-priority
    /// arrival never evicts queued urgent traffic).
    fn drop_one_for(&mut self, incoming: Priority) {
        let Some(lowest) = self.buf.back().map(|m| m.priority) else {
            return;
        };
        if lowest > incoming {
            return;
        }
        // Descending order means the lowest class is the contiguous tail
        // region; its oldest member is the first element from the front
        // whose priority has dropped to `lowest`. In the uniform-class
        // case the head qualifies immediately, so overflow eviction is a
        // front removal — exactly the legacy FIFO drop.
        let at = self
            .buf
            .iter()
            .position(|m| m.priority == lowest)
            .expect("lowest priority was read from the buffer");
        self.buf.remove(at);
        self.dropped += 1;
    }

    /// Accepts a whole handover bundle: enqueues every message in order
    /// (each by the class-aware [`DataQueue::push`] rule) and returns
    /// how many messages the transfer overflowed — the queue-side hook
    /// forwarding policies move data through.
    ///
    /// # Example
    ///
    /// ```
    /// use mlora_mac::{AppMessage, DataQueue};
    /// use mlora_simcore::{MessageId, NodeId, SimTime};
    ///
    /// let mut q = DataQueue::new(2);
    /// let bundle: Vec<AppMessage> = (0..3)
    ///     .map(|i| AppMessage::new(MessageId::new(i), NodeId::new(1), SimTime::ZERO))
    ///     .collect();
    /// assert_eq!(q.push_bundle(&bundle), 1); // one message overflowed
    /// assert_eq!(q.len(), 2);
    /// ```
    pub fn push_bundle(&mut self, messages: &[AppMessage]) -> u64 {
        let drops_before = self.dropped;
        for msg in messages {
            self.push(*msg);
        }
        self.dropped - drops_before
    }

    /// The frontmost `n` messages without removing them (fewer if the
    /// queue is shorter).
    pub fn peek_front(&self, n: usize) -> Vec<AppMessage> {
        self.buf.iter().take(n).copied().collect()
    }

    /// The longest front prefix of at most `n` messages whose payloads
    /// fit `byte_budget` bytes — the bundle-selection primitive for
    /// byte-true frames. Any message whose payload fits the whole budget
    /// on its own is guaranteed inclusion when it reaches the front.
    pub fn peek_front_within(&self, n: usize, byte_budget: usize) -> Vec<AppMessage> {
        let mut out = Vec::new();
        let mut bytes = 0usize;
        for msg in self.buf.iter().take(n) {
            let next = bytes + msg.payload_bytes as usize;
            if next > byte_budget {
                break;
            }
            bytes = next;
            out.push(*msg);
        }
        out
    }

    /// Removes and returns the frontmost `n` messages.
    pub fn pop_front(&mut self, n: usize) -> Vec<AppMessage> {
        let n = n.min(self.buf.len());
        self.buf.drain(..n).collect()
    }

    /// Removes the specific `messages` (by identity) wherever they sit in
    /// the queue; returns how many were found and removed.
    ///
    /// Used when an acknowledgement confirms delivery of an earlier
    /// bundle: new messages may have arrived since, so removal cannot
    /// assume the bundle is still at the front.
    pub fn remove(&mut self, messages: &[AppMessage]) -> usize {
        let before = self.buf.len();
        self.buf.retain(|m| !messages.iter().any(|d| d.id == m.id));
        before - self.buf.len()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Messages dropped so far due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over queued messages, front (next to transmit) first.
    pub fn iter(&self) -> impl Iterator<Item = &AppMessage> {
        self.buf.iter()
    }

    /// Rebuilds a queue from checkpoint parts: `messages` front-first in
    /// the exact stored order (already descending by class), plus the
    /// historical overflow count. The counterpart of
    /// [`DataQueue::iter`]/[`DataQueue::capacity`]/[`DataQueue::dropped`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `messages` exceeds it.
    pub fn from_parts(
        capacity: usize,
        dropped: u64,
        messages: impl IntoIterator<Item = AppMessage>,
    ) -> Self {
        let mut q = DataQueue::new(capacity);
        q.buf.extend(messages);
        assert!(
            q.buf.len() <= capacity,
            "restored queue exceeds its capacity"
        );
        debug_assert!(
            q.buf
                .iter()
                .zip(q.buf.iter().skip(1))
                .all(|(a, b)| a.priority >= b.priority),
            "restored queue must be ordered by descending priority"
        );
        q.dropped = dropped;
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlora_simcore::{MessageId, NodeId, SimTime};

    fn msg(i: u64) -> AppMessage {
        AppMessage::new(MessageId::new(i), NodeId::new(0), SimTime::ZERO)
    }

    fn prio(i: u64, p: Priority) -> AppMessage {
        msg(i).with_traffic(20, 0, p)
    }

    #[test]
    fn fifo_order() {
        let mut q = DataQueue::new(10);
        for i in 0..5 {
            q.push(msg(i));
        }
        let popped = q.pop_front(3);
        assert_eq!(
            popped.iter().map(|m| m.id.raw()).collect::<Vec<_>>(),
            [0, 1, 2]
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut q = DataQueue::new(3);
        for i in 0..5 {
            q.push(msg(i));
        }
        assert_eq!(q.dropped(), 2);
        let ids: Vec<u64> = q.iter().map(|m| m.id.raw()).collect();
        assert_eq!(ids, [2, 3, 4]);
    }

    #[test]
    fn priority_jumps_the_queue_fifo_within_class() {
        let mut q = DataQueue::new(10);
        q.push(prio(0, Priority::Normal));
        q.push(prio(1, Priority::Low));
        q.push(prio(2, Priority::High));
        q.push(prio(3, Priority::Normal));
        q.push(prio(4, Priority::High));
        let ids: Vec<u64> = q.iter().map(|m| m.id.raw()).collect();
        assert_eq!(ids, [2, 4, 0, 3, 1]);
    }

    #[test]
    fn overflow_evicts_lowest_class_never_urgent() {
        let mut q = DataQueue::new(3);
        q.push(prio(0, Priority::High));
        q.push(prio(1, Priority::Low));
        q.push(prio(2, Priority::Low));
        // A Normal arrival evicts the *oldest Low*, not the head.
        q.push(prio(3, Priority::Normal));
        let ids: Vec<u64> = q.iter().map(|m| m.id.raw()).collect();
        assert_eq!(ids, [0, 3, 2]);
        assert_eq!(q.dropped(), 1);
        // A Low arrival into a full queue of higher classes drops itself.
        q.push(prio(4, Priority::High));
        assert_eq!(q.len(), 3);
        q.push(prio(5, Priority::Low));
        let ids: Vec<u64> = q.iter().map(|m| m.id.raw()).collect();
        assert_eq!(ids, [0, 4, 3]);
        assert_eq!(q.dropped(), 3);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = DataQueue::new(10);
        q.push(msg(1));
        let peeked = q.peek_front(5);
        assert_eq!(peeked.len(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_front_within_respects_byte_budget() {
        let mut q = DataQueue::new(10);
        q.push(prio(0, Priority::Normal).with_traffic(100, 0, Priority::Normal));
        q.push(prio(1, Priority::Normal).with_traffic(100, 0, Priority::Normal));
        q.push(prio(2, Priority::Normal).with_traffic(100, 0, Priority::Normal));
        let bundle = q.peek_front_within(12, 240);
        assert_eq!(bundle.len(), 2);
        // Message-count cap still applies.
        assert_eq!(q.peek_front_within(1, 240).len(), 1);
        // Uniform 20-byte messages reproduce the legacy prefix exactly.
        let mut q = DataQueue::new(20);
        for i in 0..15 {
            q.push(msg(i));
        }
        assert_eq!(q.peek_front_within(12, 240), q.peek_front(12));
    }

    #[test]
    fn push_bundle_counts_only_new_drops() {
        let mut q = DataQueue::new(3);
        // Pre-existing overflow must not leak into the bundle's count.
        for i in 0..4 {
            q.push(msg(i));
        }
        assert_eq!(q.dropped(), 1);
        let bundle: Vec<AppMessage> = (10..14).map(msg).collect();
        assert_eq!(q.push_bundle(&bundle), 4);
        assert_eq!(q.dropped(), 5);
        // Order and class rules match element-wise push exactly.
        let ids: Vec<u64> = q.iter().map(|m| m.id.raw()).collect();
        assert_eq!(ids, [11, 12, 13]);
        // An empty bundle is a no-op.
        assert_eq!(q.push_bundle(&[]), 0);
    }

    #[test]
    fn remove_by_identity_anywhere() {
        let mut q = DataQueue::new(10);
        for i in 0..6 {
            q.push(msg(i));
        }
        let removed = q.remove(&[msg(1), msg(4), msg(99)]);
        assert_eq!(removed, 2);
        let ids: Vec<u64> = q.iter().map(|m| m.id.raw()).collect();
        assert_eq!(ids, [0, 2, 3, 5]);
    }

    #[test]
    fn pop_more_than_available() {
        let mut q = DataQueue::new(4);
        q.push(msg(1));
        assert_eq!(q.pop_front(10).len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = DataQueue::new(0);
    }
}
