//! The block-framed container: header, sections, checksummed blocks,
//! and the streaming writer/reader pair.

use std::io::{Read, Write};

use crate::wire::{crc32, get_varint, put_varint, Enc};

/// The four magic bytes every `.mlsc` file starts with.
pub const MAGIC: [u8; 4] = *b"MLSC";

/// Current container format version (little-endian `u16` after the
/// magic). Readers reject files with a newer major version.
pub const FORMAT_VERSION: u16 = 1;

/// Upper bound on one block's payload size; blocks claiming more are
/// treated as corruption rather than allocated.
pub const MAX_BLOCK_BYTES: usize = 256 * 1024 * 1024;

/// Target payload size at which the writer cuts a block. Records never
/// span blocks, so a block may exceed this by one record.
const BLOCK_TARGET: usize = 64 * 1024;

/// Error decoding (or, for IO failures, encoding) a scenario container.
#[derive(Debug)]
pub enum ScenarioIoError {
    /// An underlying IO operation failed.
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The file's format version is newer than this reader supports.
    UnsupportedVersion(u16),
    /// The file ended mid-structure (a short block, or no end marker).
    Truncated,
    /// A block's payload does not match its stored CRC32.
    ChecksumMismatch,
    /// A structural invariant was violated; the message names it.
    Corrupt(&'static str),
    /// A required section is absent; the message names it.
    MissingSection(&'static str),
    /// The scenario uses a feature the format cannot carry; the message
    /// names it.
    Unsupported(&'static str),
    /// Decoded world parts violate a network invariant.
    World(mlora_mobility::NetworkError),
}

impl std::fmt::Display for ScenarioIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioIoError::Io(e) => write!(f, "scenario io: {e}"),
            ScenarioIoError::BadMagic => write!(f, "not a scenario file (bad magic)"),
            ScenarioIoError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "scenario format version {v} is newer than supported ({FORMAT_VERSION})"
                )
            }
            ScenarioIoError::Truncated => write!(f, "scenario file is truncated"),
            ScenarioIoError::ChecksumMismatch => write!(f, "scenario block checksum mismatch"),
            ScenarioIoError::Corrupt(what) => write!(f, "corrupt scenario file: {what}"),
            ScenarioIoError::MissingSection(what) => {
                write!(f, "scenario file is missing its {what} section")
            }
            ScenarioIoError::Unsupported(what) => {
                write!(f, "scenario cannot be serialized: {what}")
            }
            ScenarioIoError::World(e) => write!(f, "scenario world is inconsistent: {e}"),
        }
    }
}

impl std::error::Error for ScenarioIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioIoError::Io(e) => Some(e),
            ScenarioIoError::World(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ScenarioIoError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ScenarioIoError::Truncated
        } else {
            ScenarioIoError::Io(e)
        }
    }
}

impl From<mlora_mobility::NetworkError> for ScenarioIoError {
    fn from(e: mlora_mobility::NetworkError) -> Self {
        ScenarioIoError::World(e)
    }
}

/// Streaming scenario writer.
///
/// Sections are written in order; within a section, codecs encode one
/// record at a time into [`ScenarioWriter::enc`] and seal it with
/// [`ScenarioWriter::end_record`]. The writer cuts a checksummed block
/// at the first record boundary past ~64 KiB, so peak buffered memory
/// is one block regardless of world size.
#[derive(Debug)]
pub struct ScenarioWriter<W: Write> {
    out: W,
    block: Enc,
    scratch: Vec<u8>,
    section_open: bool,
    records_promised: u64,
    records_written: u64,
}

impl<W: Write> ScenarioWriter<W> {
    /// Creates a writer over `out` and writes the container header.
    ///
    /// # Errors
    ///
    /// Propagates IO errors from `out`.
    pub fn new(out: W) -> std::io::Result<Self> {
        ScenarioWriter::with_magic(out, MAGIC)
    }

    /// Creates a writer whose header carries `magic` instead of
    /// [`MAGIC`] — for sibling formats (e.g. engine snapshots) that
    /// reuse the block framing under their own four-byte signature.
    ///
    /// # Errors
    ///
    /// Propagates IO errors from `out`.
    pub fn with_magic(mut out: W, magic: [u8; 4]) -> std::io::Result<Self> {
        out.write_all(&magic)?;
        out.write_all(&FORMAT_VERSION.to_le_bytes())?;
        Ok(ScenarioWriter {
            out,
            block: Enc::default(),
            scratch: Vec::new(),
            section_open: false,
            records_promised: 0,
            records_written: 0,
        })
    }

    /// Opens a section that will carry exactly `records` records.
    ///
    /// # Panics
    ///
    /// Panics if a section is already open or `id` is the end marker.
    ///
    /// # Errors
    ///
    /// Propagates IO errors from the sink.
    pub fn begin_section(&mut self, id: u8, records: u64) -> std::io::Result<()> {
        assert!(!self.section_open, "previous section still open");
        assert_ne!(id, crate::section::END, "section id 0 is the end marker");
        self.section_open = true;
        self.records_promised = records;
        self.records_written = 0;
        self.scratch.clear();
        self.scratch.push(id);
        put_varint(&mut self.scratch, records);
        self.out.write_all(&self.scratch)
    }

    /// The encoder for the record currently being written.
    pub fn enc(&mut self) -> &mut Enc {
        &mut self.block
    }

    /// Seals the current record, cutting a block if the target size is
    /// reached.
    ///
    /// # Panics
    ///
    /// Panics if no section is open.
    ///
    /// # Errors
    ///
    /// Propagates IO errors from the sink.
    pub fn end_record(&mut self) -> std::io::Result<()> {
        assert!(self.section_open, "record written outside a section");
        self.records_written += 1;
        if self.block.len() >= BLOCK_TARGET {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Closes the current section, flushing the final block and writing
    /// the zero-length terminator.
    ///
    /// # Panics
    ///
    /// Panics if no section is open or the record count does not match
    /// the promise made to [`ScenarioWriter::begin_section`].
    ///
    /// # Errors
    ///
    /// Propagates IO errors from the sink.
    pub fn end_section(&mut self) -> std::io::Result<()> {
        assert!(self.section_open, "no section open");
        assert_eq!(
            self.records_written, self.records_promised,
            "section wrote a different record count than promised"
        );
        self.flush_block()?;
        self.scratch.clear();
        put_varint(&mut self.scratch, 0);
        self.out.write_all(&self.scratch)?;
        self.section_open = false;
        Ok(())
    }

    /// Writes the end marker, flushes, and returns the sink.
    ///
    /// # Panics
    ///
    /// Panics if a section is still open.
    ///
    /// # Errors
    ///
    /// Propagates IO errors from the sink.
    pub fn finish(mut self) -> std::io::Result<W> {
        assert!(!self.section_open, "finish with a section still open");
        self.out.write_all(&[crate::section::END])?;
        self.out.flush()?;
        Ok(self.out)
    }

    fn flush_block(&mut self) -> std::io::Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let payload = self.block.as_slice();
        self.scratch.clear();
        put_varint(&mut self.scratch, payload.len() as u64);
        self.scratch
            .extend_from_slice(&crc32(payload).to_le_bytes());
        self.out.write_all(&self.scratch)?;
        self.out.write_all(payload)?;
        self.block.clear();
        Ok(())
    }
}

/// Streaming scenario reader.
///
/// Drive it with [`ScenarioReader::next_section`], then decode each
/// record by calling [`ScenarioReader::begin_record`] followed by the
/// typed getters. Only one block is resident at a time; a record that
/// runs past its block is reported as corruption.
#[derive(Debug)]
pub struct ScenarioReader<R: Read> {
    input: R,
    block: Vec<u8>,
    pos: usize,
    in_section: bool,
    records_left: u64,
    finished: bool,
}

impl<R: Read> ScenarioReader<R> {
    /// Creates a reader over `input`, validating the container header.
    ///
    /// # Errors
    ///
    /// [`ScenarioIoError::BadMagic`] /
    /// [`ScenarioIoError::UnsupportedVersion`] on a foreign or
    /// newer-format file, [`ScenarioIoError::Truncated`] on a short one.
    pub fn new(input: R) -> Result<Self, ScenarioIoError> {
        ScenarioReader::with_magic(input, MAGIC)
    }

    /// Creates a reader expecting `expected_magic` instead of [`MAGIC`]
    /// — the counterpart of [`ScenarioWriter::with_magic`].
    ///
    /// # Errors
    ///
    /// As [`ScenarioReader::new`], with [`ScenarioIoError::BadMagic`]
    /// judged against `expected_magic`.
    pub fn with_magic(mut input: R, expected_magic: [u8; 4]) -> Result<Self, ScenarioIoError> {
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic)?;
        if magic != expected_magic {
            return Err(ScenarioIoError::BadMagic);
        }
        let mut version = [0u8; 2];
        input.read_exact(&mut version)?;
        let version = u16::from_le_bytes(version);
        if version > FORMAT_VERSION {
            return Err(ScenarioIoError::UnsupportedVersion(version));
        }
        Ok(ScenarioReader {
            input,
            block: Vec::new(),
            pos: 0,
            in_section: false,
            records_left: 0,
            finished: false,
        })
    }

    /// Advances to the next section header, returning its id and record
    /// count, or `None` at the end marker.
    ///
    /// The previous section must have been fully consumed (every record
    /// decoded, or [`ScenarioReader::skip_section`] called).
    ///
    /// # Errors
    ///
    /// Structural errors ([`ScenarioIoError::Corrupt`],
    /// [`ScenarioIoError::Truncated`]) and checksum failures.
    pub fn next_section(&mut self) -> Result<Option<(u8, u64)>, ScenarioIoError> {
        if self.finished {
            return Ok(None);
        }
        if self.in_section {
            if self.records_left > 0 {
                return Err(ScenarioIoError::Corrupt("section left mid-records"));
            }
            if self.pos != self.block.len() {
                return Err(ScenarioIoError::Corrupt("trailing bytes in block"));
            }
            // Consume the section's zero-length terminator.
            if self.load_block()? {
                return Err(ScenarioIoError::Corrupt("extra blocks after last record"));
            }
            self.in_section = false;
        }
        let id = self.read_byte()?;
        if id == crate::section::END {
            self.finished = true;
            return Ok(None);
        }
        let records = self.read_varint_stream()?;
        self.in_section = true;
        self.records_left = records;
        self.block.clear();
        self.pos = 0;
        Ok(Some((id, records)))
    }

    /// Discards the rest of the current section (all remaining blocks),
    /// e.g. for unknown section ids.
    ///
    /// # Errors
    ///
    /// Structural and checksum errors while draining.
    pub fn skip_section(&mut self) -> Result<(), ScenarioIoError> {
        if !self.in_section {
            return Ok(());
        }
        while self.load_block()? {}
        self.in_section = false;
        self.records_left = 0;
        Ok(())
    }

    /// Positions the reader at the start of the next record.
    ///
    /// # Errors
    ///
    /// [`ScenarioIoError::Corrupt`] when the section promised fewer
    /// records, plus structural and checksum errors.
    pub fn begin_record(&mut self) -> Result<(), ScenarioIoError> {
        if !self.in_section {
            return Err(ScenarioIoError::Corrupt("record read outside a section"));
        }
        if self.records_left == 0 {
            return Err(ScenarioIoError::Corrupt("more records than promised"));
        }
        self.records_left -= 1;
        if self.pos == self.block.len() && !self.load_block()? {
            return Err(ScenarioIoError::Corrupt("section ended before its records"));
        }
        Ok(())
    }

    /// Reads one byte of the current record.
    ///
    /// # Errors
    ///
    /// [`ScenarioIoError::Corrupt`] if the record runs past its block.
    pub fn u8(&mut self) -> Result<u8, ScenarioIoError> {
        let &b = self
            .block
            .get(self.pos)
            .ok_or(ScenarioIoError::Corrupt("record crosses block boundary"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 varint of the current record.
    ///
    /// # Errors
    ///
    /// [`ScenarioIoError::Corrupt`] on truncation or overlength.
    pub fn varint(&mut self) -> Result<u64, ScenarioIoError> {
        get_varint(&self.block, &mut self.pos).ok_or(ScenarioIoError::Corrupt("bad varint"))
    }

    /// Reads a little-endian IEEE-754 `f64` of the current record.
    ///
    /// # Errors
    ///
    /// [`ScenarioIoError::Corrupt`] if the record runs past its block.
    pub fn f64(&mut self) -> Result<f64, ScenarioIoError> {
        let end = self.pos + 8;
        let bytes = self
            .block
            .get(self.pos..end)
            .ok_or(ScenarioIoError::Corrupt("record crosses block boundary"))?;
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes.try_into().unwrap(),
        )))
    }

    /// Reads a boolean of the current record.
    ///
    /// # Errors
    ///
    /// [`ScenarioIoError::Corrupt`] on truncation or a byte other than
    /// 0/1.
    pub fn bool(&mut self) -> Result<bool, ScenarioIoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ScenarioIoError::Corrupt("bad boolean byte")),
        }
    }

    /// Reads a length-prefixed UTF-8 string of the current record.
    ///
    /// # Errors
    ///
    /// [`ScenarioIoError::Corrupt`] on truncation or invalid UTF-8.
    pub fn string(&mut self) -> Result<String, ScenarioIoError> {
        let len = self.varint()? as usize;
        let end = self
            .pos
            .checked_add(len)
            .ok_or(ScenarioIoError::Corrupt("string length overflow"))?;
        let bytes = self
            .block
            .get(self.pos..end)
            .ok_or(ScenarioIoError::Corrupt("record crosses block boundary"))?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| ScenarioIoError::Corrupt("string is not UTF-8"))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    /// Reads a length-prefixed opaque byte blob of the current record —
    /// the counterpart of [`Enc::put_bytes`](crate::Enc::put_bytes).
    ///
    /// # Errors
    ///
    /// [`ScenarioIoError::Corrupt`] on truncation.
    pub fn bytes(&mut self) -> Result<Vec<u8>, ScenarioIoError> {
        let len = self.varint()? as usize;
        let end = self
            .pos
            .checked_add(len)
            .ok_or(ScenarioIoError::Corrupt("blob length overflow"))?;
        let bytes = self
            .block
            .get(self.pos..end)
            .ok_or(ScenarioIoError::Corrupt("record crosses block boundary"))?
            .to_vec();
        self.pos = end;
        Ok(bytes)
    }

    /// Loads the next block of the current section into memory.
    /// Returns `false` on the zero-length terminator.
    fn load_block(&mut self) -> Result<bool, ScenarioIoError> {
        let len = self.read_varint_stream()? as usize;
        if len == 0 {
            self.block.clear();
            self.pos = 0;
            return Ok(false);
        }
        if len > MAX_BLOCK_BYTES {
            return Err(ScenarioIoError::Corrupt("block length out of range"));
        }
        let mut crc = [0u8; 4];
        self.input.read_exact(&mut crc)?;
        // Grow the buffer in bounded steps as payload actually arrives
        // rather than pre-allocating the claimed length: a file
        // truncated (or corrupted) in its length prefix must not commit
        // 256 MiB up front on the strength of a varint.
        self.block.clear();
        while self.block.len() < len {
            let start = self.block.len();
            let step = (len - start).min(BLOCK_TARGET);
            self.block.resize(start + step, 0);
            self.input.read_exact(&mut self.block[start..])?;
        }
        if crc32(&self.block) != u32::from_le_bytes(crc) {
            return Err(ScenarioIoError::ChecksumMismatch);
        }
        self.pos = 0;
        Ok(true)
    }

    fn read_byte(&mut self) -> Result<u8, ScenarioIoError> {
        let mut byte = [0u8; 1];
        self.input.read_exact(&mut byte)?;
        Ok(byte[0])
    }

    /// Reads a varint directly from the underlying stream (framing
    /// metadata lives outside blocks).
    fn read_varint_stream(&mut self) -> Result<u64, ScenarioIoError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_byte()?;
            if shift >= 64 {
                return Err(ScenarioIoError::Corrupt("bad varint"));
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Writes a two-section container: `n` varint records and one
    /// string record.
    fn sample_file(n: u64) -> Vec<u8> {
        let mut w = ScenarioWriter::new(Vec::new()).unwrap();
        w.begin_section(10, n).unwrap();
        for i in 0..n {
            w.enc().put_varint(i * 3);
            w.enc().put_f64(i as f64 * 0.5);
            w.end_record().unwrap();
        }
        w.end_section().unwrap();
        w.begin_section(11, 1).unwrap();
        w.enc().put_str("metro");
        w.end_record().unwrap();
        w.end_section().unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip_two_sections() {
        let bytes = sample_file(10_000); // forces multiple blocks
        let mut r = ScenarioReader::new(&bytes[..]).unwrap();
        let (id, n) = r.next_section().unwrap().unwrap();
        assert_eq!((id, n), (10, 10_000));
        for i in 0..n {
            r.begin_record().unwrap();
            assert_eq!(r.varint().unwrap(), i * 3);
            assert_eq!(r.f64().unwrap().to_bits(), (i as f64 * 0.5).to_bits());
        }
        let (id, n) = r.next_section().unwrap().unwrap();
        assert_eq!((id, n), (11, 1));
        r.begin_record().unwrap();
        assert_eq!(r.string().unwrap(), "metro");
        assert!(r.next_section().unwrap().is_none());
    }

    #[test]
    fn unknown_sections_are_skippable() {
        let bytes = sample_file(5_000);
        let mut r = ScenarioReader::new(&bytes[..]).unwrap();
        while let Some((id, n)) = r.next_section().unwrap() {
            if id == 11 {
                r.begin_record().unwrap();
                assert_eq!(r.string().unwrap(), "metro");
                assert_eq!(n, 1);
            } else {
                r.skip_section().unwrap();
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_file(100);
        // Cut anywhere strictly inside: either a read fails early or the
        // end marker is missing.
        for cut in [7, bytes.len() / 2, bytes.len() - 1] {
            let mut r = match ScenarioReader::new(&bytes[..cut]) {
                Ok(r) => r,
                Err(ScenarioIoError::Truncated) => continue,
                Err(e) => panic!("unexpected header error: {e}"),
            };
            let mut failed = false;
            'outer: loop {
                match r.next_section() {
                    Ok(Some((_, n))) => {
                        for _ in 0..n {
                            if r.begin_record().is_err() {
                                failed = true;
                                break 'outer;
                            }
                            while r.varint().is_ok() {}
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            assert!(failed, "cut at {cut} went unnoticed");
        }
    }

    #[test]
    fn bitflip_is_detected() {
        let mut bytes = sample_file(1_000);
        let mid = bytes.len() / 2; // deep inside a block payload
        bytes[mid] ^= 0x40;
        let mut r = ScenarioReader::new(&bytes[..]).unwrap();
        let mut saw_error = false;
        loop {
            match r.next_section() {
                Ok(Some(_)) => {
                    if let Err(e) = r.skip_section() {
                        assert!(matches!(
                            e,
                            ScenarioIoError::ChecksumMismatch
                                | ScenarioIoError::Corrupt(_)
                                | ScenarioIoError::Truncated
                        ));
                        saw_error = true;
                        break;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(saw_error, "flipped bit went unnoticed");
    }

    /// Fully decodes a container produced by `sample_file`, mirroring
    /// the writer record-for-record (no loose draining that could mask a
    /// silent short read).
    fn drive(bytes: &[u8]) -> Result<(), ScenarioIoError> {
        let mut r = ScenarioReader::new(bytes)?;
        while let Some((id, n)) = r.next_section()? {
            for _ in 0..n {
                r.begin_record()?;
                match id {
                    10 => {
                        r.varint()?;
                        r.f64()?;
                    }
                    11 => {
                        r.string()?;
                    }
                    _ => return Err(ScenarioIoError::Corrupt("unexpected section")),
                }
            }
        }
        Ok(())
    }

    #[test]
    fn every_truncation_point_is_truncated_never_eof() {
        // Cut a single-block container at EVERY byte position. Each
        // proper prefix is missing at least the end marker, so a full
        // decode must fail — and because every structural read is an
        // exact fill against the stream, the failure must be the typed
        // `Truncated`, never a panic, a silent success, or a
        // misclassified corruption. This sweeps every frame boundary:
        // mid-magic, mid-version, after the section id, inside the
        // record-count varint, inside a block-length varint, inside the
        // CRC, inside the payload, at the section terminator, and before
        // the end marker.
        let bytes = sample_file(40);
        assert!(drive(&bytes).is_ok(), "untruncated file must decode");
        for cut in 0..bytes.len() {
            match drive(&bytes[..cut]) {
                Err(ScenarioIoError::Truncated) => {}
                Err(e) => panic!("cut at {cut}/{}: wrong error {e}", bytes.len()),
                Ok(()) => panic!("cut at {cut}/{} decoded successfully", bytes.len()),
            }
        }
    }

    #[test]
    fn multiblock_truncation_points_are_truncated() {
        // The multi-block shape (~10 000 records spill past the 64 KiB
        // block target) exercised at targeted boundaries: the full
        // header region (covers the multi-byte block-length varint and
        // the first block's CRC), a mid-payload cut, the first block
        // boundary region, and the file tail (final block, section
        // terminator, end marker).
        let bytes = sample_file(10_000);
        assert!(drive(&bytes).is_ok(), "untruncated file must decode");
        let len = bytes.len();
        let cuts = (0..32)
            .chain([33, 100, 5_000, 64 * 1024, 64 * 1024 + 21])
            .chain(len - 32..len);
        for cut in cuts {
            match drive(&bytes[..cut]) {
                Err(ScenarioIoError::Truncated) => {}
                Err(e) => panic!("cut at {cut}/{len}: wrong error {e}"),
                Ok(()) => panic!("cut at {cut}/{len} decoded successfully"),
            }
        }
    }

    /// A byte source that records the largest buffer a single `read`
    /// call was handed — the witness for allocation-trusting readers,
    /// which pass the whole claimed block length to one `read`.
    struct BufferSpy<'a> {
        data: &'a [u8],
        max_buf: usize,
    }

    impl Read for BufferSpy<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.max_buf = self.max_buf.max(buf.len());
            let n = buf.len().min(self.data.len());
            buf[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }

    #[test]
    fn truncated_length_prefix_does_not_preallocate() {
        // A file whose block-length varint claims a near-maximum payload
        // but ends a few bytes later must fail as truncated without
        // first committing the claimed allocation. The spy observes the
        // buffers handed to `read`: a reader that trusts the length
        // prefix presents one claimed-length buffer, a bounded reader
        // never exceeds its chunk size.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.push(10); // section id
        put_varint(&mut bytes, 1); // one record promised
        put_varint(&mut bytes, MAX_BLOCK_BYTES as u64); // huge block claim
        bytes.extend_from_slice(&[0u8; 4]); // CRC
        bytes.extend_from_slice(&[0u8; 100]); // a sliver of payload
        let mut spy = BufferSpy {
            data: &bytes,
            max_buf: 0,
        };
        let mut r = ScenarioReader::new(&mut spy).unwrap();
        r.next_section().unwrap();
        assert!(matches!(r.begin_record(), Err(ScenarioIoError::Truncated)));
        assert!(
            spy.max_buf <= 64 * 1024,
            "reader trusted the claimed length: a {} byte buffer was \
             presented to a single read call",
            spy.max_buf
        );
    }

    #[test]
    fn custom_magic_roundtrip_and_mismatch() {
        let mut w = ScenarioWriter::with_magic(Vec::new(), *b"MLSS").unwrap();
        w.begin_section(7, 1).unwrap();
        w.enc().put_varint(99);
        w.end_record().unwrap();
        w.end_section().unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(&bytes[..4], b"MLSS");
        // Matching magic decodes.
        let mut r = ScenarioReader::with_magic(&bytes[..], *b"MLSS").unwrap();
        assert_eq!(r.next_section().unwrap(), Some((7, 1)));
        r.begin_record().unwrap();
        assert_eq!(r.varint().unwrap(), 99);
        assert!(r.next_section().unwrap().is_none());
        // The default reader (expecting MLSC) refuses the file, and the
        // custom reader refuses a default file.
        assert!(matches!(
            ScenarioReader::new(&bytes[..]),
            Err(ScenarioIoError::BadMagic)
        ));
        assert!(matches!(
            ScenarioReader::with_magic(&sample_file(1)[..], *b"MLSS"),
            Err(ScenarioIoError::BadMagic)
        ));
    }

    #[test]
    fn byte_blob_roundtrips_arbitrary_data() {
        // Non-UTF-8 payloads (e.g. an embedded nested container) must
        // come back byte-identical, and an empty blob is legal.
        let blob: Vec<u8> = (0..=255u8).rev().collect();
        let mut w = ScenarioWriter::new(Vec::new()).unwrap();
        w.begin_section(3, 2).unwrap();
        w.enc().put_bytes(&blob);
        w.end_record().unwrap();
        w.enc().put_bytes(&[]);
        w.end_record().unwrap();
        w.end_section().unwrap();
        let bytes = w.finish().unwrap();
        let mut r = ScenarioReader::new(&bytes[..]).unwrap();
        assert_eq!(r.next_section().unwrap(), Some((3, 2)));
        r.begin_record().unwrap();
        assert_eq!(r.bytes().unwrap(), blob);
        r.begin_record().unwrap();
        assert_eq!(r.bytes().unwrap(), Vec::<u8>::new());
        // A blob whose claimed length overruns the record is corrupt,
        // not a crash.
        let mut w = ScenarioWriter::new(Vec::new()).unwrap();
        w.begin_section(3, 1).unwrap();
        w.enc().put_varint(1_000);
        w.enc().put_u8(7);
        w.end_record().unwrap();
        w.end_section().unwrap();
        let bytes = w.finish().unwrap();
        let mut r = ScenarioReader::new(&bytes[..]).unwrap();
        r.next_section().unwrap();
        r.begin_record().unwrap();
        assert!(matches!(r.bytes(), Err(ScenarioIoError::Corrupt(_))));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert!(matches!(
            ScenarioReader::new(&b"NOPE\x01\x00rest"[..]),
            Err(ScenarioIoError::BadMagic)
        ));
        let mut bytes = sample_file(1);
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        assert!(matches!(
            ScenarioReader::new(&bytes[..]),
            Err(ScenarioIoError::UnsupportedVersion(0xFFFF))
        ));
    }

    #[test]
    fn writer_is_deterministic() {
        assert_eq!(sample_file(123), sample_file(123));
    }
}
