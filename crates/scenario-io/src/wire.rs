//! Primitive wire encoding: LEB128 varints, little-endian floats, and
//! the CRC32 the block framing checksums payloads with.

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time so
/// no runtime initialisation or external crate is needed.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC32 (IEEE) of `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Appends `v` to `buf` as a LEB128 varint (1–10 bytes).
pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes a LEB128 varint from `buf` starting at `*pos`, advancing it.
///
/// Returns `None` on truncation or a varint longer than 10 bytes.
pub(crate) fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// An append-only record encoder over a byte buffer.
///
/// All multi-byte values are little-endian; floats are stored as their
/// IEEE-754 bit patterns, so encoding is bit-exact and roundtrips are
/// byte-identical.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes.
    pub(crate) fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Clears the buffer, keeping its allocation.
    pub(crate) fn clear(&mut self) {
        self.buf.clear();
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a LEB128 varint.
    pub fn put_varint(&mut self, v: u64) {
        put_varint(&mut self.buf, v);
    }

    /// Appends an `f64` as its little-endian IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a UTF-8 string as a varint length followed by its bytes.
    pub fn put_str(&mut self, v: &str) {
        self.put_varint(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends an opaque byte blob as a varint length followed by the
    /// raw bytes. Unlike [`Enc::put_str`] no UTF-8 validity is implied;
    /// the blob roundtrips byte-identically through
    /// [`ScenarioReader::bytes`](crate::ScenarioReader::bytes).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varint_roundtrip() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_truncation_and_overlength() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(get_varint(&buf[..buf.len() - 1], &mut pos), None);
        let overlong = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(get_varint(&overlong, &mut pos), None);
    }

    #[test]
    fn f64_is_bit_exact() {
        let mut enc = Enc::default();
        let v = -0.1f64;
        enc.put_f64(v);
        let bits = u64::from_le_bytes(enc.as_slice().try_into().unwrap());
        assert_eq!(bits, v.to_bits());
    }
}
