//! Streaming binary scenario IO: the `.mlsc` container format.
//!
//! Metro-scale worlds (100 000 buses, millions of trips) are too large
//! to regenerate per run or ship as text. This crate defines a
//! versioned, sectioned binary container — little-endian fixed-width
//! floats, LEB128 varints, per-block length prefixes and CRC32
//! checksums — together with a streaming [`ScenarioWriter`] /
//! [`ScenarioReader`] pair that never holds more than one compressed
//! block (~64 KiB) of IO state in memory beyond the decoded payload
//! itself.
//!
//! # Container layout
//!
//! ```text
//! file    := magic "MLSC" | version u16 LE | section* | end
//! section := id u8 (non-zero) | record-count varint | block* | len-0 block
//! block   := payload-len varint | crc32 u32 LE | payload bytes
//! end     := id 0
//! ```
//!
//! Records are packed back-to-back inside block payloads and never span
//! a block boundary; the writer cuts a block at the first record
//! boundary past 64 KiB, so reader memory is bounded by the largest
//! single record, not the file. A missing `end` marker or a short block
//! surfaces as [`ScenarioIoError::Truncated`]; a flipped bit surfaces as
//! [`ScenarioIoError::ChecksumMismatch`]. Unknown section ids are
//! skippable ([`ScenarioReader::skip_section`]), so the format is
//! forward-extensible.
//!
//! Section ids 1–4 (network config, world header, routes, fleet) are
//! encoded by this crate ([`write_world`], [`WorldAssembler`]); the
//! simulation-level sections (parameters, gateways, traffic,
//! disruptions) are layered on top by `mlora-sim`, which owns those
//! types.
//!
//! # Sibling formats: the `.mlss` engine snapshot
//!
//! The container layer is magic-parameterized
//! ([`ScenarioWriter::with_magic`] / [`ScenarioReader::with_magic`]), so
//! other formats can reuse the exact framing — version word, sectioning,
//! block checksums, truncation detection — under their own four-byte
//! magic. `mlora-sim` uses this for its `.mlss` engine snapshots (magic
//! `MLSS`): the same `section*`/`block*` grammar as above, with
//! snapshot-owned section ids (header, embedded `.mlsc` scenario blob,
//! event queue, devices, flights, RNG streams, delivery, collector).
//! One consequence worth knowing when sizing records: a record never
//! spans blocks, but a single record may occupy a whole oversized block
//! (up to the 256 MiB cap) — that is how the snapshot embeds its
//! scenario as one opaque byte record.
//!
//! # Example
//!
//! ```
//! use mlora_mobility::{BusNetwork, BusNetworkConfig};
//! use mlora_scenario_io::{read_world_sections, write_world, ScenarioReader, ScenarioWriter};
//!
//! let cfg = BusNetworkConfig {
//!     num_routes: 4,
//!     max_active_buses: 20,
//!     ..BusNetworkConfig::default()
//! };
//! let net = BusNetwork::generate(&cfg, 42);
//!
//! let mut bytes = Vec::new();
//! let mut w = ScenarioWriter::new(&mut bytes)?;
//! write_world(&mut w, &net)?;
//! w.finish()?;
//!
//! let loaded = read_world_sections(&mut ScenarioReader::new(&bytes[..])?)?.unwrap();
//! assert_eq!(net, loaded);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod container;
mod wire;
mod world;

pub use container::{
    ScenarioIoError, ScenarioReader, ScenarioWriter, FORMAT_VERSION, MAGIC, MAX_BLOCK_BYTES,
};
pub use wire::Enc;
pub use world::{
    read_network_config, read_world_sections, write_network_config, write_world, WorldAssembler,
};

/// Section identifiers of the `.mlsc` container.
///
/// Id 0 terminates the file; ids 1–4 are encoded by this crate; ids 5–8
/// are reserved for the simulation layer; higher ids are free for
/// future sections (readers skip unknown ids).
pub mod section {
    /// End-of-file marker.
    pub const END: u8 = 0;
    /// Mobility generator configuration ([`crate::write_network_config`]).
    pub const NETWORK_CONFIG: u8 = 1;
    /// Prebuilt world header: area and horizon.
    pub const WORLD: u8 = 2;
    /// Route geometry records.
    pub const ROUTES: u8 = 3;
    /// Fleet (trip schedule) records.
    pub const FLEET: u8 = 4;
    /// Simulation parameters (encoded by `mlora-sim`).
    pub const SIM_PARAMS: u8 = 5;
    /// Gateway deployment (encoded by `mlora-sim`).
    pub const GATEWAYS: u8 = 6;
    /// Traffic model (encoded by `mlora-sim`).
    pub const TRAFFIC: u8 = 7;
    /// Disruption plan (encoded by `mlora-sim`).
    pub const DISRUPTIONS: u8 = 8;
}
