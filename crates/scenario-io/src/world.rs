//! Codecs for the world-level sections: the mobility generator config
//! and prebuilt worlds (header, routes, fleet).

use mlora_geo::{BBox, Point, Polyline};
use mlora_mobility::{BusNetwork, BusNetworkConfig, DiurnalProfile, Route, RouteId, Trip};
use mlora_simcore::{NodeId, SimDuration, SimTime};

use crate::container::{ScenarioIoError, ScenarioReader, ScenarioWriter};
use crate::section;

/// Writes the mobility generator configuration as the
/// [`section::NETWORK_CONFIG`] section (one record).
///
/// # Errors
///
/// Propagates IO errors from the sink.
pub fn write_network_config<W: std::io::Write>(
    w: &mut ScenarioWriter<W>,
    cfg: &BusNetworkConfig,
) -> std::io::Result<()> {
    w.begin_section(section::NETWORK_CONFIG, 1)?;
    let enc = w.enc();
    enc.put_f64(cfg.area_side_m);
    enc.put_varint(cfg.num_routes as u64);
    enc.put_varint(cfg.waypoints_per_route as u64);
    enc.put_f64(cfg.min_route_length_m);
    enc.put_f64(cfg.min_speed_mps);
    enc.put_f64(cfg.max_speed_mps);
    enc.put_varint(cfg.max_active_buses as u64);
    enc.put_varint(u64::from(cfg.min_legs));
    enc.put_varint(u64::from(cfg.max_legs));
    enc.put_varint(cfg.horizon.as_millis());
    enc.put_f64(cfg.center_bias);
    for &level in cfg.profile.hourly() {
        enc.put_f64(level);
    }
    w.end_record()?;
    w.end_section()
}

/// Reads a [`section::NETWORK_CONFIG`] record written by
/// [`write_network_config`]. The reader must be positioned inside that
/// section (after [`ScenarioReader::next_section`]).
///
/// # Errors
///
/// Structural errors, plus [`ScenarioIoError::Corrupt`] for values the
/// generator would reject (bad ranges, non-finite floats).
pub fn read_network_config<R: std::io::Read>(
    r: &mut ScenarioReader<R>,
) -> Result<BusNetworkConfig, ScenarioIoError> {
    r.begin_record()?;
    let area_side_m = finite(r.f64()?, "network config area")?;
    let num_routes = r.varint()? as usize;
    let waypoints_per_route = r.varint()? as usize;
    let min_route_length_m = finite(r.f64()?, "network config route length")?;
    let min_speed_mps = finite(r.f64()?, "network config speed")?;
    let max_speed_mps = finite(r.f64()?, "network config speed")?;
    let max_active_buses = r.varint()? as usize;
    let min_legs = legs(r.varint()?)?;
    let max_legs = legs(r.varint()?)?;
    let horizon = SimDuration::from_millis(r.varint()?);
    let center_bias = finite(r.f64()?, "network config center bias")?;
    if !(0.0..=1.0).contains(&center_bias) {
        return Err(ScenarioIoError::Corrupt("center bias outside [0, 1]"));
    }
    let mut hourly = Vec::with_capacity(24);
    for _ in 0..24 {
        let level = finite(r.f64()?, "diurnal level")?;
        if !(0.0..=1.0).contains(&level) {
            return Err(ScenarioIoError::Corrupt("diurnal level outside [0, 1]"));
        }
        hourly.push(level);
    }
    Ok(BusNetworkConfig {
        area_side_m,
        num_routes,
        waypoints_per_route,
        min_route_length_m,
        min_speed_mps,
        max_speed_mps,
        max_active_buses,
        min_legs,
        max_legs,
        horizon,
        profile: DiurnalProfile::from_hourly(hourly),
        center_bias,
    })
}

/// Writes a prebuilt world as three sections — [`section::WORLD`]
/// (area + horizon), [`section::ROUTES`] (one record per route) and
/// [`section::FLEET`] (one record per trip) — streaming record by
/// record, never re-buffering the network.
///
/// # Errors
///
/// Propagates IO errors from the sink.
pub fn write_world<W: std::io::Write>(
    w: &mut ScenarioWriter<W>,
    net: &BusNetwork,
) -> std::io::Result<()> {
    w.begin_section(section::WORLD, 1)?;
    let area = net.area();
    let enc = w.enc();
    enc.put_f64(area.min().x);
    enc.put_f64(area.min().y);
    enc.put_f64(area.max().x);
    enc.put_f64(area.max().y);
    enc.put_varint(net.horizon().as_millis());
    w.end_record()?;
    w.end_section()?;

    w.begin_section(section::ROUTES, net.routes().len() as u64)?;
    for route in net.routes() {
        let enc = w.enc();
        enc.put_f64(route.speed_mps());
        let points = route.path().points();
        enc.put_varint(points.len() as u64);
        for p in points {
            enc.put_f64(p.x);
            enc.put_f64(p.y);
        }
        w.end_record()?;
    }
    w.end_section()?;

    w.begin_section(section::FLEET, net.trips().len() as u64)?;
    for trip in net.trips() {
        let enc = w.enc();
        enc.put_varint(trip.route().raw() as u64);
        enc.put_varint(trip.depart().as_millis());
        enc.put_varint(u64::from(trip.legs()));
        enc.put_varint(trip.duration().as_millis());
        w.end_record()?;
    }
    w.end_section()
}

/// Incremental assembler for the three world sections.
///
/// Feed it sections in any order that puts [`section::ROUTES`] before
/// [`section::FLEET`] (the writer's order always does); call
/// [`WorldAssembler::finish`] once all three have been read.
#[derive(Debug, Default)]
pub struct WorldAssembler {
    header: Option<(BBox, SimDuration)>,
    routes: Vec<Route>,
    trips: Vec<Trip>,
    saw_fleet: bool,
}

impl WorldAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        WorldAssembler::default()
    }

    /// True once any world section has been fed in — used by config
    /// loaders to distinguish "file carries a prebuilt world" from
    /// "file regenerates from config".
    pub fn started(&self) -> bool {
        self.header.is_some() || !self.routes.is_empty() || self.saw_fleet
    }

    /// Reads the [`section::WORLD`] header record.
    ///
    /// # Errors
    ///
    /// Structural errors, plus [`ScenarioIoError::Corrupt`] on a
    /// non-finite or inverted bounding box.
    pub fn read_world_header<R: std::io::Read>(
        &mut self,
        r: &mut ScenarioReader<R>,
    ) -> Result<(), ScenarioIoError> {
        r.begin_record()?;
        let min = Point::new(finite(r.f64()?, "area")?, finite(r.f64()?, "area")?);
        let max = Point::new(finite(r.f64()?, "area")?, finite(r.f64()?, "area")?);
        if min.x > max.x || min.y > max.y {
            return Err(ScenarioIoError::Corrupt("inverted bounding box"));
        }
        let horizon = SimDuration::from_millis(r.varint()?);
        self.header = Some((BBox::new(min, max), horizon));
        Ok(())
    }

    /// Reads all `count` [`section::ROUTES`] records.
    ///
    /// # Errors
    ///
    /// Structural errors, plus [`ScenarioIoError::Corrupt`] on bad
    /// speeds or degenerate geometry.
    pub fn read_routes<R: std::io::Read>(
        &mut self,
        r: &mut ScenarioReader<R>,
        count: u64,
    ) -> Result<(), ScenarioIoError> {
        self.routes.reserve(count as usize);
        for _ in 0..count {
            r.begin_record()?;
            let speed = finite(r.f64()?, "route speed")?;
            if speed <= 0.0 {
                return Err(ScenarioIoError::Corrupt("route speed not positive"));
            }
            let n = r.varint()? as usize;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                points.push(Point::new(
                    finite(r.f64()?, "route point")?,
                    finite(r.f64()?, "route point")?,
                ));
            }
            let path = Polyline::new(points)
                .map_err(|_| ScenarioIoError::Corrupt("degenerate route path"))?;
            let id = RouteId::new(self.routes.len() as u32);
            self.routes.push(Route::new(id, path, speed));
        }
        Ok(())
    }

    /// Reads all `count` [`section::FLEET`] records. Requires routes to
    /// have been read first.
    ///
    /// Withdrawn trips roundtrip exactly: the record stores the live
    /// (possibly truncated) duration, and a duration shorter than the
    /// schedule implies a withdrawal at `depart + duration`.
    ///
    /// # Errors
    ///
    /// Structural errors, plus [`ScenarioIoError::Corrupt`] on a trip
    /// referencing a missing route, zero legs, or a duration longer
    /// than its schedule allows.
    pub fn read_fleet<R: std::io::Read>(
        &mut self,
        r: &mut ScenarioReader<R>,
        count: u64,
    ) -> Result<(), ScenarioIoError> {
        if self.routes.is_empty() {
            return Err(ScenarioIoError::Corrupt("fleet before routes"));
        }
        self.saw_fleet = true;
        self.trips.reserve(count as usize);
        for _ in 0..count {
            r.begin_record()?;
            let route_idx = r.varint()? as usize;
            let depart = SimTime::from_millis(r.varint()?);
            let legs = r.varint()?;
            let duration = SimDuration::from_millis(r.varint()?);
            let route = self
                .routes
                .get(route_idx)
                .ok_or(ScenarioIoError::Corrupt("trip references missing route"))?;
            if legs == 0 || legs > u64::from(u32::MAX) {
                return Err(ScenarioIoError::Corrupt("trip leg count out of range"));
            }
            let node = NodeId::new(self.trips.len() as u32);
            let mut trip = Trip::new(node, route, depart, legs as u32);
            if duration < trip.duration() {
                trip.withdraw(depart + duration);
            } else if duration > trip.duration() {
                return Err(ScenarioIoError::Corrupt("trip duration exceeds schedule"));
            }
            self.trips.push(trip);
        }
        Ok(())
    }

    /// Assembles the network from everything read so far.
    ///
    /// # Errors
    ///
    /// [`ScenarioIoError::MissingSection`] if the header never arrived,
    /// [`ScenarioIoError::World`] if the parts violate a network
    /// invariant.
    pub fn finish(self) -> Result<BusNetwork, ScenarioIoError> {
        let (area, horizon) = self
            .header
            .ok_or(ScenarioIoError::MissingSection("world header"))?;
        Ok(BusNetwork::from_parts(
            self.routes,
            self.trips,
            area,
            horizon,
        )?)
    }
}

/// Drives a [`ScenarioReader`] to the end of the file, assembling the
/// world sections and skipping everything else.
///
/// Returns `Ok(None)` when the file carries no world sections at all.
///
/// # Errors
///
/// Structural, checksum and invariant errors from the sections read.
pub fn read_world_sections<R: std::io::Read>(
    r: &mut ScenarioReader<R>,
) -> Result<Option<BusNetwork>, ScenarioIoError> {
    let mut asm = WorldAssembler::new();
    while let Some((id, count)) = r.next_section()? {
        match id {
            section::WORLD => asm.read_world_header(r)?,
            section::ROUTES => asm.read_routes(r, count)?,
            section::FLEET => asm.read_fleet(r, count)?,
            _ => r.skip_section()?,
        }
    }
    if asm.started() {
        asm.finish().map(Some)
    } else {
        Ok(None)
    }
}

fn finite(v: f64, what: &'static str) -> Result<f64, ScenarioIoError> {
    if v.is_finite() {
        Ok(v)
    } else {
        Err(ScenarioIoError::Corrupt(what))
    }
}

fn legs(v: u64) -> Result<u32, ScenarioIoError> {
    u32::try_from(v).map_err(|_| ScenarioIoError::Corrupt("leg count out of range"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlora_mobility::MetroConfig;

    fn small_net() -> BusNetwork {
        BusNetwork::generate(
            &BusNetworkConfig {
                num_routes: 6,
                max_active_buses: 30,
                ..BusNetworkConfig::default()
            },
            99,
        )
    }

    fn to_bytes(net: &BusNetwork) -> Vec<u8> {
        let mut w = ScenarioWriter::new(Vec::new()).unwrap();
        write_world(&mut w, net).unwrap();
        w.finish().unwrap()
    }

    fn from_bytes(bytes: &[u8]) -> BusNetwork {
        let mut r = ScenarioReader::new(bytes).unwrap();
        read_world_sections(&mut r).unwrap().unwrap()
    }

    #[test]
    fn world_roundtrips_exactly() {
        let net = small_net();
        assert_eq!(from_bytes(&to_bytes(&net)), net);
    }

    #[test]
    fn withdrawn_trips_roundtrip() {
        let mut net = small_net();
        let t = SimTime::from_secs(10 * 3600);
        let node = net.active_trips(t).next().unwrap().node();
        net.withdraw(node, t);
        let loaded = from_bytes(&to_bytes(&net));
        assert_eq!(loaded, net);
        assert!(!loaded.trip(node).is_active(t));
    }

    #[test]
    fn rewrite_is_byte_identical() {
        let net = small_net();
        let bytes = to_bytes(&net);
        assert_eq!(to_bytes(&from_bytes(&bytes)), bytes);
    }

    #[test]
    fn metro_world_roundtrips() {
        let cfg = MetroConfig {
            num_radials: 6,
            num_rings: 3,
            peak_active_buses: 60,
            ..MetroConfig::default()
        };
        let world = mlora_mobility::MetroWorld::generate(&cfg, 7);
        let net = world.into_network();
        assert_eq!(from_bytes(&to_bytes(&net)), net);
    }

    #[test]
    fn network_config_roundtrips() {
        let cfg = BusNetworkConfig {
            num_routes: 17,
            center_bias: 0.25,
            ..BusNetworkConfig::default()
        };
        let mut w = ScenarioWriter::new(Vec::new()).unwrap();
        write_network_config(&mut w, &cfg).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = ScenarioReader::new(&bytes[..]).unwrap();
        let (id, n) = r.next_section().unwrap().unwrap();
        assert_eq!((id, n), (section::NETWORK_CONFIG, 1));
        let loaded = read_network_config(&mut r).unwrap();
        assert_eq!(loaded, cfg);
        assert!(r.next_section().unwrap().is_none());
    }

    #[test]
    fn corrupt_fleet_is_rejected() {
        let net = small_net();
        let bytes = to_bytes(&net);
        // Rebuild the file with the fleet section replaced by a trip
        // referencing a missing route.
        let mut w = ScenarioWriter::new(Vec::new()).unwrap();
        w.begin_section(section::WORLD, 1).unwrap();
        let area = net.area();
        w.enc().put_f64(area.min().x);
        w.enc().put_f64(area.min().y);
        w.enc().put_f64(area.max().x);
        w.enc().put_f64(area.max().y);
        w.enc().put_varint(net.horizon().as_millis());
        w.end_record().unwrap();
        w.end_section().unwrap();
        w.begin_section(section::FLEET, 1).unwrap();
        w.enc().put_varint(0);
        w.enc().put_varint(0);
        w.enc().put_varint(1);
        w.enc().put_varint(1);
        w.end_record().unwrap();
        w.end_section().unwrap();
        let bad = w.finish().unwrap();
        let mut r = ScenarioReader::new(&bad[..]).unwrap();
        assert!(matches!(
            read_world_sections(&mut r),
            Err(ScenarioIoError::Corrupt("fleet before routes"))
        ));
        drop(bytes);
    }

    #[test]
    fn file_without_world_sections_is_none() {
        let mut w = ScenarioWriter::new(Vec::new()).unwrap();
        w.begin_section(42, 1).unwrap();
        w.enc().put_str("opaque");
        w.end_record().unwrap();
        w.end_section().unwrap();
        let bytes = w.finish().unwrap();
        let mut r = ScenarioReader::new(&bytes[..]).unwrap();
        assert!(read_world_sections(&mut r).unwrap().is_none());
    }
}
