//! Scripted world disruptions: the timeline of things that go wrong.
//!
//! The paper's evaluation assumes a static world — gateways never fail,
//! buses never break down, the channel noise floor never moves. A
//! [`DisruptionPlan`] makes those failure modes first-class scenario
//! axes: a seeded, deterministic timeline of world events that the
//! engine compiles into ordered discrete events and applies mid-run,
//! the way large mobility simulators script service disruptions as
//! replayable world events rather than config constants.
//!
//! Three disruption kinds are modelled:
//!
//! * [`GatewayOutage`] — a gateway leaves service for a window (or for
//!   the rest of the run) and later recovers; while down it decodes
//!   nothing and the engine's gateway grid is updated incrementally.
//! * [`BusWithdrawal`] — at an instant, a fraction of the currently
//!   active fleet is withdrawn (trip cancellation / early retirement);
//!   selection draws from a dedicated RNG stream so the channel
//!   randomness of the surviving fleet is untouched.
//! * [`NoiseBurst`] — a regional channel impairment: every receiver
//!   inside a disc loses `extra_loss_db` of RSSI on every frame while
//!   the burst is active (a raised noise floor, applied through
//!   [`mlora_phy::LogDistanceModel::sample_rssi_dbm_attenuated`]).
//!
//! An **empty plan is free**: no events are scheduled, no RNG stream is
//! consumed, and runs are bit-identical to a build without the
//! subsystem (`tests/golden_determinism.rs` pins this).
//!
//! # Example
//!
//! ```
//! use mlora_sim::prelude::*;
//! use mlora_simcore::{SimDuration, SimTime};
//!
//! let plan = DisruptionPlan {
//!     outages: vec![GatewayOutage {
//!         gateway: 3,
//!         start: SimTime::from_secs(1_800),
//!         duration: Some(SimDuration::from_secs(1_800)),
//!     }],
//!     ..DisruptionPlan::default()
//! };
//! let config = Scenario::urban().smoke().disruptions(plan).build()?;
//! assert_eq!(config.disruptions.outages.len(), 1);
//! # Ok::<(), mlora_sim::ConfigError>(())
//! ```

use mlora_geo::Point;
use mlora_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::ConfigError;

/// One gateway leaving service and (optionally) recovering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatewayOutage {
    /// Index of the affected gateway (must be below the scenario's
    /// gateway count).
    pub gateway: usize,
    /// When the gateway goes down.
    pub start: SimTime,
    /// How long the outage lasts; `None` means it runs to the horizon.
    pub duration: Option<SimDuration>,
}

/// An instantaneous withdrawal of part of the active fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusWithdrawal {
    /// When the withdrawal happens.
    pub at: SimTime,
    /// Fraction of the then-active fleet withdrawn, in `(0, 1]`. The
    /// count is rounded to the nearest whole bus; the buses themselves
    /// are picked from a dedicated deterministic RNG stream.
    pub fraction: f64,
}

/// A regional channel impairment: receivers inside the disc lose RSSI.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseBurst {
    /// Centre of the affected disc.
    pub center: Point,
    /// Radius of the affected disc, metres.
    pub radius_m: f64,
    /// When the burst begins.
    pub start: SimTime,
    /// How long the burst lasts; `None` means it runs to the horizon.
    pub duration: Option<SimDuration>,
    /// RSSI penalty applied to every reception inside the disc, dB.
    /// Overlapping bursts stack additively.
    pub extra_loss_db: f64,
}

/// A deterministic timeline of world disruptions for one run.
///
/// The default plan is empty and costs nothing: the engine schedules no
/// extra events and consumes no extra randomness, so an undisrupted run
/// is bit-identical to one configured before this subsystem existed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DisruptionPlan {
    /// Gateway outage/recovery windows.
    pub outages: Vec<GatewayOutage>,
    /// Fleet withdrawals.
    pub withdrawals: Vec<BusWithdrawal>,
    /// Regional noise-burst windows.
    pub noise_bursts: Vec<NoiseBurst>,
}

/// One compiled engine-facing disruption event.
///
/// Indices refer back into the owning [`DisruptionPlan`]'s vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisruptionEvent {
    /// Gateway `gateway` recovers (paired with an earlier
    /// [`DisruptionEvent::GatewayDown`] for the same gateway).
    GatewayUp {
        /// Index of the recovering gateway.
        gateway: u32,
    },
    /// The noise burst `burst` ends.
    NoiseEnd {
        /// Index into [`DisruptionPlan::noise_bursts`].
        burst: u32,
    },
    /// Gateway `gateway` goes down.
    GatewayDown {
        /// Index of the failing gateway.
        gateway: u32,
    },
    /// The noise burst `burst` begins.
    NoiseStart {
        /// Index into [`DisruptionPlan::noise_bursts`].
        burst: u32,
    },
    /// The withdrawal `withdrawal` fires.
    Withdraw {
        /// Index into [`DisruptionPlan::withdrawals`].
        withdrawal: u32,
    },
}

impl DisruptionEvent {
    /// Tie-break rank for events at the same instant: recoveries resolve
    /// before new failures so back-to-back windows on the same resource
    /// compose, and withdrawals see the settled gateway state.
    fn rank(self) -> u8 {
        match self {
            DisruptionEvent::GatewayUp { .. } => 0,
            DisruptionEvent::NoiseEnd { .. } => 1,
            DisruptionEvent::GatewayDown { .. } => 2,
            DisruptionEvent::NoiseStart { .. } => 3,
            DisruptionEvent::Withdraw { .. } => 4,
        }
    }
}

impl DisruptionPlan {
    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty() && self.withdrawals.is_empty() && self.noise_bursts.is_empty()
    }

    /// Validates the plan against a scenario deploying `num_gateways`
    /// gateways.
    ///
    /// # Errors
    ///
    /// Returns the typed [`ConfigError`] naming the first offending
    /// field: an outage naming a gateway the scenario does not deploy, a
    /// zero-length window, a withdrawal fraction outside `(0, 1]`, or a
    /// non-finite/non-positive noise geometry or penalty.
    pub fn validate(&self, num_gateways: usize) -> Result<(), ConfigError> {
        for outage in &self.outages {
            if outage.gateway >= num_gateways {
                return Err(ConfigError::OutOfRange {
                    field: "disruptions.outages.gateway",
                    value: outage.gateway as f64,
                    lo: -1.0,
                    hi: num_gateways as f64 - 1.0,
                });
            }
            if outage.duration.is_some_and(|d| d.is_zero()) {
                return Err(ConfigError::Zero {
                    field: "disruptions.outages.duration",
                });
            }
        }
        for withdrawal in &self.withdrawals {
            crate::config::check_unit_interval(
                "disruptions.withdrawals.fraction",
                withdrawal.fraction,
                0.0,
                1.0,
            )?;
        }
        for burst in &self.noise_bursts {
            if !burst.radius_m.is_finite() {
                return Err(ConfigError::NotFinite {
                    field: "disruptions.noise_bursts.radius_m",
                    value: burst.radius_m,
                });
            }
            if burst.radius_m <= 0.0 {
                return Err(ConfigError::OutOfRange {
                    field: "disruptions.noise_bursts.radius_m",
                    value: burst.radius_m,
                    lo: 0.0,
                    hi: f64::INFINITY,
                });
            }
            if !(burst.center.x.is_finite() && burst.center.y.is_finite()) {
                return Err(ConfigError::NotFinite {
                    field: "disruptions.noise_bursts.center",
                    value: if burst.center.x.is_finite() {
                        burst.center.y
                    } else {
                        burst.center.x
                    },
                });
            }
            if !burst.extra_loss_db.is_finite() {
                return Err(ConfigError::NotFinite {
                    field: "disruptions.noise_bursts.extra_loss_db",
                    value: burst.extra_loss_db,
                });
            }
            if burst.extra_loss_db <= 0.0 {
                return Err(ConfigError::OutOfRange {
                    field: "disruptions.noise_bursts.extra_loss_db",
                    value: burst.extra_loss_db,
                    lo: 0.0,
                    hi: f64::INFINITY,
                });
            }
            if burst.duration.is_some_and(|d| d.is_zero()) {
                return Err(ConfigError::Zero {
                    field: "disruptions.noise_bursts.duration",
                });
            }
        }
        Ok(())
    }

    /// Compiles the plan into the ordered engine event timeline for a
    /// run of length `horizon`.
    ///
    /// Events at or past the horizon are dropped: a window that never
    /// closes before the horizon simply runs to the end of the
    /// simulation (its `…Up`/`…End` event is omitted). The result is
    /// sorted by time; simultaneous events resolve recoveries first,
    /// then failures, then withdrawals, each kind in declaration order —
    /// a pure function of the plan, never of construction order.
    pub fn compile(&self, horizon: SimDuration) -> Vec<(SimTime, DisruptionEvent)> {
        let end_of_run = SimTime::ZERO + horizon;
        let mut out = Vec::new();
        for outage in &self.outages {
            if outage.start >= end_of_run {
                continue;
            }
            let gateway = outage.gateway as u32;
            out.push((outage.start, DisruptionEvent::GatewayDown { gateway }));
            if let Some(d) = outage.duration {
                let up = outage.start + d;
                if up < end_of_run {
                    out.push((up, DisruptionEvent::GatewayUp { gateway }));
                }
            }
        }
        for (i, withdrawal) in self.withdrawals.iter().enumerate() {
            if withdrawal.at < end_of_run {
                out.push((
                    withdrawal.at,
                    DisruptionEvent::Withdraw {
                        withdrawal: i as u32,
                    },
                ));
            }
        }
        for (i, burst) in self.noise_bursts.iter().enumerate() {
            if burst.start >= end_of_run {
                continue;
            }
            out.push((burst.start, DisruptionEvent::NoiseStart { burst: i as u32 }));
            if let Some(d) = burst.duration {
                let end = burst.start + d;
                if end < end_of_run {
                    out.push((end, DisruptionEvent::NoiseEnd { burst: i as u32 }));
                }
            }
        }
        out.sort_by_key(|&(t, ev)| {
            let index = match ev {
                DisruptionEvent::GatewayUp { gateway }
                | DisruptionEvent::GatewayDown { gateway } => gateway,
                DisruptionEvent::NoiseStart { burst } | DisruptionEvent::NoiseEnd { burst } => {
                    burst
                }
                DisruptionEvent::Withdraw { withdrawal } => withdrawal,
            };
            (t, ev.rank(), index)
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hours(h: u64) -> SimDuration {
        SimDuration::from_hours(h)
    }

    #[test]
    fn empty_plan_compiles_to_nothing() {
        let plan = DisruptionPlan::default();
        assert!(plan.is_empty());
        assert!(plan.compile(hours(24)).is_empty());
        assert_eq!(plan.validate(1), Ok(()));
    }

    #[test]
    fn outage_compiles_to_down_up_pair() {
        let plan = DisruptionPlan {
            outages: vec![GatewayOutage {
                gateway: 2,
                start: SimTime::from_secs(100),
                duration: Some(SimDuration::from_secs(50)),
            }],
            ..DisruptionPlan::default()
        };
        let events = plan.compile(hours(1));
        assert_eq!(
            events,
            vec![
                (
                    SimTime::from_secs(100),
                    DisruptionEvent::GatewayDown { gateway: 2 }
                ),
                (
                    SimTime::from_secs(150),
                    DisruptionEvent::GatewayUp { gateway: 2 }
                ),
            ]
        );
    }

    #[test]
    fn open_ended_and_post_horizon_windows_truncate() {
        let plan = DisruptionPlan {
            outages: vec![
                // No duration: runs to horizon, no Up event.
                GatewayOutage {
                    gateway: 0,
                    start: SimTime::from_secs(10),
                    duration: None,
                },
                // Recovery would land past the horizon: dropped.
                GatewayOutage {
                    gateway: 1,
                    start: SimTime::from_secs(3_000),
                    duration: Some(hours(2)),
                },
                // Starts past the horizon entirely: dropped.
                GatewayOutage {
                    gateway: 2,
                    start: SimTime::from_secs(10_000),
                    duration: Some(SimDuration::from_secs(5)),
                },
            ],
            ..DisruptionPlan::default()
        };
        let events = plan.compile(hours(1));
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .all(|(_, ev)| matches!(ev, DisruptionEvent::GatewayDown { .. })));
    }

    #[test]
    fn simultaneous_events_order_recoveries_first() {
        let t = SimTime::from_secs(500);
        let plan = DisruptionPlan {
            outages: vec![
                GatewayOutage {
                    gateway: 0,
                    start: SimTime::ZERO,
                    duration: Some(SimDuration::from_secs(500)),
                },
                GatewayOutage {
                    gateway: 1,
                    start: t,
                    duration: None,
                },
            ],
            withdrawals: vec![BusWithdrawal {
                at: t,
                fraction: 0.5,
            }],
            ..DisruptionPlan::default()
        };
        let events = plan.compile(hours(1));
        let at_t: Vec<DisruptionEvent> = events
            .iter()
            .filter(|&&(time, _)| time == t)
            .map(|&(_, ev)| ev)
            .collect();
        assert_eq!(
            at_t,
            vec![
                DisruptionEvent::GatewayUp { gateway: 0 },
                DisruptionEvent::GatewayDown { gateway: 1 },
                DisruptionEvent::Withdraw { withdrawal: 0 },
            ]
        );
    }

    #[test]
    fn validation_names_offending_fields() {
        let bad_gateway = DisruptionPlan {
            outages: vec![GatewayOutage {
                gateway: 9,
                start: SimTime::ZERO,
                duration: None,
            }],
            ..DisruptionPlan::default()
        };
        assert_eq!(
            bad_gateway.validate(9).unwrap_err().field(),
            "disruptions.outages.gateway"
        );

        let bad_fraction = DisruptionPlan {
            withdrawals: vec![BusWithdrawal {
                at: SimTime::ZERO,
                fraction: 1.5,
            }],
            ..DisruptionPlan::default()
        };
        assert_eq!(
            bad_fraction.validate(9).unwrap_err().field(),
            "disruptions.withdrawals.fraction"
        );

        let bad_radius = DisruptionPlan {
            noise_bursts: vec![NoiseBurst {
                center: Point::new(0.0, 0.0),
                radius_m: f64::NAN,
                start: SimTime::ZERO,
                duration: None,
                extra_loss_db: 6.0,
            }],
            ..DisruptionPlan::default()
        };
        assert_eq!(
            bad_radius.validate(9).unwrap_err().field(),
            "disruptions.noise_bursts.radius_m"
        );

        let zero_window = DisruptionPlan {
            outages: vec![GatewayOutage {
                gateway: 0,
                start: SimTime::ZERO,
                duration: Some(SimDuration::ZERO),
            }],
            ..DisruptionPlan::default()
        };
        assert_eq!(
            zero_window.validate(9).unwrap_err().field(),
            "disruptions.outages.duration"
        );
    }
}
