//! Metric collection and the simulation report.

use mlora_simcore::stats::{TimeSeries, Welford};
use mlora_simcore::{DenseMap, MessageId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::traffic::TrafficModel;

/// Per-traffic-profile slice of a run's results.
///
/// One entry per profile of the scenario's
/// [`TrafficModel`](crate::TrafficModel), in model order; a run under
/// the paper's homogeneous default carries none. All ratio/mean
/// accessors guard their zero-denominator cases explicitly (mirroring
/// [`SimReport::mean_delay_s`]) so empty profiles print cleanly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// The profile's name, copied from the model.
    pub name: String,
    /// Messages this profile generated.
    pub generated: u64,
    /// Unique messages of this profile that reached the server.
    pub delivered: u64,
    /// Per-hop transmissions of this profile's messages
    /// (bundle-weighted, like [`SimReport::messages_sent`]).
    pub messages_sent: u64,
    /// Application payload bytes of this profile put on the air
    /// (bundle-weighted: relayed bytes count once per hop).
    pub payload_bytes_sent: u64,
    /// Share of frame airtime attributed to this profile, seconds.
    /// Frames carry mixed profiles, so each frame's airtime is split
    /// over its messages in proportion to payload bytes; header and
    /// metadata overhead stays unattributed, which is why the profile
    /// shares sum to *less than* [`SimReport::total_airtime_s`].
    pub airtime_s: f64,
    /// End-to-end delay statistics over this profile's deliveries
    /// (crate-visible so engine checkpoints can capture and restore it).
    pub(crate) delay: Welford,
}

impl ProfileReport {
    fn new(name: String) -> Self {
        ProfileReport {
            name,
            generated: 0,
            delivered: 0,
            messages_sent: 0,
            payload_bytes_sent: 0,
            airtime_s: 0.0,
            delay: Welford::new(),
        }
    }

    /// Delivery ratio of this profile's traffic, or `0.0` when the
    /// profile generated nothing.
    pub fn delivery_ratio(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.delivered as f64 / self.generated as f64
        }
    }

    /// Mean end-to-end delay over this profile's deliveries, seconds,
    /// or `0.0` when nothing was delivered.
    pub fn mean_delay_s(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.delay.mean()
        }
    }

    /// Standard error of this profile's mean delay, seconds.
    pub fn delay_std_error_s(&self) -> f64 {
        self.delay.std_error()
    }

    /// Mean payload bytes per transmitted message of this profile, or
    /// `0.0` when the profile never got a message onto the air.
    pub fn mean_payload_bytes(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.payload_bytes_sent as f64 / self.messages_sent as f64
        }
    }

    /// Mean attributed airtime per transmitted message, seconds, or
    /// `0.0` when the profile never got a message onto the air.
    pub fn mean_airtime_per_message_s(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.airtime_s / self.messages_sent as f64
        }
    }
}

/// Everything a run measures — the inputs to every figure in §VII.B.
///
/// * Fig. 8 — [`SimReport::mean_delay_s`] / [`SimReport::delay_std_error_s`]
/// * Fig. 9 — [`SimReport::delivered`]
/// * Figs. 10–11 — [`SimReport::throughput_series`]
/// * Fig. 12 — [`SimReport::mean_hops`]
/// * Fig. 13 — [`SimReport::mean_frames_per_node`]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Label of the forwarding scheme or custom policy the run executed
    /// (see [`SimConfig::scheme_label`](crate::SimConfig::scheme_label))
    /// — what [`report::scheme_table`](crate::report::scheme_table) and
    /// observers key rows by.
    pub scheme: String,
    /// Application messages generated.
    pub generated: u64,
    /// Unique messages that reached the network server.
    pub delivered: u64,
    /// Duplicate arrivals discarded by the server.
    pub duplicates: u64,
    /// Messages still undelivered when their holder left service.
    pub stranded: u64,
    /// Messages dropped by full queues.
    pub queue_drops: u64,
    /// End-to-end delay statistics over delivered messages, seconds
    /// (crate-visible so engine checkpoints can capture and restore it).
    pub(crate) delay: Welford,
    /// Hop-count statistics over delivered messages (crate-visible for
    /// checkpointing, like `delay`).
    pub(crate) hops: Welford,
    /// Unique messages received per series bucket (Figs. 10–11).
    pub throughput_series: TimeSeries,
    /// Frames transmitted, network-wide.
    pub frames_sent: u64,
    /// Application messages transmitted (bundle-weighted: a frame with
    /// 12 readings counts 12) — the Fig. 13 "messages sent" measure.
    pub messages_sent: u64,
    /// Device-to-device handover frames transmitted.
    pub handover_frames: u64,
    /// Messages moved by accepted handovers.
    pub handover_messages: u64,
    /// Frames lost to same-channel collisions (at any receiver that was
    /// otherwise in range).
    pub collisions: u64,
    /// Number of devices that saw service during the run.
    pub devices_seen: u64,
    /// Total radio energy across the fleet, millijoules.
    pub total_energy_mj: f64,
    /// Sum of all device active (in-service) time, seconds.
    pub total_active_s: f64,
    /// Gateway outage windows that began (up→down transitions).
    pub gateway_outages: u64,
    /// Buses withdrawn from service by scripted disruptions.
    pub buses_withdrawn: u64,
    /// Noise-burst windows that began.
    pub noise_bursts: u64,
    /// Total wall time with at least one gateway down, seconds.
    pub outage_time_s: f64,
    /// Messages generated while at least one gateway was down.
    pub generated_during_outage: u64,
    /// Messages generated while at least one gateway was down that were
    /// eventually delivered (at any time — the fate of disruption-era
    /// traffic, not an arrival-window count). Never exceeds
    /// [`SimReport::generated_during_outage`].
    pub delivered_of_outage_generated: u64,
    /// Total frame airtime across the fleet, seconds.
    pub total_airtime_s: f64,
    /// Per-profile breakdowns, one entry per profile of the scenario's
    /// [`TrafficModel`](crate::TrafficModel) in model order; empty under
    /// the paper's homogeneous default.
    pub profiles: Vec<ProfileReport>,
}

impl SimReport {
    /// Mean end-to-end delay over delivered messages, seconds, or `0.0`
    /// when nothing was delivered.
    ///
    /// The zero-delivery case is guarded explicitly (like
    /// [`SimReport::delivery_ratio`]) so empty-run reports print cleanly
    /// regardless of how the underlying accumulator treats emptiness.
    pub fn mean_delay_s(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.delay.mean()
        }
    }

    /// Standard error of the mean delay (the Fig. 8 error bars), seconds.
    pub fn delay_std_error_s(&self) -> f64 {
        self.delay.std_error()
    }

    /// Standard deviation of delivered-message delay, seconds.
    pub fn delay_std_dev_s(&self) -> f64 {
        self.delay.std_dev()
    }

    /// Mean hop count over delivered messages (Fig. 12), or `0.0` when
    /// nothing was delivered.
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.hops.mean()
        }
    }

    /// Largest hop count observed.
    pub fn max_hops(&self) -> f64 {
        self.hops.max().unwrap_or(0.0)
    }

    /// Mean frames transmitted per participating device.
    pub fn mean_frames_per_node(&self) -> f64 {
        if self.devices_seen == 0 {
            0.0
        } else {
            self.frames_sent as f64 / self.devices_seen as f64
        }
    }

    /// Mean messages transmitted per participating device (Fig. 13) —
    /// bundle-weighted, so relayed messages count once per hop.
    pub fn mean_messages_sent_per_node(&self) -> f64 {
        if self.devices_seen == 0 {
            0.0
        } else {
            self.messages_sent as f64 / self.devices_seen as f64
        }
    }

    /// Delivery ratio: unique deliveries over generated messages.
    pub fn delivery_ratio(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.delivered as f64 / self.generated as f64
        }
    }

    /// Mean radio energy per device over the run, millijoules.
    pub fn mean_energy_per_node_mj(&self) -> f64 {
        if self.devices_seen == 0 {
            0.0
        } else {
            self.total_energy_mj / self.devices_seen as f64
        }
    }

    /// Delivery ratio of disruption-era traffic: of the messages
    /// generated while at least one gateway was down, the fraction that
    /// was eventually delivered (at any time). Always in `[0, 1]`;
    /// `0.0` when no message was generated during an outage.
    pub fn outage_delivery_ratio(&self) -> f64 {
        if self.generated_during_outage == 0 {
            0.0
        } else {
            self.delivered_of_outage_generated as f64 / self.generated_during_outage as f64
        }
    }

    /// Delivery ratio of the remaining (clear-sky) traffic — the
    /// undisrupted counterpart of [`SimReport::outage_delivery_ratio`],
    /// also in `[0, 1]`. Equals [`SimReport::delivery_ratio`] when no
    /// gateway ever went down.
    pub fn clear_delivery_ratio(&self) -> f64 {
        let generated = self.generated - self.generated_during_outage;
        if generated == 0 {
            0.0
        } else {
            (self.delivered - self.delivered_of_outage_generated) as f64 / generated as f64
        }
    }

    /// Fraction of the fleet's scheduled service lost to scripted
    /// withdrawals: withdrawn buses over devices seen.
    pub fn withdrawal_ratio(&self) -> f64 {
        if self.devices_seen == 0 {
            0.0
        } else {
            self.buses_withdrawn as f64 / self.devices_seen as f64
        }
    }

    /// The per-profile breakdown named `name`, if the scenario's traffic
    /// model defines it.
    pub fn profile(&self, name: &str) -> Option<&ProfileReport> {
        self.profiles.iter().find(|p| p.name == name)
    }
}

/// Accumulates metrics during a run; [`Collector::finish`] yields the
/// immutable [`SimReport`].
#[derive(Debug, Clone)]
pub(crate) struct Collector {
    /// All fields are crate-visible: engine checkpoints capture and
    /// restore the collector wholesale, mid-run state included.
    pub(crate) report: SimReport,
    /// First-arrival times, for dedup (message ids are sequential, so a
    /// dense map makes the per-delivery bookkeeping an array access).
    pub(crate) arrived: DenseMap<MessageId, SimTime>,
    /// Device-to-device transfer counts per message (hops − 1).
    pub(crate) transfers: DenseMap<MessageId, u32>,
    /// Gateways currently down (global outage depth).
    pub(crate) outage_depth: u32,
    /// When the current ≥1-gateway-down interval began.
    pub(crate) outage_since: SimTime,
    /// Messages generated while ≥1 gateway was down (empty — and never
    /// probed into — when the run has no outages).
    pub(crate) outage_generated: DenseMap<MessageId, ()>,
}

impl Collector {
    pub(crate) fn new(
        scheme: String,
        bucket: SimDuration,
        horizon: SimDuration,
        traffic: &TrafficModel,
    ) -> Self {
        Collector {
            report: SimReport {
                scheme,
                generated: 0,
                delivered: 0,
                duplicates: 0,
                stranded: 0,
                queue_drops: 0,
                delay: Welford::new(),
                hops: Welford::new(),
                throughput_series: TimeSeries::new(bucket, horizon),
                frames_sent: 0,
                messages_sent: 0,
                handover_frames: 0,
                handover_messages: 0,
                collisions: 0,
                devices_seen: 0,
                total_energy_mj: 0.0,
                total_active_s: 0.0,
                gateway_outages: 0,
                buses_withdrawn: 0,
                noise_bursts: 0,
                outage_time_s: 0.0,
                generated_during_outage: 0,
                delivered_of_outage_generated: 0,
                total_airtime_s: 0.0,
                profiles: traffic
                    .profiles
                    .iter()
                    .map(|p| ProfileReport::new(p.name.clone()))
                    .collect(),
            },
            arrived: DenseMap::new(),
            transfers: DenseMap::new(),
            outage_depth: 0,
            outage_since: SimTime::ZERO,
            outage_generated: DenseMap::new(),
        }
    }

    pub(crate) fn on_generated(&mut self, msg: &mlora_mac::AppMessage) {
        self.report.generated += 1;
        if let Some(acc) = self.report.profiles.get_mut(msg.profile as usize) {
            acc.generated += 1;
        }
        if self.outage_depth > 0 {
            self.report.generated_during_outage += 1;
            self.outage_generated.insert(msg.id, ());
        }
    }

    /// A gateway transitioned up→down.
    pub(crate) fn on_gateway_down(&mut self, now: SimTime) {
        self.report.gateway_outages += 1;
        if self.outage_depth == 0 {
            self.outage_since = now;
        }
        self.outage_depth += 1;
    }

    /// A gateway transitioned down→up.
    pub(crate) fn on_gateway_up(&mut self, now: SimTime) {
        debug_assert!(self.outage_depth > 0, "recovery without an outage");
        self.outage_depth -= 1;
        if self.outage_depth == 0 {
            self.report.outage_time_s += now.saturating_since(self.outage_since).as_secs_f64();
        }
    }

    pub(crate) fn on_bus_withdrawn(&mut self) {
        self.report.buses_withdrawn += 1;
    }

    pub(crate) fn on_noise_burst(&mut self) {
        self.report.noise_bursts += 1;
    }

    /// Closes any outage interval still open when the run reaches its
    /// horizon (an outage with no scheduled recovery runs to the end).
    pub(crate) fn on_horizon(&mut self, now: SimTime) {
        if self.outage_depth > 0 {
            self.report.outage_time_s += now.saturating_since(self.outage_since).as_secs_f64();
            self.outage_since = now;
        }
    }

    pub(crate) fn on_frame_sent(
        &mut self,
        is_handover: bool,
        frame: &mlora_mac::UplinkFrame,
        airtime: SimDuration,
    ) {
        self.report.frames_sent += 1;
        self.report.messages_sent += frame.len() as u64;
        self.report.total_airtime_s += airtime.as_secs_f64();
        if is_handover {
            self.report.handover_frames += 1;
        }
        // Per-profile attribution: split the frame's airtime over its
        // messages in proportion to payload bytes (overhead stays
        // unattributed). Skipped entirely — no float work, no iteration
        // — under the paper's homogeneous default.
        if !self.report.profiles.is_empty() && !frame.is_empty() {
            let frame_bytes = frame.payload_bytes() as f64;
            let airtime_s = airtime.as_secs_f64();
            for m in &frame.messages {
                if let Some(acc) = self.report.profiles.get_mut(m.profile as usize) {
                    acc.messages_sent += 1;
                    acc.payload_bytes_sent += u64::from(m.payload_bytes);
                    acc.airtime_s += airtime_s * (f64::from(m.payload_bytes) / frame_bytes);
                }
            }
        }
    }

    pub(crate) fn on_handover_accepted(&mut self, messages: &[mlora_mac::AppMessage]) {
        self.report.handover_messages += messages.len() as u64;
        for m in messages {
            match self.transfers.get_mut(m.id) {
                Some(count) => *count += 1,
                None => {
                    self.transfers.insert(m.id, 1);
                }
            }
        }
    }

    pub(crate) fn on_collision(&mut self) {
        self.report.collisions += 1;
    }

    pub(crate) fn on_queue_drop(&mut self, n: u64) {
        self.report.queue_drops += n;
    }

    /// Records server reception of a message; dedups by id.
    ///
    /// Returns `Some((delay, hops))` on a first (unique) arrival and
    /// `None` for duplicates, so the engine can surface exactly one
    /// delivery event per delivered message.
    pub(crate) fn on_delivered(
        &mut self,
        msg: &mlora_mac::AppMessage,
        now: SimTime,
    ) -> Option<(SimDuration, u32)> {
        if self.arrived.contains_key(msg.id) {
            self.report.duplicates += 1;
            return None;
        }
        self.arrived.insert(msg.id, now);
        self.report.delivered += 1;
        if self.outage_generated.contains_key(msg.id) {
            self.report.delivered_of_outage_generated += 1;
        }
        let delay = now.saturating_since(msg.created);
        if let Some(acc) = self.report.profiles.get_mut(msg.profile as usize) {
            acc.delivered += 1;
            acc.delay.push(delay.as_secs_f64());
        }
        self.report.delay.push(delay.as_secs_f64());
        let transfers = self.transfers.get(msg.id).copied().unwrap_or(0);
        self.report.hops.push(f64::from(transfers) + 1.0);
        self.report.throughput_series.record(now);
        Some((delay, transfers + 1))
    }

    pub(crate) fn on_stranded(&mut self, n: u64) {
        self.report.stranded += n;
    }

    pub(crate) fn on_device_retired(&mut self, energy_mj: f64, active: SimDuration) {
        self.report.devices_seen += 1;
        self.report.total_energy_mj += energy_mj;
        self.report.total_active_s += active.as_secs_f64();
    }

    pub(crate) fn was_delivered(&self, id: MessageId) -> bool {
        self.arrived.contains_key(id)
    }

    pub(crate) fn finish(self) -> SimReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlora_mac::AppMessage;
    use mlora_simcore::NodeId;

    fn msg(i: u64, created_s: u64) -> AppMessage {
        AppMessage::new(
            MessageId::new(i),
            NodeId::new(0),
            SimTime::from_secs(created_s),
        )
    }

    fn collector() -> Collector {
        Collector::new(
            "test".into(),
            SimDuration::from_mins(10),
            SimDuration::from_hours(1),
            &TrafficModel::default(),
        )
    }

    fn frame(messages: Vec<AppMessage>) -> mlora_mac::UplinkFrame {
        mlora_mac::UplinkFrame::new(NodeId::new(0), messages, 1.0, 0)
    }

    #[test]
    fn delivery_dedups_and_tracks_delay() {
        let mut c = collector();
        c.on_generated(&msg(1, 100));
        c.on_delivered(&msg(1, 100), SimTime::from_secs(160));
        c.on_delivered(&msg(1, 100), SimTime::from_secs(200)); // duplicate
        let r = c.finish();
        assert_eq!(r.delivered, 1);
        assert_eq!(r.duplicates, 1);
        assert_eq!(r.mean_delay_s(), 60.0);
        assert_eq!(r.delivery_ratio(), 1.0);
    }

    #[test]
    fn hops_count_transfers_plus_one() {
        let mut c = collector();
        let m = msg(5, 0);
        c.on_handover_accepted(&[m]);
        c.on_handover_accepted(&[m]);
        c.on_delivered(&m, SimTime::from_secs(10));
        let r = c.finish();
        assert_eq!(r.mean_hops(), 3.0);
        assert_eq!(r.handover_messages, 2);
    }

    #[test]
    fn direct_delivery_is_one_hop() {
        let mut c = collector();
        c.on_delivered(&msg(1, 0), SimTime::from_secs(1));
        assert_eq!(c.finish().mean_hops(), 1.0);
    }

    #[test]
    fn frames_per_node() {
        let mut c = collector();
        let toa = SimDuration::from_millis(100);
        c.on_frame_sent(false, &frame((0..3).map(|i| msg(i, 0)).collect()), toa);
        c.on_frame_sent(true, &frame((3..15).map(|i| msg(i, 0)).collect()), toa);
        c.on_frame_sent(false, &frame(vec![msg(15, 0)]), toa);
        c.on_device_retired(10.0, SimDuration::from_secs(60));
        c.on_device_retired(20.0, SimDuration::from_secs(60));
        let r = c.finish();
        assert_eq!(r.mean_frames_per_node(), 1.5);
        assert_eq!(r.mean_messages_sent_per_node(), 8.0);
        assert_eq!(r.handover_frames, 1);
        assert_eq!(r.mean_energy_per_node_mj(), 15.0);
        assert!((r.total_airtime_s - 0.3).abs() < 1e-12);
    }

    #[test]
    fn throughput_series_buckets_by_arrival() {
        let mut c = collector();
        c.on_delivered(&msg(1, 0), SimTime::from_secs(30));
        c.on_delivered(&msg(2, 0), SimTime::from_secs(700));
        let r = c.finish();
        assert_eq!(r.throughput_series.counts()[0], 1);
        assert_eq!(r.throughput_series.counts()[1], 1);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = collector().finish();
        assert_eq!(r.mean_delay_s(), 0.0);
        assert_eq!(r.mean_hops(), 0.0);
        assert_eq!(r.mean_frames_per_node(), 0.0);
        assert_eq!(r.delivery_ratio(), 0.0);
        assert_eq!(r.outage_delivery_ratio(), 0.0);
        assert_eq!(r.clear_delivery_ratio(), 0.0);
        assert_eq!(r.withdrawal_ratio(), 0.0);
    }

    #[test]
    fn outage_windows_split_generated_and_delivered() {
        let mut c = collector();
        // Clear generation + delivery.
        c.on_generated(&msg(1, 0));
        c.on_delivered(&msg(1, 0), SimTime::from_secs(10));
        // One gateway drops at t=100; messages born inside count as
        // disruption-era traffic wherever they are later delivered.
        c.on_gateway_down(SimTime::from_secs(100));
        c.on_generated(&msg(2, 100));
        // A second outage overlapping the first: depth 2, window extends.
        c.on_gateway_down(SimTime::from_secs(200));
        c.on_gateway_up(SimTime::from_secs(250));
        c.on_gateway_up(SimTime::from_secs(300));
        // Back in the clear: the outage-born message lands late, and a
        // clear-sky message generated now is never delivered.
        c.on_delivered(&msg(2, 100), SimTime::from_secs(400));
        c.on_generated(&msg(3, 400));
        c.on_horizon(SimTime::from_secs(1_000));
        let r = c.finish();
        assert_eq!(r.gateway_outages, 2);
        assert_eq!(r.generated, 3);
        assert_eq!(r.generated_during_outage, 1);
        assert_eq!(r.delivered_of_outage_generated, 1);
        // One contiguous 100→300 s window; depth never hit zero inside.
        assert_eq!(r.outage_time_s, 200.0);
        assert_eq!(r.outage_delivery_ratio(), 1.0);
        assert_eq!(r.clear_delivery_ratio(), 0.5);
    }

    #[test]
    fn per_profile_breakdowns_accumulate() {
        use crate::{ArrivalProcess, PayloadModel, TrafficProfile};

        let model = TrafficModel::mix([
            TrafficProfile::new(
                "a",
                ArrivalProcess::Periodic {
                    interval: SimDuration::from_mins(1),
                },
                PayloadModel::Fixed { bytes: 20 },
            ),
            TrafficProfile::new(
                "b",
                ArrivalProcess::Periodic {
                    interval: SimDuration::from_mins(1),
                },
                PayloadModel::Fixed { bytes: 60 },
            ),
        ]);
        let mut c = Collector::new(
            "test".into(),
            SimDuration::from_mins(10),
            SimDuration::from_hours(1),
            &model,
        );
        let ma = msg(1, 0).with_traffic(20, 0, mlora_mac::Priority::Normal);
        let mb = msg(2, 0).with_traffic(60, 1, mlora_mac::Priority::Normal);
        c.on_generated(&ma);
        c.on_generated(&mb);
        let toa = SimDuration::from_millis(95);
        c.on_frame_sent(false, &frame(vec![ma, mb]), toa);
        c.on_delivered(&ma, SimTime::from_secs(30));
        let r = c.finish();
        assert_eq!(r.profiles.len(), 2);
        let a = r.profile("a").expect("profile a");
        let b = r.profile("b").expect("profile b");
        assert_eq!((a.generated, a.delivered), (1, 1));
        assert_eq!((b.generated, b.delivered), (1, 0));
        assert_eq!(a.payload_bytes_sent, 20);
        assert_eq!(b.payload_bytes_sent, 60);
        assert_eq!(a.mean_delay_s(), 30.0);
        assert_eq!(a.delivery_ratio(), 1.0);
        assert_eq!(b.delivery_ratio(), 0.0);
        assert_eq!(a.mean_payload_bytes(), 20.0);
        // Airtime shares are proportional to payload bytes and never
        // exceed the frame total (overhead stays unattributed).
        assert!(b.airtime_s > a.airtime_s);
        assert!(a.airtime_s + b.airtime_s < r.total_airtime_s + 1e-12);
        assert!((b.airtime_s / a.airtime_s - 3.0).abs() < 1e-9);
        assert!(r.profile("missing").is_none());
    }

    #[test]
    fn empty_profile_report_guards_divisions() {
        // The zero-delivery / zero-send boundary: every accessor must
        // return a clean 0.0, never NaN (the mean_delay_s hazard class).
        let p = ProfileReport::new("idle".into());
        assert_eq!(p.delivery_ratio(), 0.0);
        assert_eq!(p.mean_delay_s(), 0.0);
        assert_eq!(p.delay_std_error_s(), 0.0);
        assert_eq!(p.mean_payload_bytes(), 0.0);
        assert_eq!(p.mean_airtime_per_message_s(), 0.0);

        // Generated-but-never-delivered: ratios defined, delay still 0.
        let mut p = ProfileReport::new("lossy".into());
        p.generated = 5;
        assert_eq!(p.delivery_ratio(), 0.0);
        assert_eq!(p.mean_delay_s(), 0.0);
        assert!(p.mean_delay_s().is_finite());
    }

    #[test]
    fn open_outage_closes_at_horizon() {
        let mut c = collector();
        c.on_gateway_down(SimTime::from_secs(3_000));
        c.on_bus_withdrawn();
        c.on_noise_burst();
        c.on_horizon(SimTime::from_secs(3_600));
        let r = c.finish();
        assert_eq!(r.outage_time_s, 600.0);
        assert_eq!(r.gateway_outages, 1);
        assert_eq!(r.buses_withdrawn, 1);
        assert_eq!(r.noise_bursts, 1);
    }
}
