//! Legacy per-figure experiment entry points.
//!
//! Every function here is a thin, deprecated wrapper over the
//! declarative [`ExperimentPlan`](crate::ExperimentPlan) +
//! [`Runner`](crate::Runner) API — new code should build plans directly
//! (they compose axes freely, replicate over seeds and run across worker
//! threads). The wrappers reproduce the historical behaviour exactly,
//! including the same-seed-in-every-cell policy, and propagate
//! configuration problems as [`RunnerError`] instead of panicking.

#![allow(deprecated)]

use mlora_core::Scheme;
use serde::{Deserialize, Serialize};

use crate::runner::{CellResult, ExperimentPlan, Runner, RunnerError};
use crate::{DeviceClassChoice, Environment, GatewayPlacement, SimConfig, SimReport};

/// One cell of the Fig. 8/9/12/13 sweeps: a (gateways, environment,
/// scheme) combination and its simulation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of gateways deployed.
    pub gateways: usize,
    /// Radio environment.
    pub environment: Environment,
    /// Forwarding scheme.
    pub scheme: Scheme,
    /// The run's metrics.
    pub report: SimReport,
}

impl SweepPoint {
    /// Extracts sweep points (one per cell, first replicate) from runner
    /// results — the bridge from the plan API to the per-figure
    /// formatters in [`crate::report`].
    pub fn from_cells(cells: &[CellResult]) -> Vec<SweepPoint> {
        cells
            .iter()
            .map(|cell| SweepPoint {
                gateways: cell.key.gateways,
                environment: cell.key.environment,
                scheme: cell.key.scheme,
                report: cell.report.single().clone(),
            })
            .collect()
    }
}

/// The paper's gateway counts: 40–100 in steps of 10.
pub const PAPER_GATEWAY_COUNTS: [usize; 7] = [40, 50, 60, 70, 80, 90, 100];

/// Runs the full gateway-density sweep behind Figs. 8, 9, 12 and 13:
/// every `(gateways, environment, scheme)` combination on an otherwise
/// fixed configuration.
///
/// The same seed is reused across combinations so every cell sees the
/// identical fleet and traffic; only deployment and scheme vary.
///
/// # Errors
///
/// Returns [`RunnerError`] if any combination is invalid.
#[deprecated(
    since = "0.2.0",
    note = "build an ExperimentPlan with environment/gateway/scheme axes and execute it with Runner"
)]
pub fn gateway_sweep(
    base: &SimConfig,
    gateway_counts: &[usize],
    environments: &[Environment],
    schemes: &[Scheme],
    seed: u64,
) -> Result<Vec<SweepPoint>, RunnerError> {
    let plan = ExperimentPlan::new(base.clone())
        .environments(environments.iter().copied())
        .gateway_counts(gateway_counts.iter().copied())
        .schemes(schemes.iter().copied())
        .fixed_seeds([seed]);
    let cells = Runner::new().run(&plan)?;
    Ok(SweepPoint::from_cells(&cells))
}

/// Runs the Figs. 10–11 time-series experiment: one run per scheme at a
/// fixed gateway count, returning the per-bucket unique-delivery series.
///
/// # Errors
///
/// Returns [`RunnerError`] if any combination is invalid.
#[deprecated(
    since = "0.2.0",
    note = "build an ExperimentPlan with a scheme axis (or attach a SeriesObserver) and execute it with Runner"
)]
pub fn time_series(
    base: &SimConfig,
    environment: Environment,
    gateways: usize,
    schemes: &[Scheme],
    seed: u64,
) -> Result<Vec<(Scheme, SimReport)>, RunnerError> {
    let plan = ExperimentPlan::new(base.clone())
        .environments([environment])
        .gateway_counts([gateways])
        .schemes(schemes.iter().copied())
        .fixed_seeds([seed]);
    let cells = Runner::new().run(&plan)?;
    Ok(cells
        .into_iter()
        .map(|cell| (cell.key.scheme, cell.report.into_runs().remove(0).1))
        .collect())
}

/// Ablation A: sensitivity of the Eq. 4 EWMA factor α (§IV.B discusses
/// the adaptivity/stability trade-off).
///
/// # Errors
///
/// Returns [`RunnerError`] if any α is invalid.
#[deprecated(
    since = "0.2.0",
    note = "build an ExperimentPlan with an alpha axis and execute it with Runner"
)]
pub fn alpha_sweep(
    base: &SimConfig,
    alphas: &[f64],
    seed: u64,
) -> Result<Vec<(f64, SimReport)>, RunnerError> {
    let plan = ExperimentPlan::new(base.clone())
        .alphas(alphas.iter().copied())
        .fixed_seeds([seed]);
    let cells = Runner::new().run(&plan)?;
    Ok(cells
        .into_iter()
        .map(|cell| (cell.key.alpha, cell.report.into_runs().remove(0).1))
        .collect())
}

/// Ablation B (§VII.C): grid versus random gateway placement. Random
/// placement is run with `random_layouts` different deployment seeds to
/// expose the placement variance the paper reports.
///
/// # Errors
///
/// Returns [`RunnerError`] if the configuration is invalid.
#[deprecated(
    since = "0.2.0",
    note = "build ExperimentPlans with a placement axis (replicating the random plan over seeds) and execute them with Runner"
)]
pub fn placement_compare(
    base: &SimConfig,
    schemes: &[Scheme],
    random_layouts: u64,
    seed: u64,
) -> Result<Vec<(Scheme, GatewayPlacement, u64, SimReport)>, RunnerError> {
    let runner = Runner::new();
    let grid = runner.run(
        &ExperimentPlan::new(base.clone())
            .schemes(schemes.iter().copied())
            .placements([GatewayPlacement::Grid])
            .fixed_seeds([seed]),
    )?;
    // With zero random layouts the historical behaviour is grid-only rows.
    let random = if random_layouts == 0 {
        Vec::new()
    } else {
        runner.run(
            &ExperimentPlan::new(base.clone())
                .schemes(schemes.iter().copied())
                .placements([GatewayPlacement::Random])
                .fixed_seeds((0..random_layouts).map(|layout| seed.wrapping_add(layout + 1))),
        )?
    };
    let mut out = Vec::new();
    let mut random = random.into_iter();
    for grid_cell in grid {
        let scheme = grid_cell.key.scheme;
        for (s, report) in grid_cell.report.into_runs() {
            out.push((scheme, GatewayPlacement::Grid, s, report));
        }
        if let Some(random_cell) = random.next() {
            for (s, report) in random_cell.report.into_runs() {
                out.push((scheme, GatewayPlacement::Random, s, report));
            }
        }
    }
    Ok(out)
}

/// Ablation C (§VI, §VII.C): Modified Class-C versus Queue-based Class-A
/// under the same scheme — delivery on par, energy lower.
///
/// # Errors
///
/// Returns [`RunnerError`] if the configuration is invalid.
#[deprecated(
    since = "0.2.0",
    note = "build an ExperimentPlan with a device_classes axis and execute it with Runner"
)]
pub fn class_compare(
    base: &SimConfig,
    seed: u64,
) -> Result<Vec<(DeviceClassChoice, SimReport)>, RunnerError> {
    let plan = ExperimentPlan::new(base.clone())
        .device_classes([
            DeviceClassChoice::ModifiedClassC,
            DeviceClassChoice::QueueBasedClassA,
        ])
        .fixed_seeds([seed]);
    let cells = Runner::new().run(&plan)?;
    Ok(cells
        .into_iter()
        .map(|cell| (cell.key.device_class, cell.report.into_runs().remove(0).1))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    fn tiny() -> SimConfig {
        Scenario::urban()
            .smoke()
            .duration(mlora_simcore::SimDuration::from_mins(40))
            .build()
            .expect("tiny config is valid")
    }

    #[test]
    fn sweep_covers_grid_of_combinations() {
        let pts = gateway_sweep(
            &tiny(),
            &[4, 9],
            &[Environment::Urban, Environment::Rural],
            &Scheme::ALL,
            5,
        )
        .expect("sweep config is valid");
        assert_eq!(pts.len(), 2 * 2 * 3);
        assert!(pts.iter().all(|p| p.report.generated > 0));
        // Combinations are unique.
        let mut keys: Vec<_> = pts
            .iter()
            .map(|p| (p.gateways, p.environment, p.scheme))
            .collect();
        keys.dedup();
        assert_eq!(keys.len(), 12);
    }

    #[test]
    fn sweep_matches_direct_runs() {
        // The wrapper must reproduce exactly what a direct run of each
        // cell produces — same config, same seed.
        let base = tiny();
        let pts = gateway_sweep(&base, &[4], &[Environment::Rural], &[Scheme::Robc], 9)
            .expect("sweep config is valid");
        let mut direct = base.clone();
        direct.environment = Environment::Rural;
        direct.num_gateways = 4;
        direct.scheme = Scheme::Robc;
        assert_eq!(pts[0].report, direct.run(9).unwrap());
    }

    #[test]
    fn invalid_sweep_returns_error_not_panic() {
        let result = gateway_sweep(&tiny(), &[0], &[Environment::Urban], &Scheme::ALL, 5);
        assert!(result.is_err(), "zero gateways must be a RunnerError");
    }

    #[test]
    fn time_series_one_report_per_scheme() {
        let rows =
            time_series(&tiny(), Environment::Urban, 9, &Scheme::ALL, 5).expect("valid config");
        assert_eq!(rows.len(), 3);
        for (_, r) in &rows {
            assert_eq!(
                r.throughput_series.total(),
                r.delivered,
                "series total must equal unique deliveries"
            );
        }
    }

    #[test]
    fn alpha_sweep_runs_each_alpha() {
        let rows = alpha_sweep(&tiny(), &[0.2, 0.5, 0.8], 5).expect("valid config");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].0, 0.5);
    }

    #[test]
    fn placement_compare_has_grid_and_random_rows() {
        let rows = placement_compare(&tiny(), &[Scheme::NoRouting], 2, 5).expect("valid config");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, GatewayPlacement::Grid);
        assert_eq!(rows[1].1, GatewayPlacement::Random);
        // Different layouts give different results.
        assert_ne!(rows[1].3, rows[2].3);
    }

    #[test]
    fn placement_compare_zero_layouts_is_grid_only() {
        let rows = placement_compare(&tiny(), &[Scheme::NoRouting], 0, 5).expect("valid config");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1, GatewayPlacement::Grid);
    }

    #[test]
    fn class_compare_two_rows() {
        let rows = class_compare(&tiny(), 5).expect("valid config");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, DeviceClassChoice::ModifiedClassC);
    }
}
