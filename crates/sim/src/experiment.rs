//! Experiment runners — one per figure of §VII (see DESIGN.md's index).
//!
//! Each runner takes a base [`SimConfig`], applies the sweep the figure
//! calls for, and returns structured results the report formatters (and
//! EXPERIMENTS.md) consume. Runners never print; formatting lives in
//! [`crate::report`].

use mlora_core::Scheme;
use serde::{Deserialize, Serialize};

use crate::{DeviceClassChoice, Environment, GatewayPlacement, SimConfig, SimReport};

/// One cell of the Fig. 8/9/12/13 sweeps: a (gateways, environment,
/// scheme) combination and its simulation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of gateways deployed.
    pub gateways: usize,
    /// Radio environment.
    pub environment: Environment,
    /// Forwarding scheme.
    pub scheme: Scheme,
    /// The run's metrics.
    pub report: SimReport,
}

/// Runs the full gateway-density sweep behind Figs. 8, 9, 12 and 13:
/// every `(gateways, environment, scheme)` combination on an otherwise
/// fixed configuration.
///
/// The same seed is reused across combinations so every cell sees the
/// identical fleet and traffic; only deployment and scheme vary.
pub fn gateway_sweep(
    base: &SimConfig,
    gateway_counts: &[usize],
    environments: &[Environment],
    schemes: &[Scheme],
    seed: u64,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &environment in environments {
        for &gateways in gateway_counts {
            for &scheme in schemes {
                let mut cfg = base.clone();
                cfg.environment = environment;
                cfg.num_gateways = gateways;
                cfg.scheme = scheme;
                let report = cfg.run(seed).expect("sweep config is valid");
                out.push(SweepPoint {
                    gateways,
                    environment,
                    scheme,
                    report,
                });
            }
        }
    }
    out
}

/// The paper's gateway counts: 40–100 in steps of 10.
pub const PAPER_GATEWAY_COUNTS: [usize; 7] = [40, 50, 60, 70, 80, 90, 100];

/// Runs the Figs. 10–11 time-series experiment: one run per scheme at a
/// fixed gateway count, returning the per-bucket unique-delivery series.
pub fn time_series(
    base: &SimConfig,
    environment: Environment,
    gateways: usize,
    schemes: &[Scheme],
    seed: u64,
) -> Vec<(Scheme, SimReport)> {
    schemes
        .iter()
        .map(|&scheme| {
            let mut cfg = base.clone();
            cfg.environment = environment;
            cfg.num_gateways = gateways;
            cfg.scheme = scheme;
            (scheme, cfg.run(seed).expect("series config is valid"))
        })
        .collect()
}

/// Ablation A: sensitivity of the Eq. 4 EWMA factor α (§IV.B discusses
/// the adaptivity/stability trade-off).
pub fn alpha_sweep(base: &SimConfig, alphas: &[f64], seed: u64) -> Vec<(f64, SimReport)> {
    alphas
        .iter()
        .map(|&alpha| {
            let mut cfg = base.clone();
            cfg.alpha = alpha;
            (alpha, cfg.run(seed).expect("alpha config is valid"))
        })
        .collect()
}

/// Ablation B (§VII.C): grid versus random gateway placement. Random
/// placement is run with `random_layouts` different deployment seeds to
/// expose the placement variance the paper reports.
pub fn placement_compare(
    base: &SimConfig,
    schemes: &[Scheme],
    random_layouts: u64,
    seed: u64,
) -> Vec<(Scheme, GatewayPlacement, u64, SimReport)> {
    let mut out = Vec::new();
    for &scheme in schemes {
        let mut grid = base.clone();
        grid.scheme = scheme;
        grid.placement = GatewayPlacement::Grid;
        out.push((
            scheme,
            GatewayPlacement::Grid,
            seed,
            grid.run(seed).expect("grid config is valid"),
        ));
        for layout in 0..random_layouts {
            let mut rnd = base.clone();
            rnd.scheme = scheme;
            rnd.placement = GatewayPlacement::Random;
            let s = seed.wrapping_add(layout + 1);
            out.push((
                scheme,
                GatewayPlacement::Random,
                s,
                rnd.run(s).expect("random config is valid"),
            ));
        }
    }
    out
}

/// Ablation C (§VI, §VII.C): Modified Class-C versus Queue-based Class-A
/// under the same scheme — delivery on par, energy lower.
pub fn class_compare(base: &SimConfig, seed: u64) -> Vec<(DeviceClassChoice, SimReport)> {
    [
        DeviceClassChoice::ModifiedClassC,
        DeviceClassChoice::QueueBasedClassA,
    ]
    .into_iter()
    .map(|class| {
        let mut cfg = base.clone();
        cfg.device_class = class;
        (class, cfg.run(seed).expect("class config is valid"))
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SimConfig {
        let mut cfg = SimConfig::smoke_test(Scheme::NoRouting, Environment::Urban);
        cfg.horizon = mlora_simcore::SimDuration::from_mins(40);
        cfg.network.horizon = cfg.horizon;
        cfg
    }

    #[test]
    fn sweep_covers_grid_of_combinations() {
        let pts = gateway_sweep(
            &tiny(),
            &[4, 9],
            &[Environment::Urban, Environment::Rural],
            &Scheme::ALL,
            5,
        );
        assert_eq!(pts.len(), 2 * 2 * 3);
        assert!(pts.iter().all(|p| p.report.generated > 0));
        // Combinations are unique.
        let mut keys: Vec<_> = pts
            .iter()
            .map(|p| (p.gateways, p.environment, p.scheme))
            .collect();
        keys.dedup();
        assert_eq!(keys.len(), 12);
    }

    #[test]
    fn time_series_one_report_per_scheme() {
        let rows = time_series(&tiny(), Environment::Urban, 9, &Scheme::ALL, 5);
        assert_eq!(rows.len(), 3);
        for (_, r) in &rows {
            assert_eq!(
                r.throughput_series.total(),
                r.delivered,
                "series total must equal unique deliveries"
            );
        }
    }

    #[test]
    fn alpha_sweep_runs_each_alpha() {
        let rows = alpha_sweep(&tiny(), &[0.2, 0.5, 0.8], 5);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].0, 0.5);
    }

    #[test]
    fn placement_compare_has_grid_and_random_rows() {
        let rows = placement_compare(&tiny(), &[Scheme::NoRouting], 2, 5);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1, GatewayPlacement::Grid);
        assert_eq!(rows[1].1, GatewayPlacement::Random);
        // Different layouts give different results.
        assert_ne!(rows[1].3, rows[2].3);
    }

    #[test]
    fn class_compare_two_rows() {
        let rows = class_compare(&tiny(), 5);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, DeviceClassChoice::ModifiedClassC);
    }
}
