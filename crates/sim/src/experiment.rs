//! Figure-oriented views over experiment results.
//!
//! Sweeps themselves are expressed as
//! [`ExperimentPlan`](crate::ExperimentPlan)s and executed by the
//! parallel [`Runner`](crate::Runner); this module keeps the small
//! figure-shaped bridge types the per-figure formatters in
//! [`crate::report`] consume. (The deprecated free-function sweep
//! wrappers that used to live here were removed once every caller had
//! migrated to the plan API.)

use mlora_core::Scheme;
use serde::{Deserialize, Serialize};

use crate::runner::CellResult;
use crate::{Environment, SimReport};

/// One cell of the Fig. 8/9/12/13 sweeps: a (gateways, environment,
/// scheme) combination and its simulation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of gateways deployed.
    pub gateways: usize,
    /// Radio environment.
    pub environment: Environment,
    /// Forwarding scheme.
    pub scheme: Scheme,
    /// The run's metrics.
    pub report: SimReport,
}

impl SweepPoint {
    /// Extracts sweep points (one per cell, first replicate) from runner
    /// results — the bridge from the plan API to the per-figure
    /// formatters in [`crate::report`].
    pub fn from_cells(cells: &[CellResult]) -> Vec<SweepPoint> {
        cells
            .iter()
            .map(|cell| SweepPoint {
                gateways: cell.key.gateways,
                environment: cell.key.environment,
                scheme: cell.key.scheme,
                report: cell.report.single().clone(),
            })
            .collect()
    }
}

/// The paper's gateway counts: 40–100 in steps of 10.
pub const PAPER_GATEWAY_COUNTS: [usize; 7] = [40, 50, 60, 70, 80, 90, 100];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExperimentPlan, Runner, Scenario, SimConfig};

    fn tiny() -> SimConfig {
        Scenario::urban()
            .smoke()
            .duration(mlora_simcore::SimDuration::from_mins(40))
            .build()
            .expect("tiny config is valid")
    }

    #[test]
    fn sweep_points_cover_plan_cells_in_order() {
        let plan = ExperimentPlan::new(tiny())
            .environments([Environment::Urban, Environment::Rural])
            .gateway_counts([4, 9])
            .schemes(Scheme::ALL)
            .fixed_seeds([5]);
        let cells = Runner::new().run(&plan).expect("valid plan");
        let pts = SweepPoint::from_cells(&cells);
        assert_eq!(pts.len(), 2 * 2 * 3);
        assert!(pts.iter().all(|p| p.report.generated > 0));
        // Combinations are unique and follow plan order.
        let mut keys: Vec<_> = pts
            .iter()
            .map(|p| (p.gateways, p.environment, p.scheme))
            .collect();
        keys.dedup();
        assert_eq!(keys.len(), 12);
        for (pt, cell) in pts.iter().zip(&cells) {
            assert_eq!(pt.report, *cell.report.single());
        }
    }

    #[test]
    fn sweep_point_matches_direct_run() {
        // A plan cell must reproduce exactly what a direct run of the
        // same configuration produces — same config, same seed.
        let base = tiny();
        let plan = ExperimentPlan::new(base.clone())
            .environments([Environment::Rural])
            .gateway_counts([4])
            .schemes([Scheme::Robc])
            .fixed_seeds([9]);
        let pts = SweepPoint::from_cells(&Runner::new().run(&plan).expect("valid plan"));
        let mut direct = base;
        direct.environment = Environment::Rural;
        direct.num_gateways = 4;
        direct.scheme = Scheme::Robc;
        assert_eq!(pts[0].report, direct.run(9).unwrap());
    }

    #[test]
    fn paper_gateway_counts_shape() {
        assert_eq!(PAPER_GATEWAY_COUNTS.len(), 7);
        assert_eq!(PAPER_GATEWAY_COUNTS[0], 40);
        assert_eq!(PAPER_GATEWAY_COUNTS[6], 100);
    }
}
