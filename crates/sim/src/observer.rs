//! Streaming observation of a running simulation.
//!
//! A [`SimObserver`] receives typed events as the engine executes —
//! message generation, frame transmissions, device-to-device forwards and
//! unique server deliveries — decoupling measurement from the engine the
//! way an events-publisher does in large traffic simulators. One run can
//! feed any number of analyses (the built-in [`EventCounter`],
//! [`SeriesObserver`] and [`TraceSink`], or anything user-defined) instead
//! of being re-run once per figure.
//!
//! The event types themselves live in [`events`] (re-exported here and
//! from the crate root), one struct per hook, all carrying their firing
//! instant behind the [`events::ObservedEvent`] accessor.
//!
//! Observers are strictly passive: the engine's event stream and final
//! [`SimReport`] are byte-identical with or without one attached.
//!
//! # Example
//!
//! ```
//! use mlora_sim::prelude::*;
//!
//! let config = Scenario::urban().smoke().scheme(Scheme::Robc).build()?;
//! let mut counter = EventCounter::default();
//! let report = config.run_with_observer(42, &mut counter)?;
//! assert_eq!(counter.deliveries, report.delivered);
//! # Ok::<(), mlora_sim::ConfigError>(())
//! ```

use std::io::Write;

use mlora_simcore::stats::TimeSeries;
use mlora_simcore::{SimDuration, SimTime};

use crate::SimReport;

pub use events::{
    BusWithdrawn, FrameTransmitted, GatewayOutageChanged, HandoverAccepted, MessageDelivered,
    MessageGenerated, NoiseBurstChanged, ObservedEvent,
};

pub mod events {
    //! The typed events a [`SimObserver`](super::SimObserver) receives.
    //!
    //! One struct per hook, all following the same conventions: plain
    //! `Copy` data (ids, times, counts — no references into engine
    //! state), public fields, and a leading `time` field exposing the
    //! simulation instant the event fired at, uniformly accessible
    //! through [`ObservedEvent::time`] so generic sinks can timestamp
    //! any event without matching on its type.

    use mlora_simcore::{MessageId, NodeId, SimDuration, SimTime};

    /// The shared accessor convention: every observer event carries the
    /// simulation instant it fired at.
    ///
    /// Implemented by all seven event types, so generic code — bucketing
    /// time-series sinks, ordered trace mergers — can read the timestamp
    /// without knowing the concrete event.
    pub trait ObservedEvent {
        /// Simulation time the event fired at.
        fn time(&self) -> SimTime;
    }

    macro_rules! observed_at {
        ($($ty:ty),+) => {$(
            impl ObservedEvent for $ty {
                fn time(&self) -> SimTime {
                    self.time
                }
            }
        )+};
    }

    observed_at!(
        MessageGenerated,
        FrameTransmitted,
        HandoverAccepted,
        MessageDelivered,
        GatewayOutageChanged,
        BusWithdrawn,
        NoiseBurstChanged
    );

    /// A device generated one application message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct MessageGenerated {
        /// Simulation time of generation.
        pub time: SimTime,
        /// The generating device.
        pub device: NodeId,
        /// The new message's identifier.
        pub message: MessageId,
        /// Index of the traffic profile that generated it (0 under the
        /// paper's homogeneous default).
        pub profile: u8,
        /// Application payload size, bytes.
        pub payload_bytes: u16,
    }

    /// A device began transmitting one uplink or handover frame.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct FrameTransmitted {
        /// Simulation time at transmission start.
        pub time: SimTime,
        /// The transmitting device.
        pub sender: NodeId,
        /// Messages bundled into the frame.
        pub bundled: usize,
        /// PHY payload size of the frame, bytes (header, metadata and the
        /// actual bundled payload sizes — what the airtime was computed
        /// from).
        pub payload_bytes: usize,
        /// Time on air.
        pub airtime: SimDuration,
        /// `Some(device)` when this frame is a directed handover.
        pub handover_target: Option<NodeId>,
    }

    /// A handover frame was decoded and accepted by its target device.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct HandoverAccepted {
        /// Simulation time of acceptance (transmission end).
        pub time: SimTime,
        /// The device that handed its data over.
        pub donor: NodeId,
        /// The device now holding the data.
        pub acceptor: NodeId,
        /// Messages moved.
        pub messages: usize,
    }

    /// A message reached the network server for the first time.
    ///
    /// Exactly one such event fires per unique delivery — duplicates arriving
    /// later at other gateways are filtered, so counting these events always
    /// matches [`SimReport::delivered`](crate::SimReport::delivered).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct MessageDelivered {
        /// Simulation time of first arrival.
        pub time: SimTime,
        /// The delivered message.
        pub message: MessageId,
        /// The device that originally generated it.
        pub origin: NodeId,
        /// End-to-end delay from generation to first arrival.
        pub delay: SimDuration,
        /// Device-to-device transfers plus the final uplink (≥ 1).
        pub hops: u32,
    }

    /// A gateway went down or recovered.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct GatewayOutageChanged {
        /// Simulation time of the transition.
        pub time: SimTime,
        /// Index of the affected gateway.
        pub gateway: u32,
        /// `true` when the gateway just went down, `false` on recovery.
        pub down: bool,
    }

    /// A bus was withdrawn from service by a scripted disruption.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct BusWithdrawn {
        /// Simulation time of the withdrawal.
        pub time: SimTime,
        /// The withdrawn device.
        pub device: NodeId,
    }

    /// A regional noise burst began or ended.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct NoiseBurstChanged {
        /// Simulation time of the transition.
        pub time: SimTime,
        /// Index of the burst in the scenario's
        /// [`DisruptionPlan`](crate::DisruptionPlan).
        pub burst: u32,
        /// `true` when the burst just started, `false` when it ended.
        pub active: bool,
    }
}

/// Receives the engine's event stream.
///
/// All hooks default to no-ops, so implementors override only what they
/// need. Hooks take `&mut self`; the engine calls them synchronously in
/// event order.
pub trait SimObserver {
    /// A device generated one application message.
    fn on_message_generated(&mut self, _ev: &MessageGenerated) {}

    /// A device began transmitting a frame.
    fn on_frame_tx(&mut self, _ev: &FrameTransmitted) {}

    /// A handover was accepted by its target device.
    fn on_forward(&mut self, _ev: &HandoverAccepted) {}

    /// A message reached the server for the first time.
    fn on_delivery(&mut self, _ev: &MessageDelivered) {}

    /// A gateway went down or recovered.
    fn on_gateway_outage(&mut self, _ev: &GatewayOutageChanged) {}

    /// A bus was withdrawn from service by a scripted disruption.
    fn on_bus_withdrawn(&mut self, _ev: &BusWithdrawn) {}

    /// A regional noise burst began or ended.
    fn on_noise_burst(&mut self, _ev: &NoiseBurstChanged) {}

    /// The run finished; `report` is the final immutable result.
    fn on_run_end(&mut self, _report: &SimReport) {}
}

/// Observer that ignores everything (the default for [`crate::Engine::run`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

/// Fans one event stream out to two observers.
///
/// Pairs nest, so any number of observers can ride one run:
/// `(&mut a, (&mut b, &mut c))`.
impl<A: SimObserver + ?Sized, B: SimObserver + ?Sized> SimObserver for (&mut A, &mut B) {
    fn on_message_generated(&mut self, ev: &MessageGenerated) {
        self.0.on_message_generated(ev);
        self.1.on_message_generated(ev);
    }

    fn on_frame_tx(&mut self, ev: &FrameTransmitted) {
        self.0.on_frame_tx(ev);
        self.1.on_frame_tx(ev);
    }

    fn on_forward(&mut self, ev: &HandoverAccepted) {
        self.0.on_forward(ev);
        self.1.on_forward(ev);
    }

    fn on_delivery(&mut self, ev: &MessageDelivered) {
        self.0.on_delivery(ev);
        self.1.on_delivery(ev);
    }

    fn on_gateway_outage(&mut self, ev: &GatewayOutageChanged) {
        self.0.on_gateway_outage(ev);
        self.1.on_gateway_outage(ev);
    }

    fn on_bus_withdrawn(&mut self, ev: &BusWithdrawn) {
        self.0.on_bus_withdrawn(ev);
        self.1.on_bus_withdrawn(ev);
    }

    fn on_noise_burst(&mut self, ev: &NoiseBurstChanged) {
        self.0.on_noise_burst(ev);
        self.1.on_noise_burst(ev);
    }

    fn on_run_end(&mut self, report: &SimReport) {
        self.0.on_run_end(report);
        self.1.on_run_end(report);
    }
}

/// Counts every event kind — the cheapest cross-check of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounter {
    /// Messages generated.
    pub generated: u64,
    /// Frames transmitted (uplink and handover).
    pub frames: u64,
    /// Handover frames among [`EventCounter::frames`].
    pub handover_frames: u64,
    /// PHY payload bytes across all transmitted frames.
    pub payload_bytes: u64,
    /// Accepted handovers.
    pub forwards: u64,
    /// Unique server deliveries.
    pub deliveries: u64,
    /// Gateway outage windows begun (down transitions).
    pub gateway_outages: u64,
    /// Buses withdrawn by scripted disruptions.
    pub withdrawals: u64,
    /// Noise-burst windows begun.
    pub noise_bursts: u64,
}

impl SimObserver for EventCounter {
    fn on_message_generated(&mut self, _ev: &MessageGenerated) {
        self.generated += 1;
    }

    fn on_frame_tx(&mut self, ev: &FrameTransmitted) {
        self.frames += 1;
        self.payload_bytes += ev.payload_bytes as u64;
        if ev.handover_target.is_some() {
            self.handover_frames += 1;
        }
    }

    fn on_forward(&mut self, _ev: &HandoverAccepted) {
        self.forwards += 1;
    }

    fn on_delivery(&mut self, _ev: &MessageDelivered) {
        self.deliveries += 1;
    }

    fn on_gateway_outage(&mut self, ev: &GatewayOutageChanged) {
        if ev.down {
            self.gateway_outages += 1;
        }
    }

    fn on_bus_withdrawn(&mut self, _ev: &BusWithdrawn) {
        self.withdrawals += 1;
    }

    fn on_noise_burst(&mut self, ev: &NoiseBurstChanged) {
        if ev.active {
            self.noise_bursts += 1;
        }
    }
}

/// Per-bucket time series of generation, transmission and delivery
/// activity, captured in a single run.
///
/// This subsumes the old rerun-per-figure pattern: the Figs. 10–11
/// delivery series, an offered-load series and a channel-activity series
/// all come from the same simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesObserver {
    /// Messages generated per bucket.
    pub generated: TimeSeries,
    /// Frames transmitted per bucket.
    pub frames: TimeSeries,
    /// Messages moved by accepted handovers per bucket.
    pub forwarded: TimeSeries,
    /// Unique deliveries per bucket.
    pub delivered: TimeSeries,
}

impl SeriesObserver {
    /// Creates a series observer with `bucket`-wide bins over `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration, horizon: SimDuration) -> Self {
        SeriesObserver {
            generated: TimeSeries::new(bucket, horizon),
            frames: TimeSeries::new(bucket, horizon),
            forwarded: TimeSeries::new(bucket, horizon),
            delivered: TimeSeries::new(bucket, horizon),
        }
    }

    /// Creates a memory-bounded series observer: each of the four series
    /// allocates exactly `capacity` buckets up front and never grows.
    /// When a run outlives the covered span, the series fold in place —
    /// adjacent buckets merge and the width doubles — so peak memory is
    /// independent of the horizon. The right constructor for
    /// metro-scale or open-ended runs; see
    /// [`TimeSeries::bounded`](mlora_simcore::stats::TimeSeries::bounded).
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero or `capacity` is zero.
    pub fn bounded(bucket: SimDuration, capacity: usize) -> Self {
        SeriesObserver {
            generated: TimeSeries::bounded(bucket, capacity),
            frames: TimeSeries::bounded(bucket, capacity),
            forwarded: TimeSeries::bounded(bucket, capacity),
            delivered: TimeSeries::bounded(bucket, capacity),
        }
    }
}

impl SimObserver for SeriesObserver {
    fn on_message_generated(&mut self, ev: &MessageGenerated) {
        self.generated.record(ev.time);
    }

    fn on_frame_tx(&mut self, ev: &FrameTransmitted) {
        self.frames.record(ev.time);
    }

    fn on_forward(&mut self, ev: &HandoverAccepted) {
        self.forwarded.record_n(ev.time, ev.messages as u64);
    }

    fn on_delivery(&mut self, ev: &MessageDelivered) {
        self.delivered.record(ev.time);
    }
}

/// Streams run progress to a writer as JSON Lines, incrementally.
///
/// One `"interval"` row is emitted each time simulation time crosses an
/// interval boundary, carrying the cumulative generated / frame /
/// forward / delivery counters up to that boundary; a closing `"final"`
/// row summarises the finished [`SimReport`]. Unlike buffering the
/// whole report in memory and serialising at the end, the output file
/// grows as the run progresses and partial results survive a crash —
/// the streaming counterpart to [`SeriesObserver::bounded`] for
/// metro-scale runs.
///
/// Write errors are remembered and surfaced by [`ReportWriter::finish`];
/// after the first error the writer stops writing.
#[derive(Debug)]
pub struct ReportWriter<W: Write> {
    out: W,
    interval: SimDuration,
    next_emit: SimTime,
    generated: u64,
    frames: u64,
    forwarded: u64,
    delivered: u64,
    rows: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> ReportWriter<W> {
    /// A report writer over `out`, emitting a row every `interval` of
    /// simulation time.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(out: W, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "report interval must be positive");
        ReportWriter {
            out,
            interval,
            next_emit: SimTime::ZERO + interval,
            generated: 0,
            frames: 0,
            forwarded: 0,
            delivered: 0,
            rows: 0,
            error: None,
        }
    }

    /// Rows written so far (interval rows plus the final row).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flushes and returns the writer, or the first write error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    /// Emits interval rows for every boundary at or before `time`.
    fn catch_up(&mut self, time: SimTime) {
        while self.error.is_none() && time >= self.next_emit {
            let result = writeln!(
                self.out,
                "{{\"row\":\"interval\",\"time_s\":{:.3},\"generated\":{},\"frames\":{},\
                 \"forwarded\":{},\"delivered\":{}}}",
                self.next_emit.as_secs_f64(),
                self.generated,
                self.frames,
                self.forwarded,
                self.delivered
            );
            match result {
                Ok(()) => self.rows += 1,
                Err(e) => self.error = Some(e),
            }
            self.next_emit += self.interval;
        }
    }
}

impl<W: Write> SimObserver for ReportWriter<W> {
    fn on_message_generated(&mut self, ev: &MessageGenerated) {
        self.catch_up(ev.time);
        self.generated += 1;
    }

    fn on_frame_tx(&mut self, ev: &FrameTransmitted) {
        self.catch_up(ev.time);
        self.frames += 1;
    }

    fn on_forward(&mut self, ev: &HandoverAccepted) {
        self.catch_up(ev.time);
        self.forwarded += ev.messages as u64;
    }

    fn on_delivery(&mut self, ev: &MessageDelivered) {
        self.catch_up(ev.time);
        self.delivered += 1;
    }

    fn on_run_end(&mut self, report: &SimReport) {
        if self.error.is_some() {
            return;
        }
        let result = writeln!(
            self.out,
            "{{\"row\":\"final\",\"scheme\":\"{}\",\"generated\":{},\"delivered\":{},\
             \"delivery_ratio\":{:.6},\"mean_delay_s\":{:.3},\"frames_sent\":{},\
             \"handover_messages\":{},\"collisions\":{},\"total_energy_mj\":{:.3}}}",
            report.scheme,
            report.generated,
            report.delivered,
            report.delivery_ratio(),
            report.mean_delay_s(),
            report.frames_sent,
            report.handover_messages,
            report.collisions,
            report.total_energy_mj
        );
        match result {
            Ok(()) => self.rows += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// On-disk trace format for [`TraceSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One comma-separated row per event, with a header line.
    Csv,
    /// One JSON object per line (JSON Lines).
    JsonLines,
}

/// Streams every event to a writer as CSV or JSON Lines.
///
/// Rows share one schema across event kinds; fields that do not apply to
/// a kind are left empty (CSV) or omitted (JSON). The `device` column's
/// id space depends on the `event` column: bus [`NodeId`](mlora_simcore::NodeId)s for traffic
/// and `withdrawn` rows, the *gateway index* for `gateway_down` /
/// `gateway_up` rows, and the *burst index* for `noise_start` /
/// `noise_end` rows — group by `(event, device)`, never by `device`
/// alone. Write errors are remembered and surfaced by
/// [`TraceSink::finish`]; after the first error the sink stops writing.
#[derive(Debug)]
pub struct TraceSink<W: Write> {
    out: W,
    format: TraceFormat,
    header_written: bool,
    events: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> TraceSink<W> {
    /// A CSV trace sink over `out`.
    pub fn csv(out: W) -> Self {
        TraceSink::new(out, TraceFormat::Csv)
    }

    /// A JSON Lines trace sink over `out`.
    pub fn json_lines(out: W) -> Self {
        TraceSink::new(out, TraceFormat::JsonLines)
    }

    /// A trace sink over `out` in the given format.
    pub fn new(out: W, format: TraceFormat) -> Self {
        TraceSink {
            out,
            format,
            header_written: false,
            events: 0,
            error: None,
        }
    }

    /// Events written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Flushes and returns the writer, or the first write error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    /// Writes one row; `fields` are `(key, value)` pairs after the common
    /// `time_s` and `event` columns.
    fn row(&mut self, time: SimTime, event: &str, fields: &[(&str, String)]) {
        if self.error.is_some() {
            return;
        }
        let result = match self.format {
            TraceFormat::Csv => {
                let header = if self.header_written {
                    Ok(())
                } else {
                    self.header_written = true;
                    writeln!(
                        self.out,
                        "time_s,event,device,peer,message,count,bytes,delay_s,hops"
                    )
                };
                header.and_then(|()| {
                    let mut cols = ["", "", "", "", "", "", ""].map(String::from);
                    for (key, value) in fields {
                        let slot = match *key {
                            "device" => 0,
                            "peer" => 1,
                            "message" => 2,
                            "count" => 3,
                            "bytes" => 4,
                            "delay_s" => 5,
                            "hops" => 6,
                            _ => unreachable!("unknown trace field {key}"),
                        };
                        cols[slot] = value.clone();
                    }
                    writeln!(
                        self.out,
                        "{:.3},{event},{}",
                        time.as_secs_f64(),
                        cols.join(",")
                    )
                })
            }
            TraceFormat::JsonLines => {
                let mut line = format!(
                    "{{\"time_s\":{:.3},\"event\":\"{event}\"",
                    time.as_secs_f64()
                );
                for (key, value) in fields {
                    line.push_str(&format!(",\"{key}\":{value}"));
                }
                line.push('}');
                writeln!(self.out, "{line}")
            }
        };
        match result {
            Ok(()) => self.events += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

impl<W: Write> SimObserver for TraceSink<W> {
    fn on_message_generated(&mut self, ev: &MessageGenerated) {
        self.row(
            ev.time,
            "generated",
            &[
                ("device", ev.device.raw().to_string()),
                ("message", ev.message.raw().to_string()),
                ("bytes", ev.payload_bytes.to_string()),
            ],
        );
    }

    fn on_frame_tx(&mut self, ev: &FrameTransmitted) {
        let mut fields = vec![
            ("device", ev.sender.raw().to_string()),
            ("count", ev.bundled.to_string()),
            ("bytes", ev.payload_bytes.to_string()),
        ];
        if let Some(target) = ev.handover_target {
            fields.push(("peer", target.raw().to_string()));
        }
        self.row(ev.time, "frame_tx", &fields);
    }

    fn on_forward(&mut self, ev: &HandoverAccepted) {
        self.row(
            ev.time,
            "forward",
            &[
                ("device", ev.donor.raw().to_string()),
                ("peer", ev.acceptor.raw().to_string()),
                ("count", ev.messages.to_string()),
            ],
        );
    }

    fn on_delivery(&mut self, ev: &MessageDelivered) {
        self.row(
            ev.time,
            "delivery",
            &[
                ("device", ev.origin.raw().to_string()),
                ("message", ev.message.raw().to_string()),
                ("delay_s", format!("{:.3}", ev.delay.as_secs_f64())),
                ("hops", ev.hops.to_string()),
            ],
        );
    }

    fn on_gateway_outage(&mut self, ev: &GatewayOutageChanged) {
        let event = if ev.down {
            "gateway_down"
        } else {
            "gateway_up"
        };
        self.row(ev.time, event, &[("device", ev.gateway.to_string())]);
    }

    fn on_bus_withdrawn(&mut self, ev: &BusWithdrawn) {
        self.row(
            ev.time,
            "withdrawn",
            &[("device", ev.device.raw().to_string())],
        );
    }

    fn on_noise_burst(&mut self, ev: &NoiseBurstChanged) {
        let event = if ev.active {
            "noise_start"
        } else {
            "noise_end"
        };
        self.row(ev.time, event, &[("device", ev.burst.to_string())]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlora_simcore::{MessageId, NodeId};

    fn delivered(t: u64) -> MessageDelivered {
        MessageDelivered {
            time: SimTime::from_secs(t),
            message: MessageId::new(t),
            origin: NodeId::new(1),
            delay: SimDuration::from_secs(30),
            hops: 2,
        }
    }

    #[test]
    fn counter_counts() {
        let mut c = EventCounter::default();
        c.on_message_generated(&MessageGenerated {
            time: SimTime::ZERO,
            device: NodeId::new(0),
            message: MessageId::new(0),
            profile: 0,
            payload_bytes: 20,
        });
        c.on_frame_tx(&FrameTransmitted {
            time: SimTime::ZERO,
            sender: NodeId::new(0),
            bundled: 3,
            payload_bytes: 75,
            airtime: SimDuration::from_millis(300),
            handover_target: Some(NodeId::new(2)),
        });
        c.on_delivery(&delivered(5));
        assert_eq!(c.generated, 1);
        assert_eq!(c.frames, 1);
        assert_eq!(c.handover_frames, 1);
        assert_eq!(c.payload_bytes, 75);
        assert_eq!(c.deliveries, 1);
    }

    #[test]
    fn pair_observer_fans_out() {
        let mut a = EventCounter::default();
        let mut b = EventCounter::default();
        {
            let mut pair = (&mut a, &mut b);
            pair.on_delivery(&delivered(1));
        }
        assert_eq!(a.deliveries, 1);
        assert_eq!(b.deliveries, 1);
    }

    #[test]
    fn series_observer_buckets() {
        let mut s = SeriesObserver::new(SimDuration::from_mins(10), SimDuration::from_hours(1));
        s.on_delivery(&delivered(30));
        s.on_delivery(&delivered(700));
        assert_eq!(s.delivered.counts()[0], 1);
        assert_eq!(s.delivered.counts()[1], 1);
    }

    #[test]
    fn bounded_series_observer_pins_allocation() {
        let mut s = SeriesObserver::bounded(SimDuration::from_mins(10), 16);
        // 1000 hours of deliveries — far past the initial 160-minute
        // span — must never grow any series past its capacity.
        for h in 0..1000 {
            s.on_delivery(&delivered(h * 3600));
        }
        assert_eq!(s.delivered.counts().len(), 16);
        assert_eq!(s.generated.counts().len(), 16);
        assert_eq!(s.frames.counts().len(), 16);
        assert_eq!(s.forwarded.counts().len(), 16);
        assert_eq!(s.delivered.total(), 1000);
        assert!(s.delivered.bucket() > SimDuration::from_mins(10));
    }

    #[test]
    fn report_writer_streams_interval_and_final_rows() {
        let mut w = ReportWriter::new(Vec::new(), SimDuration::from_mins(10));
        w.on_message_generated(&MessageGenerated {
            time: SimTime::from_secs(30),
            device: NodeId::new(0),
            message: MessageId::new(0),
            profile: 0,
            payload_bytes: 20,
        });
        // Crossing two interval boundaries emits two cumulative rows.
        w.on_delivery(&delivered(1300));
        let report = crate::metrics::Collector::new(
            "TEST".to_string(),
            SimDuration::from_mins(10),
            SimDuration::from_hours(1),
            &crate::TrafficModel::default(),
        )
        .finish();
        w.on_run_end(&report);
        assert_eq!(w.rows(), 3);
        let out = String::from_utf8(w.finish().unwrap()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "{\"row\":\"interval\",\"time_s\":600.000,\"generated\":1,\"frames\":0,\
             \"forwarded\":0,\"delivered\":0}"
        );
        assert_eq!(
            lines[1],
            "{\"row\":\"interval\",\"time_s\":1200.000,\"generated\":1,\"frames\":0,\
             \"forwarded\":0,\"delivered\":0}"
        );
        assert!(
            lines[2].starts_with("{\"row\":\"final\",\"scheme\":\"TEST\""),
            "{out}"
        );
    }

    #[test]
    fn csv_trace_rows() {
        let mut sink = TraceSink::csv(Vec::new());
        sink.on_delivery(&delivered(10));
        assert_eq!(sink.events(), 1);
        let out = String::from_utf8(sink.finish().unwrap()).unwrap();
        let mut lines = out.lines();
        assert_eq!(
            lines.next(),
            Some("time_s,event,device,peer,message,count,bytes,delay_s,hops")
        );
        assert_eq!(lines.next(), Some("10.000,delivery,1,,10,,,30.000,2"));
    }

    #[test]
    fn counter_and_trace_cover_disruptions() {
        let mut c = EventCounter::default();
        let mut sink = TraceSink::csv(Vec::new());
        {
            let mut pair: (&mut EventCounter, &mut TraceSink<Vec<u8>>) = (&mut c, &mut sink);
            pair.on_gateway_outage(&GatewayOutageChanged {
                time: SimTime::from_secs(1),
                gateway: 4,
                down: true,
            });
            pair.on_gateway_outage(&GatewayOutageChanged {
                time: SimTime::from_secs(2),
                gateway: 4,
                down: false,
            });
            pair.on_bus_withdrawn(&BusWithdrawn {
                time: SimTime::from_secs(3),
                device: NodeId::new(7),
            });
            pair.on_noise_burst(&NoiseBurstChanged {
                time: SimTime::from_secs(4),
                burst: 0,
                active: true,
            });
        }
        assert_eq!(c.gateway_outages, 1);
        assert_eq!(c.withdrawals, 1);
        assert_eq!(c.noise_bursts, 1);
        let out = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert!(out.contains("gateway_down"), "{out}");
        assert!(out.contains("gateway_up"), "{out}");
        assert!(out.contains("withdrawn"), "{out}");
        assert!(out.contains("noise_start"), "{out}");
    }

    #[test]
    fn json_trace_rows() {
        let mut sink = TraceSink::json_lines(Vec::new());
        sink.on_forward(&HandoverAccepted {
            time: SimTime::from_secs(1),
            donor: NodeId::new(3),
            acceptor: NodeId::new(4),
            messages: 5,
        });
        let out = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert_eq!(
            out.trim(),
            "{\"time_s\":1.000,\"event\":\"forward\",\"device\":3,\"peer\":4,\"count\":5}"
        );
    }
}
