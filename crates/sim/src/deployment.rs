//! Gateway deployment strategies (§VII.A.6).

use mlora_geo::{BBox, Point};
use mlora_simcore::SimRng;

use crate::GatewayPlacement;

/// Places `n` gateways over `area` using the chosen strategy.
///
/// * [`GatewayPlacement::Grid`] — the paper's main setting: a near-square
///   uniform grid with cells centred in the area, so density comparisons
///   are not confounded by placement luck.
/// * [`GatewayPlacement::Random`] — the §VII.C ablation: i.i.d. uniform
///   positions (draws from `rng`).
///
/// The returned vector has exactly `n` positions, indexed by gateway id.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn place_gateways(
    area: BBox,
    n: usize,
    placement: GatewayPlacement,
    rng: &mut SimRng,
) -> Vec<Point> {
    assert!(n > 0, "need at least one gateway");
    match placement {
        GatewayPlacement::Grid => grid_positions(area, n),
        GatewayPlacement::Random => (0..n)
            .map(|_| {
                Point::new(
                    rng.gen_range_f64(area.min().x, area.max().x),
                    rng.gen_range_f64(area.min().y, area.max().y),
                )
            })
            .collect(),
    }
}

/// A near-square grid: `cols = ceil(sqrt(n))`, rows as needed, each
/// gateway centred in its cell. The last row centres its remainder.
fn grid_positions(area: BBox, n: usize) -> Vec<Point> {
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let mut out = Vec::with_capacity(n);
    let cell_h = area.height() / rows as f64;
    let mut placed = 0;
    for r in 0..rows {
        let in_row = (n - placed).min(cols);
        let cell_w = area.width() / in_row as f64;
        for c in 0..in_row {
            out.push(Point::new(
                area.min().x + cell_w * (c as f64 + 0.5),
                area.min().y + cell_h * (r as f64 + 0.5),
            ));
        }
        placed += in_row;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area() -> BBox {
        BBox::square(Point::ORIGIN, 10_000.0)
    }

    #[test]
    fn grid_exact_count_and_in_area() {
        for n in [1, 4, 7, 40, 50, 60, 70, 80, 90, 100] {
            let mut rng = SimRng::new(1);
            let pts = place_gateways(area(), n, GatewayPlacement::Grid, &mut rng);
            assert_eq!(pts.len(), n, "n = {n}");
            for p in &pts {
                assert!(area().contains(*p), "gateway {p} outside area");
            }
        }
    }

    #[test]
    fn grid_is_deterministic_and_spread() {
        let mut rng = SimRng::new(1);
        let a = place_gateways(area(), 16, GatewayPlacement::Grid, &mut rng);
        let b = place_gateways(area(), 16, GatewayPlacement::Grid, &mut rng);
        assert_eq!(a, b);
        // A 4×4 grid over 10 km: neighbours are 2.5 km apart.
        let min_sep = a
            .iter()
            .enumerate()
            .flat_map(|(i, p)| a[i + 1..].iter().map(move |q| p.distance(*q)))
            .fold(f64::INFINITY, f64::min);
        assert!((min_sep - 2_500.0).abs() < 1.0, "min separation {min_sep}");
    }

    #[test]
    fn random_uses_rng_and_stays_inside() {
        let mut rng1 = SimRng::new(7);
        let mut rng2 = SimRng::new(7);
        let a = place_gateways(area(), 25, GatewayPlacement::Random, &mut rng1);
        let b = place_gateways(area(), 25, GatewayPlacement::Random, &mut rng2);
        assert_eq!(a, b); // same seed, same layout
        let mut rng3 = SimRng::new(8);
        let c = place_gateways(area(), 25, GatewayPlacement::Random, &mut rng3);
        assert_ne!(a, c);
        for p in &a {
            assert!(area().contains(*p));
        }
    }

    #[test]
    fn grid_handles_non_square_counts() {
        let mut rng = SimRng::new(1);
        // 7 gateways: 3 cols, 3 rows (3+3+1).
        let pts = place_gateways(area(), 7, GatewayPlacement::Grid, &mut rng);
        assert_eq!(pts.len(), 7);
        // All unique.
        for (i, p) in pts.iter().enumerate() {
            for q in &pts[i + 1..] {
                assert!(p.distance(*q) > 1.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one gateway")]
    fn zero_gateways_rejected() {
        let mut rng = SimRng::new(1);
        let _ = place_gateways(area(), 0, GatewayPlacement::Grid, &mut rng);
    }
}
