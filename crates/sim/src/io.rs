//! Scenario files: saving and loading full simulation setups.
//!
//! Layers the simulation-level sections (parameters, gateways, traffic,
//! disruptions) on top of the `mlora-scenario-io` container and its
//! world sections, giving [`SimConfig`] a complete on-disk form:
//!
//! * [`SimConfig::to_file`] / [`SimConfig::to_writer`] — stream a
//!   configuration (and its prebuilt world, when one is attached) into
//!   the versioned `.mlsc` binary format, record by record, without
//!   re-buffering the network.
//! * [`SimConfig::from_file`] / [`SimConfig::from_reader`] — the
//!   inverse; a loaded configuration runs bit-identically to the
//!   in-memory original.
//!
//! Explicit [`ForwardingPolicy`](mlora_core::ForwardingPolicy) plug-ins
//! are live code and cannot be serialized; saving a config with one
//! returns [`ScenarioFileError::UnsupportedPolicy`].

use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use mlora_core::Scheme;
use mlora_geo::Point;
use mlora_mac::Priority;
use mlora_mobility::DiurnalProfile;
use mlora_phy::{
    Bandwidth, CapacityModel, CodingRate, LogDistanceModel, PhyParams, SpreadingFactor,
};
use mlora_scenario_io::{
    read_network_config, section, write_network_config, write_world, ScenarioIoError,
    ScenarioReader, ScenarioWriter, WorldAssembler,
};
use mlora_simcore::{SimDuration, SimTime};

use crate::disruption::{BusWithdrawal, GatewayOutage, NoiseBurst};
use crate::traffic::{ArrivalProcess, PayloadModel, TrafficProfile};
use crate::{
    ConfigError, DeviceClassChoice, DisruptionPlan, Environment, GatewayPlacement, Scenario,
    ScenarioBuilder, SimConfig, TrafficModel,
};

/// Error saving or loading a scenario file.
#[derive(Debug)]
pub enum ScenarioFileError {
    /// The underlying container failed (IO, corruption, truncation).
    Io(ScenarioIoError),
    /// The file decoded cleanly but the resulting configuration is
    /// invalid.
    Config(ConfigError),
    /// The configuration plugs in a live
    /// [`ForwardingPolicy`](mlora_core::ForwardingPolicy), which cannot
    /// be serialized. Save the built-in scheme instead and re-attach the
    /// policy after loading.
    UnsupportedPolicy,
}

impl std::fmt::Display for ScenarioFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioFileError::Io(e) => write!(f, "{e}"),
            ScenarioFileError::Config(e) => write!(f, "loaded scenario is invalid: {e}"),
            ScenarioFileError::UnsupportedPolicy => {
                write!(f, "explicit forwarding policies cannot be serialized")
            }
        }
    }
}

impl std::error::Error for ScenarioFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioFileError::Io(e) => Some(e),
            ScenarioFileError::Config(e) => Some(e),
            ScenarioFileError::UnsupportedPolicy => None,
        }
    }
}

impl From<ScenarioIoError> for ScenarioFileError {
    fn from(e: ScenarioIoError) -> Self {
        ScenarioFileError::Io(e)
    }
}

impl From<std::io::Error> for ScenarioFileError {
    fn from(e: std::io::Error) -> Self {
        ScenarioFileError::Io(ScenarioIoError::from(e))
    }
}

impl From<ConfigError> for ScenarioFileError {
    fn from(e: ConfigError) -> Self {
        ScenarioFileError::Config(e)
    }
}

impl SimConfig {
    /// Streams this configuration (and its prebuilt world, if attached)
    /// into `out` in the `.mlsc` binary format.
    ///
    /// # Errors
    ///
    /// [`ScenarioFileError::UnsupportedPolicy`] when an explicit policy
    /// is plugged in, [`ScenarioFileError::Config`] when the
    /// configuration is invalid, IO errors otherwise.
    pub fn to_writer<W: Write>(&self, out: W) -> Result<(), ScenarioFileError> {
        if self.policy.is_some() {
            return Err(ScenarioFileError::UnsupportedPolicy);
        }
        self.validate()?;
        let mut w = ScenarioWriter::new(out)?;
        write_network_config(&mut w, &self.network)?;
        write_sim_params(&mut w, self)?;
        write_gateways(&mut w, self)?;
        if !self.traffic.profiles.is_empty() {
            write_traffic(&mut w, &self.traffic)?;
        }
        if !self.disruptions.is_empty() {
            write_disruptions(&mut w, &self.disruptions)?;
        }
        if let Some(world) = &self.world {
            write_world(&mut w, world)?;
        }
        w.finish()?;
        Ok(())
    }

    /// Saves this configuration to `path` (see [`SimConfig::to_writer`]).
    ///
    /// # Errors
    ///
    /// As [`SimConfig::to_writer`], plus filesystem errors.
    pub fn to_file(&self, path: impl AsRef<Path>) -> Result<(), ScenarioFileError> {
        let file = std::fs::File::create(path)?;
        self.to_writer(std::io::BufWriter::new(file))
    }

    /// Reads a configuration from a `.mlsc` stream.
    ///
    /// Unknown sections are skipped, so files written by newer builds
    /// load as long as the container version matches. The returned
    /// configuration is validated.
    ///
    /// # Errors
    ///
    /// [`ScenarioFileError::Io`] on container-level failures (including
    /// missing required sections), [`ScenarioFileError::Config`] when
    /// the decoded configuration fails validation.
    pub fn from_reader<R: Read>(input: R) -> Result<Self, ScenarioFileError> {
        let mut r = ScenarioReader::new(input)?;
        let mut network = None;
        let mut params = None;
        let mut gateways = None;
        let mut traffic = TrafficModel::default();
        let mut disruptions = DisruptionPlan::default();
        let mut assembler = WorldAssembler::new();
        while let Some((id, count)) = r.next_section()? {
            match id {
                section::NETWORK_CONFIG => network = Some(read_network_config(&mut r)?),
                section::SIM_PARAMS => params = Some(read_sim_params(&mut r)?),
                section::GATEWAYS => gateways = Some(read_gateways(&mut r)?),
                section::TRAFFIC => traffic = read_traffic(&mut r, count)?,
                section::DISRUPTIONS => disruptions = read_disruptions(&mut r, count)?,
                section::WORLD => assembler.read_world_header(&mut r)?,
                section::ROUTES => assembler.read_routes(&mut r, count)?,
                section::FLEET => assembler.read_fleet(&mut r, count)?,
                _ => r.skip_section()?,
            }
        }
        let network = network.ok_or(ScenarioIoError::MissingSection("network config"))?;
        let params = params.ok_or(ScenarioIoError::MissingSection("simulation parameters"))?;
        let gateways = gateways.ok_or(ScenarioIoError::MissingSection("gateways"))?;
        let world = if assembler.started() {
            Some(Arc::new(assembler.finish()?))
        } else {
            None
        };
        let cfg = SimConfig {
            network,
            world,
            num_gateways: gateways.count,
            placement: gateways.placement,
            gateway_range_m: gateways.range_m,
            environment: params.environment,
            scheme: params.scheme,
            policy: None,
            alpha: params.alpha,
            device_class: params.device_class,
            gen_interval: params.gen_interval,
            traffic,
            queue_capacity: params.queue_capacity,
            duty_cycle: params.duty_cycle,
            max_attempts: params.max_attempts,
            phy: params.phy,
            path_loss: params.path_loss,
            capacity: params.capacity,
            horizon: params.horizon,
            series_bucket: params.series_bucket,
            disruptions,
            // Host-execution knobs, not scenario content: files carry
            // neither a shard count nor a queue kind, and loaded
            // configs default to serial on the binary heap.
            shards: 1,
            queue: mlora_simcore::QueueKind::default(),
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Loads a configuration from `path` (see [`SimConfig::from_reader`]).
    ///
    /// # Errors
    ///
    /// As [`SimConfig::from_reader`], plus filesystem errors.
    pub fn from_file(path: impl AsRef<Path>) -> Result<Self, ScenarioFileError> {
        let file = std::fs::File::open(path)?;
        SimConfig::from_reader(std::io::BufReader::new(file))
    }
}

impl Scenario {
    /// Loads a scenario file into a builder for further fluent
    /// adjustment before running.
    ///
    /// # Errors
    ///
    /// As [`SimConfig::from_file`].
    pub fn from_file(path: impl AsRef<Path>) -> Result<ScenarioBuilder, ScenarioFileError> {
        Ok(ScenarioBuilder::from(SimConfig::from_file(path)?))
    }
}

impl ScenarioBuilder {
    /// Validates and saves the scenario to `path` without consuming the
    /// builder.
    ///
    /// # Errors
    ///
    /// As [`SimConfig::to_file`].
    pub fn to_file(&self, path: impl AsRef<Path>) -> Result<(), ScenarioFileError> {
        self.config().to_file(path)
    }
}

// ---------------------------------------------------------------------
// SIM_PARAMS
// ---------------------------------------------------------------------

/// Decoded [`section::SIM_PARAMS`] record.
struct SimParams {
    environment: Environment,
    scheme: Scheme,
    alpha: f64,
    device_class: DeviceClassChoice,
    gen_interval: SimDuration,
    queue_capacity: usize,
    duty_cycle: f64,
    max_attempts: u32,
    phy: PhyParams,
    path_loss: LogDistanceModel,
    capacity: CapacityModel,
    horizon: SimDuration,
    series_bucket: SimDuration,
}

fn write_sim_params<W: Write>(w: &mut ScenarioWriter<W>, cfg: &SimConfig) -> std::io::Result<()> {
    w.begin_section(section::SIM_PARAMS, 1)?;
    let enc = w.enc();
    enc.put_u8(match cfg.environment {
        Environment::Urban => 0,
        Environment::Rural => 1,
    });
    enc.put_u8(match cfg.scheme {
        Scheme::NoRouting => 0,
        Scheme::RcaEtx => 1,
        Scheme::Robc => 2,
        Scheme::CaEtx => 3,
    });
    enc.put_f64(cfg.alpha);
    enc.put_u8(match cfg.device_class {
        DeviceClassChoice::ModifiedClassC => 0,
        DeviceClassChoice::QueueBasedClassA => 1,
    });
    enc.put_varint(cfg.gen_interval.as_millis());
    enc.put_varint(cfg.queue_capacity as u64);
    enc.put_f64(cfg.duty_cycle);
    enc.put_varint(u64::from(cfg.max_attempts));
    enc.put_u8(cfg.phy.sf.value() as u8);
    enc.put_u8(match cfg.phy.bandwidth {
        Bandwidth::Khz125 => 0,
        Bandwidth::Khz250 => 1,
        Bandwidth::Khz500 => 2,
    });
    enc.put_u8(match cfg.phy.coding_rate {
        CodingRate::Cr4of5 => 0,
        CodingRate::Cr4of6 => 1,
        CodingRate::Cr4of7 => 2,
        CodingRate::Cr4of8 => 3,
    });
    enc.put_varint(u64::from(cfg.phy.preamble_symbols));
    enc.put_bool(cfg.phy.explicit_header);
    enc.put_bool(cfg.phy.crc);
    enc.put_f64(cfg.phy.tx_power_dbm);
    enc.put_f64(cfg.path_loss.pl0_db);
    enc.put_f64(cfg.path_loss.d0_m);
    enc.put_f64(cfg.path_loss.exponent);
    enc.put_f64(cfg.path_loss.shadowing_sigma_db);
    enc.put_f64(cfg.capacity.gamma_min_dbm());
    enc.put_f64(cfg.capacity.gamma_max_dbm());
    enc.put_f64(cfg.capacity.max_capacity_bps());
    enc.put_varint(cfg.horizon.as_millis());
    enc.put_varint(cfg.series_bucket.as_millis());
    w.end_record()?;
    w.end_section()
}

fn read_sim_params<R: Read>(r: &mut ScenarioReader<R>) -> Result<SimParams, ScenarioIoError> {
    r.begin_record()?;
    let environment = match r.u8()? {
        0 => Environment::Urban,
        1 => Environment::Rural,
        _ => return Err(ScenarioIoError::Corrupt("bad environment tag")),
    };
    let scheme = match r.u8()? {
        0 => Scheme::NoRouting,
        1 => Scheme::RcaEtx,
        2 => Scheme::Robc,
        3 => Scheme::CaEtx,
        _ => return Err(ScenarioIoError::Corrupt("bad scheme tag")),
    };
    let alpha = r.f64()?;
    let device_class = match r.u8()? {
        0 => DeviceClassChoice::ModifiedClassC,
        1 => DeviceClassChoice::QueueBasedClassA,
        _ => return Err(ScenarioIoError::Corrupt("bad device class tag")),
    };
    let gen_interval = SimDuration::from_millis(r.varint()?);
    let queue_capacity = r.varint()? as usize;
    let duty_cycle = r.f64()?;
    let max_attempts = u32::try_from(r.varint()?)
        .map_err(|_| ScenarioIoError::Corrupt("max attempts out of range"))?;
    let sf = match r.u8()? {
        7 => SpreadingFactor::Sf7,
        8 => SpreadingFactor::Sf8,
        9 => SpreadingFactor::Sf9,
        10 => SpreadingFactor::Sf10,
        11 => SpreadingFactor::Sf11,
        12 => SpreadingFactor::Sf12,
        _ => return Err(ScenarioIoError::Corrupt("bad spreading factor")),
    };
    let bandwidth = match r.u8()? {
        0 => Bandwidth::Khz125,
        1 => Bandwidth::Khz250,
        2 => Bandwidth::Khz500,
        _ => return Err(ScenarioIoError::Corrupt("bad bandwidth tag")),
    };
    let coding_rate = match r.u8()? {
        0 => CodingRate::Cr4of5,
        1 => CodingRate::Cr4of6,
        2 => CodingRate::Cr4of7,
        3 => CodingRate::Cr4of8,
        _ => return Err(ScenarioIoError::Corrupt("bad coding rate tag")),
    };
    let preamble_symbols = u32::try_from(r.varint()?)
        .map_err(|_| ScenarioIoError::Corrupt("preamble length out of range"))?;
    let explicit_header = r.bool()?;
    let crc = r.bool()?;
    let tx_power_dbm = r.f64()?;
    let path_loss = LogDistanceModel {
        pl0_db: r.f64()?,
        d0_m: r.f64()?,
        exponent: r.f64()?,
        shadowing_sigma_db: r.f64()?,
    };
    let gamma_min = r.f64()?;
    let gamma_max = r.f64()?;
    let c_max = r.f64()?;
    // CapacityModel::new panics on bad ranges; reject them as corruption
    // instead.
    if !(gamma_min.is_finite() && gamma_max.is_finite() && c_max.is_finite())
        || gamma_min >= gamma_max
        || c_max <= 0.0
    {
        return Err(ScenarioIoError::Corrupt("bad capacity model"));
    }
    let capacity = CapacityModel::new(gamma_min, gamma_max, c_max);
    let horizon = SimDuration::from_millis(r.varint()?);
    let series_bucket = SimDuration::from_millis(r.varint()?);
    Ok(SimParams {
        environment,
        scheme,
        alpha,
        device_class,
        gen_interval,
        queue_capacity,
        duty_cycle,
        max_attempts,
        phy: PhyParams {
            sf,
            bandwidth,
            coding_rate,
            preamble_symbols,
            explicit_header,
            crc,
            tx_power_dbm,
        },
        path_loss,
        capacity,
        horizon,
        series_bucket,
    })
}

// ---------------------------------------------------------------------
// GATEWAYS
// ---------------------------------------------------------------------

/// Decoded [`section::GATEWAYS`] record.
struct Gateways {
    count: usize,
    placement: GatewayPlacement,
    range_m: f64,
}

fn write_gateways<W: Write>(w: &mut ScenarioWriter<W>, cfg: &SimConfig) -> std::io::Result<()> {
    w.begin_section(section::GATEWAYS, 1)?;
    let enc = w.enc();
    enc.put_varint(cfg.num_gateways as u64);
    enc.put_u8(match cfg.placement {
        GatewayPlacement::Grid => 0,
        GatewayPlacement::Random => 1,
    });
    enc.put_f64(cfg.gateway_range_m);
    w.end_record()?;
    w.end_section()
}

fn read_gateways<R: Read>(r: &mut ScenarioReader<R>) -> Result<Gateways, ScenarioIoError> {
    r.begin_record()?;
    let count = r.varint()? as usize;
    let placement = match r.u8()? {
        0 => GatewayPlacement::Grid,
        1 => GatewayPlacement::Random,
        _ => return Err(ScenarioIoError::Corrupt("bad placement tag")),
    };
    let range_m = r.f64()?;
    Ok(Gateways {
        count,
        placement,
        range_m,
    })
}

// ---------------------------------------------------------------------
// TRAFFIC
// ---------------------------------------------------------------------

fn write_traffic<W: Write>(w: &mut ScenarioWriter<W>, model: &TrafficModel) -> std::io::Result<()> {
    w.begin_section(section::TRAFFIC, model.profiles.len() as u64)?;
    for profile in &model.profiles {
        let enc = w.enc();
        enc.put_str(&profile.name);
        match &profile.arrivals {
            ArrivalProcess::Periodic { interval } => {
                enc.put_u8(0);
                enc.put_varint(interval.as_millis());
            }
            ArrivalProcess::Jittered { interval, jitter } => {
                enc.put_u8(1);
                enc.put_varint(interval.as_millis());
                enc.put_f64(*jitter);
            }
            ArrivalProcess::Poisson { mean_interval } => {
                enc.put_u8(2);
                enc.put_varint(mean_interval.as_millis());
            }
            ArrivalProcess::Diurnal {
                base_interval,
                profile: curve,
            } => {
                enc.put_u8(3);
                enc.put_varint(base_interval.as_millis());
                for &level in curve.hourly() {
                    enc.put_f64(level);
                }
            }
            ArrivalProcess::Bursty {
                interval,
                mean_burst,
                mean_idle,
            } => {
                enc.put_u8(4);
                enc.put_varint(interval.as_millis());
                enc.put_f64(*mean_burst);
                enc.put_varint(mean_idle.as_millis());
            }
        }
        match &profile.payload {
            PayloadModel::Fixed { bytes } => {
                enc.put_u8(0);
                enc.put_varint(*bytes as u64);
            }
            PayloadModel::Uniform {
                min_bytes,
                max_bytes,
            } => {
                enc.put_u8(1);
                enc.put_varint(*min_bytes as u64);
                enc.put_varint(*max_bytes as u64);
            }
        }
        enc.put_u8(match profile.priority {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        });
        enc.put_f64(profile.weight);
        w.end_record()?;
    }
    w.end_section()
}

fn read_traffic<R: Read>(
    r: &mut ScenarioReader<R>,
    count: u64,
) -> Result<TrafficModel, ScenarioIoError> {
    let mut profiles = Vec::with_capacity(count as usize);
    for _ in 0..count {
        r.begin_record()?;
        let name = r.string()?;
        let arrivals = match r.u8()? {
            0 => ArrivalProcess::Periodic {
                interval: SimDuration::from_millis(r.varint()?),
            },
            1 => ArrivalProcess::Jittered {
                interval: SimDuration::from_millis(r.varint()?),
                jitter: r.f64()?,
            },
            2 => ArrivalProcess::Poisson {
                mean_interval: SimDuration::from_millis(r.varint()?),
            },
            3 => {
                let base_interval = SimDuration::from_millis(r.varint()?);
                let mut hourly = Vec::with_capacity(24);
                for _ in 0..24 {
                    let level = r.f64()?;
                    if !level.is_finite() || !(0.0..=1.0).contains(&level) {
                        return Err(ScenarioIoError::Corrupt("diurnal level outside [0, 1]"));
                    }
                    hourly.push(level);
                }
                ArrivalProcess::Diurnal {
                    base_interval,
                    profile: DiurnalProfile::from_hourly(hourly),
                }
            }
            4 => ArrivalProcess::Bursty {
                interval: SimDuration::from_millis(r.varint()?),
                mean_burst: r.f64()?,
                mean_idle: SimDuration::from_millis(r.varint()?),
            },
            _ => return Err(ScenarioIoError::Corrupt("bad arrival process tag")),
        };
        let payload = match r.u8()? {
            0 => PayloadModel::Fixed {
                bytes: r.varint()? as usize,
            },
            1 => PayloadModel::Uniform {
                min_bytes: r.varint()? as usize,
                max_bytes: r.varint()? as usize,
            },
            _ => return Err(ScenarioIoError::Corrupt("bad payload model tag")),
        };
        let priority = match r.u8()? {
            0 => Priority::Low,
            1 => Priority::Normal,
            2 => Priority::High,
            _ => return Err(ScenarioIoError::Corrupt("bad priority tag")),
        };
        let weight = r.f64()?;
        profiles.push(TrafficProfile {
            name,
            arrivals,
            payload,
            priority,
            weight,
        });
    }
    Ok(TrafficModel { profiles })
}

// ---------------------------------------------------------------------
// DISRUPTIONS
// ---------------------------------------------------------------------

fn write_disruptions<W: Write>(
    w: &mut ScenarioWriter<W>,
    plan: &DisruptionPlan,
) -> std::io::Result<()> {
    let records = plan.outages.len() + plan.withdrawals.len() + plan.noise_bursts.len();
    w.begin_section(section::DISRUPTIONS, records as u64)?;
    for outage in &plan.outages {
        let enc = w.enc();
        enc.put_u8(0);
        enc.put_varint(outage.gateway as u64);
        enc.put_varint(outage.start.as_millis());
        put_opt_duration(enc, outage.duration);
        w.end_record()?;
    }
    for withdrawal in &plan.withdrawals {
        let enc = w.enc();
        enc.put_u8(1);
        enc.put_varint(withdrawal.at.as_millis());
        enc.put_f64(withdrawal.fraction);
        w.end_record()?;
    }
    for burst in &plan.noise_bursts {
        let enc = w.enc();
        enc.put_u8(2);
        enc.put_f64(burst.center.x);
        enc.put_f64(burst.center.y);
        enc.put_f64(burst.radius_m);
        enc.put_varint(burst.start.as_millis());
        put_opt_duration(enc, burst.duration);
        enc.put_f64(burst.extra_loss_db);
        w.end_record()?;
    }
    w.end_section()
}

fn put_opt_duration(enc: &mut mlora_scenario_io::Enc, duration: Option<SimDuration>) {
    match duration {
        Some(d) => {
            enc.put_bool(true);
            enc.put_varint(d.as_millis());
        }
        None => enc.put_bool(false),
    }
}

fn read_opt_duration<R: Read>(
    r: &mut ScenarioReader<R>,
) -> Result<Option<SimDuration>, ScenarioIoError> {
    if r.bool()? {
        Ok(Some(SimDuration::from_millis(r.varint()?)))
    } else {
        Ok(None)
    }
}

fn read_disruptions<R: Read>(
    r: &mut ScenarioReader<R>,
    count: u64,
) -> Result<DisruptionPlan, ScenarioIoError> {
    let mut plan = DisruptionPlan::default();
    for _ in 0..count {
        r.begin_record()?;
        match r.u8()? {
            0 => plan.outages.push(GatewayOutage {
                gateway: r.varint()? as usize,
                start: SimTime::from_millis(r.varint()?),
                duration: read_opt_duration(r)?,
            }),
            1 => plan.withdrawals.push(BusWithdrawal {
                at: SimTime::from_millis(r.varint()?),
                fraction: r.f64()?,
            }),
            2 => plan.noise_bursts.push(NoiseBurst {
                center: Point::new(r.f64()?, r.f64()?),
                radius_m: r.f64()?,
                start: SimTime::from_millis(r.varint()?),
                duration: read_opt_duration(r)?,
                extra_loss_db: r.f64()?,
            }),
            _ => return Err(ScenarioIoError::Corrupt("bad disruption tag")),
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_config() -> SimConfig {
        Scenario::urban()
            .smoke()
            .scheme(Scheme::Robc)
            .gateways(12)
            .placement(GatewayPlacement::Random)
            .profile(TrafficProfile::telemetry())
            .profile(TrafficProfile::tracking())
            .profile(TrafficProfile::passenger_counts())
            .profile(TrafficProfile::alerts())
            .gateway_outage(2, SimDuration::from_mins(10), SimDuration::from_mins(20))
            .gateway_outage_to_horizon(3, SimDuration::from_mins(40))
            .withdraw_buses(SimDuration::from_mins(30), 0.2)
            .noise_burst(
                Point::new(4_000.0, 4_000.0),
                2_000.0,
                SimDuration::from_mins(15),
                SimDuration::from_mins(30),
                9.0,
            )
            .build()
            .expect("valid scenario")
    }

    fn roundtrip(cfg: &SimConfig) -> SimConfig {
        let mut bytes = Vec::new();
        cfg.to_writer(&mut bytes).expect("serialize");
        SimConfig::from_reader(&bytes[..]).expect("deserialize")
    }

    #[test]
    fn rich_config_roundtrips_exactly() {
        let cfg = rich_config();
        assert_eq!(roundtrip(&cfg), cfg);
    }

    #[test]
    fn loaded_config_runs_bit_identically() {
        let cfg = rich_config();
        let loaded = roundtrip(&cfg);
        assert_eq!(loaded.run(2020).unwrap(), cfg.run(2020).unwrap());
    }

    #[test]
    fn prebuilt_world_roundtrips_and_runs() {
        let cfg = Scenario::urban()
            .smoke()
            .scheme(Scheme::RcaEtx)
            .metro(
                &mlora_mobility::MetroConfig {
                    num_radials: 8,
                    num_rings: 4,
                    peak_active_buses: 60,
                    area_side_m: 10_000.0,
                    horizon: SimDuration::from_hours(2),
                    ..mlora_mobility::MetroConfig::default()
                },
                77,
            )
            .build()
            .expect("valid metro scenario");
        assert!(cfg.world.is_some());
        let loaded = roundtrip(&cfg);
        assert_eq!(loaded, cfg);
        assert_eq!(loaded.run(5).unwrap(), cfg.run(5).unwrap());
    }

    #[test]
    fn rewrite_is_byte_identical() {
        let cfg = rich_config();
        let mut bytes = Vec::new();
        cfg.to_writer(&mut bytes).unwrap();
        let mut again = Vec::new();
        SimConfig::from_reader(&bytes[..])
            .unwrap()
            .to_writer(&mut again)
            .unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn policies_are_rejected() {
        let cfg = Scenario::urban()
            .smoke()
            .policy(Box::new(mlora_core::RobcPolicy))
            .build()
            .unwrap();
        let mut bytes = Vec::new();
        assert!(matches!(
            cfg.to_writer(&mut bytes),
            Err(ScenarioFileError::UnsupportedPolicy)
        ));
    }

    #[test]
    fn missing_sections_are_reported() {
        // A file with only a network config lacks params and gateways.
        let cfg = rich_config();
        let mut w = ScenarioWriter::new(Vec::new()).unwrap();
        write_network_config(&mut w, &cfg.network).unwrap();
        let bytes = w.finish().unwrap();
        assert!(matches!(
            SimConfig::from_reader(&bytes[..]),
            Err(ScenarioFileError::Io(ScenarioIoError::MissingSection(_)))
        ));
    }

    #[test]
    fn file_roundtrip_via_scenario_front_door() {
        let dir = std::env::temp_dir().join("mlora-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("smoke.mlsc");
        let cfg = rich_config();
        cfg.to_file(&path).unwrap();
        let report = Scenario::from_file(&path).unwrap().run(7).unwrap();
        assert_eq!(report, cfg.run(7).unwrap());
        std::fs::remove_file(&path).ok();
    }
}
