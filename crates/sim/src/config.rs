//! Simulation configuration.

use std::sync::Arc;

use mlora_core::{PolicySpec, RoutingConfig, RoutingState, Scheme};
use mlora_mobility::{BusNetwork, BusNetworkConfig};
use mlora_phy::{CapacityModel, LogDistanceModel, PhyParams};
use mlora_simcore::{QueueKind, SimDuration};
use serde::{Deserialize, Serialize};

use crate::disruption::DisruptionPlan;
use crate::metrics::SimReport;
use crate::traffic::TrafficModel;

/// Radio environment, setting the device-to-device range (§VII.A.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Environment {
    /// Urban: buildings block signals; device↔device range 500 m.
    Urban,
    /// Rural: open terrain; device↔device range 1000 m.
    Rural,
}

impl Environment {
    /// The device-to-device communication range, metres.
    pub const fn d2d_range_m(self) -> f64 {
        match self {
            Environment::Urban => 500.0,
            Environment::Rural => 1_000.0,
        }
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Environment::Urban => "urban",
            Environment::Rural => "rural",
        }
    }
}

impl std::fmt::Display for Environment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How gateways are placed over the area (§VII.A.6 uses a uniform grid;
/// §VII.C discusses random placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GatewayPlacement {
    /// Uniform grid (the paper's main setting).
    Grid,
    /// Uniformly random positions (the §VII.C ablation).
    Random,
}

/// Which device class the fleet runs (§VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClassChoice {
    /// Modified Class-C: always listening on the uplink channel.
    ModifiedClassC,
    /// Queue-based Class-A: Eq. 11 adaptive receive windows.
    QueueBasedClassA,
}

/// Full configuration of one simulation run.
///
/// [`SimConfig::paper_default`] reproduces §VII.A; named constructors
/// derive the scaled-down variants used by tests and Criterion benches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Mobility substrate configuration.
    pub network: BusNetworkConfig,
    /// A prebuilt world overriding seeded generation. `None` (the
    /// default) regenerates the network from [`SimConfig::network`] and
    /// the run seed; `Some` runs on exactly this network — the path
    /// metro-scale worlds loaded from a scenario file
    /// ([`crate::io`]) enter the engine through. Shared by `Arc` so
    /// sweeps and replicated runs never clone a 100 000-bus world per
    /// cell.
    pub world: Option<Arc<BusNetwork>>,
    /// Number of gateways (the paper sweeps 40–100).
    pub num_gateways: usize,
    /// Gateway placement strategy.
    pub placement: GatewayPlacement,
    /// Device-to-gateway communication range, metres (paper: 1 km).
    pub gateway_range_m: f64,
    /// Radio environment (device-to-device range).
    pub environment: Environment,
    /// Forwarding scheme under test. Names one of the four built-in
    /// policies; ignored for dispatch (but kept as the axis value) when
    /// [`SimConfig::policy`] plugs in an explicit policy.
    pub scheme: Scheme,
    /// An explicit forwarding policy overriding [`SimConfig::scheme`].
    /// `None` (the default everywhere) runs the built-in policy of
    /// `scheme`; `Some` instantiates this prototype per device instead —
    /// the hook user-defined
    /// [`ForwardingPolicy`](mlora_core::ForwardingPolicy)
    /// implementations enter the engine through.
    pub policy: Option<PolicySpec>,
    /// EWMA smoothing factor α (paper evaluation: 0.5).
    pub alpha: f64,
    /// Device class for the fleet.
    pub device_class: DeviceClassChoice,
    /// Application message generation interval (paper: 3 min). Drives
    /// the paper-exact periodic generator whenever [`SimConfig::traffic`]
    /// is empty; heterogeneous models carry their own intervals.
    pub gen_interval: SimDuration,
    /// The demand-side traffic model: a weighted mix of application
    /// profiles (arrival process × payload distribution × priority).
    /// Empty by default; an empty model runs the paper's homogeneous
    /// workload bit-identically to a build without the subsystem.
    pub traffic: TrafficModel,
    /// Per-device application queue capacity, messages.
    pub queue_capacity: usize,
    /// Duty cycle cap (paper: 1 %).
    pub duty_cycle: f64,
    /// Maximum transmissions per frame (paper: 8).
    pub max_attempts: u32,
    /// LoRa modulation parameters.
    pub phy: PhyParams,
    /// Path-loss model.
    pub path_loss: LogDistanceModel,
    /// RSSI→capacity map (Eq. 5).
    pub capacity: CapacityModel,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Width of the throughput time-series buckets (paper: 10 min).
    pub series_bucket: SimDuration,
    /// Scripted world disruptions (gateway outages, fleet withdrawals,
    /// noise bursts). Empty by default; an empty plan is bit-identical
    /// to a run without the subsystem.
    pub disruptions: DisruptionPlan,
    /// Engine shards for one run: `1` (the default) runs the serial
    /// engine; `n > 1` partitions the world into tile bands and
    /// precomputes transmission-end resolution on `n` worker threads
    /// (see [`crate::Partition`]). A host-execution knob, not scenario
    /// content: any shard count produces bit-identical results, so
    /// scenario files neither carry nor require it (loaded configs
    /// default to `1`).
    pub shards: usize,
    /// Which event-queue implementation the engine runs on: the binary
    /// heap (the default) or the calendar queue / time wheel. Like
    /// [`SimConfig::shards`], a host-execution knob, not scenario
    /// content: both kinds pop the identical `(time, seq)` sequence, so
    /// any choice produces bit-identical results and neither `.mlsc`
    /// scenario files nor `.mlss` snapshots carry it (loaded files
    /// default to [`QueueKind::BinaryHeap`]).
    pub queue: QueueKind,
}

/// Error returned when a [`SimConfig`] is internally inconsistent.
///
/// Variants are typed so callers can react to the failure mode (and the
/// offending field is always named); [`ConfigError::Invalid`] remains for
/// constraints that do not fit the structured shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A field failed validation; the message names it.
    Invalid(&'static str),
    /// A field that must be positive was zero.
    Zero {
        /// The offending field.
        field: &'static str,
    },
    /// A numeric field was NaN or infinite.
    NotFinite {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A numeric field fell outside its legal interval.
    OutOfRange {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// Inclusive-or-exclusive lower bound, as documented on the field.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// A derived quantity overflowed the machine word; the field names
    /// the computation.
    Overflow {
        /// The offending computation.
        field: &'static str,
    },
}

impl ConfigError {
    /// The name of the field that failed validation.
    pub fn field(&self) -> &'static str {
        match self {
            ConfigError::Invalid(what) => what,
            ConfigError::Zero { field }
            | ConfigError::NotFinite { field, .. }
            | ConfigError::OutOfRange { field, .. }
            | ConfigError::Overflow { field } => field,
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Invalid(what) => write!(f, "invalid configuration: {what}"),
            ConfigError::Zero { field } => {
                write!(f, "invalid configuration: {field} must be positive")
            }
            ConfigError::NotFinite { field, value } => {
                write!(
                    f,
                    "invalid configuration: {field} must be finite, got {value}"
                )
            }
            ConfigError::OutOfRange {
                field,
                value,
                lo,
                hi,
            } => {
                if hi.is_infinite() {
                    write!(
                        f,
                        "invalid configuration: {field} = {value} must be greater than {lo}"
                    )
                } else {
                    write!(
                        f,
                        "invalid configuration: {field} = {value} outside ({lo}, {hi}]"
                    )
                }
            }
            ConfigError::Overflow { field } => {
                write!(f, "invalid configuration: {field} overflows a machine word")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Longest accepted forwarding-policy label, in characters — labels
/// must stay printable inside the fixed-width report tables.
const MAX_POLICY_LABEL: usize = 48;

/// Most engine shards one run may request (see [`SimConfig::shards`]).
const MAX_SHARDS: usize = 64;

/// Validates that `value` is finite and within `(lo, hi]`.
pub(crate) fn check_unit_interval(
    field: &'static str,
    value: f64,
    lo: f64,
    hi: f64,
) -> Result<(), ConfigError> {
    if !value.is_finite() {
        return Err(ConfigError::NotFinite { field, value });
    }
    if !(value > lo && value <= hi) {
        return Err(ConfigError::OutOfRange {
            field,
            value,
            lo,
            hi,
        });
    }
    Ok(())
}

impl SimConfig {
    /// The paper's §VII.A setting for a scheme/environment pair: 600 km²,
    /// 24 h, grid gateways at 1 km range, 3-minute 20-byte messages, SF7,
    /// 1 % duty cycle, α = 0.5, Modified Class-C.
    pub fn paper_default(scheme: Scheme, environment: Environment) -> Self {
        SimConfig {
            network: BusNetworkConfig::default(),
            world: None,
            num_gateways: 60,
            placement: GatewayPlacement::Grid,
            gateway_range_m: 1_000.0,
            environment,
            scheme,
            policy: None,
            alpha: 0.5,
            device_class: DeviceClassChoice::ModifiedClassC,
            gen_interval: SimDuration::from_mins(3),
            traffic: TrafficModel::default(),
            queue_capacity: 256,
            duty_cycle: 0.01,
            max_attempts: 8,
            phy: PhyParams::paper_default(),
            path_loss: LogDistanceModel::paper_default(),
            capacity: CapacityModel::paper_default(),
            horizon: SimDuration::from_hours(24),
            series_bucket: SimDuration::from_mins(10),
            disruptions: DisruptionPlan::default(),
            shards: 1,
            queue: QueueKind::default(),
        }
    }

    /// A small, fast configuration for unit/integration tests and micro
    /// benches: 100 km², 2 simulated hours, a few dozen buses.
    pub fn smoke_test(scheme: Scheme, environment: Environment) -> Self {
        let mut cfg = SimConfig::paper_default(scheme, environment);
        cfg.network.area_side_m = 10_000.0;
        cfg.network.num_routes = 12;
        cfg.network.max_active_buses = 40;
        cfg.network.min_route_length_m = 2_000.0;
        cfg.network.horizon = SimDuration::from_hours(2);
        cfg.horizon = SimDuration::from_hours(2);
        cfg.num_gateways = 9;
        cfg
    }

    /// The mid-scale configuration used by the Criterion benches: the full
    /// 600 km² area and fleet profile shape, but a 6-hour horizon spanning
    /// the morning ramp so runs finish in seconds.
    pub fn bench_scale(scheme: Scheme, environment: Environment) -> Self {
        let mut cfg = SimConfig::paper_default(scheme, environment);
        cfg.network.max_active_buses = 800;
        cfg.network.num_routes = 80;
        cfg.network.horizon = SimDuration::from_hours(6);
        cfg.horizon = SimDuration::from_hours(6);
        cfg
    }

    /// The frame size (bits) used for metric normalisation: a full bundle.
    pub fn packet_bits(&self) -> f64 {
        let bytes = mlora_mac::FRAME_HEADER_BYTES
            + mlora_mac::METADATA_BYTES
            + mlora_mac::MAX_BUNDLE * mlora_mac::APP_MESSAGE_BYTES;
        (bytes * 8) as f64
    }

    /// The routing configuration devices run.
    pub fn routing_config(&self) -> RoutingConfig {
        RoutingConfig {
            scheme: self.scheme,
            alpha: self.alpha,
            packet_bits: self.packet_bits(),
            rgq: mlora_core::Rgq::paper_default(),
            capacity: self.capacity,
            max_bundle: mlora_mac::MAX_BUNDLE,
        }
    }

    /// Instantiates one device's routing brain: the configured scheme's
    /// built-in policy, or a fresh instance of the explicit
    /// [`SimConfig::policy`] prototype when one is plugged in.
    pub fn routing_state(&self) -> RoutingState {
        match &self.policy {
            None => RoutingState::new(self.routing_config()),
            Some(spec) => RoutingState::with_policy(self.routing_config(), spec.build()),
        }
    }

    /// The label identifying the active forwarding policy — the explicit
    /// policy's label when one is set, the scheme's figure label
    /// otherwise. Flows into [`SimReport::scheme`](crate::SimReport) and
    /// every table keyed by scheme.
    pub fn scheme_label(&self) -> &str {
        match &self.policy {
            None => self.scheme.label(),
            Some(spec) => spec.label(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the typed [`ConfigError`] variant
    /// ([`Zero`](ConfigError::Zero), [`NotFinite`](ConfigError::NotFinite)
    /// or [`OutOfRange`](ConfigError::OutOfRange)) naming the first
    /// offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_gateways == 0 {
            return Err(ConfigError::Zero {
                field: "num_gateways",
            });
        }
        if let Some(world) = &self.world {
            // The engine sizes its neighbour-grid drift bound from
            // `network.max_speed_mps`; a prebuilt world with faster
            // routes would let buses outrun their grid cell.
            let fastest = world
                .routes()
                .iter()
                .map(|r| r.speed_mps())
                .fold(0.0_f64, f64::max);
            if fastest > self.network.max_speed_mps {
                return Err(ConfigError::Invalid(
                    "prebuilt world has routes faster than network.max_speed_mps",
                ));
            }
        }
        if !self.gateway_range_m.is_finite() {
            return Err(ConfigError::NotFinite {
                field: "gateway_range_m",
                value: self.gateway_range_m,
            });
        }
        if self.gateway_range_m <= 0.0 {
            return Err(ConfigError::OutOfRange {
                field: "gateway_range_m",
                value: self.gateway_range_m,
                lo: 0.0,
                hi: f64::INFINITY,
            });
        }
        check_unit_interval("alpha", self.alpha, 0.0, 1.0)?;
        if let Some(spec) = &self.policy {
            // Labels are the policy's identity in reports and sweep
            // cells; an empty one would collapse table rows.
            if spec.label().is_empty() {
                return Err(ConfigError::Invalid("policy label must not be empty"));
            }
            if spec.label().chars().count() > MAX_POLICY_LABEL {
                return Err(ConfigError::Invalid(
                    "policy label exceeds the report-table width limit",
                ));
            }
        }
        if self.gen_interval.is_zero() {
            return Err(ConfigError::Zero {
                field: "gen_interval",
            });
        }
        self.traffic.validate()?;
        if self.queue_capacity == 0 {
            return Err(ConfigError::Zero {
                field: "queue_capacity",
            });
        }
        check_unit_interval("duty_cycle", self.duty_cycle, 0.0, 1.0)?;
        if self.max_attempts == 0 {
            return Err(ConfigError::Zero {
                field: "max_attempts",
            });
        }
        if self.horizon.is_zero() {
            return Err(ConfigError::Zero { field: "horizon" });
        }
        if self.series_bucket.is_zero() {
            return Err(ConfigError::Zero {
                field: "series_bucket",
            });
        }
        self.disruptions.validate(self.num_gateways)?;
        if self.shards == 0 {
            return Err(ConfigError::Zero { field: "shards" });
        }
        if self.shards > MAX_SHARDS {
            // One OS thread per shard; past the band count of any sane
            // partition more shards only oversubscribe the host.
            return Err(ConfigError::OutOfRange {
                field: "shards",
                value: self.shards as f64,
                lo: 1.0,
                hi: MAX_SHARDS as f64,
            });
        }
        Ok(())
    }

    /// Runs the simulation with `seed` and returns the report.
    ///
    /// Identical `(config, seed)` pairs produce identical reports.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn run(&self, seed: u64) -> Result<SimReport, ConfigError> {
        self.validate()?;
        Ok(crate::Engine::new(self.clone(), seed).run())
    }

    /// Runs the simulation with `seed`, streaming events to `observer`.
    ///
    /// The returned report is identical to [`SimConfig::run`] with the
    /// same seed — observers never perturb the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn run_with_observer(
        &self,
        seed: u64,
        observer: &mut dyn crate::SimObserver,
    ) -> Result<SimReport, ConfigError> {
        self.validate()?;
        Ok(crate::Engine::new(self.clone(), seed).run_with_observer(observer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_ranges() {
        assert_eq!(Environment::Urban.d2d_range_m(), 500.0);
        assert_eq!(Environment::Rural.d2d_range_m(), 1_000.0);
        assert_eq!(Environment::Urban.to_string(), "urban");
    }

    #[test]
    fn paper_default_is_valid() {
        for scheme in Scheme::ALL {
            for env in [Environment::Urban, Environment::Rural] {
                assert_eq!(SimConfig::paper_default(scheme, env).validate(), Ok(()));
            }
        }
    }

    #[test]
    fn packet_bits_full_bundle() {
        let cfg = SimConfig::smoke_test(Scheme::NoRouting, Environment::Urban);
        assert_eq!(cfg.packet_bits(), 255.0 * 8.0);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let base = SimConfig::smoke_test(Scheme::NoRouting, Environment::Urban);

        let mut c = base.clone();
        c.num_gateways = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::Zero {
                field: "num_gateways"
            })
        );

        let mut c = base.clone();
        c.alpha = 0.0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::OutOfRange {
                field: "alpha",
                value: 0.0,
                lo: 0.0,
                hi: 1.0
            })
        );

        let mut c = base.clone();
        c.alpha = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NotFinite { field: "alpha", .. })
        ));

        let mut c = base.clone();
        c.gateway_range_m = f64::INFINITY;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NotFinite {
                field: "gateway_range_m",
                ..
            })
        ));

        let mut c = base.clone();
        c.gateway_range_m = -500.0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::OutOfRange {
                field: "gateway_range_m",
                value: -500.0,
                lo: 0.0,
                hi: f64::INFINITY,
            })
        );

        let mut c = base.clone();
        c.duty_cycle = 2.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::OutOfRange {
                field: "duty_cycle",
                ..
            })
        ));

        let mut c = base.clone();
        c.queue_capacity = 0;
        assert!(c.validate().is_err());

        let mut c = base;
        c.horizon = SimDuration::ZERO;
        assert_eq!(c.validate(), Err(ConfigError::Zero { field: "horizon" }));
    }

    #[test]
    fn validation_covers_traffic_model() {
        let mut c = SimConfig::smoke_test(Scheme::NoRouting, Environment::Urban);
        c.traffic = crate::TrafficModel::mix([crate::TrafficProfile::telemetry().weight(-1.0)]);
        assert_eq!(c.validate().unwrap_err().field(), "traffic.profiles.weight");
        c.traffic = crate::TrafficModel::mix([crate::TrafficProfile::telemetry()]);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validation_covers_policy_labels() {
        use mlora_core::{Beacon, ForwardingPolicy, PolicyContext, PolicySpec};

        /// A policy whose label is whatever the test wants.
        #[derive(Debug, Clone)]
        struct Labelled(String);
        impl ForwardingPolicy for Labelled {
            fn label(&self) -> &str {
                &self.0
            }
            fn clone_box(&self) -> Box<dyn ForwardingPolicy> {
                Box::new(self.clone())
            }
            fn forwards(&mut self, _: &PolicyContext<'_>, _: &Beacon, _: f64) -> bool {
                false
            }
        }

        let mut c = SimConfig::smoke_test(Scheme::NoRouting, Environment::Urban);
        c.policy = Some(PolicySpec::of(Labelled(String::new())));
        assert_eq!(
            c.validate().unwrap_err().field(),
            "policy label must not be empty"
        );
        c.policy = Some(PolicySpec::of(Labelled("x".repeat(49))));
        assert!(c.validate().is_err());
        c.policy = Some(PolicySpec::of(Labelled("flood-fill".into())));
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.scheme_label(), "flood-fill");
        // Without a policy the scheme's figure label applies.
        c.policy = None;
        assert_eq!(c.scheme_label(), "LoRaWAN");
    }

    #[test]
    fn validation_covers_disruption_plan() {
        let mut c = SimConfig::smoke_test(Scheme::NoRouting, Environment::Urban);
        // An outage naming a gateway the scenario does not deploy.
        c.disruptions.outages.push(crate::GatewayOutage {
            gateway: c.num_gateways,
            start: mlora_simcore::SimTime::ZERO,
            duration: None,
        });
        assert_eq!(
            c.validate().unwrap_err().field(),
            "disruptions.outages.gateway"
        );
        c.disruptions.outages[0].gateway = 0;
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn config_error_displays() {
        let e = ConfigError::Invalid("x must be y");
        assert_eq!(e.to_string(), "invalid configuration: x must be y");
        let e = ConfigError::Zero { field: "horizon" };
        assert_eq!(
            e.to_string(),
            "invalid configuration: horizon must be positive"
        );
        assert_eq!(e.field(), "horizon");
        let e = ConfigError::OutOfRange {
            field: "alpha",
            value: 2.0,
            lo: 0.0,
            hi: 1.0,
        };
        assert!(e.to_string().contains("alpha"), "{e}");
    }
}
