//! The MLoRa-SS integration simulator.
//!
//! Ties every substrate together into the paper's evaluation pipeline
//! (§VII): the synthetic London bus network moves LoRa devices around a
//! 600 km² area; gateways sit on a uniform grid; devices generate a
//! 20-byte reading every 3 minutes, bundle up to 12 readings per frame,
//! respect the 1 % duty cycle, retransmit up to 8 times, and — depending
//! on the configured [`Scheme`](mlora_core::Scheme) — opportunistically
//! hand data to better-connected neighbours using RCA-ETX or ROBC.
//!
//! The public surface has three layers:
//!
//! * [`Scenario`] — a fluent builder producing validated [`SimConfig`]s
//!   (`Scenario::urban().gateways(80).scheme(Scheme::Robc).duration_h(24)`).
//! * [`SimObserver`] — streaming event hooks over a running simulation,
//!   with built-in counters, time-series and CSV/JSON trace sinks, so one
//!   run feeds any number of analyses.
//! * [`ExperimentPlan`] + [`Runner`] — declarative sweeps over
//!   environment/gateways/scheme/α/placement/class/disruptions/policies,
//!   replicated over seeds and executed across worker threads into
//!   [`ReplicatedReport`]s with mean/CI accessors.
//!
//! The forwarding layer itself is open: any [`ForwardingPolicy`]
//! implementation plugs in through [`ScenarioBuilder::policy`] (or a
//! [`policies`](ExperimentPlan::policies) sweep axis) and rides the
//! exact engine path the paper's built-in schemes use; each run's
//! [`SimReport::scheme`] carries the policy's label into every table.
//!
//! Orthogonally, a [`DisruptionPlan`] scripts mid-run world events —
//! gateway outages, fleet withdrawals, regional noise bursts — as a
//! deterministic timeline the engine compiles and applies; an empty
//! plan is bit-identical to an undisrupted build.
//!
//! The demand side is equally pluggable: a [`TrafficModel`] mixes
//! [`TrafficProfile`]s (periodic/jittered/Poisson/diurnal/bursty
//! arrivals × payload-size distributions × priority classes) across the
//! fleet, payload sizes flow into real frame airtimes, and
//! [`SimReport::profiles`] breaks delivery/delay/airtime down per
//! profile; an empty model is the paper's homogeneous workload,
//! bit-identical to a build without the subsystem.
//!
//! # Quick start
//!
//! ```
//! use mlora_sim::prelude::*;
//!
//! let report = Scenario::urban()
//!     .smoke() // the small, fast test preset
//!     .scheme(Scheme::Robc)
//!     .run(42)
//!     .expect("valid scenario");
//! assert!(report.delivered > 0);
//! ```
//!
//! # A parallel multi-seed sweep
//!
//! ```
//! use mlora_sim::prelude::*;
//! use mlora_simcore::SimDuration;
//!
//! let base = Scenario::urban()
//!     .smoke()
//!     .duration(SimDuration::from_mins(40))
//!     .build()?;
//! let plan = ExperimentPlan::new(base)
//!     .schemes([Scheme::NoRouting, Scheme::Robc])
//!     .seed(2020)
//!     .replicate(2);
//! for cell in Runner::new().run(&plan)? {
//!     let (lo, hi) = cell.report.ci95(|r| r.delivery_ratio());
//!     println!("{:?}: delivery in [{lo:.2}, {hi:.2}]", cell.key.scheme);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod config;
mod deployment;
pub mod disruption;
mod engine;
pub mod io;
mod metrics;
pub mod observer;
pub mod report;
mod runner;
mod scenario;
pub mod traffic;

pub use config::{ConfigError, DeviceClassChoice, Environment, GatewayPlacement, SimConfig};
pub use deployment::place_gateways;
pub use disruption::{BusWithdrawal, DisruptionEvent, DisruptionPlan, GatewayOutage, NoiseBurst};
pub use engine::partition::Partition;
#[doc(hidden)]
pub use engine::probe;
pub use engine::{Engine, EngineStats, Snapshot, SnapshotError, SNAPSHOT_MAGIC};
pub use io::ScenarioFileError;
pub use metrics::{ProfileReport, SimReport};
pub use mlora_core::{ForwardingPolicy, PolicyContext, PolicySpec};
pub use mlora_mac::Priority;
pub use mlora_mobility::{BusNetwork, MetroConfig, MetroWorld};
pub use mlora_simcore::QueueKind;
pub use observer::{
    BusWithdrawn, EventCounter, FrameTransmitted, GatewayOutageChanged, HandoverAccepted,
    MessageDelivered, MessageGenerated, NoiseBurstChanged, NullObserver, ReportWriter,
    SeriesObserver, SimObserver, TraceFormat, TraceSink,
};
pub use report::SweepPoint;
pub use runner::PAPER_GATEWAY_COUNTS;
pub use runner::{
    CellKey, CellResult, ExperimentPlan, PlanCell, ReplicatedReport, Runner, RunnerError,
};
pub use scenario::{Scenario, ScenarioBuilder};
pub use traffic::{ArrivalProcess, PayloadModel, TrafficModel, TrafficProfile};

pub mod prelude {
    //! The one-line import for working with the simulator.
    //!
    //! Re-exports the common surface — scenario building, schemes,
    //! observers and their event types, experiment plans, disruption
    //! scripting and traffic modelling — so examples and downstream
    //! code start with `use mlora_sim::prelude::*;` and reach for
    //! specific modules only for the long tail (snapshot internals,
    //! custom policies, raw substrate types).
    pub use crate::observer::events::{
        BusWithdrawn, FrameTransmitted, GatewayOutageChanged, HandoverAccepted, MessageDelivered,
        MessageGenerated, NoiseBurstChanged, ObservedEvent,
    };
    pub use crate::observer::{
        EventCounter, NullObserver, ReportWriter, SeriesObserver, SimObserver, TraceFormat,
        TraceSink,
    };
    pub use crate::{
        BusWithdrawal, ConfigError, DeviceClassChoice, DisruptionPlan, Engine, Environment,
        ExperimentPlan, GatewayOutage, GatewayPlacement, MetroConfig, NoiseBurst, QueueKind,
        ReplicatedReport, Runner, Scenario, ScenarioBuilder, SimConfig, SimReport, Snapshot,
        TrafficModel, TrafficProfile,
    };
    pub use mlora_core::Scheme;
}
