//! The MLoRa-SS integration simulator.
//!
//! Ties every substrate together into the paper's evaluation pipeline
//! (§VII): the synthetic London bus network moves LoRa devices around a
//! 600 km² area; gateways sit on a uniform grid; devices generate a
//! 20-byte reading every 3 minutes, bundle up to 12 readings per frame,
//! respect the 1 % duty cycle, retransmit up to 8 times, and — depending
//! on the configured [`Scheme`](mlora_core::Scheme) — opportunistically
//! hand data to better-connected neighbours using RCA-ETX or ROBC.
//!
//! # Quick start
//!
//! ```
//! use mlora_sim::{Environment, SimConfig};
//! use mlora_core::Scheme;
//!
//! let report = SimConfig::smoke_test(Scheme::Robc, Environment::Urban)
//!     .run(42)
//!     .expect("valid configuration");
//! assert!(report.delivered > 0);
//! ```

#![deny(missing_docs)]

mod config;
mod deployment;
mod engine;
pub mod experiment;
mod metrics;
pub mod report;

pub use config::{ConfigError, DeviceClassChoice, Environment, GatewayPlacement, SimConfig};
pub use deployment::place_gateways;
pub use engine::Engine;
pub use metrics::SimReport;
