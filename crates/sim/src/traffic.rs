//! Heterogeneous traffic models: who sends what, when, and how big.
//!
//! The paper's evaluation runs one homogeneous workload — every device
//! generates a fixed 20-byte reading every 3 minutes. A [`TrafficModel`]
//! makes the demand side a first-class, pluggable scenario axis, the way
//! large traffic simulators treat demand generation as a model rather
//! than a constant: a mix of [`TrafficProfile`]s, each naming an
//! [`ArrivalProcess`] (when messages are born), a [`PayloadModel`] (how
//! big they are), a [`Priority`] class and a share of the fleet. Devices
//! are assigned a profile deterministically from the run seed, and every
//! per-device draw comes from a dedicated RNG stream, so traffic never
//! perturbs the channel/shadowing randomness of the rest of the engine.
//!
//! An **empty model is the paper's workload**: no profiles means every
//! device runs the §VII.A periodic generator off
//! [`SimConfig`](crate::SimConfig)'s `gen_interval`, consuming no extra
//! randomness — runs are bit-identical to a build without this
//! subsystem (`tests/golden_determinism.rs` pins this).
//!
//! # Example
//!
//! ```
//! use mlora_sim::prelude::*;
//!
//! let cfg = Scenario::urban()
//!     .smoke()
//!     .profile(TrafficProfile::telemetry().weight(3.0))
//!     .profile(TrafficProfile::alerts())
//!     .build()?;
//! assert_eq!(cfg.traffic.profiles.len(), 2);
//! # Ok::<(), mlora_sim::ConfigError>(())
//! ```

use mlora_mac::{Priority, MAX_BUNDLE_BYTES};
use mlora_mobility::DiurnalProfile;
use mlora_simcore::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::ConfigError;

/// When a device's application generates its next message.
///
/// All processes are sampled from a per-device RNG stream derived from
/// the run seed, so the arrival sequence of one device never depends on
/// any other device or on event-processing order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// A fixed interval between messages — the paper's generator.
    Periodic {
        /// Gap between consecutive messages.
        interval: SimDuration,
    },
    /// A fixed interval with multiplicative uniform jitter: each gap is
    /// `interval × (1 + U(-jitter, +jitter))`.
    Jittered {
        /// Nominal gap between consecutive messages.
        interval: SimDuration,
        /// Relative jitter amplitude, in `(0, 1)`.
        jitter: f64,
    },
    /// A memoryless Poisson process: exponential inter-arrival gaps.
    Poisson {
        /// Mean gap between consecutive messages.
        mean_interval: SimDuration,
    },
    /// A periodic process whose rate follows a 24-hour activity curve:
    /// the gap at time *t* is `base_interval / level(t)` (levels are
    /// floored at [`ArrivalProcess::DIURNAL_LEVEL_FLOOR`] so the night
    /// trough slows generation rather than stopping it).
    Diurnal {
        /// Gap at full activity (level 1.0).
        base_interval: SimDuration,
        /// The 24-hour activity curve modulating the rate.
        profile: DiurnalProfile,
    },
    /// An on/off process: bursts of messages at a fast `interval`,
    /// separated by exponential idle gaps. Burst lengths are exponential
    /// with mean `mean_burst` messages.
    Bursty {
        /// Gap between messages inside a burst.
        interval: SimDuration,
        /// Mean number of messages per burst (≥ 1).
        mean_burst: f64,
        /// Mean idle gap between bursts (added on top of `interval`).
        mean_idle: SimDuration,
    },
}

impl ArrivalProcess {
    /// Lowest diurnal activity level applied to the rate: the night
    /// trough stretches gaps by at most `1 / 0.05 = 20×`.
    pub const DIURNAL_LEVEL_FLOOR: f64 = 0.05;

    /// The delay from trip start to the first message — a uniform phase
    /// over one nominal interval (exponential for Poisson), so a fleet
    /// sharing a profile does not transmit in lockstep.
    pub(crate) fn first_gap(&self, rng: &mut SimRng) -> SimDuration {
        match self {
            ArrivalProcess::Periodic { interval }
            | ArrivalProcess::Jittered { interval, .. }
            | ArrivalProcess::Bursty { interval, .. } => uniform_phase(*interval, rng),
            ArrivalProcess::Poisson { mean_interval } => exponential_gap(*mean_interval, rng),
            ArrivalProcess::Diurnal { base_interval, .. } => uniform_phase(*base_interval, rng),
        }
    }

    /// The gap from the message just generated at `now` to the next one.
    /// `burst_left` is the per-device burst state (unused by the other
    /// processes). Never returns zero, so generation cannot collapse
    /// into a same-instant event storm.
    pub(crate) fn next_gap(
        &self,
        now: SimTime,
        burst_left: &mut u32,
        rng: &mut SimRng,
    ) -> SimDuration {
        let gap = match self {
            ArrivalProcess::Periodic { interval } => *interval,
            ArrivalProcess::Jittered { interval, jitter } => {
                interval.mul_f64(1.0 + rng.gen_range_f64(-jitter, *jitter))
            }
            ArrivalProcess::Poisson { mean_interval } => exponential_gap(*mean_interval, rng),
            ArrivalProcess::Diurnal {
                base_interval,
                profile,
            } => {
                let level = profile.level(now).max(Self::DIURNAL_LEVEL_FLOOR);
                base_interval.mul_f64(1.0 / level)
            }
            ArrivalProcess::Bursty {
                interval,
                mean_burst,
                mean_idle,
            } => {
                if *burst_left > 0 {
                    *burst_left -= 1;
                    *interval
                } else {
                    // Burst exhausted: idle, then open the next burst.
                    // Lengths are exponential with the configured mean;
                    // the cap only guards against pathological draws.
                    let extra = rng.exponential(1.0 / mean_burst).min(100_000.0) as u32;
                    *burst_left = extra;
                    *interval + exponential_gap(*mean_idle, rng)
                }
            }
        };
        gap.max(SimDuration::from_millis(1))
    }

    /// Validates the process parameters; `field` prefixes error paths.
    fn validate(&self) -> Result<(), ConfigError> {
        match self {
            ArrivalProcess::Periodic { interval } => {
                check_interval("traffic.profiles.arrivals.interval", *interval)
            }
            ArrivalProcess::Jittered { interval, jitter } => {
                check_interval("traffic.profiles.arrivals.interval", *interval)?;
                if !jitter.is_finite() {
                    return Err(ConfigError::NotFinite {
                        field: "traffic.profiles.arrivals.jitter",
                        value: *jitter,
                    });
                }
                if !(*jitter > 0.0 && *jitter < 1.0) {
                    return Err(ConfigError::OutOfRange {
                        field: "traffic.profiles.arrivals.jitter",
                        value: *jitter,
                        lo: 0.0,
                        hi: 1.0,
                    });
                }
                Ok(())
            }
            ArrivalProcess::Poisson { mean_interval } => {
                check_interval("traffic.profiles.arrivals.mean_interval", *mean_interval)
            }
            ArrivalProcess::Diurnal { base_interval, .. } => {
                check_interval("traffic.profiles.arrivals.base_interval", *base_interval)
            }
            ArrivalProcess::Bursty {
                interval,
                mean_burst,
                mean_idle,
            } => {
                check_interval("traffic.profiles.arrivals.interval", *interval)?;
                check_interval("traffic.profiles.arrivals.mean_idle", *mean_idle)?;
                if !mean_burst.is_finite() {
                    return Err(ConfigError::NotFinite {
                        field: "traffic.profiles.arrivals.mean_burst",
                        value: *mean_burst,
                    });
                }
                if *mean_burst < 1.0 {
                    return Err(ConfigError::OutOfRange {
                        field: "traffic.profiles.arrivals.mean_burst",
                        value: *mean_burst,
                        lo: 1.0,
                        hi: f64::INFINITY,
                    });
                }
                Ok(())
            }
        }
    }
}

/// A uniform phase in `[0, interval)`, mirroring the legacy per-device
/// start-up phase draw (millisecond resolution).
fn uniform_phase(interval: SimDuration, rng: &mut SimRng) -> SimDuration {
    SimDuration::from_millis(rng.gen_range_u64(0, interval.as_millis().max(1)))
}

/// An exponential gap with the given mean.
fn exponential_gap(mean: SimDuration, rng: &mut SimRng) -> SimDuration {
    SimDuration::from_secs_f64(rng.exponential(1.0 / mean.as_secs_f64()))
}

fn check_interval(field: &'static str, interval: SimDuration) -> Result<(), ConfigError> {
    if interval.is_zero() {
        return Err(ConfigError::Zero { field });
    }
    Ok(())
}

/// How large each generated reading is, bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PayloadModel {
    /// Every reading is exactly `bytes` long — the paper's 20-byte
    /// default.
    Fixed {
        /// Payload size, bytes.
        bytes: usize,
    },
    /// Reading sizes are uniform over `[min_bytes, max_bytes]`.
    Uniform {
        /// Smallest payload, bytes.
        min_bytes: usize,
        /// Largest payload, bytes (inclusive).
        max_bytes: usize,
    },
}

impl PayloadModel {
    /// Samples one payload size.
    pub(crate) fn sample(&self, rng: &mut SimRng) -> u16 {
        match self {
            PayloadModel::Fixed { bytes } => *bytes as u16,
            PayloadModel::Uniform {
                min_bytes,
                max_bytes,
            } => rng.gen_range_u64(*min_bytes as u64, *max_bytes as u64 + 1) as u16,
        }
    }

    /// The largest size this model can produce, bytes.
    pub fn max_bytes(&self) -> usize {
        match self {
            PayloadModel::Fixed { bytes } => *bytes,
            PayloadModel::Uniform { max_bytes, .. } => *max_bytes,
        }
    }

    /// The smallest size this model can produce, bytes.
    pub fn min_bytes(&self) -> usize {
        match self {
            PayloadModel::Fixed { bytes } => *bytes,
            PayloadModel::Uniform { min_bytes, .. } => *min_bytes,
        }
    }

    fn validate(&self) -> Result<(), ConfigError> {
        let (lo, hi) = (self.min_bytes(), self.max_bytes());
        if lo == 0 {
            return Err(ConfigError::Zero {
                field: "traffic.profiles.payload.bytes",
            });
        }
        if hi > MAX_BUNDLE_BYTES {
            return Err(ConfigError::OutOfRange {
                field: "traffic.profiles.payload.bytes",
                value: hi as f64,
                lo: 0.0,
                hi: MAX_BUNDLE_BYTES as f64,
            });
        }
        if lo > hi {
            return Err(ConfigError::Invalid(
                "traffic.profiles.payload: min_bytes exceeds max_bytes",
            ));
        }
        Ok(())
    }
}

/// One application class: its arrival process, payload sizes, priority
/// and share of the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficProfile {
    /// Human-readable name, carried into per-profile report rows.
    pub name: String,
    /// When this application generates messages.
    pub arrivals: ArrivalProcess,
    /// How large its readings are.
    pub payload: PayloadModel,
    /// Link-layer priority class of its readings.
    pub priority: Priority,
    /// Relative share of the fleet running this profile (any positive
    /// weight; shares are normalised over the model's profiles).
    pub weight: f64,
}

impl TrafficProfile {
    /// A profile with the given name, arrivals and payload model, at
    /// [`Priority::Normal`] and weight 1.
    pub fn new(name: impl Into<String>, arrivals: ArrivalProcess, payload: PayloadModel) -> Self {
        TrafficProfile {
            name: name.into(),
            arrivals,
            payload,
            priority: Priority::Normal,
            weight: 1.0,
        }
    }

    /// Sets the priority class (consuming builder style).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the fleet-share weight (consuming builder style).
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// The paper's exact workload as an explicit profile: a fixed
    /// 20-byte reading every `interval` (§VII.A.4 uses 3 minutes).
    pub fn paper(interval: SimDuration) -> Self {
        TrafficProfile::new(
            "paper",
            ArrivalProcess::Periodic { interval },
            PayloadModel::Fixed {
                bytes: mlora_mac::APP_MESSAGE_BYTES,
            },
        )
    }

    /// Vehicle telemetry: a 20-byte reading roughly every 3 minutes,
    /// ±20 % jitter so the fleet decorrelates.
    pub fn telemetry() -> Self {
        TrafficProfile::new(
            "telemetry",
            ArrivalProcess::Jittered {
                interval: SimDuration::from_mins(3),
                jitter: 0.2,
            },
            PayloadModel::Fixed {
                bytes: mlora_mac::APP_MESSAGE_BYTES,
            },
        )
    }

    /// Asset tracking: Poisson position fixes (mean 2 minutes) with
    /// variable 12–32-byte fixes depending on constellation state.
    pub fn tracking() -> Self {
        TrafficProfile::new(
            "tracking",
            ArrivalProcess::Poisson {
                mean_interval: SimDuration::from_mins(2),
            },
            PayloadModel::Uniform {
                min_bytes: 12,
                max_bytes: 32,
            },
        )
    }

    /// Passenger-counting sensors: generation follows the diurnal
    /// service curve (busy at rush hour, quiet at night), 24-byte
    /// summaries at a 5-minute full-activity cadence.
    pub fn passenger_counts() -> Self {
        TrafficProfile::new(
            "passenger-counts",
            ArrivalProcess::Diurnal {
                base_interval: SimDuration::from_mins(5),
                profile: DiurnalProfile::london_buses(),
            },
            PayloadModel::Fixed { bytes: 24 },
        )
    }

    /// Alerting: rare, urgent, tiny. Bursts of ~3 eight-byte alerts at
    /// 20-second spacing, separated by half-hour idle gaps, jumping
    /// every queue at [`Priority::High`]. Weighted at a twentieth of
    /// the fleet by default.
    pub fn alerts() -> Self {
        TrafficProfile::new(
            "alerts",
            ArrivalProcess::Bursty {
                interval: SimDuration::from_secs(20),
                mean_burst: 3.0,
                mean_idle: SimDuration::from_mins(30),
            },
            PayloadModel::Fixed { bytes: 8 },
        )
        .priority(Priority::High)
        .weight(0.05)
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.name.is_empty() {
            return Err(ConfigError::Invalid("traffic.profiles.name is empty"));
        }
        self.arrivals.validate()?;
        self.payload.validate()?;
        if !self.weight.is_finite() {
            return Err(ConfigError::NotFinite {
                field: "traffic.profiles.weight",
                value: self.weight,
            });
        }
        if self.weight <= 0.0 {
            return Err(ConfigError::OutOfRange {
                field: "traffic.profiles.weight",
                value: self.weight,
                lo: 0.0,
                hi: f64::INFINITY,
            });
        }
        Ok(())
    }
}

/// The demand side of a scenario: a weighted mix of traffic profiles.
///
/// The default model is **empty** and costs nothing: every device runs
/// the paper's periodic generator (driven by [`SimConfig`]'s
/// `gen_interval`), no extra RNG stream is consumed, and runs are
/// bit-identical to a build without the subsystem.
///
/// [`SimConfig`]: crate::SimConfig
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrafficModel {
    /// The profile mix. Empty means the paper's homogeneous workload.
    pub profiles: Vec<TrafficProfile>,
}

impl TrafficModel {
    /// Largest number of profiles one model may mix (profile indices are
    /// carried as a byte in every message).
    pub const MAX_PROFILES: usize = 256;

    /// A model running `profiles`.
    pub fn mix(profiles: impl IntoIterator<Item = TrafficProfile>) -> Self {
        TrafficModel {
            profiles: profiles.into_iter().collect(),
        }
    }

    /// True when the model is the paper's homogeneous default.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Assigns a profile index by weighted draw from `rng` (the first
    /// draw on a device's traffic stream).
    pub(crate) fn pick_profile(&self, rng: &mut SimRng) -> usize {
        debug_assert!(!self.profiles.is_empty());
        if self.profiles.len() == 1 {
            return 0;
        }
        let total: f64 = self.profiles.iter().map(|p| p.weight).sum();
        let x = rng.gen_range_f64(0.0, total);
        let mut cum = 0.0;
        for (i, p) in self.profiles.iter().enumerate() {
            cum += p.weight;
            if x < cum {
                return i;
            }
        }
        self.profiles.len() - 1
    }

    /// Validates every profile.
    ///
    /// # Errors
    ///
    /// Returns the typed [`ConfigError`] naming the first offending
    /// field: an empty profile name, a zero interval, a payload outside
    /// `[1, 240]` bytes, a non-finite weight, too many profiles, …
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.profiles.len() > Self::MAX_PROFILES {
            return Err(ConfigError::OutOfRange {
                field: "traffic.profiles",
                value: self.profiles.len() as f64,
                lo: 0.0,
                hi: Self::MAX_PROFILES as f64,
            });
        }
        for profile in &self.profiles {
            profile.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(7)
    }

    #[test]
    fn default_model_is_empty_and_valid() {
        let model = TrafficModel::default();
        assert!(model.is_empty());
        assert_eq!(model.validate(), Ok(()));
    }

    #[test]
    fn presets_are_valid() {
        for profile in [
            TrafficProfile::paper(SimDuration::from_mins(3)),
            TrafficProfile::telemetry(),
            TrafficProfile::tracking(),
            TrafficProfile::passenger_counts(),
            TrafficProfile::alerts(),
        ] {
            assert_eq!(profile.validate(), Ok(()), "{} invalid", profile.name);
        }
    }

    #[test]
    fn periodic_gaps_are_exact() {
        let p = ArrivalProcess::Periodic {
            interval: SimDuration::from_mins(3),
        };
        let mut burst = 0;
        assert_eq!(
            p.next_gap(SimTime::ZERO, &mut burst, &mut rng()),
            SimDuration::from_mins(3)
        );
    }

    #[test]
    fn jittered_gaps_stay_in_band() {
        let p = ArrivalProcess::Jittered {
            interval: SimDuration::from_secs(100),
            jitter: 0.2,
        };
        let mut r = rng();
        let mut burst = 0;
        for _ in 0..200 {
            let gap = p.next_gap(SimTime::ZERO, &mut burst, &mut r).as_secs_f64();
            assert!((80.0..120.0).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn poisson_mean_roughly_right() {
        let p = ArrivalProcess::Poisson {
            mean_interval: SimDuration::from_secs(60),
        };
        let mut r = rng();
        let mut burst = 0;
        let n = 5_000;
        let total: f64 = (0..n)
            .map(|_| p.next_gap(SimTime::ZERO, &mut burst, &mut r).as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 60.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn diurnal_slows_at_night_speeds_at_rush() {
        let p = ArrivalProcess::Diurnal {
            base_interval: SimDuration::from_mins(5),
            profile: DiurnalProfile::london_buses(),
        };
        let mut r = rng();
        let mut burst = 0;
        let night = p.next_gap(SimTime::from_secs(3 * 3600), &mut burst, &mut r);
        let rush = p.next_gap(SimTime::from_secs(8 * 3600), &mut burst, &mut r);
        assert!(night > rush * 2, "night {night} vs rush {rush}");
        // The floor caps the slowdown at 20x.
        assert!(night <= SimDuration::from_mins(5).mul_f64(20.0));
    }

    #[test]
    fn bursty_alternates_fast_and_idle_gaps() {
        let p = ArrivalProcess::Bursty {
            interval: SimDuration::from_secs(10),
            mean_burst: 4.0,
            mean_idle: SimDuration::from_mins(10),
        };
        let mut r = rng();
        let mut burst = 0;
        let mut fast = 0;
        let mut idle = 0;
        for _ in 0..2_000 {
            let gap = p.next_gap(SimTime::ZERO, &mut burst, &mut r);
            if gap == SimDuration::from_secs(10) {
                fast += 1;
            } else {
                assert!(gap > SimDuration::from_secs(10));
                idle += 1;
            }
        }
        assert!(fast > idle, "bursts should dominate: {fast} vs {idle}");
        assert!(idle > 100, "idle gaps must occur: {idle}");
    }

    #[test]
    fn gaps_never_zero() {
        let p = ArrivalProcess::Poisson {
            mean_interval: SimDuration::from_millis(1),
        };
        let mut r = rng();
        let mut burst = 0;
        for _ in 0..1_000 {
            assert!(!p.next_gap(SimTime::ZERO, &mut burst, &mut r).is_zero());
        }
    }

    #[test]
    fn payload_samples_respect_bounds() {
        let m = PayloadModel::Uniform {
            min_bytes: 12,
            max_bytes: 32,
        };
        let mut r = rng();
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let b = m.sample(&mut r);
            assert!((12..=32).contains(&b), "payload {b}");
            seen_lo |= b == 12;
            seen_hi |= b == 32;
        }
        assert!(seen_lo && seen_hi, "inclusive bounds never drawn");
        assert_eq!(PayloadModel::Fixed { bytes: 20 }.sample(&mut r), 20);
    }

    #[test]
    fn pick_profile_follows_weights() {
        let model = TrafficModel::mix([
            TrafficProfile::telemetry().weight(9.0),
            TrafficProfile::alerts().weight(1.0),
        ]);
        let mut r = rng();
        let n = 10_000;
        let alerts = (0..n).filter(|_| model.pick_profile(&mut r) == 1).count();
        let share = alerts as f64 / n as f64;
        assert!((share - 0.1).abs() < 0.02, "alert share {share}");
        // A single profile needs no draw at all.
        let single = TrafficModel::mix([TrafficProfile::telemetry()]);
        assert_eq!(single.pick_profile(&mut r), 0);
    }

    #[test]
    fn validation_names_offending_fields() {
        let zero_interval = TrafficModel::mix([TrafficProfile::new(
            "t",
            ArrivalProcess::Periodic {
                interval: SimDuration::ZERO,
            },
            PayloadModel::Fixed { bytes: 20 },
        )]);
        assert_eq!(
            zero_interval.validate().unwrap_err().field(),
            "traffic.profiles.arrivals.interval"
        );

        let bad_jitter = TrafficModel::mix([TrafficProfile::new(
            "t",
            ArrivalProcess::Jittered {
                interval: SimDuration::from_mins(1),
                jitter: 1.5,
            },
            PayloadModel::Fixed { bytes: 20 },
        )]);
        assert_eq!(
            bad_jitter.validate().unwrap_err().field(),
            "traffic.profiles.arrivals.jitter"
        );

        let oversized = TrafficModel::mix([TrafficProfile::new(
            "t",
            ArrivalProcess::Periodic {
                interval: SimDuration::from_mins(1),
            },
            PayloadModel::Fixed {
                bytes: MAX_BUNDLE_BYTES + 1,
            },
        )]);
        assert_eq!(
            oversized.validate().unwrap_err().field(),
            "traffic.profiles.payload.bytes"
        );

        let zero_payload = TrafficModel::mix([TrafficProfile::new(
            "t",
            ArrivalProcess::Periodic {
                interval: SimDuration::from_mins(1),
            },
            PayloadModel::Fixed { bytes: 0 },
        )]);
        assert_eq!(
            zero_payload.validate().unwrap_err().field(),
            "traffic.profiles.payload.bytes"
        );

        let bad_weight = TrafficModel::mix([TrafficProfile::telemetry().weight(0.0)]);
        assert_eq!(
            bad_weight.validate().unwrap_err().field(),
            "traffic.profiles.weight"
        );

        let inverted = TrafficModel::mix([TrafficProfile::new(
            "t",
            ArrivalProcess::Periodic {
                interval: SimDuration::from_mins(1),
            },
            PayloadModel::Uniform {
                min_bytes: 30,
                max_bytes: 20,
            },
        )]);
        assert!(inverted.validate().is_err());

        let small_burst = TrafficModel::mix([TrafficProfile::new(
            "t",
            ArrivalProcess::Bursty {
                interval: SimDuration::from_secs(10),
                mean_burst: 0.5,
                mean_idle: SimDuration::from_mins(1),
            },
            PayloadModel::Fixed { bytes: 20 },
        )]);
        assert_eq!(
            small_burst.validate().unwrap_err().field(),
            "traffic.profiles.arrivals.mean_burst"
        );

        let unnamed = TrafficModel::mix([TrafficProfile::new(
            "",
            ArrivalProcess::Periodic {
                interval: SimDuration::from_mins(1),
            },
            PayloadModel::Fixed { bytes: 20 },
        )]);
        assert!(unnamed.validate().is_err());
    }
}
