//! The event-driven network engine.
//!
//! A single-threaded discrete-event loop over five event kinds: trips
//! starting and ending, message generation, and transmission start/end.
//! All physics (ranges, RSSI, collisions) resolve at transmission end;
//! positions are computed analytically from the mobility substrate, so
//! there is no per-tick stepping anywhere.
//!
//! # Hot-path layout
//!
//! Per-event state is dense and index-addressed: devices live in a
//! [`DenseMap`] keyed by their already-dense [`NodeId`], frames in
//! flight live in a generational [`Slab`], the neighbour grid is
//! maintained incrementally (insert on trip start, remove on retirement,
//! periodic drift relocation — never a from-scratch rebuild), and every
//! query writes into scratch buffers owned by the engine. In steady
//! state the event loop performs no per-event heap allocation on the
//! neighbour-resolution path.

use mlora_core::{Beacon, ForwardDecision, RoutingState};
use mlora_geo::{GridIndex, Point};
use mlora_mac::{
    AppMessage, DataQueue, DeviceClass, DutyCycleTracker, EnergyAccount, EnergyModel, Priority,
    RadioState, RetransmitPolicy, UplinkFrame, MAX_BUNDLE, MAX_BUNDLE_BYTES,
};
use mlora_phy::{resolve_collision, time_on_air, CAPTURE_MARGIN_DB};
use mlora_simcore::{DenseMap, EventQueue, NodeId, SimDuration, SimRng, SimTime, Slab, SlabKey};

use crate::disruption::DisruptionEvent;
use crate::metrics::Collector;
use crate::observer::{
    BusWithdrawn, FrameTransmitted, GatewayOutageChanged, HandoverAccepted, MessageDelivered,
    MessageGenerated, NoiseBurstChanged, NullObserver, SimObserver,
};
use crate::{place_gateways, DeviceClassChoice, SimConfig, SimReport};

/// Discrete events driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A bus enters service and becomes a live device.
    TripStart(NodeId),
    /// A bus leaves service.
    TripEnd(NodeId),
    /// A device generates one application message.
    Generate(NodeId),
    /// A device begins a transmission (uplink or handover).
    TxStart(NodeId),
    /// A transmission completes; receptions resolve.
    TxEnd(SlabKey),
    /// A scripted world disruption fires (index into the compiled
    /// timeline). An empty [`DisruptionPlan`](crate::DisruptionPlan)
    /// schedules none of these.
    Disruption(u32),
}

/// A frame in the air.
#[derive(Debug, Clone)]
struct Flight {
    /// Creation sequence number: slab slots are recycled, so canonical
    /// frame ordering (collision candidate lists, RNG draw order) sorts
    /// by this monotone counter, never by storage index.
    seq: u64,
    sender: NodeId,
    frame: UplinkFrame,
    /// `Some(y)` for a handover aimed at device `y`.
    target: Option<NodeId>,
    start: SimTime,
    end: SimTime,
    /// Sender position at transmission start (quasi-static over ≤0.4 s).
    pos: Point,
}

/// Per-device traffic-model state: which profile this device runs and
/// the dedicated RNG stream its arrival/payload draws come from.
/// `None` when the scenario's [`TrafficModel`](crate::TrafficModel) is
/// empty — the paper-exact periodic generator needs no state.
#[derive(Debug, Clone)]
struct DeviceTraffic {
    /// Index into the model's profile mix.
    profile: u32,
    /// Per-device stream forked from the engine's traffic root; the
    /// first draw assigns the profile, later draws sample arrivals and
    /// payload sizes.
    rng: SimRng,
    /// Messages remaining in the current on-period of a bursty process.
    burst_left: u32,
}

/// Per-device live state.
#[derive(Debug, Clone)]
struct Device {
    active: bool,
    activated_at: SimTime,
    retired_at: Option<SimTime>,
    queue: DataQueue,
    duty: DutyCycleTracker,
    retransmit: RetransmitPolicy,
    routing: RoutingState,
    class: DeviceClass,
    transmitting: bool,
    tx_scheduled: bool,
    pending_handover: Option<(NodeId, usize)>,
    last_tx_end: Option<SimTime>,
    /// Window of the most recent transmission, for half-duplex checks.
    tx_window: Option<(SimTime, SimTime)>,
    /// Eq. 11 receive-window fraction, refreshed at each uplink.
    gamma: f64,
    /// Cumulative transmit airtime.
    tx_time: SimDuration,
    /// Cumulative Queue-based Class-A listening time.
    rx_window_time: SimDuration,
    /// Uplink frames sent (for Class-A RX-window energy).
    frames_sent: u64,
    /// The position this device is filed under in the neighbour grid.
    grid_pos: Point,
    /// Traffic-model state; `None` under the paper's default workload.
    traffic: Option<DeviceTraffic>,
}

/// Execution statistics of one engine run, returned by
/// [`Engine::run_instrumented`] for throughput benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Discrete events processed by the main loop.
    pub events_processed: u64,
}

/// The simulation engine. Construct with [`Engine::new`], execute with
/// [`Engine::run`].
#[derive(Debug)]
pub struct Engine {
    cfg: SimConfig,
    net: mlora_mobility::BusNetwork,
    gateways: Vec<Point>,
    events: EventQueue<Event>,
    devices: DenseMap<NodeId, Device>,
    /// Device ids currently in service, kept sorted for determinism.
    active: Vec<NodeId>,
    flights: Slab<Flight>,
    /// Monotone frame creation counter (see [`Flight::seq`]).
    next_flight_seq: u64,
    next_msg: u64,
    channel_rng: SimRng,
    collector: Collector,
    now: SimTime,
    horizon: SimTime,
    /// Incrementally maintained spatial index over active devices.
    grid: GridIndex<NodeId>,
    /// Static spatial index over gateway positions (by gateway index).
    gateway_grid: GridIndex<u32>,
    /// When the next periodic drift-relocation sweep is due.
    grid_refresh_due: SimTime,
    /// Sweep period: chosen so no stored position can drift more than
    /// [`GRID_MARGIN_M`] between sweeps at the fleet's top speed.
    grid_refresh_every: SimDuration,
    /// How long an ended flight stays in the slab: at least the
    /// worst-case frame airtime under the configured PHY, so any frame
    /// still in the air finds every time-overlapping interferer in the
    /// collision scan.
    flight_retention: SimDuration,
    /// Per-device polyline segment cursors for O(1) position queries.
    pos_hints: Vec<u32>,
    /// Scratch: time-overlapping flights as `(seq, position)`.
    scratch_overlaps: Vec<(u64, Point)>,
    /// Scratch: raw grid query output.
    scratch_within: Vec<(NodeId, Point)>,
    /// Scratch: sorted neighbour-candidate ids.
    scratch_candidates: Vec<NodeId>,
    /// Scratch: per-receiver collision candidates as `(seq, rssi)`.
    scratch_rssi: Vec<(u64, f64)>,
    /// Scratch: devices needing a transmission opportunity scheduled.
    scratch_schedule: Vec<NodeId>,
    /// Scratch: raw gateway-grid query output.
    scratch_within_gw: Vec<(u32, Point)>,
    /// Scratch: indices of gateways near a sender.
    scratch_gateways: Vec<u32>,
    /// Compiled disruption timeline, in firing order (empty for an
    /// undisrupted run).
    timeline: Vec<(SimTime, DisruptionEvent)>,
    /// Per-gateway outage depth: 0 = in service. A depth (not a flag)
    /// so overlapping outage windows on one gateway compose.
    gateway_down_depth: Vec<u32>,
    /// Indices of currently active noise bursts, in activation order.
    active_noise: Vec<u32>,
    /// Dedicated stream for withdrawal selection, so disruptions never
    /// perturb the channel/shadowing draws of the surviving fleet.
    disruption_rng: SimRng,
    /// Root of the per-device traffic streams (profile assignment,
    /// arrival gaps, payload sizes). Forked per device by node index, so
    /// a device's traffic is a pure function of the seed and its
    /// identity. Never drawn from when the model is empty.
    traffic_root: SimRng,
    /// Scratch: withdrawal candidate pool.
    scratch_withdraw: Vec<NodeId>,
    /// Set once [`Engine::execute`] has run: the engine keeps end-of-run
    /// state for inspection and must not be executed again.
    executed: bool,
}

/// Query-radius slack absorbing stored-position drift in the neighbour
/// grid; exact distances are re-checked on the candidates, so the grid
/// only has to stay a superset of the truly-in-range set.
const GRID_MARGIN_M: f64 = 120.0;

impl Engine {
    /// Builds an engine for the given configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; prefer
    /// [`SimConfig::run`](crate::SimConfig::run), which validates first.
    pub fn new(cfg: SimConfig, seed: u64) -> Self {
        let root = SimRng::new(seed);
        let mut deploy_rng = root.fork(10);
        let mut net_cfg = cfg.network.clone();
        net_cfg.horizon = cfg.horizon;
        let net = mlora_mobility::BusNetwork::generate(&net_cfg, root.fork(11).seed());
        let gateways = place_gateways(net.area(), cfg.num_gateways, cfg.placement, &mut deploy_rng);
        let collector = Collector::new(cfg.series_bucket, cfg.horizon, &cfg.traffic);
        let horizon = SimTime::ZERO + cfg.horizon;
        let num_trips = net.trips().len();
        let cell = cfg.environment.d2d_range_m().max(200.0);
        // Sweep early enough that drift at the fastest service speed stays
        // inside the query margin (0.95: headroom for rounding to ms).
        let grid_refresh_every =
            SimDuration::from_secs_f64(GRID_MARGIN_M / cfg.network.max_speed_mps * 0.95);
        let gateway_grid = GridIndex::build(
            gateways.iter().enumerate().map(|(i, &p)| (i as u32, p)),
            cfg.gateway_range_m.max(200.0),
        );
        // The 2 s floor keeps the historical window at fast spreading
        // factors; slow SFs (≳4 s airtime for a full bundle) need the
        // whole worst-case airtime or concurrent frames would be pruned
        // before their interference resolves.
        let flight_retention = time_on_air(255, &cfg.phy).max(SimDuration::from_secs(2));
        let timeline = cfg.disruptions.compile(cfg.horizon);
        let num_gateways = gateways.len();
        Engine {
            net,
            gateways,
            events: EventQueue::with_capacity(1 << 16),
            devices: DenseMap::with_capacity(num_trips),
            active: Vec::new(),
            flights: Slab::new(),
            next_flight_seq: 0,
            next_msg: 0,
            channel_rng: root.fork(12),
            collector,
            now: SimTime::ZERO,
            horizon,
            grid: GridIndex::new(cell),
            gateway_grid,
            grid_refresh_due: SimTime::ZERO,
            grid_refresh_every,
            flight_retention,
            pos_hints: vec![0; num_trips],
            scratch_overlaps: Vec::new(),
            scratch_within: Vec::new(),
            scratch_candidates: Vec::new(),
            scratch_rssi: Vec::new(),
            scratch_schedule: Vec::new(),
            scratch_within_gw: Vec::new(),
            scratch_gateways: Vec::new(),
            timeline,
            gateway_down_depth: vec![0; num_gateways],
            active_noise: Vec::new(),
            // Forking is a pure function of the master seed, so deriving
            // this stream leaves streams 10–12 untouched: an empty plan
            // never draws from it and stays bit-identical.
            disruption_rng: root.fork(13),
            // Same argument: an empty traffic model never forks or draws
            // from stream 14, so the paper-default workload stays
            // bit-identical.
            traffic_root: root.fork(14),
            scratch_withdraw: Vec::new(),
            executed: false,
            cfg,
        }
    }

    /// The device's position at `self.now`, through its segment cursor.
    fn position_now(&mut self, n: NodeId) -> Point {
        self.net
            .position_hinted(n, self.now, &mut self.pos_hints[n.index()])
    }

    /// Relocates every active device's grid entry to its current
    /// position when the periodic drift sweep is due. Relocation is a
    /// no-op for devices that stayed within their cell.
    fn refresh_grid_if_due(&mut self) {
        if self.now < self.grid_refresh_due {
            return;
        }
        self.grid_refresh_due = self.now + self.grid_refresh_every;
        for i in 0..self.active.len() {
            let n = self.active[i];
            let pos = self.position_now(n);
            let dev = self.devices.get_mut(n).expect("active device exists");
            let moved = self.grid.relocate(n, dev.grid_pos, pos);
            debug_assert!(moved, "active device missing from grid");
            dev.grid_pos = pos;
        }
    }

    /// Writes the sorted ids of active devices possibly within `radius`
    /// of `pos` into `out` (callers must re-check exact distances).
    fn neighbour_candidates(&mut self, pos: Point, radius: f64, out: &mut Vec<NodeId>) {
        self.refresh_grid_if_due();
        let mut within = std::mem::take(&mut self.scratch_within);
        self.grid
            .within_into(pos, radius + GRID_MARGIN_M, &mut within);
        out.clear();
        out.extend(within.iter().map(|&(n, _)| n));
        out.sort_unstable();
        self.scratch_within = within;
    }

    /// The gateway positions in use.
    pub fn gateways(&self) -> &[Point] {
        &self.gateways
    }

    /// The generated mobility network.
    pub fn network(&self) -> &mlora_mobility::BusNetwork {
        &self.net
    }

    /// Runs the simulation to the horizon and returns the report.
    pub fn run(mut self) -> SimReport {
        self.execute(&mut NullObserver).0
    }

    /// Runs the simulation and additionally returns execution statistics
    /// (processed-event counts) for throughput benchmarking.
    ///
    /// The report is identical to [`Engine::run`] for the same
    /// configuration and seed.
    pub fn run_instrumented(mut self) -> (SimReport, EngineStats) {
        self.execute(&mut NullObserver)
    }

    /// Runs the simulation, streaming events to `observer`.
    ///
    /// Observers are passive: the event stream and the returned report
    /// are identical to [`Engine::run`] for the same configuration and
    /// seed.
    pub fn run_with_observer(mut self, observer: &mut dyn SimObserver) -> SimReport {
        self.execute(observer).0
    }

    /// Runs the simulation and returns the spent engine alongside the
    /// report, for post-run invariant inspection (see
    /// [`Engine::gateway_grid_matches_rebuild`]). The report is
    /// identical to [`Engine::run`] for the same configuration and seed.
    ///
    /// The returned engine holds end-of-run state and is inspection-only:
    /// feeding it back into any `run*` method panics.
    pub fn run_returning_engine(mut self) -> (SimReport, Engine) {
        let (report, _) = self.execute(&mut NullObserver);
        (report, self)
    }

    /// Which gateways are in service after (or before) a run: `true`
    /// means up. All gateways start up; scripted outages toggle them.
    pub fn gateways_up(&self) -> Vec<bool> {
        self.gateway_down_depth.iter().map(|&d| d == 0).collect()
    }

    /// Verifies that the incrementally maintained gateway grid matches a
    /// from-scratch rebuild over the gateways currently in service —
    /// the invariant the outage/recovery mutation paths preserve.
    pub fn gateway_grid_matches_rebuild(&self) -> bool {
        let cell = self.cfg.gateway_range_m.max(200.0);
        let rebuilt = GridIndex::build(
            self.gateways
                .iter()
                .enumerate()
                .filter(|&(i, _)| self.gateway_down_depth[i] == 0)
                .map(|(i, &p)| (i as u32, p)),
            cell,
        );
        // A query covering the whole area yields membership in canonical
        // (cell key, id) order for both grids.
        let area = self.net.area();
        let radius = area.width().max(area.height()) + cell;
        let mut live: Vec<(u32, Point)> = Vec::new();
        let mut fresh: Vec<(u32, Point)> = Vec::new();
        self.gateway_grid
            .within_into(area.center(), radius, &mut live);
        rebuilt.within_into(area.center(), radius, &mut fresh);
        live == fresh && self.gateway_grid.len() == rebuilt.len()
    }

    fn execute(&mut self, observer: &mut dyn SimObserver) -> (SimReport, EngineStats) {
        // The run consumers all take `self` by value, so this can only
        // trip if a future caller tries to re-run the engine returned by
        // `run_returning_engine` — whose state is spent.
        assert!(!self.executed, "engine already ran; build a new one");
        self.executed = true;
        // Seed trip lifecycle events.
        for trip in self.net.trips() {
            if trip.depart() >= self.horizon {
                continue;
            }
            self.events
                .schedule(trip.depart(), Event::TripStart(trip.node()));
            self.events
                .schedule(trip.end().min(self.horizon), Event::TripEnd(trip.node()));
        }
        // Seed the compiled disruption timeline (no-op when the plan is
        // empty, leaving event sequence numbers — and therefore same-time
        // ordering — exactly as in an undisrupted build).
        for i in 0..self.timeline.len() {
            let (t, _) = self.timeline[i];
            if t <= self.horizon {
                self.events.schedule(t, Event::Disruption(i as u32));
            }
        }

        let mut events_processed: u64 = 0;
        while let Some((t, ev)) = self.events.pop() {
            if t > self.horizon {
                break;
            }
            self.now = t;
            events_processed += 1;
            match ev {
                Event::TripStart(n) => self.on_trip_start(n),
                Event::TripEnd(n) => self.on_trip_end(n),
                Event::Generate(n) => self.on_generate(n, observer),
                Event::TxStart(n) => self.on_tx_start(n, observer),
                Event::TxEnd(key) => self.on_tx_end(key, observer),
                Event::Disruption(i) => self.on_disruption(i, observer),
            }
        }

        // Retire any device still in service at the horizon.
        let still_active: Vec<NodeId> = self.active.clone();
        self.now = self.horizon;
        for n in still_active {
            self.retire(n);
        }
        // Close any outage window still open at the horizon.
        self.collector.on_horizon(self.horizon);

        // Stranded = undelivered messages left in any queue, deduplicated
        // across holders (handovers can replicate a message).
        let mut stranded = std::collections::HashSet::new();
        for dev in self.devices.values() {
            for msg in dev.queue.iter() {
                if !self.collector.was_delivered(msg.id) {
                    stranded.insert(msg.id);
                }
            }
        }
        self.collector.on_stranded(stranded.len() as u64);

        let collector = std::mem::replace(
            &mut self.collector,
            Collector::new(self.cfg.series_bucket, self.cfg.horizon, &self.cfg.traffic),
        );
        let report = collector.finish();
        observer.on_run_end(&report);
        (report, EngineStats { events_processed })
    }

    /// Applies one compiled disruption event.
    fn on_disruption(&mut self, index: u32, observer: &mut dyn SimObserver) {
        let (_, ev) = self.timeline[index as usize];
        match ev {
            DisruptionEvent::GatewayDown { gateway } => {
                let g = gateway as usize;
                self.gateway_down_depth[g] += 1;
                if self.gateway_down_depth[g] == 1 {
                    let removed = self.gateway_grid.remove(gateway, self.gateways[g]);
                    debug_assert!(removed, "downed gateway missing from grid");
                    self.collector.on_gateway_down(self.now);
                    observer.on_gateway_outage(&GatewayOutageChanged {
                        time: self.now,
                        gateway,
                        down: true,
                    });
                }
            }
            DisruptionEvent::GatewayUp { gateway } => {
                let g = gateway as usize;
                debug_assert!(self.gateway_down_depth[g] > 0, "recovery without outage");
                self.gateway_down_depth[g] -= 1;
                if self.gateway_down_depth[g] == 0 {
                    self.gateway_grid.insert(gateway, self.gateways[g]);
                    self.collector.on_gateway_up(self.now);
                    observer.on_gateway_outage(&GatewayOutageChanged {
                        time: self.now,
                        gateway,
                        down: false,
                    });
                }
            }
            DisruptionEvent::Withdraw { withdrawal } => {
                self.on_withdrawal(withdrawal, observer);
            }
            DisruptionEvent::NoiseStart { burst } => {
                self.active_noise.push(burst);
                self.collector.on_noise_burst();
                observer.on_noise_burst(&NoiseBurstChanged {
                    time: self.now,
                    burst,
                    active: true,
                });
            }
            DisruptionEvent::NoiseEnd { burst } => {
                self.active_noise.retain(|&b| b != burst);
                observer.on_noise_burst(&NoiseBurstChanged {
                    time: self.now,
                    burst,
                    active: false,
                });
            }
        }
    }

    /// Withdraws a deterministic random subset of the active fleet.
    fn on_withdrawal(&mut self, index: u32, observer: &mut dyn SimObserver) {
        let spec = self.cfg.disruptions.withdrawals[index as usize];
        let n = self.active.len();
        let count = ((spec.fraction * n as f64).round() as usize).min(n);
        if count == 0 {
            return;
        }
        let mut pool = std::mem::take(&mut self.scratch_withdraw);
        pool.clear();
        pool.extend_from_slice(&self.active);
        // The pool is the sorted active set, so the shuffle (and with it
        // the withdrawn subset) is a pure function of the plan and seed.
        self.disruption_rng.shuffle(&mut pool);
        pool.truncate(count);
        pool.sort_unstable();
        for &node in &pool {
            self.net.withdraw(node, self.now);
            self.retire(node);
            self.collector.on_bus_withdrawn();
            observer.on_bus_withdrawn(&BusWithdrawn {
                time: self.now,
                device: node,
            });
        }
        self.scratch_withdraw = pool;
    }

    /// Total RSSI penalty (dB) from active noise bursts covering `pos`.
    /// Zero — and allocation- and draw-free — when no burst is active.
    fn noise_penalty_at(&self, pos: Point) -> f64 {
        if self.active_noise.is_empty() {
            return 0.0;
        }
        let mut penalty = 0.0;
        for &b in &self.active_noise {
            let burst = &self.cfg.disruptions.noise_bursts[b as usize];
            if burst.center.distance(pos) <= burst.radius_m {
                penalty += burst.extra_loss_db;
            }
        }
        penalty
    }

    fn device_class(&self) -> DeviceClass {
        match self.cfg.device_class {
            DeviceClassChoice::ModifiedClassC => DeviceClass::ModifiedClassC,
            DeviceClassChoice::QueueBasedClassA => DeviceClass::QueueBasedClassA,
        }
    }

    fn on_trip_start(&mut self, n: NodeId) {
        let pos = self.position_now(n);
        // Traffic state and the delay to the first reading. The paper
        // default draws its phase from the channel stream (the historical
        // behaviour, kept bit-identical); a heterogeneous model gives
        // every device its own stream — first draw assigns the profile,
        // the second the phase.
        let (traffic, first_gap) = if self.cfg.traffic.is_empty() {
            let phase_ms = self
                .channel_rng
                .gen_range_u64(0, self.cfg.gen_interval.as_millis().max(1));
            (None, SimDuration::from_millis(phase_ms))
        } else {
            let mut rng = self.traffic_root.fork(n.index() as u64);
            let profile = self.cfg.traffic.pick_profile(&mut rng);
            let gap = self.cfg.traffic.profiles[profile]
                .arrivals
                .first_gap(&mut rng);
            (
                Some(DeviceTraffic {
                    profile: profile as u32,
                    rng,
                    burst_left: 0,
                }),
                gap,
            )
        };
        let device = Device {
            active: true,
            activated_at: self.now,
            retired_at: None,
            queue: DataQueue::new(self.cfg.queue_capacity),
            duty: DutyCycleTracker::new(self.cfg.duty_cycle),
            retransmit: RetransmitPolicy::new(self.cfg.max_attempts),
            routing: RoutingState::new(self.cfg.routing_config()),
            class: self.device_class(),
            transmitting: false,
            tx_scheduled: false,
            pending_handover: None,
            last_tx_end: None,
            tx_window: None,
            gamma: 0.0,
            tx_time: SimDuration::ZERO,
            rx_window_time: SimDuration::ZERO,
            frames_sent: 0,
            grid_pos: pos,
            traffic,
        };
        self.devices.insert(n, device);
        if let Err(i) = self.active.binary_search(&n) {
            self.active.insert(i, n);
        }
        self.grid.insert(n, pos);
        // First reading arrives after a per-device phase so the fleet does
        // not transmit in lockstep.
        self.events
            .schedule(self.now + first_gap, Event::Generate(n));
    }

    fn on_trip_end(&mut self, n: NodeId) {
        self.retire(n);
    }

    fn retire(&mut self, n: NodeId) {
        let Some(dev) = self.devices.get_mut(n) else {
            return;
        };
        if dev.retired_at.is_some() {
            return;
        }
        dev.active = false;
        dev.retired_at = Some(self.now);
        if let Ok(i) = self.active.binary_search(&n) {
            self.active.remove(i);
        }
        let removed = self.grid.remove(n, dev.grid_pos);
        debug_assert!(removed, "retired device missing from grid");
        // Energy: time-in-state reconstruction for the whole service window.
        let dev = self.devices.get_mut(n).expect("checked above");
        let active_dur = self.now.saturating_since(dev.activated_at);
        let tx = dev.tx_time.min(active_dur);
        let non_tx = active_dur.saturating_sub(tx);
        let rx = match dev.class {
            DeviceClass::ModifiedClassC | DeviceClass::ClassC => non_tx,
            DeviceClass::QueueBasedClassA => dev.rx_window_time.min(non_tx),
            DeviceClass::ClassA => SimDuration::from_millis(320).min(non_tx) * dev.frames_sent,
            DeviceClass::ClassB { .. } => non_tx.mul_f64(0.01),
        };
        let sleep = non_tx.saturating_sub(rx);
        let mut acct = EnergyAccount::new();
        acct.add(RadioState::Tx, tx);
        acct.add(RadioState::Rx, rx);
        acct.add(RadioState::Sleep, sleep);
        let energy = acct.energy_mj(&EnergyModel::sx1276());
        self.collector.on_device_retired(energy, active_dur);
    }

    fn on_generate(&mut self, n: NodeId, observer: &mut dyn SimObserver) {
        let gen_interval = self.cfg.gen_interval;
        let now = self.now;
        let Some(dev) = self.devices.get_mut(n) else {
            return;
        };
        if !dev.active {
            return;
        }
        // Reading shape and the gap to the next one: the paper default
        // is a fixed 20-byte reading every `gen_interval`; a profile
        // samples both from the device's own traffic stream.
        let (payload, profile, priority, gap) = match dev.traffic.as_mut() {
            None => (
                mlora_mac::APP_MESSAGE_BYTES as u16,
                0u8,
                Priority::Normal,
                gen_interval,
            ),
            Some(state) => {
                let spec = &self.cfg.traffic.profiles[state.profile as usize];
                let payload = spec.payload.sample(&mut state.rng);
                let gap = spec
                    .arrivals
                    .next_gap(now, &mut state.burst_left, &mut state.rng);
                (payload, state.profile as u8, spec.priority, gap)
            }
        };
        let msg = AppMessage::new(mlora_simcore::MessageId::new(self.next_msg), n, self.now)
            .with_traffic(payload, profile, priority);
        self.next_msg += 1;
        let drops_before = dev.queue.dropped();
        dev.queue.push(msg);
        let dropped = dev.queue.dropped() - drops_before;
        self.collector.on_generated(&msg);
        observer.on_message_generated(&MessageGenerated {
            time: self.now,
            device: n,
            message: msg.id,
            profile,
            payload_bytes: payload,
        });
        if dropped > 0 {
            self.collector.on_queue_drop(dropped);
        }
        // A new packet resets the retransmission counter (§VII.A.5).
        dev.retransmit.reset();
        self.events.schedule(self.now + gap, Event::Generate(n));
        self.maybe_schedule_tx(n);
    }

    /// Schedules the next transmission opportunity for `n`, if one is
    /// needed and none is pending.
    fn maybe_schedule_tx(&mut self, n: NodeId) {
        let Some(dev) = self.devices.get_mut(n) else {
            return;
        };
        if !dev.active || dev.tx_scheduled || dev.transmitting {
            return;
        }
        let has_data = !dev.queue.is_empty() || dev.pending_handover.is_some_and(|(_, c)| c > 0);
        if !has_data {
            return;
        }
        let t = dev.duty.next_opportunity(self.now);
        dev.tx_scheduled = true;
        self.events.schedule(t, Event::TxStart(n));
    }

    fn on_tx_start(&mut self, n: NodeId, observer: &mut dyn SimObserver) {
        let phy = self.cfg.phy;
        let gen_interval = self.cfg.gen_interval;
        let queue_capacity = self.cfg.queue_capacity;
        let Some(dev) = self.devices.get_mut(n) else {
            return;
        };
        dev.tx_scheduled = false;
        if !dev.active || dev.transmitting {
            return;
        }
        if !dev.duty.can_transmit(self.now) {
            // Races between success-drain and retransmit scheduling can
            // land here; re-arm at the legal instant.
            dev.tx_scheduled = true;
            let t = dev.duty.next_opportunity(self.now);
            self.events.schedule(t, Event::TxStart(n));
            return;
        }

        // Handover takes precedence when armed and the target still lives.
        let mut target = None;
        let mut count = dev.queue.len().min(MAX_BUNDLE);
        if let Some((y, c)) = dev.pending_handover.take() {
            let target_alive = self.devices.get(y).is_some_and(|d| d.active);
            if target_alive {
                let c = c.min(MAX_BUNDLE);
                if c > 0 {
                    target = Some(y);
                    count = c;
                }
            }
        }
        let dev = self.devices.get_mut(n).expect("checked above");
        // Bundle the front of the queue under both caps: the 12-message
        // bundle limit and the PHY byte budget. Uniform 20-byte readings
        // saturate both at once (12 × 20 = 240), reproducing the legacy
        // count-only selection exactly; heterogeneous payloads stop at
        // whatever fits.
        let count = count.min(dev.queue.len());
        let messages = dev.queue.peek_front_within(count, MAX_BUNDLE_BYTES);
        if messages.is_empty() {
            return;
        }
        let frame = UplinkFrame::new(n, messages, dev.routing.beacon_metric(), dev.queue.len());
        let airtime = time_on_air(frame.payload_bytes(), &phy);
        dev.duty.record_tx(self.now, airtime);
        dev.transmitting = true;
        dev.tx_window = Some((self.now, self.now + airtime));
        dev.tx_time += airtime;
        dev.frames_sent += 1;
        // Queue-based Class-A opens its Eq. 11 window after this uplink.
        if matches!(dev.class, DeviceClass::QueueBasedClassA) {
            let gamma = dev.routing.gamma(dev.queue.len(), queue_capacity);
            dev.gamma = gamma;
            dev.rx_window_time += gen_interval.mul_f64(gamma);
        }
        self.collector
            .on_frame_sent(target.is_some(), &frame, airtime);
        observer.on_frame_tx(&FrameTransmitted {
            time: self.now,
            sender: n,
            bundled: frame.len(),
            payload_bytes: frame.payload_bytes(),
            airtime,
            handover_target: target,
        });

        let seq = self.next_flight_seq;
        self.next_flight_seq += 1;
        let pos = self.position_now(n);
        let key = self.flights.insert(Flight {
            seq,
            sender: n,
            frame,
            target,
            start: self.now,
            end: self.now + airtime,
            pos,
        });
        self.events.schedule(self.now + airtime, Event::TxEnd(key));
    }

    fn on_tx_end(&mut self, key: SlabKey, observer: &mut dyn SimObserver) {
        // Prune flights that can no longer overlap anything before
        // scanning; vacated slab slots are recycled by later
        // transmissions. (The subject flight ends exactly now, so it
        // always survives the cutoff.)
        let cutoff = self.now;
        let retention = self.flight_retention;
        self.flights.retain(|_, f| f.end + retention >= cutoff);

        // Take the flight table out of `self` so the subject flight can be
        // borrowed across the resolution calls without cloning its frame.
        let flights = std::mem::take(&mut self.flights);
        let Some(flight) = flights.get(key) else {
            self.flights = flights;
            return;
        };
        let sender = flight.sender;

        // Sender leaves the transmit state.
        if let Some(dev) = self.devices.get_mut(sender) {
            dev.transmitting = false;
            dev.last_tx_end = Some(self.now);
        }

        // Frames overlapping this one in time (including itself), in
        // creation order: storage order must not leak into RNG draw order.
        let mut overlaps = std::mem::take(&mut self.scratch_overlaps);
        overlaps.clear();
        overlaps.extend(
            flights
                .iter()
                .filter(|(_, f)| f.start < flight.end && f.end > flight.start)
                .map(|(_, f)| (f.seq, f.pos)),
        );
        overlaps.sort_unstable_by_key(|&(seq, _)| seq);

        let gateway_rssi = self.resolve_gateways(flight, &overlaps);
        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        self.neighbour_candidates(
            flight.pos,
            self.cfg.environment.d2d_range_m(),
            &mut candidates,
        );
        let mut to_schedule = std::mem::take(&mut self.scratch_schedule);
        to_schedule.clear();
        let accepted_by_target =
            self.resolve_neighbours(flight, &overlaps, &candidates, &mut to_schedule, observer);
        self.settle_sender(flight, gateway_rssi, accepted_by_target, observer);
        for &n in &to_schedule {
            self.maybe_schedule_tx(n);
        }

        self.scratch_schedule = to_schedule;
        self.scratch_candidates = candidates;
        self.scratch_overlaps = overlaps;
        self.flights = flights;
    }

    /// Resolves reception at every gateway; returns the best RSSI among
    /// gateways that decoded this flight, if any.
    fn resolve_gateways(&mut self, flight: &Flight, overlaps: &[(u64, Point)]) -> Option<f64> {
        let range = self.cfg.gateway_range_m;
        let sens = self.cfg.phy.sensitivity_dbm();
        let txp = self.cfg.phy.tx_power_dbm;
        let mut best: Option<f64> = None;
        let gateways = std::mem::take(&mut self.gateways);
        let mut candidates = std::mem::take(&mut self.scratch_rssi);
        // Gateways are static: the grid narrows the scan to the cells
        // around the sender. Grid order is (cell key, id) — id-sorted
        // only *within* each cell — so the explicit sort below restores
        // the historical full-scan iteration order (and the exact range
        // check re-applies); RNG draw order matches a full scan bit for
        // bit. Do not remove the sort.
        let mut nearby = std::mem::take(&mut self.scratch_gateways);
        self.gateway_grid
            .within_into(flight.pos, range + 1.0, &mut self.scratch_within_gw);
        nearby.clear();
        nearby.extend(self.scratch_within_gw.iter().map(|&(i, _)| i));
        nearby.sort_unstable();
        for &gi in &nearby {
            let gw = &gateways[gi as usize];
            if gw.distance(flight.pos) > range {
                continue;
            }
            // Regional noise at this receiver (0 dB — and bit-identical
            // to the unmodified path — when no burst is active).
            let noise_db = self.noise_penalty_at(*gw);
            // Candidate frames audible at this gateway.
            candidates.clear();
            let mut flight_rssi = None;
            for &(seq, pos) in overlaps {
                let dist = gw.distance(pos);
                if dist > range {
                    continue;
                }
                let rssi = self.cfg.path_loss.sample_rssi_dbm_attenuated(
                    txp,
                    dist,
                    noise_db,
                    &mut self.channel_rng,
                );
                if seq == flight.seq {
                    flight_rssi = Some(rssi);
                }
                candidates.push((seq, rssi));
            }
            match resolve_collision(&candidates, sens, CAPTURE_MARGIN_DB) {
                Some(winner) if winner == flight.seq => {
                    let rssi = flight_rssi.expect("winner has an RSSI");
                    best = Some(best.map_or(rssi, |b: f64| b.max(rssi)));
                }
                _ => {
                    if candidates.len() > 1 && flight_rssi.is_some() {
                        self.collector.on_collision();
                    }
                }
            }
        }
        self.scratch_gateways = nearby;
        self.scratch_rssi = candidates;
        self.gateways = gateways;
        best
    }

    /// Resolves overhearing at every active neighbour. Returns whether the
    /// handover target decoded the frame; devices that need a new
    /// transmission opportunity are appended to `to_schedule`.
    fn resolve_neighbours(
        &mut self,
        flight: &Flight,
        overlaps: &[(u64, Point)],
        candidates: &[NodeId],
        to_schedule: &mut Vec<NodeId>,
        observer: &mut dyn SimObserver,
    ) -> bool {
        let d2d = self.cfg.environment.d2d_range_m();
        let sens = self.cfg.phy.sensitivity_dbm();
        let txp = self.cfg.phy.tx_power_dbm;
        let gen_interval = self.cfg.gen_interval;
        let now = self.now;

        let mut accepted = false;
        let mut audible = std::mem::take(&mut self.scratch_rssi);

        for &x in candidates {
            if x == flight.sender {
                continue;
            }
            let pos_x = self.position_now(x);
            if pos_x.distance(flight.pos) > d2d {
                continue;
            }
            let Some(dev) = self.devices.get(x) else {
                continue;
            };
            if !dev.active {
                continue;
            }
            // Half-duplex: a device transmitting during any part of the
            // frame cannot receive it.
            if let Some((s, e)) = dev.tx_window {
                if s < flight.end && e > flight.start {
                    continue;
                }
            }
            if !dev
                .class
                .overhears(now, dev.last_tx_end, gen_interval, dev.gamma)
            {
                continue;
            }
            // Collision resolution at x, under any regional noise at
            // its position.
            let noise_db = self.noise_penalty_at(pos_x);
            audible.clear();
            let mut flight_rssi = None;
            for &(seq, pos) in overlaps {
                let dist = pos_x.distance(pos);
                if dist > d2d {
                    continue;
                }
                let rssi = self.cfg.path_loss.sample_rssi_dbm_attenuated(
                    txp,
                    dist,
                    noise_db,
                    &mut self.channel_rng,
                );
                if seq == flight.seq {
                    flight_rssi = Some(rssi);
                }
                audible.push((seq, rssi));
            }
            let decoded = matches!(
                resolve_collision(&audible, sens, CAPTURE_MARGIN_DB),
                Some(w) if w == flight.seq
            );
            if !decoded {
                if audible.len() > 1 && flight_rssi.is_some() {
                    self.collector.on_collision();
                }
                continue;
            }
            let rssi = flight_rssi.expect("decoded frame has an RSSI");

            if flight.target == Some(x) {
                // Accept the handover: enqueue, bar the donor, try to move
                // the data onwards.
                let dev = self.devices.get_mut(x).expect("neighbour exists");
                let drops_before = dev.queue.dropped();
                for msg in &flight.frame.messages {
                    dev.queue.push(*msg);
                }
                let dropped = dev.queue.dropped() - drops_before;
                if dropped > 0 {
                    self.collector.on_queue_drop(dropped);
                }
                dev.routing.on_received_data(flight.sender);
                self.collector.on_handover_accepted(&flight.frame.messages);
                observer.on_forward(&HandoverAccepted {
                    time: now,
                    donor: flight.sender,
                    acceptor: x,
                    messages: flight.frame.messages.len(),
                });
                accepted = true;
                // The acceptor holds the data until its own next slot
                // (§V.B.2); it does not transmit reactively.
            } else {
                // Treat as a beacon: should x hand its own data to the
                // flight's sender?
                let beacon = Beacon {
                    sender: flight.sender,
                    rca_etx: flight.frame.rca_etx,
                    queue_len: flight.frame.queue_len,
                };
                let dev = self.devices.get_mut(x).expect("neighbour exists");
                let wait_s = dev
                    .duty
                    .next_opportunity(now)
                    .saturating_since(now)
                    .as_secs_f64();
                let decision = dev
                    .routing
                    .decide(now, wait_s, dev.queue.len(), &beacon, rssi);
                if let ForwardDecision::Forward { target, count } = decision {
                    if dev.pending_handover.is_none() {
                        dev.pending_handover = Some((target, count));
                        to_schedule.push(x);
                    }
                }
            }
        }
        self.scratch_rssi = audible;
        accepted
    }

    /// Applies the transmission outcome to the sender: queue updates,
    /// metric observation, retransmission bookkeeping, follow-up
    /// scheduling.
    fn settle_sender(
        &mut self,
        flight: &Flight,
        gateway_rssi: Option<f64>,
        accepted_by_target: bool,
        observer: &mut dyn SimObserver,
    ) {
        // Deliver to the server first (instant backhaul).
        if gateway_rssi.is_some() {
            for msg in &flight.frame.messages {
                if let Some((delay, hops)) = self.collector.on_delivered(msg, self.now) {
                    observer.on_delivery(&MessageDelivered {
                        time: self.now,
                        message: msg.id,
                        origin: msg.origin,
                        delay,
                        hops,
                    });
                }
            }
        }
        let capacity = gateway_rssi.map(|r| self.cfg.capacity.capacity_bps(r));
        let sender = flight.sender;
        let Some(dev) = self.devices.get_mut(sender) else {
            return;
        };
        let wait_s = dev
            .duty
            .next_opportunity(self.now)
            .saturating_since(self.now)
            .as_secs_f64();

        let is_handover = flight.target.is_some();
        let delivered_somewhere = gateway_rssi.is_some() || accepted_by_target;
        if delivered_somewhere {
            // Instant-ACK assumption (§VII.A.5): remove the bundle.
            dev.queue.remove(&flight.frame.messages);
        }

        if is_handover {
            // Handover slots are not device-to-sink slots; only a lucky
            // gateway decode counts as contact (and clears the ledger).
            if let Some(cap) = capacity {
                dev.routing.on_sink_slot(self.now, Some(cap), wait_s);
                dev.retransmit.reset();
            }
        } else {
            dev.routing.on_sink_slot(self.now, capacity, wait_s);
            if gateway_rssi.is_some() {
                dev.retransmit.reset();
            } else if !dev.retransmit.record_failure() {
                // Retransmission budget exhausted (§VII.A.5): the backlog
                // holds until the next generation resets the counter.
                return;
            }
        }
        // Anything still queued — a failed bundle awaiting its duty-timer
        // retry, or backlog beyond the 12-message bundle — goes out at the
        // next legal opportunity. Draining at the duty-cycle service rate
        // (not the generation rate) is what gives well-connected relays
        // their higher RGQ service rate φ.
        if dev.active && !dev.queue.is_empty() {
            self.maybe_schedule_tx(sender);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Environment;
    use mlora_core::Scheme;

    fn smoke(scheme: Scheme) -> SimReport {
        SimConfig::smoke_test(scheme, Environment::Urban)
            .run(1234)
            .expect("valid config")
    }

    #[test]
    fn no_routing_runs_and_delivers() {
        let r = smoke(Scheme::NoRouting);
        assert!(r.generated > 100, "generated {}", r.generated);
        assert!(r.delivered > 0, "delivered {}", r.delivered);
        assert!(r.delivered <= r.generated);
        assert_eq!(r.handover_frames, 0);
        assert_eq!(r.handover_messages, 0);
        // Every delivery in the baseline is exactly one hop.
        assert_eq!(r.mean_hops(), 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = smoke(Scheme::Robc);
        let b = smoke(Scheme::Robc);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SimConfig::smoke_test(Scheme::NoRouting, Environment::Urban);
        let a = cfg.run(1).unwrap();
        let b = cfg.run(2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn forwarding_schemes_move_data_between_devices() {
        let r = smoke(Scheme::Robc);
        assert!(r.handover_frames > 0, "ROBC never handed over");
        assert!(r.mean_hops() >= 1.0);
    }

    #[test]
    fn rca_etx_scheme_hands_over() {
        let r = smoke(Scheme::RcaEtx);
        assert!(r.handover_frames > 0, "RCA-ETX never handed over");
    }

    #[test]
    fn message_conservation() {
        for scheme in Scheme::ALL {
            let r = smoke(scheme);
            assert!(
                r.delivered + r.stranded + r.queue_drops >= r.generated,
                "{scheme}: {} delivered + {} stranded + {} drops < {} generated",
                r.delivered,
                r.stranded,
                r.queue_drops,
                r.generated
            );
        }
    }

    #[test]
    fn overhead_ordering_matches_paper() {
        // Fig. 13: forwarding schemes send more frames per node.
        let base = smoke(Scheme::NoRouting).mean_frames_per_node();
        let robc = smoke(Scheme::Robc).mean_frames_per_node();
        // Smoke-scale runs are noisy; the paper-scale ordering (1.6–2.2×)
        // is asserted by the repro harness. Here we only require ROBC not
        // to transmit *less* than the baseline beyond noise.
        assert!(
            robc >= 0.9 * base,
            "ROBC overhead {robc} far below baseline {base}"
        );
    }

    #[test]
    fn energy_accounted_for_all_devices() {
        let r = smoke(Scheme::NoRouting);
        assert!(r.devices_seen > 0);
        assert!(r.total_energy_mj > 0.0);
        assert!(r.total_active_s > 0.0);
    }

    #[test]
    fn gateways_on_grid() {
        let cfg = SimConfig::smoke_test(Scheme::NoRouting, Environment::Urban);
        let engine = Engine::new(cfg.clone(), 9);
        assert_eq!(engine.gateways().len(), cfg.num_gateways);
        for gw in engine.gateways() {
            assert!(engine.network().area().contains(*gw));
        }
    }

    #[test]
    fn instrumented_run_matches_plain_run() {
        let cfg = SimConfig::smoke_test(Scheme::Robc, Environment::Urban);
        let plain = Engine::new(cfg.clone(), 7).run();
        let (report, stats) = Engine::new(cfg, 7).run_instrumented();
        assert_eq!(plain, report);
        assert!(
            stats.events_processed > report.generated + report.frames_sent,
            "loop must process at least one event per message and frame"
        );
    }

    #[test]
    fn queue_based_class_a_delivers_with_less_energy() {
        let mut cfg_c = SimConfig::smoke_test(Scheme::Robc, Environment::Urban);
        cfg_c.device_class = DeviceClassChoice::ModifiedClassC;
        let mut cfg_a = cfg_c.clone();
        cfg_a.device_class = DeviceClassChoice::QueueBasedClassA;
        let rc = cfg_c.run(7).unwrap();
        let ra = cfg_a.run(7).unwrap();
        assert!(ra.delivered > 0);
        assert!(
            ra.mean_energy_per_node_mj() < rc.mean_energy_per_node_mj(),
            "queue-based class A should save energy: {} vs {}",
            ra.mean_energy_per_node_mj(),
            rc.mean_energy_per_node_mj()
        );
    }
}
