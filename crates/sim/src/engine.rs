//! The event-driven network engine.
//!
//! A single-threaded discrete-event loop over five event kinds: trips
//! starting and ending, message generation, and transmission start/end.
//! All physics (ranges, RSSI, collisions) resolve at transmission end;
//! positions are computed analytically from the mobility substrate, so
//! there is no per-tick stepping anywhere.

use std::collections::HashMap;

use mlora_core::{Beacon, ForwardDecision, RoutingState};
use mlora_geo::Point;
use mlora_mac::{
    AppMessage, DataQueue, DeviceClass, DutyCycleTracker, EnergyAccount, EnergyModel, RadioState,
    RetransmitPolicy, UplinkFrame, MAX_BUNDLE,
};
use mlora_phy::{resolve_collision, time_on_air, CAPTURE_MARGIN_DB};
use mlora_simcore::{EventQueue, NodeId, SimDuration, SimRng, SimTime};

use crate::metrics::Collector;
use crate::observer::{
    FrameTransmitted, HandoverAccepted, MessageDelivered, MessageGenerated, NullObserver,
    SimObserver,
};
use crate::{place_gateways, DeviceClassChoice, SimConfig, SimReport};

/// Discrete events driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A bus enters service and becomes a live device.
    TripStart(NodeId),
    /// A bus leaves service.
    TripEnd(NodeId),
    /// A device generates one application message.
    Generate(NodeId),
    /// A device begins a transmission (uplink or handover).
    TxStart(NodeId),
    /// A transmission completes; receptions resolve.
    TxEnd(u64),
}

/// A frame in the air.
#[derive(Debug, Clone)]
struct Flight {
    sender: NodeId,
    frame: UplinkFrame,
    /// `Some(y)` for a handover aimed at device `y`.
    target: Option<NodeId>,
    start: SimTime,
    end: SimTime,
    /// Sender position at transmission start (quasi-static over ≤0.4 s).
    pos: Point,
}

/// Per-device live state.
#[derive(Debug, Clone)]
struct Device {
    active: bool,
    activated_at: SimTime,
    retired_at: Option<SimTime>,
    queue: DataQueue,
    duty: DutyCycleTracker,
    retransmit: RetransmitPolicy,
    routing: RoutingState,
    class: DeviceClass,
    transmitting: bool,
    tx_scheduled: bool,
    pending_handover: Option<(NodeId, usize)>,
    last_tx_end: Option<SimTime>,
    /// Window of the most recent transmission, for half-duplex checks.
    tx_window: Option<(SimTime, SimTime)>,
    /// Eq. 11 receive-window fraction, refreshed at each uplink.
    gamma: f64,
    /// Cumulative transmit airtime.
    tx_time: SimDuration,
    /// Cumulative Queue-based Class-A listening time.
    rx_window_time: SimDuration,
    /// Uplink frames sent (for Class-A RX-window energy).
    frames_sent: u64,
}

/// The simulation engine. Construct with [`Engine::new`], execute with
/// [`Engine::run`].
#[derive(Debug)]
pub struct Engine {
    cfg: SimConfig,
    net: mlora_mobility::BusNetwork,
    gateways: Vec<Point>,
    events: EventQueue<Event>,
    devices: HashMap<NodeId, Device>,
    /// Device ids currently in service, kept sorted for determinism.
    active: Vec<NodeId>,
    flights: HashMap<u64, Flight>,
    next_flight: u64,
    next_msg: u64,
    channel_rng: SimRng,
    collector: Collector,
    now: SimTime,
    horizon: SimTime,
    /// Cached spatial index over active-device positions, rebuilt when
    /// stale or when the active set changes.
    grid: Option<(SimTime, mlora_geo::GridIndex<NodeId>)>,
    grid_dirty: bool,
}

/// How long a cached neighbour grid stays valid. At ≤10.4 m/s a device
/// drifts ≤52 m per side in this window, covered by the query margin.
const GRID_TTL: SimDuration = SimDuration::from_secs(5);

/// Query-radius slack absorbing position drift of both endpoints over
/// [`GRID_TTL`]; exact distances are re-checked on the candidates.
const GRID_MARGIN_M: f64 = 120.0;

impl Engine {
    /// Builds an engine for the given configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; prefer
    /// [`SimConfig::run`](crate::SimConfig::run), which validates first.
    pub fn new(cfg: SimConfig, seed: u64) -> Self {
        let root = SimRng::new(seed);
        let mut deploy_rng = root.fork(10);
        let mut net_cfg = cfg.network.clone();
        net_cfg.horizon = cfg.horizon;
        let net = mlora_mobility::BusNetwork::generate(&net_cfg, root.fork(11).seed());
        let gateways = place_gateways(net.area(), cfg.num_gateways, cfg.placement, &mut deploy_rng);
        let collector = Collector::new(cfg.series_bucket, cfg.horizon);
        let horizon = SimTime::ZERO + cfg.horizon;
        Engine {
            net,
            gateways,
            events: EventQueue::with_capacity(1 << 16),
            devices: HashMap::new(),
            active: Vec::new(),
            flights: HashMap::new(),
            next_flight: 0,
            next_msg: 0,
            channel_rng: root.fork(12),
            collector,
            now: SimTime::ZERO,
            horizon,
            cfg,
            grid: None,
            grid_dirty: true,
        }
    }

    /// Active devices possibly within `radius` of `pos`, via the cached
    /// spatial index (sorted; callers must re-check exact distances).
    fn neighbour_candidates(&mut self, pos: Point, radius: f64) -> Vec<NodeId> {
        let stale = match &self.grid {
            Some((built, _)) => self.now.saturating_since(*built) > GRID_TTL,
            None => true,
        };
        if stale || self.grid_dirty {
            let now = self.now;
            let items = self.active.iter().map(|&n| (n, self.net.position(n, now)));
            let cell = self.cfg.environment.d2d_range_m().max(200.0);
            self.grid = Some((now, mlora_geo::GridIndex::build(items, cell)));
            self.grid_dirty = false;
        }
        let (_, grid) = self.grid.as_ref().expect("grid built above");
        let mut out: Vec<NodeId> = grid
            .within(pos, radius + GRID_MARGIN_M)
            .map(|(n, _)| n)
            .collect();
        out.sort_unstable();
        out
    }

    /// The gateway positions in use.
    pub fn gateways(&self) -> &[Point] {
        &self.gateways
    }

    /// The generated mobility network.
    pub fn network(&self) -> &mlora_mobility::BusNetwork {
        &self.net
    }

    /// Runs the simulation to the horizon and returns the report.
    pub fn run(self) -> SimReport {
        self.run_with_observer(&mut NullObserver)
    }

    /// Runs the simulation, streaming events to `observer`.
    ///
    /// Observers are passive: the event stream and the returned report
    /// are identical to [`Engine::run`] for the same configuration and
    /// seed.
    pub fn run_with_observer(mut self, observer: &mut dyn SimObserver) -> SimReport {
        // Seed trip lifecycle events.
        for trip in self.net.trips() {
            if trip.depart() >= self.horizon {
                continue;
            }
            self.events
                .schedule(trip.depart(), Event::TripStart(trip.node()));
            self.events
                .schedule(trip.end().min(self.horizon), Event::TripEnd(trip.node()));
        }

        while let Some((t, ev)) = self.events.pop() {
            if t > self.horizon {
                break;
            }
            self.now = t;
            match ev {
                Event::TripStart(n) => self.on_trip_start(n),
                Event::TripEnd(n) => self.on_trip_end(n),
                Event::Generate(n) => self.on_generate(n, observer),
                Event::TxStart(n) => self.on_tx_start(n, observer),
                Event::TxEnd(id) => self.on_tx_end(id, observer),
            }
        }

        // Retire any device still in service at the horizon.
        let still_active: Vec<NodeId> = self.active.clone();
        self.now = self.horizon;
        for n in still_active {
            self.retire(n);
        }

        // Stranded = undelivered messages left in any queue, deduplicated
        // across holders (handovers can replicate a message).
        let mut stranded = std::collections::HashSet::new();
        for dev in self.devices.values() {
            for msg in dev.queue.iter() {
                if !self.collector.was_delivered(msg.id) {
                    stranded.insert(msg.id);
                }
            }
        }
        self.collector.on_stranded(stranded.len() as u64);

        let report = self.collector.finish();
        observer.on_run_end(&report);
        report
    }

    fn device_class(&self) -> DeviceClass {
        match self.cfg.device_class {
            DeviceClassChoice::ModifiedClassC => DeviceClass::ModifiedClassC,
            DeviceClassChoice::QueueBasedClassA => DeviceClass::QueueBasedClassA,
        }
    }

    fn on_trip_start(&mut self, n: NodeId) {
        let device = Device {
            active: true,
            activated_at: self.now,
            retired_at: None,
            queue: DataQueue::new(self.cfg.queue_capacity),
            duty: DutyCycleTracker::new(self.cfg.duty_cycle),
            retransmit: RetransmitPolicy::new(self.cfg.max_attempts),
            routing: RoutingState::new(self.cfg.routing_config()),
            class: self.device_class(),
            transmitting: false,
            tx_scheduled: false,
            pending_handover: None,
            last_tx_end: None,
            tx_window: None,
            gamma: 0.0,
            tx_time: SimDuration::ZERO,
            rx_window_time: SimDuration::ZERO,
            frames_sent: 0,
        };
        self.devices.insert(n, device);
        if let Err(i) = self.active.binary_search(&n) {
            self.active.insert(i, n);
        }
        self.grid_dirty = true;
        // First reading arrives after a per-device phase so the fleet does
        // not transmit in lockstep.
        let phase_ms = self
            .channel_rng
            .gen_range_u64(0, self.cfg.gen_interval.as_millis().max(1));
        self.events.schedule(
            self.now + SimDuration::from_millis(phase_ms),
            Event::Generate(n),
        );
    }

    fn on_trip_end(&mut self, n: NodeId) {
        self.retire(n);
    }

    fn retire(&mut self, n: NodeId) {
        let Some(dev) = self.devices.get_mut(&n) else {
            return;
        };
        if dev.retired_at.is_some() {
            return;
        }
        dev.active = false;
        dev.retired_at = Some(self.now);
        if let Ok(i) = self.active.binary_search(&n) {
            self.active.remove(i);
        }
        self.grid_dirty = true;
        // Energy: time-in-state reconstruction for the whole service window.
        let active_dur = self.now.saturating_since(dev.activated_at);
        let tx = dev.tx_time.min(active_dur);
        let non_tx = active_dur.saturating_sub(tx);
        let rx = match dev.class {
            DeviceClass::ModifiedClassC | DeviceClass::ClassC => non_tx,
            DeviceClass::QueueBasedClassA => dev.rx_window_time.min(non_tx),
            DeviceClass::ClassA => SimDuration::from_millis(320).min(non_tx) * dev.frames_sent,
            DeviceClass::ClassB { .. } => non_tx.mul_f64(0.01),
        };
        let sleep = non_tx.saturating_sub(rx);
        let mut acct = EnergyAccount::new();
        acct.add(RadioState::Tx, tx);
        acct.add(RadioState::Rx, rx);
        acct.add(RadioState::Sleep, sleep);
        let energy = acct.energy_mj(&EnergyModel::sx1276());
        self.collector.on_device_retired(energy, active_dur);
    }

    fn on_generate(&mut self, n: NodeId, observer: &mut dyn SimObserver) {
        let gen_interval = self.cfg.gen_interval;
        let Some(dev) = self.devices.get_mut(&n) else {
            return;
        };
        if !dev.active {
            return;
        }
        let msg = AppMessage::new(mlora_simcore::MessageId::new(self.next_msg), n, self.now);
        self.next_msg += 1;
        let drops_before = dev.queue.dropped();
        dev.queue.push(msg);
        let dropped = dev.queue.dropped() - drops_before;
        self.collector.on_generated();
        observer.on_message_generated(&MessageGenerated {
            time: self.now,
            device: n,
            message: msg.id,
        });
        if dropped > 0 {
            self.collector.on_queue_drop(dropped);
        }
        // A new packet resets the retransmission counter (§VII.A.5).
        dev.retransmit.reset();
        self.events
            .schedule(self.now + gen_interval, Event::Generate(n));
        self.maybe_schedule_tx(n);
    }

    /// Schedules the next transmission opportunity for `n`, if one is
    /// needed and none is pending.
    fn maybe_schedule_tx(&mut self, n: NodeId) {
        let Some(dev) = self.devices.get_mut(&n) else {
            return;
        };
        if !dev.active || dev.tx_scheduled || dev.transmitting {
            return;
        }
        let has_data = !dev.queue.is_empty() || dev.pending_handover.is_some_and(|(_, c)| c > 0);
        if !has_data {
            return;
        }
        let t = dev.duty.next_opportunity(self.now);
        dev.tx_scheduled = true;
        self.events.schedule(t, Event::TxStart(n));
    }

    fn on_tx_start(&mut self, n: NodeId, observer: &mut dyn SimObserver) {
        let phy = self.cfg.phy;
        let gen_interval = self.cfg.gen_interval;
        let queue_capacity = self.cfg.queue_capacity;
        let Some(dev) = self.devices.get_mut(&n) else {
            return;
        };
        dev.tx_scheduled = false;
        if !dev.active || dev.transmitting {
            return;
        }
        if !dev.duty.can_transmit(self.now) {
            // Races between success-drain and retransmit scheduling can
            // land here; re-arm at the legal instant.
            dev.tx_scheduled = true;
            let t = dev.duty.next_opportunity(self.now);
            self.events.schedule(t, Event::TxStart(n));
            return;
        }

        // Handover takes precedence when armed and the target still lives.
        let mut target = None;
        let mut count = dev.queue.len().min(MAX_BUNDLE);
        if let Some((y, c)) = dev.pending_handover.take() {
            let target_alive = self.devices.get(&y).is_some_and(|d| d.active);
            if target_alive {
                let c = c.min(MAX_BUNDLE);
                if c > 0 {
                    target = Some(y);
                    count = c;
                }
            }
        }
        let dev = self.devices.get_mut(&n).expect("checked above");
        let count = count.min(dev.queue.len());
        if count == 0 {
            return;
        }
        let messages = dev.queue.peek_front(count);
        let frame = UplinkFrame::new(n, messages, dev.routing.beacon_metric(), dev.queue.len());
        let airtime = time_on_air(frame.payload_bytes(), &phy);
        dev.duty.record_tx(self.now, airtime);
        dev.transmitting = true;
        dev.tx_window = Some((self.now, self.now + airtime));
        dev.tx_time += airtime;
        dev.frames_sent += 1;
        // Queue-based Class-A opens its Eq. 11 window after this uplink.
        if matches!(dev.class, DeviceClass::QueueBasedClassA) {
            let gamma = dev.routing.gamma(dev.queue.len(), queue_capacity);
            dev.gamma = gamma;
            dev.rx_window_time += gen_interval.mul_f64(gamma);
        }
        self.collector.on_frame_sent(target.is_some(), frame.len());
        observer.on_frame_tx(&FrameTransmitted {
            time: self.now,
            sender: n,
            bundled: frame.len(),
            airtime,
            handover_target: target,
        });

        let id = self.next_flight;
        self.next_flight += 1;
        let pos = self.net.position(n, self.now);
        self.flights.insert(
            id,
            Flight {
                sender: n,
                frame,
                target,
                start: self.now,
                end: self.now + airtime,
                pos,
            },
        );
        self.events.schedule(self.now + airtime, Event::TxEnd(id));
    }

    fn on_tx_end(&mut self, id: u64, observer: &mut dyn SimObserver) {
        let Some(flight) = self.flights.get(&id).cloned() else {
            return;
        };
        let sender = flight.sender;

        // Sender leaves the transmit state.
        if let Some(dev) = self.devices.get_mut(&sender) {
            dev.transmitting = false;
            dev.last_tx_end = Some(self.now);
        }

        // Frames overlapping this one in time (including itself), sorted
        // by id: HashMap order must not leak into RNG draw order.
        let mut overlaps: Vec<(u64, Point)> = self
            .flights
            .iter()
            .filter(|(_, f)| f.start < flight.end && f.end > flight.start)
            .map(|(&fid, f)| (fid, f.pos))
            .collect();
        overlaps.sort_unstable_by_key(|&(fid, _)| fid);

        let gateway_rssi = self.resolve_gateways(id, &flight, &overlaps);
        let candidates = self.neighbour_candidates(flight.pos, self.cfg.environment.d2d_range_m());
        let (accepted_by_target, to_schedule) =
            self.resolve_neighbours(id, &flight, &overlaps, &candidates, observer);
        self.settle_sender(&flight, gateway_rssi, accepted_by_target, observer);
        for n in to_schedule {
            self.maybe_schedule_tx(n);
        }

        // Prune flights that can no longer overlap anything.
        let cutoff = self.now;
        self.flights
            .retain(|_, f| f.end + SimDuration::from_secs(2) >= cutoff);
    }

    /// Resolves reception at every gateway; returns the best RSSI among
    /// gateways that decoded this flight, if any.
    fn resolve_gateways(
        &mut self,
        flight_id: u64,
        flight: &Flight,
        overlaps: &[(u64, Point)],
    ) -> Option<f64> {
        let range = self.cfg.gateway_range_m;
        let sens = self.cfg.phy.sensitivity_dbm();
        let txp = self.cfg.phy.tx_power_dbm;
        let mut best: Option<f64> = None;
        let gateways = std::mem::take(&mut self.gateways);
        for gw in &gateways {
            if gw.distance(flight.pos) > range {
                continue;
            }
            // Candidate frames audible at this gateway.
            let mut candidates: Vec<(u64, f64)> = Vec::new();
            let mut flight_rssi = None;
            for &(fid, pos) in overlaps {
                if gw.distance(pos) > range {
                    continue;
                }
                let rssi = self.cfg.path_loss.sample_rssi_dbm(
                    txp,
                    gw.distance(pos),
                    &mut self.channel_rng,
                );
                if fid == flight_id {
                    flight_rssi = Some(rssi);
                }
                candidates.push((fid, rssi));
            }
            match resolve_collision(&candidates, sens, CAPTURE_MARGIN_DB) {
                Some(winner) if winner == flight_id => {
                    let rssi = flight_rssi.expect("winner has an RSSI");
                    best = Some(best.map_or(rssi, |b: f64| b.max(rssi)));
                }
                _ => {
                    if candidates.len() > 1 && flight_rssi.is_some() {
                        self.collector.on_collision();
                    }
                }
            }
        }
        self.gateways = gateways;
        best
    }

    /// Resolves overhearing at every active neighbour. Returns whether the
    /// handover target decoded the frame, plus the devices that need a new
    /// transmission opportunity scheduled.
    fn resolve_neighbours(
        &mut self,
        flight_id: u64,
        flight: &Flight,
        overlaps: &[(u64, Point)],
        candidates: &[NodeId],
        observer: &mut dyn SimObserver,
    ) -> (bool, Vec<NodeId>) {
        let d2d = self.cfg.environment.d2d_range_m();
        let sens = self.cfg.phy.sensitivity_dbm();
        let txp = self.cfg.phy.tx_power_dbm;
        let gen_interval = self.cfg.gen_interval;
        let now = self.now;

        let mut accepted = false;
        let mut to_schedule = Vec::new();

        for &x in candidates {
            if x == flight.sender {
                continue;
            }
            let pos_x = self.net.position(x, now);
            if pos_x.distance(flight.pos) > d2d {
                continue;
            }
            let Some(dev) = self.devices.get(&x) else {
                continue;
            };
            if !dev.active {
                continue;
            }
            // Half-duplex: a device transmitting during any part of the
            // frame cannot receive it.
            if let Some((s, e)) = dev.tx_window {
                if s < flight.end && e > flight.start {
                    continue;
                }
            }
            if !dev
                .class
                .overhears(now, dev.last_tx_end, gen_interval, dev.gamma)
            {
                continue;
            }
            // Collision resolution at x.
            let mut candidates: Vec<(u64, f64)> = Vec::new();
            let mut flight_rssi = None;
            for &(fid, pos) in overlaps {
                if pos_x.distance(pos) > d2d {
                    continue;
                }
                let rssi = self.cfg.path_loss.sample_rssi_dbm(
                    txp,
                    pos_x.distance(pos),
                    &mut self.channel_rng,
                );
                if fid == flight_id {
                    flight_rssi = Some(rssi);
                }
                candidates.push((fid, rssi));
            }
            let decoded = matches!(
                resolve_collision(&candidates, sens, CAPTURE_MARGIN_DB),
                Some(w) if w == flight_id
            );
            if !decoded {
                if candidates.len() > 1 && flight_rssi.is_some() {
                    self.collector.on_collision();
                }
                continue;
            }
            let rssi = flight_rssi.expect("decoded frame has an RSSI");

            if flight.target == Some(x) {
                // Accept the handover: enqueue, bar the donor, try to move
                // the data onwards.
                let dev = self.devices.get_mut(&x).expect("neighbour exists");
                let drops_before = dev.queue.dropped();
                for msg in &flight.frame.messages {
                    dev.queue.push(*msg);
                }
                let dropped = dev.queue.dropped() - drops_before;
                if dropped > 0 {
                    self.collector.on_queue_drop(dropped);
                }
                dev.routing.on_received_data(flight.sender);
                self.collector.on_handover_accepted(&flight.frame.messages);
                observer.on_forward(&HandoverAccepted {
                    time: now,
                    donor: flight.sender,
                    acceptor: x,
                    messages: flight.frame.messages.len(),
                });
                accepted = true;
                // The acceptor holds the data until its own next slot
                // (§V.B.2); it does not transmit reactively.
            } else {
                // Treat as a beacon: should x hand its own data to the
                // flight's sender?
                let beacon = Beacon {
                    sender: flight.sender,
                    rca_etx: flight.frame.rca_etx,
                    queue_len: flight.frame.queue_len,
                };
                let dev = self.devices.get_mut(&x).expect("neighbour exists");
                let wait_s = dev
                    .duty
                    .next_opportunity(now)
                    .saturating_since(now)
                    .as_secs_f64();
                let decision = dev
                    .routing
                    .decide(now, wait_s, dev.queue.len(), &beacon, rssi);
                if let ForwardDecision::Forward { target, count } = decision {
                    if dev.pending_handover.is_none() {
                        dev.pending_handover = Some((target, count));
                        to_schedule.push(x);
                    }
                }
            }
        }
        (accepted, to_schedule)
    }

    /// Applies the transmission outcome to the sender: queue updates,
    /// metric observation, retransmission bookkeeping, follow-up
    /// scheduling.
    fn settle_sender(
        &mut self,
        flight: &Flight,
        gateway_rssi: Option<f64>,
        accepted_by_target: bool,
        observer: &mut dyn SimObserver,
    ) {
        // Deliver to the server first (instant backhaul).
        if gateway_rssi.is_some() {
            for msg in &flight.frame.messages {
                if let Some((delay, hops)) = self.collector.on_delivered(msg, self.now) {
                    observer.on_delivery(&MessageDelivered {
                        time: self.now,
                        message: msg.id,
                        origin: msg.origin,
                        delay,
                        hops,
                    });
                }
            }
        }
        let capacity = gateway_rssi.map(|r| self.cfg.capacity.capacity_bps(r));
        let sender = flight.sender;
        let Some(dev) = self.devices.get_mut(&sender) else {
            return;
        };
        let wait_s = dev
            .duty
            .next_opportunity(self.now)
            .saturating_since(self.now)
            .as_secs_f64();

        let is_handover = flight.target.is_some();
        let delivered_somewhere = gateway_rssi.is_some() || accepted_by_target;
        if delivered_somewhere {
            // Instant-ACK assumption (§VII.A.5): remove the bundle.
            dev.queue.remove(&flight.frame.messages);
        }

        if is_handover {
            // Handover slots are not device-to-sink slots; only a lucky
            // gateway decode counts as contact (and clears the ledger).
            if let Some(cap) = capacity {
                dev.routing.on_sink_slot(self.now, Some(cap), wait_s);
                dev.retransmit.reset();
            }
        } else {
            dev.routing.on_sink_slot(self.now, capacity, wait_s);
            if gateway_rssi.is_some() {
                dev.retransmit.reset();
            } else if !dev.retransmit.record_failure() {
                // Retransmission budget exhausted (§VII.A.5): the backlog
                // holds until the next generation resets the counter.
                return;
            }
        }
        // Anything still queued — a failed bundle awaiting its duty-timer
        // retry, or backlog beyond the 12-message bundle — goes out at the
        // next legal opportunity. Draining at the duty-cycle service rate
        // (not the generation rate) is what gives well-connected relays
        // their higher RGQ service rate φ.
        if dev.active && !dev.queue.is_empty() {
            self.maybe_schedule_tx(sender);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Environment;
    use mlora_core::Scheme;

    fn smoke(scheme: Scheme) -> SimReport {
        SimConfig::smoke_test(scheme, Environment::Urban)
            .run(1234)
            .expect("valid config")
    }

    #[test]
    fn no_routing_runs_and_delivers() {
        let r = smoke(Scheme::NoRouting);
        assert!(r.generated > 100, "generated {}", r.generated);
        assert!(r.delivered > 0, "delivered {}", r.delivered);
        assert!(r.delivered <= r.generated);
        assert_eq!(r.handover_frames, 0);
        assert_eq!(r.handover_messages, 0);
        // Every delivery in the baseline is exactly one hop.
        assert_eq!(r.mean_hops(), 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = smoke(Scheme::Robc);
        let b = smoke(Scheme::Robc);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SimConfig::smoke_test(Scheme::NoRouting, Environment::Urban);
        let a = cfg.run(1).unwrap();
        let b = cfg.run(2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn forwarding_schemes_move_data_between_devices() {
        let r = smoke(Scheme::Robc);
        assert!(r.handover_frames > 0, "ROBC never handed over");
        assert!(r.mean_hops() >= 1.0);
    }

    #[test]
    fn rca_etx_scheme_hands_over() {
        let r = smoke(Scheme::RcaEtx);
        assert!(r.handover_frames > 0, "RCA-ETX never handed over");
    }

    #[test]
    fn message_conservation() {
        for scheme in Scheme::ALL {
            let r = smoke(scheme);
            assert!(
                r.delivered + r.stranded + r.queue_drops >= r.generated,
                "{scheme}: {} delivered + {} stranded + {} drops < {} generated",
                r.delivered,
                r.stranded,
                r.queue_drops,
                r.generated
            );
        }
    }

    #[test]
    fn overhead_ordering_matches_paper() {
        // Fig. 13: forwarding schemes send more frames per node.
        let base = smoke(Scheme::NoRouting).mean_frames_per_node();
        let robc = smoke(Scheme::Robc).mean_frames_per_node();
        // Smoke-scale runs are noisy; the paper-scale ordering (1.6–2.2×)
        // is asserted by the repro harness. Here we only require ROBC not
        // to transmit *less* than the baseline beyond noise.
        assert!(
            robc >= 0.9 * base,
            "ROBC overhead {robc} far below baseline {base}"
        );
    }

    #[test]
    fn energy_accounted_for_all_devices() {
        let r = smoke(Scheme::NoRouting);
        assert!(r.devices_seen > 0);
        assert!(r.total_energy_mj > 0.0);
        assert!(r.total_active_s > 0.0);
    }

    #[test]
    fn gateways_on_grid() {
        let cfg = SimConfig::smoke_test(Scheme::NoRouting, Environment::Urban);
        let engine = Engine::new(cfg.clone(), 9);
        assert_eq!(engine.gateways().len(), cfg.num_gateways);
        for gw in engine.gateways() {
            assert!(engine.network().area().contains(*gw));
        }
    }

    #[test]
    fn queue_based_class_a_delivers_with_less_energy() {
        let mut cfg_c = SimConfig::smoke_test(Scheme::Robc, Environment::Urban);
        cfg_c.device_class = DeviceClassChoice::ModifiedClassC;
        let mut cfg_a = cfg_c.clone();
        cfg_a.device_class = DeviceClassChoice::QueueBasedClassA;
        let rc = cfg_c.run(7).unwrap();
        let ra = cfg_a.run(7).unwrap();
        assert!(ra.delivered > 0);
        assert!(
            ra.mean_energy_per_node_mj() < rc.mean_energy_per_node_mj(),
            "queue-based class A should save energy: {} vs {}",
            ra.mean_energy_per_node_mj(),
            rc.mean_energy_per_node_mj()
        );
    }
}
