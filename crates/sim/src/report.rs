//! Plain-text formatters turning experiment results into the rows and
//! series the paper's figures plot, plus the small figure-shaped bridge
//! types they consume ([`SweepPoint`]).

use std::fmt::Write as _;

use mlora_core::Scheme;
use serde::{Deserialize, Serialize};

use crate::runner::CellResult;
use crate::{Environment, SimReport};

/// One cell of the Fig. 8/9/12/13 sweeps: a (gateways, environment,
/// scheme) combination and its simulation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of gateways deployed.
    pub gateways: usize,
    /// Radio environment.
    pub environment: Environment,
    /// Forwarding scheme.
    pub scheme: Scheme,
    /// The run's metrics.
    pub report: SimReport,
}

impl SweepPoint {
    /// Extracts sweep points (one per cell, first replicate) from runner
    /// results — the bridge from the plan API to the per-figure
    /// formatters in this module.
    pub fn from_cells(cells: &[CellResult]) -> Vec<SweepPoint> {
        cells
            .iter()
            .map(|cell| SweepPoint {
                gateways: cell.key.gateways,
                environment: cell.key.environment,
                scheme: cell.key.scheme,
                report: cell.report.single().clone(),
            })
            .collect()
    }
}

/// Formats the Fig. 8 table: mean end-to-end delay ± standard error per
/// (environment, gateways, scheme).
pub fn fig8_delay_table(points: &[SweepPoint]) -> String {
    metric_table(points, "mean end-to-end delay (s) ± stderr", |r| {
        format!("{:9.1} ±{:5.1}", r.mean_delay_s(), r.delay_std_error_s())
    })
}

/// Formats the Fig. 9 table: total unique messages delivered.
pub fn fig9_throughput_table(points: &[SweepPoint]) -> String {
    metric_table(points, "total throughput (unique msgs received)", |r| {
        format!("{:9}", r.delivered)
    })
}

/// Formats a replicated sweep: per-cell mean ± 95 % CI of a metric over
/// the cell's replicate seeds, one row per `(env, gateways, scheme)`.
pub fn replicated_table(
    cells: &[CellResult],
    title: &str,
    metric: impl Fn(&SimReport) -> f64,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# {title} (mean ± 95% CI over replicate seeds)");
    let _ = writeln!(
        s,
        "{:>6} {:>6} {:>12} {:>5} {:>21}",
        "env", "gws", "scheme", "n", "value"
    );
    let mut sorted = cells.to_vec();
    sorted.sort_by_key(|c| {
        (
            c.key.environment.label(),
            c.key.gateways,
            c.key.scheme.label(),
        )
    });
    for cell in &sorted {
        let mean = cell.report.mean(&metric);
        let (lo, hi) = cell.report.ci95(&metric);
        let _ = writeln!(
            s,
            "{:>6} {:>6} {:>12} {:>5} {:>12.1} ±{:>7.1}",
            cell.key.environment.label(),
            cell.key.gateways,
            cell.key.scheme.label(),
            cell.report.n(),
            mean,
            (hi - lo) / 2.0,
        );
    }
    s
}

/// Formats a resilience sweep: per-cell overall delivery ratio next to
/// the during-outage and outside-outage ratios, plus the disrupted time
/// and withdrawn-fleet share — one row per
/// `(disruption, environment, scheme)` cell, first replicate.
pub fn resilience_table(cells: &[CellResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# delivery under disruption (first replicate per cell)");
    let _ = writeln!(
        s,
        "{:>6} {:>6} {:>6} {:>12} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "env", "plan", "gws", "scheme", "deliv%", "outage%", "clear%", "outage(s)", "withdrawn"
    );
    let mut sorted = cells.to_vec();
    sorted.sort_by_key(|c| {
        (
            c.key.disruption,
            c.key.environment.label(),
            c.key.gateways,
            c.key.scheme.label(),
        )
    });
    for cell in &sorted {
        let r = cell.report.single();
        let _ = writeln!(
            s,
            "{:>6} {:>6} {:>6} {:>12} {:>8.1}% {:>8.1}% {:>8.1}% {:>10.0} {:>10}",
            cell.key.environment.label(),
            cell.key.disruption,
            cell.key.gateways,
            cell.key.scheme.label(),
            100.0 * r.delivery_ratio(),
            100.0 * r.outage_delivery_ratio(),
            100.0 * r.clear_delivery_ratio(),
            r.outage_time_s,
            r.buses_withdrawn,
        );
    }
    s
}

/// Formats one run's per-traffic-profile breakdown: generation,
/// delivery ratio, mean delay and the airtime share each application
/// class consumed. Empty (header only) for a run under the paper's
/// homogeneous default.
pub fn traffic_profile_table(report: &SimReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# per-profile delivery / delay / airtime");
    let _ = writeln!(
        s,
        "{:>18} {:>9} {:>9} {:>8} {:>10} {:>11} {:>11}",
        "profile", "generated", "delivered", "deliv%", "delay(s)", "airtime(s)", "bytes-sent"
    );
    for p in &report.profiles {
        let _ = writeln!(
            s,
            "{:>18} {:>9} {:>9} {:>7.1}% {:>10.1} {:>11.1} {:>11}",
            p.name,
            p.generated,
            p.delivered,
            100.0 * p.delivery_ratio(),
            p.mean_delay_s(),
            p.airtime_s,
            p.payload_bytes_sent,
        );
    }
    s
}

/// Formats a policy-labelled comparison: one row per cell (first
/// replicate), keyed by the label each run's [`SimReport::scheme`]
/// carries — so built-in schemes and user-defined
/// [`ForwardingPolicy`](mlora_core::ForwardingPolicy) entries of a
/// [`policies`](crate::ExperimentPlan::policies) sweep line up in one
/// table with delivery, delay, hop and overhead columns.
pub fn scheme_table(cells: &[CellResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# forwarding-policy comparison (first replicate per cell)"
    );
    let _ = writeln!(
        s,
        "{:>6} {:>6} {:>14} {:>9} {:>10} {:>6} {:>10}",
        "env", "gws", "policy", "deliv%", "delay(s)", "hops", "msgs/node"
    );
    let mut sorted = cells.to_vec();
    sorted.sort_by(|a, b| {
        (a.key.environment.label(), a.key.gateways, a.key.policy).cmp(&(
            b.key.environment.label(),
            b.key.gateways,
            b.key.policy,
        ))
    });
    for cell in &sorted {
        let r = cell.report.single();
        let _ = writeln!(
            s,
            "{:>6} {:>6} {:>14} {:>8.1}% {:>10.1} {:>6.2} {:>10.2}",
            cell.key.environment.label(),
            cell.key.gateways,
            r.scheme,
            100.0 * r.delivery_ratio(),
            r.mean_delay_s(),
            r.mean_hops(),
            r.mean_messages_sent_per_node(),
        );
    }
    s
}

/// Formats the Fig. 12 table: mean hop count of delivered messages.
pub fn fig12_hops_table(points: &[SweepPoint]) -> String {
    metric_table(points, "mean hops per delivered message", |r| {
        format!("{:9.2}", r.mean_hops())
    })
}

/// Formats the Fig. 13 table: mean frames transmitted per device, plus
/// the overhead ratio against the LoRaWAN baseline in the same cell.
pub fn fig13_overhead_table(points: &[SweepPoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# mean messages sent per node (overhead vs LoRaWAN)");
    let _ = writeln!(
        s,
        "{:>6} {:>6} {:>12} {:>16}",
        "env", "gws", "scheme", "msgs/node"
    );
    let mut sorted = points.to_vec();
    sorted.sort_by_key(|p| (p.environment.label(), p.gateways, p.scheme.label()));
    for p in &sorted {
        let baseline = points
            .iter()
            .find(|q| {
                q.environment == p.environment
                    && q.gateways == p.gateways
                    && q.scheme == Scheme::NoRouting
            })
            .map(|q| q.report.mean_messages_sent_per_node());
        let ratio = match baseline {
            Some(b) if b > 0.0 => format!(" ({:.2}x)", p.report.mean_messages_sent_per_node() / b),
            _ => String::new(),
        };
        let _ = writeln!(
            s,
            "{:>6} {:>6} {:>12} {:>13.2}{}",
            p.environment.label(),
            p.gateways,
            p.scheme.label(),
            p.report.mean_messages_sent_per_node(),
            ratio
        );
    }
    s
}

/// Formats the Figs. 10–11 series: unique deliveries per bucket, one
/// column per scheme.
pub fn time_series_table(rows: &[(Scheme, SimReport)], environment: Environment) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# msgs received per bucket over time ({environment}, one column per scheme)"
    );
    let mut header = format!("{:>9}", "t_start_s");
    for (scheme, _) in rows {
        header.push_str(&format!(" {:>9}", scheme.label()));
    }
    let _ = writeln!(s, "{header}");
    let n = rows
        .iter()
        .map(|(_, r)| r.throughput_series.counts().len())
        .max()
        .unwrap_or(0);
    for i in 0..n {
        let t = rows
            .first()
            .map(|(_, r)| r.throughput_series.bucket().as_millis() as usize * i / 1000)
            .unwrap_or(0);
        let mut line = format!("{t:>9}");
        for (_, r) in rows {
            let c = r.throughput_series.counts().get(i).copied().unwrap_or(0);
            line.push_str(&format!(" {c:>9}"));
        }
        let _ = writeln!(s, "{line}");
    }
    s
}

/// Generic sweep-table formatter used by the per-figure functions.
fn metric_table(points: &[SweepPoint], title: &str, cell: impl Fn(&SimReport) -> String) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# {title}");
    let _ = writeln!(
        s,
        "{:>6} {:>6} {:>12} {:>18}",
        "env", "gws", "scheme", "value"
    );
    let mut sorted = points.to_vec();
    sorted.sort_by_key(|p| (p.environment.label(), p.gateways, p.scheme.label()));
    for p in &sorted {
        let _ = writeln!(
            s,
            "{:>6} {:>6} {:>12} {:>18}",
            p.environment.label(),
            p.gateways,
            p.scheme.label(),
            cell(&p.report)
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExperimentPlan, Runner, Scenario, SimConfig};

    fn base() -> SimConfig {
        Scenario::urban()
            .smoke()
            .duration(mlora_simcore::SimDuration::from_mins(30))
            .build()
            .expect("valid config")
    }

    fn points() -> Vec<SweepPoint> {
        let plan = ExperimentPlan::new(base())
            .environments([Environment::Urban])
            .gateway_counts([4])
            .schemes(Scheme::ALL)
            .fixed_seeds([3]);
        SweepPoint::from_cells(&Runner::new().run(&plan).expect("valid sweep"))
    }

    #[test]
    fn tables_contain_all_schemes() {
        let pts = points();
        for table in [
            fig8_delay_table(&pts),
            fig9_throughput_table(&pts),
            fig12_hops_table(&pts),
            fig13_overhead_table(&pts),
        ] {
            for scheme in Scheme::ALL {
                assert!(
                    table.contains(scheme.label()),
                    "table missing {scheme}:\n{table}"
                );
            }
        }
    }

    #[test]
    fn sweep_points_cover_plan_cells_in_order() {
        let plan = ExperimentPlan::new(base())
            .environments([Environment::Urban, Environment::Rural])
            .gateway_counts([4, 9])
            .schemes(Scheme::ALL)
            .fixed_seeds([5]);
        let cells = Runner::new().run(&plan).expect("valid plan");
        let pts = SweepPoint::from_cells(&cells);
        assert_eq!(pts.len(), 2 * 2 * 3);
        assert!(pts.iter().all(|p| p.report.generated > 0));
        // Combinations are unique and follow plan order.
        let mut keys: Vec<_> = pts
            .iter()
            .map(|p| (p.gateways, p.environment, p.scheme))
            .collect();
        keys.dedup();
        assert_eq!(keys.len(), 12);
        for (pt, cell) in pts.iter().zip(&cells) {
            assert_eq!(pt.report, *cell.report.single());
        }
    }

    #[test]
    fn sweep_point_matches_direct_run() {
        // A plan cell must reproduce exactly what a direct run of the
        // same configuration produces — same config, same seed.
        let plan = ExperimentPlan::new(base())
            .environments([Environment::Rural])
            .gateway_counts([4])
            .schemes([Scheme::Robc])
            .fixed_seeds([9]);
        let pts = SweepPoint::from_cells(&Runner::new().run(&plan).expect("valid plan"));
        let mut direct = base();
        direct.environment = Environment::Rural;
        direct.num_gateways = 4;
        direct.scheme = Scheme::Robc;
        assert_eq!(pts[0].report, direct.run(9).unwrap());
    }

    #[test]
    fn scheme_table_keys_rows_by_run_label() {
        use mlora_core::PolicySpec;

        let plan = ExperimentPlan::new(base())
            .gateway_counts([4])
            .policies([
                PolicySpec::from(Scheme::NoRouting),
                PolicySpec::from(Scheme::Robc),
            ])
            .fixed_seeds([3]);
        let cells = Runner::new().run(&plan).expect("valid sweep");
        let table = scheme_table(&cells);
        assert!(table.contains("LoRaWAN"), "{table}");
        assert!(table.contains("ROBC"), "{table}");
        // The label comes from the report itself, not the scheme axis.
        assert_eq!(cells[0].report.single().scheme, "LoRaWAN");
        assert_eq!(cells[1].report.single().scheme, "ROBC");
    }

    #[test]
    fn overhead_table_reports_ratio() {
        let table = fig13_overhead_table(&points());
        assert!(
            table.contains("1.00x"),
            "baseline row should be 1.00x:\n{table}"
        );
    }

    #[test]
    fn resilience_table_reports_disruption_columns() {
        use crate::{DisruptionPlan, GatewayOutage};
        use mlora_simcore::SimTime;

        let disrupted = DisruptionPlan {
            outages: vec![GatewayOutage {
                gateway: 0,
                start: SimTime::from_secs(300),
                duration: None,
            }],
            ..DisruptionPlan::default()
        };
        let plan = ExperimentPlan::new(base())
            .gateway_counts([4])
            .schemes([Scheme::Robc])
            .disruptions([DisruptionPlan::default(), disrupted])
            .fixed_seeds([3]);
        let cells = Runner::new().run(&plan).expect("valid sweep");
        let table = resilience_table(&cells);
        assert!(table.contains("outage%"), "{table}");
        // The undisrupted row reports zero disrupted seconds; the
        // disrupted one carries the open-ended outage to the horizon.
        assert_eq!(cells[0].report.single().outage_time_s, 0.0);
        assert!(cells[1].report.single().outage_time_s > 0.0);
    }

    #[test]
    fn traffic_table_reports_every_profile() {
        use crate::{Scenario, TrafficProfile};

        let report = Scenario::urban()
            .smoke()
            .duration(mlora_simcore::SimDuration::from_mins(40))
            .profile(TrafficProfile::telemetry().weight(3.0))
            .profile(TrafficProfile::alerts())
            .run(5)
            .expect("valid traffic scenario");
        let table = traffic_profile_table(&report);
        assert!(table.contains("telemetry"), "{table}");
        assert!(table.contains("alerts"), "{table}");
        // The homogeneous default renders header-only.
        let plain = Scenario::urban()
            .smoke()
            .duration(mlora_simcore::SimDuration::from_mins(40))
            .run(5)
            .unwrap();
        assert_eq!(traffic_profile_table(&plain).lines().count(), 2);
    }

    #[test]
    fn series_table_has_bucket_rows() {
        let plan = ExperimentPlan::new(base())
            .environments([Environment::Urban])
            .gateway_counts([4])
            .schemes(Scheme::ALL)
            .fixed_seeds([3]);
        let rows: Vec<(Scheme, SimReport)> = Runner::new()
            .run(&plan)
            .expect("valid series")
            .into_iter()
            .map(|cell| (cell.key.scheme, cell.report.into_runs().remove(0).1))
            .collect();
        let table = time_series_table(&rows, Environment::Urban);
        // 30 min / 10 min buckets = 3 data lines + 2 header lines.
        assert_eq!(table.lines().count(), 5, "table:\n{table}");
    }
}
