//! The shard broker: edge messages, the barrier protocol, the
//! [`ShardCommunicator`] transport trait and its in-process
//! [`LocalCommunicator`] backend (threads + channels).
//!
//! # Architecture
//!
//! The parallel engine keeps **one commit thread** — the ordinary event
//! loop, which owns all mutable simulation state, every RNG draw and
//! every policy decision, processed in canonical `(time, seq)` event
//! order exactly as the serial engine does. What it offloads to the
//! shard workers is the *draw-free spatial work* of transmission-end
//! resolution:
//!
//! * each worker owns the [tile region](super::partition::Partition) of
//!   one shard: a halo-extended device membership grid (kept current by
//!   exchanging boundary-crossing buses with peer workers at
//!   synchronized time-step barriers) and a tile-local table of frames
//!   in flight (fed by [`EdgeMessage::FlightLaunched`] broadcasts);
//! * when a frame launches inside a worker's own tiles, the worker
//!   computes its [`FlightPlan`]: the exact in-range gateway and
//!   neighbour-candidate sets at the transmission-end instant, plus the
//!   *deterministic mean* RSSI of every in-range interfering flight —
//!   everything `Channel::receive` needs except the shadowing draws.
//!
//! The commit thread replays the plan at the transmission-end event:
//! state-dependent filters (device liveness, half-duplex, device class,
//! gateway outages), the per-pair shadowing draws in the canonical
//! receiver × flight order, capture resolution and all mutation. The
//! replay consumes the same RNG stream in the same order as the serial
//! scan, so a sharded run is **bit-identical to the serial engine for
//! any shard count** — the property `tests/partition_properties.rs`
//! and the golden fixtures pin.
//!
//! Plans reference only launches the commit thread dispatched *before*
//! the subject's own launch (channel FIFO order); frames launched in
//! the window between a flight's start and its end are merged back at
//! commit from a small "recent launches" ring, in sequence order, so
//! the canonical interferer order never diverges.
//!
//! [`ShardCommunicator`] is deliberately object-safe and message-based:
//! the commit thread only ever `send`s plain-data [`EdgeMessage`]s and
//! receives [`FlightPlan`]s, so a future process- or TCP-backed
//! implementation (node-partitioned nets in the style of petri /
//! parallel_qsim) can slot in without touching the engine.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use mlora_geo::{GridIndex, Point};
use mlora_mobility::BusNetwork;
use mlora_phy::LogDistanceModel;
use mlora_simcore::{NodeId, SimDuration, SimTime};

use super::partition::Partition;

/// How long transport receives wait before concluding a shard worker
/// died (a worker panic would otherwise deadlock the commit thread).
const RECV_TIMEOUT: Duration = Duration::from_secs(300);

/// A message on a shard edge: commit → worker, or worker → worker at a
/// membership barrier. Plain data, so any transport can carry it.
#[derive(Debug, Clone)]
pub enum EdgeMessage {
    /// A frame went on the air within the receiving shard's flight halo.
    FlightLaunched {
        /// Canonical flight sequence number.
        seq: u64,
        /// Transmitting device.
        sender: NodeId,
        /// Sender position at transmission start.
        pos: Point,
        /// Transmission start time.
        start: SimTime,
        /// Transmission end time.
        end: SimTime,
        /// True on the copy sent to the shard owning the launch tile:
        /// that worker must answer with the flight's [`FlightPlan`].
        wants_plan: bool,
    },
    /// A membership barrier: advance device membership to `until` and
    /// exchange boundary-crossing buses with every peer worker.
    Barrier {
        /// The time-step boundary to advance to.
        until: SimTime,
    },
    /// One worker's batch of boundary-crossing buses for a barrier:
    /// every tracked device the sender *owns* (by tile) whose position
    /// lies within the receiver's halo region. Sent to every peer at
    /// every barrier, empty or not, so receivers can count batches.
    Crossing {
        /// Barrier index the batch belongs to.
        barrier: u64,
        /// `(device, position-at-barrier)` pairs.
        devices: Vec<(NodeId, Point)>,
    },
    /// Orderly end of the run.
    Shutdown,
}

/// An in-range interferer of one planned receiver: the flight's
/// canonical sequence number and the deterministic mean RSSI (dBm) of
/// its signal at the receiver — everything but the shadowing draw.
pub type PlannedInterferer = (u64, f64);

/// One in-range gateway in a [`FlightPlan`], with its interferer slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedGateway {
    /// Gateway index.
    pub gateway: u32,
    /// Start of this receiver's slice in [`FlightPlan::interferers`].
    pub start: u32,
    /// Length of the slice.
    pub len: u32,
}

/// One in-range neighbour candidate in a [`FlightPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedCandidate {
    /// Candidate device.
    pub node: NodeId,
    /// Its exact position at the transmission-end instant (the value
    /// the serial engine would compute; the commit thread uses it for
    /// regional-noise lookup).
    pub pos: Point,
    /// Start of this receiver's slice in [`FlightPlan::interferers`].
    pub start: u32,
    /// Length of the slice.
    pub len: u32,
}

/// The precomputed, draw-free part of one flight's transmission-end
/// resolution (see the module docs). Pure geometry over launch history
/// and the static world: identical whichever shard computes it.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightPlan {
    /// The subject flight's sequence number.
    pub seq: u64,
    /// In-range gateways, ascending by index, outage state *not*
    /// applied (workers don't track outages; the commit thread filters).
    pub gateways: Vec<PlannedGateway>,
    /// Exact-distance-filtered neighbour candidates, ascending by id.
    /// A superset of the live receivers: the commit thread applies the
    /// state-dependent filters (activity, half-duplex, device class).
    pub candidates: Vec<PlannedCandidate>,
    /// Flat per-receiver interferer storage, each slice in ascending
    /// sequence order.
    pub interferers: Vec<PlannedInterferer>,
}

impl FlightPlan {
    /// The interferer slice of one planned receiver.
    pub fn slice(&self, start: u32, len: u32) -> &[PlannedInterferer] {
        &self.interferers[start as usize..(start + len) as usize]
    }
}

/// Commit-side transport to the shard workers.
///
/// Object-safe by construction (exercised by a compile-time test): the
/// engine holds a `Box<dyn ShardCommunicator>`, so a future process- or
/// TCP-backed transport only has to move the same plain-data messages.
pub trait ShardCommunicator: Send + std::fmt::Debug {
    /// Number of shards behind this transport.
    fn num_shards(&self) -> usize;
    /// Sends one message to one shard. Per-shard FIFO ordering is part
    /// of the contract: plans are computed against exactly the launches
    /// sent before the planned flight's own launch message.
    fn send(&mut self, shard: usize, msg: EdgeMessage);
    /// Blocks for the next flight plan, in whatever order workers
    /// finish them (the engine reorders by sequence number).
    ///
    /// # Panics
    ///
    /// Panics if a worker died — determinism is unrecoverable then.
    fn recv_plan(&mut self) -> FlightPlan;
    /// Non-blocking: the next finished plan, if one is already queued.
    /// Lets the commit thread fold plan buffering into the gaps between
    /// events instead of paying it on the transmission-end critical
    /// path.
    fn try_recv_plan(&mut self) -> Option<FlightPlan>;
    /// Shuts the workers down and reclaims their resources. Idempotent.
    fn shutdown(&mut self);
}

/// The in-process [`ShardCommunicator`]: one OS thread per shard,
/// `std::sync::mpsc` channels for commit → worker and worker → worker
/// edges, one shared channel funnelling plans back to the commit
/// thread.
#[derive(Debug)]
pub struct LocalCommunicator {
    to_shards: Vec<mpsc::Sender<EdgeMessage>>,
    plans: mpsc::Receiver<FlightPlan>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl LocalCommunicator {
    /// Spawns one worker thread per shard and wires the full channel
    /// mesh (commit→worker, worker→worker, worker→commit plans).
    pub(crate) fn launch(workers: Vec<ShardWorker>) -> LocalCommunicator {
        let n = workers.len();
        let (plan_tx, plan_rx) = mpsc::channel();
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel();
            txs.push(tx);
            rxs.push(Some(rx));
        }
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(i, worker)| {
                let rx = rxs[i].take().expect("one receiver per worker");
                let peers: Vec<Option<mpsc::Sender<EdgeMessage>>> = txs
                    .iter()
                    .enumerate()
                    .map(|(j, tx)| (j != i).then(|| tx.clone()))
                    .collect();
                let plan_tx = plan_tx.clone();
                std::thread::Builder::new()
                    .name(format!("mlora-shard-{i}"))
                    .spawn(move || worker.run(rx, peers, plan_tx))
                    .expect("spawn shard worker")
            })
            .collect();
        LocalCommunicator {
            to_shards: txs,
            plans: plan_rx,
            handles,
        }
    }
}

impl ShardCommunicator for LocalCommunicator {
    fn num_shards(&self) -> usize {
        self.to_shards.len()
    }

    fn send(&mut self, shard: usize, msg: EdgeMessage) {
        // A send to a dead worker surfaces on the next recv_plan.
        let _ = self.to_shards[shard].send(msg);
    }

    fn recv_plan(&mut self) -> FlightPlan {
        self.plans
            .recv_timeout(RECV_TIMEOUT)
            .expect("shard worker died or stalled; cannot preserve determinism")
    }

    fn try_recv_plan(&mut self) -> Option<FlightPlan> {
        self.plans.try_recv().ok()
    }

    fn shutdown(&mut self) {
        for tx in &self.to_shards {
            let _ = tx.send(EdgeMessage::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for LocalCommunicator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A frame in a worker's tile-local flight table.
#[derive(Debug, Clone, Copy)]
struct LocalFlight {
    seq: u64,
    pos: Point,
    start: SimTime,
    end: SimTime,
}

/// Static, read-only parameters a shard worker plans against.
#[derive(Debug, Clone)]
pub(crate) struct ShardParams {
    /// Device-to-device range, metres.
    pub(crate) d2d_range_m: f64,
    /// Device-to-gateway range, metres.
    pub(crate) gateway_range_m: f64,
    /// Transmit power, dBm.
    pub(crate) tx_power_dbm: f64,
    /// Path-loss model (means only; the shadowing draws stay on the
    /// commit thread).
    pub(crate) path_loss: LogDistanceModel,
    /// How long an ended flight stays interference-relevant.
    pub(crate) flight_retention: SimDuration,
}

/// One shard's worker: the tile-local membership grid and flight table,
/// and the plan computation (see the module docs). Runs on its own
/// thread under [`LocalCommunicator`].
#[derive(Debug)]
pub(crate) struct ShardWorker {
    id: usize,
    part: Arc<Partition>,
    /// The worker's own immutable copy of the mobility substrate.
    /// Withdrawals truncate trips only on the commit thread; a
    /// withdrawn bus may therefore linger in candidate supersets with a
    /// stale position, which the commit thread's liveness filter
    /// removes before any RNG draw.
    net: Arc<BusNetwork>,
    params: ShardParams,
    /// Gateways within `gateway_range + 1 m` of this shard's region,
    /// ascending by index (static superset; exact range re-checked per
    /// plan).
    gateways: Vec<(u32, Point)>,
    /// All trips, ascending by `(depart, node)`, shared by every worker.
    departures: Arc<Vec<(SimTime, NodeId)>>,
    /// Departures below this index are folded into `tracked`; the tail
    /// up to the query instant is side-scanned per plan, so membership
    /// never misses a bus that activated since the last barrier.
    cursor: usize,
    /// Barriers completed so far.
    barrier: u64,
    /// Tracked device positions as of the last barrier (`None` =
    /// untracked), indexed by node.
    tracked_pos: Vec<Option<Point>>,
    /// Tracked device ids (unordered; plans sort their candidates).
    tracked_ids: Vec<NodeId>,
    /// Spatial index over `tracked_ids` at barrier positions.
    grid: GridIndex<NodeId>,
    /// Per-device polyline cursors (worker-local; hints never change
    /// position values).
    hints: Vec<u32>,
    /// Tile-local flights, ascending by sequence (insertion order).
    flights: Vec<LocalFlight>,
    /// Early-arrived crossing batches for future barriers.
    stash: Vec<(u64, Vec<(NodeId, Point)>)>,
    scratch_overlaps: Vec<(u64, Point)>,
    /// Once-per-plan near-overlap cut for gateway receivers (within
    /// 2 × gateway range of the sender).
    scratch_near_gw: Vec<(u64, Point)>,
    /// Once-per-plan near-overlap cut for device receivers (within
    /// 2 × device range of the sender).
    scratch_near_dev: Vec<(u64, Point)>,
    /// Only the pre-batched reference plan path uses this (see
    /// [`ShardWorker::probe_plan_reference`]).
    scratch_within: Vec<(NodeId, Point)>,
    scratch_ids: Vec<NodeId>,
}

impl ShardWorker {
    pub(crate) fn new(
        id: usize,
        part: Arc<Partition>,
        net: Arc<BusNetwork>,
        departures: Arc<Vec<(SimTime, NodeId)>>,
        gateways: Vec<(u32, Point)>,
        params: ShardParams,
    ) -> ShardWorker {
        let trips = net.trips().len();
        ShardWorker {
            id,
            part,
            net,
            params,
            gateways,
            departures,
            cursor: 0,
            barrier: 0,
            tracked_pos: vec![None; trips],
            tracked_ids: Vec::new(),
            grid: GridIndex::new(200.0_f64.max(0.0)),
            hints: vec![0; trips],
            flights: Vec::new(),
            stash: Vec::new(),
            scratch_overlaps: Vec::new(),
            scratch_near_gw: Vec::new(),
            scratch_near_dev: Vec::new(),
            scratch_within: Vec::new(),
            scratch_ids: Vec::new(),
        }
    }

    /// The worker thread body: drain edge messages until shutdown.
    fn run(
        mut self,
        rx: mpsc::Receiver<EdgeMessage>,
        peers: Vec<Option<mpsc::Sender<EdgeMessage>>>,
        plans: mpsc::Sender<FlightPlan>,
    ) {
        // Messages that arrived while a barrier was synchronizing, to be
        // replayed in order afterwards.
        let mut backlog: VecDeque<EdgeMessage> = VecDeque::new();
        loop {
            let msg = match backlog.pop_front() {
                Some(m) => m,
                None => match rx.recv() {
                    Ok(m) => m,
                    Err(_) => return,
                },
            };
            match msg {
                EdgeMessage::FlightLaunched {
                    seq,
                    sender,
                    pos,
                    start,
                    end,
                    wants_plan,
                } => {
                    debug_assert!(self.flights.last().is_none_or(|f| f.seq < seq));
                    self.flights.push(LocalFlight {
                        seq,
                        pos,
                        start,
                        end,
                    });
                    if wants_plan {
                        let plan = self.plan_for(seq, sender, pos, start, end);
                        if plans.send(plan).is_err() {
                            return;
                        }
                    }
                }
                EdgeMessage::Barrier { until } => {
                    if !self.advance_to(until, &peers, &rx, &mut backlog) {
                        return;
                    }
                }
                EdgeMessage::Crossing { barrier, devices } => {
                    // A peer raced ahead into a barrier this worker has
                    // not reached yet; hold the batch.
                    debug_assert!(barrier >= self.barrier);
                    self.stash.push((barrier, devices));
                }
                EdgeMessage::Shutdown => return,
            }
        }
    }

    /// Starts tracking `n` at `pos`.
    fn track(&mut self, n: NodeId, pos: Point) {
        if self.tracked_pos[n.index()].is_some() {
            return;
        }
        self.tracked_pos[n.index()] = Some(pos);
        self.tracked_ids.push(n);
        self.grid.insert(n, pos);
    }

    /// Advances membership to the barrier time `until` and exchanges
    /// boundary-crossing buses with every peer. Returns `false` when
    /// the run is over (channels torn down).
    fn advance_to(
        &mut self,
        until: SimTime,
        peers: &[Option<mpsc::Sender<EdgeMessage>>],
        rx: &mpsc::Receiver<EdgeMessage>,
        backlog: &mut VecDeque<EdgeMessage>,
    ) -> bool {
        let halo = self.part.device_halo_m();
        // 1. Fold activations up to the barrier into the tracked set.
        while self.cursor < self.departures.len() && self.departures[self.cursor].0 <= until {
            let (_, n) = self.departures[self.cursor];
            self.cursor += 1;
            if self.net.trip(n).end() <= until {
                continue;
            }
            let pos = self
                .net
                .position_hinted(n, until, &mut self.hints[n.index()]);
            if self.part.shard_in_range(self.id, pos, halo) {
                self.track(n, pos);
            }
        }
        // 2. Refresh tracked positions; drop departures from the halo
        // region and statically ended trips; collect the crossing
        // announcement for every peer whose halo now contains a bus
        // whose tile this shard owns.
        let mut announce: Vec<Vec<(NodeId, Point)>> = vec![Vec::new(); peers.len()];
        let mut i = 0;
        while i < self.tracked_ids.len() {
            let n = self.tracked_ids[i];
            let old = self.tracked_pos[n.index()].expect("tracked device has a position");
            let ended = self.net.trip(n).end() <= until;
            let pos = self
                .net
                .position_hinted(n, until, &mut self.hints[n.index()]);
            if ended || !self.part.shard_in_range(self.id, pos, halo) {
                let removed = self.grid.remove(n, old);
                debug_assert!(removed, "tracked device missing from shard grid");
                self.tracked_pos[n.index()] = None;
                self.tracked_ids.swap_remove(i);
                continue;
            }
            let moved = self.grid.relocate(n, old, pos);
            debug_assert!(moved, "tracked device missing from shard grid");
            self.tracked_pos[n.index()] = Some(pos);
            if self.part.shard_of(pos) == self.id {
                for (s, peer) in peers.iter().enumerate() {
                    if peer.is_some() && self.part.shard_in_range(s, pos, halo) {
                        announce[s].push((n, pos));
                    }
                }
            }
            i += 1;
        }
        // 3. Flights that can no longer overlap any future subject are
        // done (every future subject starts at or after this barrier).
        let retention = self.params.flight_retention;
        self.flights.retain(|f| f.end + retention >= until);
        // 4. Exchange crossings: send one batch to every peer (empty or
        // not, so batches are countable), then collect one from each.
        for (s, peer) in peers.iter().enumerate() {
            if let Some(tx) = peer {
                let _ = tx.send(EdgeMessage::Crossing {
                    barrier: self.barrier,
                    devices: std::mem::take(&mut announce[s]),
                });
            }
        }
        let need = peers.iter().flatten().count();
        let mut got = 0;
        // Batches that arrived before this worker reached the barrier.
        let mut k = 0;
        while k < self.stash.len() {
            if self.stash[k].0 == self.barrier {
                let (_, devices) = self.stash.swap_remove(k);
                self.apply_crossing(devices);
                got += 1;
            } else {
                k += 1;
            }
        }
        while got < need {
            match rx.recv_timeout(RECV_TIMEOUT) {
                Ok(EdgeMessage::Crossing { barrier, devices }) => {
                    if barrier == self.barrier {
                        self.apply_crossing(devices);
                        got += 1;
                    } else {
                        self.stash.push((barrier, devices));
                    }
                }
                // Anything else replays in order once the barrier is
                // synchronized (plans must not be computed against
                // pre-barrier membership).
                Ok(other) => backlog.push_back(other),
                Err(_) => return false,
            }
        }
        self.barrier += 1;
        true
    }

    /// Applies one peer's crossing batch.
    fn apply_crossing(&mut self, devices: Vec<(NodeId, Point)>) {
        for (n, pos) in devices {
            self.track(n, pos);
        }
    }

    /// Fills the interferer scratches for one plan: `scratch_overlaps`
    /// holds the temporal overlaps, ascending by sequence (table
    /// insertion order) — the same predicate as
    /// `Channel::overlaps_into` — and `scratch_near_gw` /
    /// `scratch_near_dev` hold its once-per-plan near cuts: the
    /// overlaps close enough to the sender to be audible at *some*
    /// in-range gateway (2 × gateway range) or device receiver
    /// (2 × device range), by the triangle inequality (+1 m float
    /// margin). The per-receiver exact range check is unchanged, so
    /// consuming a cut is bit-identical to walking the full list; the
    /// subsets keep creation order, so interferer-slice order is
    /// untouched.
    fn collect_interferers(&mut self, pos: Point, start: SimTime, end: SimTime) {
        let mut overlaps = std::mem::take(&mut self.scratch_overlaps);
        overlaps.clear();
        overlaps.extend(
            self.flights
                .iter()
                .filter(|f| f.start < end && f.end > start)
                .map(|f| (f.seq, f.pos)),
        );
        let gw_reach = 2.0 * self.params.gateway_range_m + 1.0;
        let dev_reach = 2.0 * self.params.d2d_range_m + 1.0;
        let (gw_reach_sq, dev_reach_sq) = (gw_reach * gw_reach, dev_reach * dev_reach);
        let mut near_gw = std::mem::take(&mut self.scratch_near_gw);
        let mut near_dev = std::mem::take(&mut self.scratch_near_dev);
        near_gw.clear();
        near_dev.clear();
        for &(fseq, fpos) in &overlaps {
            let d_sq = fpos.distance_sq(pos);
            if d_sq <= gw_reach_sq {
                near_gw.push((fseq, fpos));
            }
            if d_sq <= dev_reach_sq {
                near_dev.push((fseq, fpos));
            }
        }
        self.scratch_overlaps = overlaps;
        self.scratch_near_gw = near_gw;
        self.scratch_near_dev = near_dev;
    }

    /// Fills `scratch_ids` with the sorted, deduped candidate-id
    /// superset: one batched sweep over the barrier-snapshot grid cells
    /// — the worker-side port of the serial engine's
    /// `World::batched_candidates`, running the coarse circle screen
    /// per contiguous bucket slice instead of materializing a
    /// `(id, position)` list first — plus the departures tail since the
    /// last barrier (buses that activated after the snapshot). The
    /// sort + dedup yields exactly the membership and order of the old
    /// `within_into` path.
    fn collect_candidate_ids(&mut self, pos: Point, end: SimTime) {
        let r = self.params.d2d_range_m + self.part.query_slack_m();
        let r_sq = r * r;
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.clear();
        self.grid.for_each_bucket_within(pos, r, |bucket| {
            for &(n, p) in bucket {
                if p.distance_sq(pos) <= r_sq {
                    ids.push(n);
                }
            }
        });
        let mut k = self.cursor;
        while k < self.departures.len() && self.departures[k].0 <= end {
            ids.push(self.departures[k].1);
            k += 1;
        }
        ids.sort_unstable();
        ids.dedup();
        self.scratch_ids = ids;
    }

    /// Computes the [`FlightPlan`] of a flight launched in this shard's
    /// tiles (see the module docs for why every filter below matches
    /// the serial engine's bit for bit). Interferer walks consume the
    /// once-per-plan near cuts; candidate discovery is one batched grid
    /// sweep ([`ShardWorker::collect_candidate_ids`]).
    fn plan_for(
        &mut self,
        seq: u64,
        sender: NodeId,
        pos: Point,
        start: SimTime,
        end: SimTime,
    ) -> FlightPlan {
        let p = &self.params;
        let (d2d, gw_range, tx_dbm) = (p.d2d_range_m, p.gateway_range_m, p.tx_power_dbm);
        let path_loss = p.path_loss;
        self.collect_interferers(pos, start, end);
        let mut plan = FlightPlan {
            seq,
            gateways: Vec::new(),
            candidates: Vec::new(),
            interferers: Vec::new(),
        };
        // Gateways: static superset, ascending by index, exact range
        // re-check — the sequence `Delivery::resolve_gateways` iterates,
        // before its outage filter. The near-gateway cut is a superset
        // of every in-range gateway's audible set.
        for &(gi, gw) in &self.gateways {
            if gw.distance(pos) > gw_range {
                continue;
            }
            let s = plan.interferers.len() as u32;
            for &(fseq, fpos) in &self.scratch_near_gw {
                let dist = gw.distance(fpos);
                if dist <= gw_range {
                    plan.interferers
                        .push((fseq, path_loss.mean_rssi_dbm(tx_dbm, dist)));
                }
            }
            plan.gateways.push(PlannedGateway {
                gateway: gi,
                start: s,
                len: plan.interferers.len() as u32 - s,
            });
        }
        // Neighbour candidates: the barrier-snapshot grid (slack covers
        // drift since the barrier) plus buses that activated after it.
        self.collect_candidate_ids(pos, end);
        for i in 0..self.scratch_ids.len() {
            let n = self.scratch_ids[i];
            if n == sender {
                continue;
            }
            let pos_n = self.net.position_hinted(n, end, &mut self.hints[n.index()]);
            if pos_n.distance(pos) > d2d {
                continue;
            }
            let s = plan.interferers.len() as u32;
            for &(fseq, fpos) in &self.scratch_near_dev {
                let dist = pos_n.distance(fpos);
                if dist <= d2d {
                    plan.interferers
                        .push((fseq, path_loss.mean_rssi_dbm(tx_dbm, dist)));
                }
            }
            plan.candidates.push(PlannedCandidate {
                node: n,
                pos: pos_n,
                start: s,
                len: plan.interferers.len() as u32 - s,
            });
        }
        plan
    }
}

/// Test/bench hooks: seed a worker's tile-local state directly and run
/// the plan paths without the thread/channel machinery. Used by the
/// engine probe module (allocation-count tests, the batched-vs-
/// per-flight microbench); never by the engine itself.
#[doc(hidden)]
impl ShardWorker {
    /// Seeds a tracked device at `pos`, as a crossing batch would.
    pub(crate) fn probe_track(&mut self, n: NodeId, pos: Point) {
        self.track(n, pos);
    }

    /// Seeds a tile-local flight, as a `FlightLaunched` edge would.
    pub(crate) fn probe_flight(&mut self, seq: u64, pos: Point, start: SimTime, end: SimTime) {
        debug_assert!(self.flights.last().is_none_or(|f| f.seq < seq));
        self.flights.push(LocalFlight {
            seq,
            pos,
            start,
            end,
        });
    }

    /// The engine's batched plan path.
    pub(crate) fn probe_plan(
        &mut self,
        seq: u64,
        sender: NodeId,
        pos: Point,
        start: SimTime,
        end: SimTime,
    ) -> FlightPlan {
        self.plan_for(seq, sender, pos, start, end)
    }

    /// The prefilter stages of [`ShardWorker::plan_for`] alone —
    /// overlap collection, near cuts, batched candidate sweep and the
    /// exact-range candidate walk over the device cut — without the
    /// per-plan output allocation. This is the path the counting-
    /// allocator test pins at zero steady-state allocations. Returns
    /// the in-range candidate count and a mean-RSSI checksum so the
    /// work cannot be optimized away.
    pub(crate) fn probe_prefilter(
        &mut self,
        sender: NodeId,
        pos: Point,
        start: SimTime,
        end: SimTime,
    ) -> (usize, f64) {
        self.collect_interferers(pos, start, end);
        self.collect_candidate_ids(pos, end);
        let d2d = self.params.d2d_range_m;
        let (tx_dbm, path_loss) = (self.params.tx_power_dbm, self.params.path_loss);
        let mut in_range = 0usize;
        let mut acc = 0.0f64;
        for i in 0..self.scratch_ids.len() {
            let n = self.scratch_ids[i];
            if n == sender {
                continue;
            }
            let pos_n = self.net.position_hinted(n, end, &mut self.hints[n.index()]);
            if pos_n.distance(pos) > d2d {
                continue;
            }
            in_range += 1;
            for &(_, fpos) in &self.scratch_near_dev {
                let dist = pos_n.distance(fpos);
                if dist <= d2d {
                    acc += path_loss.mean_rssi_dbm(tx_dbm, dist);
                }
            }
        }
        (in_range, acc)
    }

    /// The pre-batched reference plan path — grid `within_into` into an
    /// intermediate `(id, position)` list and a full overlap walk per
    /// receiver — kept verbatim for the microbench that records the
    /// batched prefilter's win. Bit-identical output to
    /// [`ShardWorker::probe_plan`].
    pub(crate) fn probe_plan_reference(
        &mut self,
        seq: u64,
        sender: NodeId,
        pos: Point,
        start: SimTime,
        end: SimTime,
    ) -> FlightPlan {
        let p = &self.params;
        let (d2d, gw_range, tx_dbm) = (p.d2d_range_m, p.gateway_range_m, p.tx_power_dbm);
        let path_loss = p.path_loss;
        let mut overlaps = std::mem::take(&mut self.scratch_overlaps);
        overlaps.clear();
        overlaps.extend(
            self.flights
                .iter()
                .filter(|f| f.start < end && f.end > start)
                .map(|f| (f.seq, f.pos)),
        );
        let mut plan = FlightPlan {
            seq,
            gateways: Vec::new(),
            candidates: Vec::new(),
            interferers: Vec::new(),
        };
        for &(gi, gw) in &self.gateways {
            if gw.distance(pos) > gw_range {
                continue;
            }
            let s = plan.interferers.len() as u32;
            for &(fseq, fpos) in &overlaps {
                let dist = gw.distance(fpos);
                if dist <= gw_range {
                    plan.interferers
                        .push((fseq, path_loss.mean_rssi_dbm(tx_dbm, dist)));
                }
            }
            plan.gateways.push(PlannedGateway {
                gateway: gi,
                start: s,
                len: plan.interferers.len() as u32 - s,
            });
        }
        let mut ids = std::mem::take(&mut self.scratch_ids);
        self.grid.within_into(
            pos,
            d2d + self.part.query_slack_m(),
            &mut self.scratch_within,
        );
        ids.clear();
        ids.extend(self.scratch_within.iter().map(|&(n, _)| n));
        let mut k = self.cursor;
        while k < self.departures.len() && self.departures[k].0 <= end {
            ids.push(self.departures[k].1);
            k += 1;
        }
        ids.sort_unstable();
        ids.dedup();
        for &n in &ids {
            if n == sender {
                continue;
            }
            let pos_n = self.net.position_hinted(n, end, &mut self.hints[n.index()]);
            if pos_n.distance(pos) > d2d {
                continue;
            }
            let s = plan.interferers.len() as u32;
            for &(fseq, fpos) in &overlaps {
                let dist = pos_n.distance(fpos);
                if dist <= d2d {
                    plan.interferers
                        .push((fseq, path_loss.mean_rssi_dbm(tx_dbm, dist)));
                }
            }
            plan.candidates.push(PlannedCandidate {
                node: n,
                pos: pos_n,
                start: s,
                len: plan.interferers.len() as u32 - s,
            });
        }
        self.scratch_ids = ids;
        self.scratch_overlaps = overlaps;
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must stay object-safe for future transport backends.
    #[test]
    fn communicator_is_object_safe() {
        fn _takes_dyn(_: &mut dyn ShardCommunicator) {}
        fn _boxed(c: LocalCommunicator) -> Box<dyn ShardCommunicator> {
            Box::new(c)
        }
    }

    #[test]
    fn plan_slices_index_flat_storage() {
        let plan = FlightPlan {
            seq: 7,
            gateways: vec![PlannedGateway {
                gateway: 2,
                start: 1,
                len: 2,
            }],
            candidates: Vec::new(),
            interferers: vec![(5, -80.0), (6, -90.0), (7, -100.0)],
        };
        assert_eq!(plan.slice(1, 2), &[(6, -90.0), (7, -100.0)]);
        assert_eq!(plan.slice(0, 0), &[] as &[PlannedInterferer]);
    }

    #[test]
    fn local_communicator_shuts_down_cleanly_with_no_work() {
        let comm = LocalCommunicator::launch(Vec::new());
        let mut boxed: Box<dyn ShardCommunicator> = Box::new(comm);
        assert_eq!(boxed.num_shards(), 0);
        boxed.shutdown();
        boxed.shutdown(); // idempotent
    }
}
