//! The shared radio channel: frames in flight, RSSI sampling, regional
//! noise and capture-model collision resolution.
//!
//! [`Channel`] owns the one RNG stream every shadowing draw comes from
//! (fork 12 of the master seed — the stream the historical engine used,
//! so an identically seeded run reproduces the golden fixtures bit for
//! bit), the generational flight slab with its monotone creation
//! sequence, and the per-receiver RSSI scratch buffer. Reception at any
//! receiver — gateway or neighbouring device — goes through one method,
//! [`Channel::receive`], so the capture rule, the noise model and the
//! RNG draw order cannot drift apart between the two resolution paths.
//!
//! Flight state is split hot/cold: the fields the interferer scan reads
//! per overlapping flight (`seq`, `start`, `end`, `pos`, `sender`) live
//! in contiguous [`FlightColumns`] keyed by slab slot, while the frame
//! payload and handover target stay in the slab ([`FlightCold`]). The
//! time-overlap scan therefore runs over dense column slices instead of
//! chasing slab entries; snapshots gather/scatter full rows so the
//! `.mlss` wire format is unchanged.
//!
//! Pruning of expired flights is lazy and batched: a stale flight
//! (`end + retention < now`) can never pass the time-overlap filter for
//! any frame still in the air (`subject.start >= now - retention`), so
//! instead of a per-event `retain` the slab is swept only when an insert
//! is about to grow it past a power-of-two slot count — a trigger that
//! is a pure function of checkpointed state, so a resumed run sweeps at
//! the same events as the uninterrupted one.

use mlora_geo::Point;
use mlora_mac::UplinkFrame;
use mlora_phy::{resolve_collision, LogDistanceModel, CAPTURE_MARGIN_DB};
use mlora_simcore::{NodeId, SimDuration, SimRng, SimTime, Slab, SlabKey};

use crate::disruption::NoiseBurst;

/// Below this slot count the deferred sweep never runs: the slab is
/// allowed to grow to a small floor before any batched pruning, keeping
/// tiny scenarios on the pure insert path.
const SWEEP_MIN_SLOTS: usize = 64;

/// A frame in the air, gathered as one row. This is the snapshot wire
/// shape — field for field the historical array-of-structs layout — and
/// the unit [`Channel::restore`] scatters back into the split
/// columns/slab storage.
#[derive(Debug, Clone)]
pub(super) struct Flight {
    /// Creation sequence number: slab slots are recycled, so canonical
    /// frame ordering (collision candidate lists, RNG draw order) sorts
    /// by this monotone counter, never by storage index.
    pub(super) seq: u64,
    pub(super) sender: NodeId,
    pub(super) frame: UplinkFrame,
    /// `Some(y)` for a handover aimed at device `y`.
    pub(super) target: Option<NodeId>,
    pub(super) start: SimTime,
    pub(super) end: SimTime,
    /// Sender position at transmission start (quasi-static over ≤0.4 s).
    pub(super) pos: Point,
}

/// The slab-resident cold part of a flight: everything the interferer
/// scan never touches.
#[derive(Debug, Clone)]
pub(super) struct FlightCold {
    pub(super) frame: UplinkFrame,
    /// `Some(y)` for a handover aimed at device `y`.
    pub(super) target: Option<NodeId>,
}

/// The hot fields of one flight, gathered from [`FlightColumns`].
#[derive(Debug, Clone, Copy)]
pub(super) struct FlightHot {
    pub(super) seq: u64,
    pub(super) sender: NodeId,
    pub(super) start: SimTime,
    pub(super) end: SimTime,
    pub(super) pos: Point,
}

/// A borrowed full view of one flight: the hot row copied out of the
/// columns plus the cold slab entry. What the transmission-end
/// resolution paths pass around instead of the old `&Flight`.
#[derive(Debug, Clone, Copy)]
pub(super) struct FlightRef<'a> {
    pub(super) seq: u64,
    pub(super) sender: NodeId,
    pub(super) frame: &'a UplinkFrame,
    pub(super) target: Option<NodeId>,
    pub(super) start: SimTime,
    pub(super) end: SimTime,
    pub(super) pos: Point,
}

/// Struct-of-arrays storage for the per-flight hot fields, indexed by
/// slab slot. `live[i]` distinguishes occupied slots; a vacated slot's
/// other columns keep their last value and are never read.
#[derive(Debug, Default)]
pub(super) struct FlightColumns {
    live: Vec<bool>,
    seq: Vec<u64>,
    sender: Vec<NodeId>,
    start: Vec<SimTime>,
    end: Vec<SimTime>,
    pos: Vec<Point>,
}

impl FlightColumns {
    fn clear(&mut self) {
        self.live.clear();
        self.seq.clear();
        self.sender.clear();
        self.start.clear();
        self.end.clear();
        self.pos.clear();
    }

    /// Grows every column so slot `i` exists (freshly grown slots are
    /// not live).
    fn ensure_slot(&mut self, i: usize) {
        if i >= self.live.len() {
            let n = i + 1;
            self.live.resize(n, false);
            self.seq.resize(n, 0);
            self.sender.resize(n, NodeId::default());
            self.start.resize(n, SimTime::ZERO);
            self.end.resize(n, SimTime::ZERO);
            self.pos.resize(n, Point::new(0.0, 0.0));
        }
    }

    /// Scatters one hot row into slot `i` and marks it live.
    fn set(&mut self, i: usize, hot: FlightHot) {
        self.live[i] = true;
        self.seq[i] = hot.seq;
        self.sender[i] = hot.sender;
        self.start[i] = hot.start;
        self.end[i] = hot.end;
        self.pos[i] = hot.pos;
    }

    /// Gathers the hot row of slot `i` (which must be live).
    fn gather(&self, i: usize) -> FlightHot {
        debug_assert!(self.live[i], "gather from vacant flight slot");
        FlightHot {
            seq: self.seq[i],
            sender: self.sender[i],
            start: self.start[i],
            end: self.end[i],
            pos: self.pos[i],
        }
    }
}

/// What one receiver heard of a subject frame.
#[derive(Debug, Clone, Copy)]
pub(super) struct Reception {
    /// `Some(rssi)` when the subject frame decoded at this receiver
    /// (it won capture over every time-overlapping frame).
    pub(super) rssi: Option<f64>,
    /// True when the subject frame was audible here but lost to
    /// same-channel interference — the collision-counter condition.
    pub(super) interfered: bool,
}

/// The shared radio channel (see the module docs).
#[derive(Debug)]
pub(super) struct Channel {
    /// The shadowing stream: every RSSI draw of the run, in receiver ×
    /// frame order.
    rng: SimRng,
    /// Cold halves of the frames currently (or recently) in the air.
    pub(super) flights: Slab<FlightCold>,
    /// Hot halves, parallel to the slab's slots.
    cols: FlightColumns,
    /// Monotone frame creation counter (see [`Flight::seq`]).
    next_flight_seq: u64,
    /// How long an ended flight stays in the slab: at least the
    /// worst-case frame airtime under the configured PHY, so any frame
    /// still in the air finds every time-overlapping interferer in the
    /// collision scan.
    flight_retention: SimDuration,
    /// Test knob (see the engine probe module): sweep on every
    /// transmission end, reproducing the historical eager prune, so a
    /// property test can pin lazy-vs-eager bit-equality.
    pub(super) eager_prune: bool,
    /// Scratch: time-overlapping flights as `(seq, position)`.
    pub(super) scratch_overlaps: Vec<(u64, Point)>,
    /// Scratch: the subset of `scratch_overlaps` close enough to the
    /// sender to be audible at *some* device receiver.
    pub(super) scratch_near_overlaps: Vec<(u64, Point)>,
    /// Scratch: per-receiver collision candidates as `(seq, rssi)`.
    scratch_rssi: Vec<(u64, f64)>,
    /// Indices of currently active noise bursts, in activation order.
    active_noise: Vec<u32>,
    /// The scenario's noise-burst table (indexed by `active_noise`).
    noise_bursts: Vec<NoiseBurst>,
    /// Path-loss + shadowing model.
    path_loss: LogDistanceModel,
    /// Decode sensitivity, dBm.
    sensitivity_dbm: f64,
    /// Transmit power, dBm.
    tx_power_dbm: f64,
}

impl Channel {
    pub(super) fn new(
        rng: SimRng,
        flight_retention: SimDuration,
        noise_bursts: Vec<NoiseBurst>,
        path_loss: LogDistanceModel,
        sensitivity_dbm: f64,
        tx_power_dbm: f64,
    ) -> Self {
        Channel {
            rng,
            flights: Slab::new(),
            cols: FlightColumns::default(),
            next_flight_seq: 0,
            flight_retention,
            eager_prune: false,
            scratch_overlaps: Vec::new(),
            scratch_near_overlaps: Vec::new(),
            scratch_rssi: Vec::new(),
            active_noise: Vec::new(),
            noise_bursts,
            path_loss,
            sensitivity_dbm,
            tx_power_dbm,
        }
    }

    /// The legacy per-device generation-phase draw. The paper-default
    /// workload draws its phase from the channel stream — the historical
    /// behaviour, kept so seeded runs stay bit-identical.
    pub(super) fn legacy_phase_ms(&mut self, max_exclusive: u64) -> u64 {
        self.rng.gen_range_u64(0, max_exclusive)
    }

    /// Sequence number of the most recently launched flight.
    ///
    /// # Panics
    ///
    /// Panics if nothing has launched yet.
    pub(super) fn last_launched_seq(&self) -> u64 {
        self.next_flight_seq
            .checked_sub(1)
            .expect("no flight launched yet")
    }

    /// Puts a frame on the air; returns its slab key for the
    /// transmission-end event.
    ///
    /// When the insert is about to grow the slab past a power-of-two
    /// slot count, the deferred sweep runs first (see the module docs) —
    /// the only place expired flights are reclaimed on the default path.
    pub(super) fn launch(
        &mut self,
        sender: NodeId,
        frame: UplinkFrame,
        target: Option<NodeId>,
        start: SimTime,
        end: SimTime,
        pos: Point,
    ) -> SlabKey {
        self.maybe_sweep(start);
        let seq = self.next_flight_seq;
        self.next_flight_seq += 1;
        let key = self.flights.insert(FlightCold { frame, target });
        let i = key.index();
        self.cols.ensure_slot(i);
        self.cols.set(
            i,
            FlightHot {
                seq,
                sender,
                start,
                end,
                pos,
            },
        );
        key
    }

    /// Runs the deferred sweep when the next insert would grow the slab
    /// past a power-of-two slot count (≥ [`SWEEP_MIN_SLOTS`]). The
    /// trigger reads only slab layout and event time — both
    /// checkpointed — so a resumed run reproduces the exact sweep (and
    /// therefore slot-assignment) schedule of the uninterrupted one.
    fn maybe_sweep(&mut self, now: SimTime) {
        let slots = self.flights.slot_count();
        if self.flights.has_free_slot() || slots < SWEEP_MIN_SLOTS || !slots.is_power_of_two() {
            return;
        }
        self.sweep(now);
    }

    /// Reclaims every flight that can no longer overlap anything;
    /// vacated slab slots are recycled by later transmissions. Safe at
    /// any event time: a reclaimed flight (`end + retention < now`)
    /// fails the time-overlap filter against every frame still in the
    /// air, so deferring or batching sweeps never changes an interferer
    /// set.
    pub(super) fn sweep(&mut self, now: SimTime) {
        let retention = self.flight_retention;
        let cols = &mut self.cols;
        self.flights.retain(|key, _| {
            let i = key.index();
            if cols.end[i] + retention >= now {
                true
            } else {
                cols.live[i] = false;
                false
            }
        });
    }

    /// Collects the frames overlapping `(start, end)` in time (including
    /// the subject itself) into `out`, in creation order: storage order
    /// must not leak into RNG draw order. One pass over the contiguous
    /// hot columns.
    pub(super) fn overlaps_into(&self, start: SimTime, end: SimTime, out: &mut Vec<(u64, Point)>) {
        out.clear();
        let cols = &self.cols;
        for i in 0..cols.live.len() {
            if cols.live[i] && cols.start[i] < end && cols.end[i] > start {
                out.push((cols.seq[i], cols.pos[i]));
            }
        }
        out.sort_unstable_by_key(|&(seq, _)| seq);
    }

    /// The hot row behind `key`, if the key is still valid.
    pub(super) fn flight_hot(&self, key: SlabKey) -> Option<FlightHot> {
        self.flights.get(key).map(|_| self.cols.gather(key.index()))
    }

    /// Hot rows of every live flight, in slot order.
    pub(super) fn iter_hot(&self) -> impl Iterator<Item = FlightHot> + '_ {
        self.flights
            .iter()
            .map(|(key, _)| self.cols.gather(key.index()))
    }

    /// Every slab slot in index order as `(generation, row)`, vacant
    /// slots included: the capture counterpart of [`Channel::restore`].
    /// Rows are gathered back into the historical array-of-structs view
    /// so the snapshot wire format is unchanged by the split layout.
    pub(super) fn raw_flight_slots(
        &self,
    ) -> impl Iterator<Item = (u32, Option<FlightRef<'_>>)> + '_ {
        self.flights
            .raw_slots()
            .enumerate()
            .map(|(i, (generation, cold))| {
                let row = cold.map(|cold| {
                    let hot = self.cols.gather(i);
                    FlightRef {
                        seq: hot.seq,
                        sender: hot.sender,
                        frame: &cold.frame,
                        target: cold.target,
                        start: hot.start,
                        end: hot.end,
                        pos: hot.pos,
                    }
                });
                (generation, row)
            })
    }

    /// The flight slab's free list (checkpoint counterpart of
    /// [`Channel::restore`]).
    pub(super) fn flight_free_list(&self) -> &[u32] {
        self.flights.free_list()
    }

    /// Total flight slab slots, vacant included.
    pub(super) fn flight_slot_count(&self) -> usize {
        self.flights.slot_count()
    }

    /// A noise burst became active.
    pub(super) fn noise_start(&mut self, burst: u32) {
        self.active_noise.push(burst);
    }

    /// A noise burst ended.
    pub(super) fn noise_end(&mut self, burst: u32) {
        self.active_noise.retain(|&b| b != burst);
    }

    /// Total RSSI penalty (dB) from active noise bursts covering `pos`.
    /// Zero — and allocation- and draw-free — when no burst is active.
    fn noise_penalty_at(&self, pos: Point) -> f64 {
        if self.active_noise.is_empty() {
            return 0.0;
        }
        let mut penalty = 0.0;
        for &b in &self.active_noise {
            let burst = &self.noise_bursts[b as usize];
            if burst.center.distance(pos) <= burst.radius_m {
                penalty += burst.extra_loss_db;
            }
        }
        penalty
    }

    /// Resolves reception of the subject frame `flight_seq` at one
    /// receiver: samples shadowed RSSI for every overlapping frame whose
    /// sender is within `range` of `at` (one RNG draw each, in creation
    /// order — identical for gateway and device receivers), applies any
    /// regional noise at the receiver, and runs capture-model collision
    /// resolution over the audible set.
    pub(super) fn receive(
        &mut self,
        overlaps: &[(u64, Point)],
        at: Point,
        range: f64,
        flight_seq: u64,
    ) -> Reception {
        let noise_db = self.noise_penalty_at(at);
        self.scratch_rssi.clear();
        let mut flight_rssi = None;
        for &(seq, pos) in overlaps {
            let dist = at.distance(pos);
            if dist > range {
                continue;
            }
            let rssi = self.path_loss.sample_rssi_dbm_attenuated(
                self.tx_power_dbm,
                dist,
                noise_db,
                &mut self.rng,
            );
            if seq == flight_seq {
                flight_rssi = Some(rssi);
            }
            self.scratch_rssi.push((seq, rssi));
        }
        self.resolve_reception(flight_seq, flight_rssi)
    }

    /// [`Channel::receive`] for the sharded engine: the audible-set scan
    /// is replaced by a shard-precomputed interferer slice (`planned`,
    /// in ascending sequence order, means already computed) followed by
    /// the commit thread's recent-launch entries (`dynamic`, sequence
    /// numbers above every planned one — frames launched after the
    /// subject's plan was requested). The concatenation reproduces the
    /// serial scan's ascending-sequence draw order, and each planned
    /// mean recombines with a fresh shadowing draw via
    /// [`LogDistanceModel::compose_rssi_dbm`] bit-identically to the
    /// fused sampling path.
    pub(super) fn receive_planned(
        &mut self,
        planned: &[(u64, f64)],
        dynamic: &[(u64, Point)],
        at: Point,
        range: f64,
        flight_seq: u64,
    ) -> Reception {
        let noise_db = self.noise_penalty_at(at);
        self.scratch_rssi.clear();
        let mut flight_rssi = None;
        for &(seq, mean_dbm) in planned {
            let rssi = LogDistanceModel::compose_rssi_dbm(
                mean_dbm,
                self.path_loss.shadow_db(&mut self.rng),
                noise_db,
            );
            if seq == flight_seq {
                flight_rssi = Some(rssi);
            }
            self.scratch_rssi.push((seq, rssi));
        }
        for &(seq, pos) in dynamic {
            let dist = at.distance(pos);
            if dist > range {
                continue;
            }
            let rssi = LogDistanceModel::compose_rssi_dbm(
                self.path_loss.mean_rssi_dbm(self.tx_power_dbm, dist),
                self.path_loss.shadow_db(&mut self.rng),
                noise_db,
            );
            if seq == flight_seq {
                flight_rssi = Some(rssi);
            }
            self.scratch_rssi.push((seq, rssi));
        }
        self.resolve_reception(flight_seq, flight_rssi)
    }

    /// The channel's checkpoint state: the shadowing-stream RNG words,
    /// the monotone flight counter and the active-noise stack (in
    /// activation order). The flight slab is read via
    /// [`Channel::raw_flight_slots`] / [`Channel::flight_free_list`].
    pub(super) fn checkpoint_parts(&self) -> ((u64, [u64; 4]), u64, &[u32]) {
        (self.rng.state(), self.next_flight_seq, &self.active_noise)
    }

    /// Restores the state captured by [`Channel::checkpoint_parts`] plus
    /// the flight slab: rows from the snapshot are scattered back into
    /// the cold slab + hot columns. The static tables (noise bursts,
    /// path loss, retention) are reconstructed from the scenario config
    /// and stay untouched.
    pub(super) fn restore(
        &mut self,
        rng: SimRng,
        slots: Vec<(u32, Option<Flight>)>,
        free: Vec<u32>,
        next_flight_seq: u64,
        active_noise: Vec<u32>,
    ) {
        self.cols.clear();
        let cold_slots: Vec<(u32, Option<FlightCold>)> = slots
            .into_iter()
            .enumerate()
            .map(|(i, (generation, row))| {
                self.cols.ensure_slot(i);
                let cold = row.map(|f| {
                    self.cols.set(
                        i,
                        FlightHot {
                            seq: f.seq,
                            sender: f.sender,
                            start: f.start,
                            end: f.end,
                            pos: f.pos,
                        },
                    );
                    FlightCold {
                        frame: f.frame,
                        target: f.target,
                    }
                });
                (generation, cold)
            })
            .collect();
        self.rng = rng;
        self.flights = Slab::from_raw_parts(cold_slots, free);
        self.next_flight_seq = next_flight_seq;
        self.active_noise = active_noise;
    }

    /// Shared tail of the reception paths: capture-model resolution over
    /// the collected audible set.
    fn resolve_reception(&mut self, flight_seq: u64, flight_rssi: Option<f64>) -> Reception {
        let decoded = matches!(
            resolve_collision(&self.scratch_rssi, self.sensitivity_dbm, CAPTURE_MARGIN_DB),
            Some(winner) if winner == flight_seq
        );
        let interfered = !decoded && self.scratch_rssi.len() > 1 && flight_rssi.is_some();
        Reception {
            rssi: if decoded {
                Some(flight_rssi.expect("winner has an RSSI"))
            } else {
                None
            },
            interfered,
        }
    }
}
