//! The shared radio channel: frames in flight, RSSI sampling, regional
//! noise and capture-model collision resolution.
//!
//! [`Channel`] owns the one RNG stream every shadowing draw comes from
//! (fork 12 of the master seed — the stream the historical engine used,
//! so an identically seeded run reproduces the golden fixtures bit for
//! bit), the generational flight slab with its monotone creation
//! sequence, and the per-receiver RSSI scratch buffer. Reception at any
//! receiver — gateway or neighbouring device — goes through one method,
//! [`Channel::receive`], so the capture rule, the noise model and the
//! RNG draw order cannot drift apart between the two resolution paths.

use mlora_geo::Point;
use mlora_mac::UplinkFrame;
use mlora_phy::{resolve_collision, LogDistanceModel, CAPTURE_MARGIN_DB};
use mlora_simcore::{NodeId, SimDuration, SimRng, SimTime, Slab, SlabKey};

use crate::disruption::NoiseBurst;

/// A frame in the air.
#[derive(Debug, Clone)]
pub(super) struct Flight {
    /// Creation sequence number: slab slots are recycled, so canonical
    /// frame ordering (collision candidate lists, RNG draw order) sorts
    /// by this monotone counter, never by storage index.
    pub(super) seq: u64,
    pub(super) sender: NodeId,
    pub(super) frame: UplinkFrame,
    /// `Some(y)` for a handover aimed at device `y`.
    pub(super) target: Option<NodeId>,
    pub(super) start: SimTime,
    pub(super) end: SimTime,
    /// Sender position at transmission start (quasi-static over ≤0.4 s).
    pub(super) pos: Point,
}

/// What one receiver heard of a subject frame.
#[derive(Debug, Clone, Copy)]
pub(super) struct Reception {
    /// `Some(rssi)` when the subject frame decoded at this receiver
    /// (it won capture over every time-overlapping frame).
    pub(super) rssi: Option<f64>,
    /// True when the subject frame was audible here but lost to
    /// same-channel interference — the collision-counter condition.
    pub(super) interfered: bool,
}

/// The shared radio channel (see the module docs).
#[derive(Debug)]
pub(super) struct Channel {
    /// The shadowing stream: every RSSI draw of the run, in receiver ×
    /// frame order.
    rng: SimRng,
    /// Frames currently (or recently) in the air.
    pub(super) flights: Slab<Flight>,
    /// Monotone frame creation counter (see [`Flight::seq`]).
    next_flight_seq: u64,
    /// How long an ended flight stays in the slab: at least the
    /// worst-case frame airtime under the configured PHY, so any frame
    /// still in the air finds every time-overlapping interferer in the
    /// collision scan.
    flight_retention: SimDuration,
    /// Scratch: time-overlapping flights as `(seq, position)`.
    pub(super) scratch_overlaps: Vec<(u64, Point)>,
    /// Scratch: the subset of `scratch_overlaps` close enough to the
    /// sender to be audible at *some* device receiver.
    pub(super) scratch_near_overlaps: Vec<(u64, Point)>,
    /// Scratch: per-receiver collision candidates as `(seq, rssi)`.
    scratch_rssi: Vec<(u64, f64)>,
    /// Indices of currently active noise bursts, in activation order.
    active_noise: Vec<u32>,
    /// The scenario's noise-burst table (indexed by `active_noise`).
    noise_bursts: Vec<NoiseBurst>,
    /// Path-loss + shadowing model.
    path_loss: LogDistanceModel,
    /// Decode sensitivity, dBm.
    sensitivity_dbm: f64,
    /// Transmit power, dBm.
    tx_power_dbm: f64,
}

impl Channel {
    pub(super) fn new(
        rng: SimRng,
        flight_retention: SimDuration,
        noise_bursts: Vec<NoiseBurst>,
        path_loss: LogDistanceModel,
        sensitivity_dbm: f64,
        tx_power_dbm: f64,
    ) -> Self {
        Channel {
            rng,
            flights: Slab::new(),
            next_flight_seq: 0,
            flight_retention,
            scratch_overlaps: Vec::new(),
            scratch_near_overlaps: Vec::new(),
            scratch_rssi: Vec::new(),
            active_noise: Vec::new(),
            noise_bursts,
            path_loss,
            sensitivity_dbm,
            tx_power_dbm,
        }
    }

    /// The legacy per-device generation-phase draw. The paper-default
    /// workload draws its phase from the channel stream — the historical
    /// behaviour, kept so seeded runs stay bit-identical.
    pub(super) fn legacy_phase_ms(&mut self, max_exclusive: u64) -> u64 {
        self.rng.gen_range_u64(0, max_exclusive)
    }

    /// Sequence number of the most recently launched flight.
    ///
    /// # Panics
    ///
    /// Panics if nothing has launched yet.
    pub(super) fn last_launched_seq(&self) -> u64 {
        self.next_flight_seq
            .checked_sub(1)
            .expect("no flight launched yet")
    }

    /// Puts a frame on the air; returns its slab key for the
    /// transmission-end event.
    pub(super) fn launch(
        &mut self,
        sender: NodeId,
        frame: UplinkFrame,
        target: Option<NodeId>,
        start: SimTime,
        end: SimTime,
        pos: Point,
    ) -> SlabKey {
        let seq = self.next_flight_seq;
        self.next_flight_seq += 1;
        self.flights.insert(Flight {
            seq,
            sender,
            frame,
            target,
            start,
            end,
            pos,
        })
    }

    /// Prunes flights that can no longer overlap anything; vacated slab
    /// slots are recycled by later transmissions.
    pub(super) fn prune(&mut self, now: SimTime) {
        let retention = self.flight_retention;
        self.flights.retain(|_, f| f.end + retention >= now);
    }

    /// Collects the frames overlapping `flight` in time (including
    /// itself) into `out`, in creation order: storage order must not
    /// leak into RNG draw order.
    pub(super) fn overlaps_into(
        flights: &Slab<Flight>,
        flight: &Flight,
        out: &mut Vec<(u64, Point)>,
    ) {
        out.clear();
        out.extend(
            flights
                .iter()
                .filter(|(_, f)| f.start < flight.end && f.end > flight.start)
                .map(|(_, f)| (f.seq, f.pos)),
        );
        out.sort_unstable_by_key(|&(seq, _)| seq);
    }

    /// A noise burst became active.
    pub(super) fn noise_start(&mut self, burst: u32) {
        self.active_noise.push(burst);
    }

    /// A noise burst ended.
    pub(super) fn noise_end(&mut self, burst: u32) {
        self.active_noise.retain(|&b| b != burst);
    }

    /// Total RSSI penalty (dB) from active noise bursts covering `pos`.
    /// Zero — and allocation- and draw-free — when no burst is active.
    fn noise_penalty_at(&self, pos: Point) -> f64 {
        if self.active_noise.is_empty() {
            return 0.0;
        }
        let mut penalty = 0.0;
        for &b in &self.active_noise {
            let burst = &self.noise_bursts[b as usize];
            if burst.center.distance(pos) <= burst.radius_m {
                penalty += burst.extra_loss_db;
            }
        }
        penalty
    }

    /// Resolves reception of the subject frame `flight_seq` at one
    /// receiver: samples shadowed RSSI for every overlapping frame whose
    /// sender is within `range` of `at` (one RNG draw each, in creation
    /// order — identical for gateway and device receivers), applies any
    /// regional noise at the receiver, and runs capture-model collision
    /// resolution over the audible set.
    pub(super) fn receive(
        &mut self,
        overlaps: &[(u64, Point)],
        at: Point,
        range: f64,
        flight_seq: u64,
    ) -> Reception {
        let noise_db = self.noise_penalty_at(at);
        self.scratch_rssi.clear();
        let mut flight_rssi = None;
        for &(seq, pos) in overlaps {
            let dist = at.distance(pos);
            if dist > range {
                continue;
            }
            let rssi = self.path_loss.sample_rssi_dbm_attenuated(
                self.tx_power_dbm,
                dist,
                noise_db,
                &mut self.rng,
            );
            if seq == flight_seq {
                flight_rssi = Some(rssi);
            }
            self.scratch_rssi.push((seq, rssi));
        }
        self.resolve_reception(flight_seq, flight_rssi)
    }

    /// [`Channel::receive`] for the sharded engine: the audible-set scan
    /// is replaced by a shard-precomputed interferer slice (`planned`,
    /// in ascending sequence order, means already computed) followed by
    /// the commit thread's recent-launch entries (`dynamic`, sequence
    /// numbers above every planned one — frames launched after the
    /// subject's plan was requested). The concatenation reproduces the
    /// serial scan's ascending-sequence draw order, and each planned
    /// mean recombines with a fresh shadowing draw via
    /// [`LogDistanceModel::compose_rssi_dbm`] bit-identically to the
    /// fused sampling path.
    pub(super) fn receive_planned(
        &mut self,
        planned: &[(u64, f64)],
        dynamic: &[(u64, Point)],
        at: Point,
        range: f64,
        flight_seq: u64,
    ) -> Reception {
        let noise_db = self.noise_penalty_at(at);
        self.scratch_rssi.clear();
        let mut flight_rssi = None;
        for &(seq, mean_dbm) in planned {
            let rssi = LogDistanceModel::compose_rssi_dbm(
                mean_dbm,
                self.path_loss.shadow_db(&mut self.rng),
                noise_db,
            );
            if seq == flight_seq {
                flight_rssi = Some(rssi);
            }
            self.scratch_rssi.push((seq, rssi));
        }
        for &(seq, pos) in dynamic {
            let dist = at.distance(pos);
            if dist > range {
                continue;
            }
            let rssi = LogDistanceModel::compose_rssi_dbm(
                self.path_loss.mean_rssi_dbm(self.tx_power_dbm, dist),
                self.path_loss.shadow_db(&mut self.rng),
                noise_db,
            );
            if seq == flight_seq {
                flight_rssi = Some(rssi);
            }
            self.scratch_rssi.push((seq, rssi));
        }
        self.resolve_reception(flight_seq, flight_rssi)
    }

    /// The channel's checkpoint state: the shadowing-stream RNG words,
    /// the monotone flight counter and the active-noise stack (in
    /// activation order). The flight slab is read directly — it is
    /// already exposed to the engine.
    pub(super) fn checkpoint_parts(&self) -> ((u64, [u64; 4]), u64, &[u32]) {
        (self.rng.state(), self.next_flight_seq, &self.active_noise)
    }

    /// Restores the state captured by [`Channel::checkpoint_parts`] plus
    /// the flight slab. The static tables (noise bursts, path loss,
    /// retention) are reconstructed from the scenario config and stay
    /// untouched.
    pub(super) fn restore(
        &mut self,
        rng: SimRng,
        flights: Slab<Flight>,
        next_flight_seq: u64,
        active_noise: Vec<u32>,
    ) {
        self.rng = rng;
        self.flights = flights;
        self.next_flight_seq = next_flight_seq;
        self.active_noise = active_noise;
    }

    /// Shared tail of the reception paths: capture-model resolution over
    /// the collected audible set.
    fn resolve_reception(&mut self, flight_seq: u64, flight_rssi: Option<f64>) -> Reception {
        let decoded = matches!(
            resolve_collision(&self.scratch_rssi, self.sensitivity_dbm, CAPTURE_MARGIN_DB),
            Some(winner) if winner == flight_seq
        );
        let interfered = !decoded && self.scratch_rssi.len() > 1 && flight_rssi.is_some();
        Reception {
            rssi: if decoded {
                Some(flight_rssi.expect("winner has an RSSI"))
            } else {
                None
            },
            interfered,
        }
    }
}
