//! Hidden instrumentation hooks for the engine's hot paths.
//!
//! The counting-allocator tests (`crates/sim/tests/engine_alloc.rs`) and
//! the `micro_engine` benches need to drive the flight-column scan and
//! the shard worker's batched prefilter in isolation, without standing
//! up a full engine run. This module packages those paths behind two
//! self-contained drivers — [`FlightScanProbe`] over the serial
//! [`Channel`] and [`WorkerProbe`] over a single [`ShardWorker`] — plus
//! the [`set_eager_flight_prune`] knob the lazy-vs-eager pruning
//! proptest uses to force the historical per-event sweep.
//!
//! Everything here is `#[doc(hidden)]`: the shapes below track engine
//! internals and carry no stability promise.

// The module is doc(hidden) and its docs legitimately reference private
// engine internals; don't let rustdoc's public-link lint reject them.
#![allow(rustdoc::private_intra_doc_links)]

use std::sync::Arc;

use mlora_geo::Point;
use mlora_mac::UplinkFrame;
use mlora_mobility::{BusNetwork, BusNetworkConfig, DiurnalProfile};
use mlora_phy::LogDistanceModel;
use mlora_simcore::{NodeId, SimDuration, SimRng, SimTime};

use super::channel::Channel;
use super::comm::{ShardParams, ShardWorker};
use super::partition::Partition;
use super::Engine;

/// Forces (or clears) the historical eager per-TxEnd flight sweep on a
/// built engine. Default is the lazy growth-boundary sweep; the pruning
/// proptest runs every scenario both ways and requires bit-identical
/// reports.
pub fn set_eager_flight_prune(engine: &mut Engine, eager: bool) {
    engine.channel.eager_prune = eager;
}

/// Drives the serial channel's hot loop — launch, contiguous
/// time-overlap scan over [`FlightColumns`], the near-overlap cut and
/// capture resolution — with steadily advancing time so the deferred
/// slab sweep triggers and slots recycle. After a warm-up round the
/// whole cycle is allocation-free, which `engine_alloc.rs` pins.
///
/// [`FlightColumns`]: super::channel::FlightColumns
#[derive(Debug)]
pub struct FlightScanProbe {
    channel: Channel,
    now: SimTime,
    airtime: SimDuration,
    wave: usize,
    senders: u32,
    overlaps: Vec<(u64, Point)>,
    near: Vec<(u64, Point)>,
}

impl FlightScanProbe {
    /// A probe launching `wave` concurrent flights per round.
    pub fn new(seed: u64, wave: usize) -> FlightScanProbe {
        FlightScanProbe {
            channel: Channel::new(
                SimRng::new(seed).fork(12),
                SimDuration::from_secs(2),
                Vec::new(),
                LogDistanceModel::paper_default(),
                -123.0,
                14.0,
            ),
            now: SimTime::ZERO,
            airtime: SimDuration::from_millis(370),
            wave,
            senders: 0,
            overlaps: Vec::new(),
            near: Vec::new(),
        }
    }

    /// Runs `rounds` launch/scan/receive cycles and folds the reception
    /// outcomes into a checksum (so the work cannot be optimised away).
    pub fn churn(&mut self, rounds: usize) -> u64 {
        let mut digest = 0u64;
        for _ in 0..rounds {
            let start = self.now;
            let end = start + self.airtime;
            for j in 0..self.wave {
                // Spread the wave over a ~1.5 km disc so some flights
                // survive the near cut and some do not.
                let k = (self.senders as usize + j) % 17;
                let pos = Point::new(100.0 * k as f64, 60.0 * (k as f64 - 8.0));
                let frame = UplinkFrame {
                    sender: NodeId::new(self.senders),
                    messages: Vec::new(),
                    rca_etx: 1.0,
                    queue_len: 0,
                };
                self.channel
                    .launch(NodeId::new(self.senders), frame, None, start, end, pos);
                self.senders = self.senders.wrapping_add(1);
            }
            let subject_seq = self.channel.last_launched_seq();
            self.channel.overlaps_into(start, end, &mut self.overlaps);
            digest = digest.wrapping_add(self.overlaps.len() as u64);
            // The serial engine's near-overlap cut, at a receiver-side
            // range of 500 m (urban device-to-device).
            let at = Point::new(250.0, 0.0);
            let reach = 2.0 * 500.0 + 1.0;
            let reach_sq = reach * reach;
            self.near.clear();
            self.near.extend(
                self.overlaps
                    .iter()
                    .filter(|&&(_, pos)| pos.distance_sq(at) <= reach_sq)
                    .copied(),
            );
            let reception = self.channel.receive(&self.near, at, 500.0, subject_seq);
            digest = digest
                .wrapping_mul(31)
                .wrapping_add(reception.rssi.is_some() as u64)
                .wrapping_add((reception.interfered as u64) << 1);
            self.now += SimDuration::from_millis(400);
        }
        digest
    }
}

/// A compressed view of a [`FlightPlan`](super::comm::FlightPlan) for
/// equivalence checks and bench digests.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDigest {
    /// In-range gateway count.
    pub gateways: usize,
    /// Exact-range neighbour candidate count.
    pub candidates: usize,
    /// Total interferer entries across all receivers.
    pub interferers: usize,
    /// Sum of every planned interferer mean RSSI.
    pub rssi_sum: f64,
}

/// Drives one [`ShardWorker`]'s plan computation over a real generated
/// bus network, comparing the batched prefilter path against the
/// per-flight reference walk and exposing the allocation-free prefilter
/// core for the counting tests.
#[derive(Debug)]
pub struct WorkerProbe {
    worker: ShardWorker,
    /// The subject transmission: an active bus at `start`.
    sender: NodeId,
    pos: Point,
    start: SimTime,
    end: SimTime,
    next_seq: u64,
}

impl WorkerProbe {
    /// Builds a single-shard worker over a generated network with
    /// `buses` active vehicles, seeds its membership grid with every
    /// bus active at the probe instant and puts `flights` frames on the
    /// air around the subject.
    pub fn new(seed: u64, buses: usize, flights: usize) -> WorkerProbe {
        let cfg = BusNetworkConfig {
            area_side_m: 10_000.0,
            num_routes: 24,
            max_active_buses: buses,
            horizon: SimDuration::from_hours(2),
            profile: DiurnalProfile::flat(1.0),
            ..BusNetworkConfig::default()
        };
        let net = Arc::new(BusNetwork::generate(
            &cfg,
            SimRng::new(seed).fork(11).seed(),
        ));
        let airtime = SimDuration::from_millis(370);
        let part = Arc::new(Partition::new(
            net.area(),
            1,
            500.0,
            2_000.0,
            cfg.max_speed_mps,
            airtime,
        ));
        let mut departures: Vec<(SimTime, NodeId)> =
            net.trips().iter().map(|t| (t.depart(), t.node())).collect();
        departures.sort_unstable_by_key(|&(t, n)| (t, n.index()));
        // A 3×3 gateway grid over the area, as `place_gateways` would.
        let side = cfg.area_side_m;
        let mut gateways = Vec::new();
        for gy in 0..3u32 {
            for gx in 0..3u32 {
                let gpos = Point::new(
                    side * (2 * gx + 1) as f64 / 6.0,
                    side * (2 * gy + 1) as f64 / 6.0,
                );
                gateways.push((gy * 3 + gx, gpos));
            }
        }
        let mut worker = ShardWorker::new(
            0,
            part,
            Arc::clone(&net),
            Arc::new(departures),
            gateways,
            ShardParams {
                d2d_range_m: 500.0,
                gateway_range_m: 2_000.0,
                tx_power_dbm: 14.0,
                path_loss: LogDistanceModel::paper_default(),
                flight_retention: SimDuration::from_secs(2),
            },
        );
        // Membership as of a mid-run barrier: every trip active at t0.
        let t0 = SimTime::from_secs(20 * 60);
        let mut hint = 0u32;
        let mut active: Vec<(NodeId, Point)> = net
            .trips()
            .iter()
            .filter(|t| t.depart() <= t0 && t.end() > t0)
            .map(|t| {
                hint = 0;
                (t.node(), net.position_hinted(t.node(), t0, &mut hint))
            })
            .collect();
        active.sort_unstable_by_key(|&(n, _)| n.index());
        assert!(
            !active.is_empty(),
            "probe network has no active bus at the query instant"
        );
        for &(n, p) in &active {
            worker.probe_track(n, p);
        }
        let (sender, pos) = active[0];
        let start = t0;
        let end = t0 + airtime;
        // Tile-local flights: half overlap the subject's window, half
        // are already stale, at positions cycling over the active set.
        for seq in 0..flights as u64 {
            let (_, fpos) = active[seq as usize % active.len()];
            let (fs, fe) = if seq % 2 == 0 {
                (start, end)
            } else {
                (
                    start - SimDuration::from_secs(10),
                    start - SimDuration::from_secs(9),
                )
            };
            worker.probe_flight(seq, fpos, fs, fe);
        }
        WorkerProbe {
            worker,
            sender,
            pos,
            start,
            end,
            next_seq: flights as u64,
        }
    }

    /// One batched-prefilter pass — overlap collection, the gateway and
    /// device near cuts, the bucket-sweep candidate scan and the
    /// exact-range candidate walk — with no per-plan output allocation.
    /// Allocation-free after the first call.
    pub fn prefilter(&mut self) -> (usize, f64) {
        self.worker
            .probe_prefilter(self.sender, self.pos, self.start, self.end)
    }

    /// A full plan through the batched prefilter path.
    pub fn plan_batched(&mut self) -> PlanDigest {
        let seq = self.next_seq;
        self.next_seq += 1;
        let plan = self
            .worker
            .probe_plan(seq, self.sender, self.pos, self.start, self.end);
        Self::digest(&plan)
    }

    /// The same plan through the pre-batched per-flight reference walk
    /// (grid `within_into` plus a full overlap scan per receiver). Must
    /// produce a digest identical to [`WorkerProbe::plan_batched`].
    pub fn plan_reference(&mut self) -> PlanDigest {
        let seq = self.next_seq;
        self.next_seq += 1;
        let plan =
            self.worker
                .probe_plan_reference(seq, self.sender, self.pos, self.start, self.end);
        Self::digest(&plan)
    }

    fn digest(plan: &super::comm::FlightPlan) -> PlanDigest {
        let mut rssi_sum = 0.0;
        for &(_, mean_rssi_dbm) in &plan.interferers {
            rssi_sum += mean_rssi_dbm;
        }
        PlanDigest {
            gateways: plan.gateways.len(),
            candidates: plan.candidates.len(),
            interferers: plan.interferers.len(),
            rssi_sum,
        }
    }
}
