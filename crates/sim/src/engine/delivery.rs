//! The sink side: gateway deployment, outage state, server-side
//! delivery and the run's metric collector.
//!
//! [`Delivery`] owns the static gateway grid (incrementally mutated by
//! scripted outages/recoveries), the per-gateway outage depths and the
//! [`Collector`] every metric funnels into. Gateway-side reception
//! resolves through the shared [`Channel`](super::channel::Channel) so
//! the RNG draw order matches the historical full-scan engine bit for
//! bit.

use mlora_geo::{BBox, GridIndex, Point};
use mlora_mac::AppMessage;
use mlora_simcore::SimTime;

use super::channel::{Channel, FlightRef};
use super::comm::FlightPlan;
use crate::metrics::Collector;
use crate::observer::{GatewayOutageChanged, MessageDelivered, SimObserver};

/// The sink side of the world (see the module docs).
#[derive(Debug)]
pub(super) struct Delivery {
    /// The run's metric funnel.
    pub(super) collector: Collector,
    /// Gateway positions (index-stable for the whole run).
    gateways: Vec<Point>,
    /// Static spatial index over gateway positions (by gateway index);
    /// downed gateways are removed and re-inserted on recovery.
    gateway_grid: GridIndex<u32>,
    /// Per-gateway outage depth: 0 = in service. A depth (not a flag)
    /// so overlapping outage windows on one gateway compose.
    gateway_down_depth: Vec<u32>,
    /// Device-to-gateway range, metres.
    gateway_range_m: f64,
    /// Scratch: raw gateway-grid query output.
    scratch_within_gw: Vec<(u32, Point)>,
    /// Scratch: indices of gateways near a sender.
    scratch_gateways: Vec<u32>,
}

impl Delivery {
    pub(super) fn new(gateways: Vec<Point>, gateway_range_m: f64, collector: Collector) -> Self {
        let gateway_grid = GridIndex::build(
            gateways.iter().enumerate().map(|(i, &p)| (i as u32, p)),
            gateway_range_m.max(200.0),
        );
        let num_gateways = gateways.len();
        Delivery {
            collector,
            gateways,
            gateway_grid,
            gateway_down_depth: vec![0; num_gateways],
            gateway_range_m,
            scratch_within_gw: Vec::new(),
            scratch_gateways: Vec::new(),
        }
    }

    /// The gateway positions in use.
    pub(super) fn gateways(&self) -> &[Point] {
        &self.gateways
    }

    /// Which gateways are in service: `true` means up.
    pub(super) fn gateways_up(&self) -> Vec<bool> {
        self.gateway_down_depth.iter().map(|&d| d == 0).collect()
    }

    /// Applies a scripted gateway failure; depth counting makes
    /// overlapping windows compose.
    pub(super) fn gateway_down(
        &mut self,
        gateway: u32,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        let g = gateway as usize;
        self.gateway_down_depth[g] += 1;
        if self.gateway_down_depth[g] == 1 {
            let removed = self.gateway_grid.remove(gateway, self.gateways[g]);
            debug_assert!(removed, "downed gateway missing from grid");
            self.collector.on_gateway_down(now);
            observer.on_gateway_outage(&GatewayOutageChanged {
                time: now,
                gateway,
                down: true,
            });
        }
    }

    /// Applies a scripted gateway recovery.
    pub(super) fn gateway_up(
        &mut self,
        gateway: u32,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        let g = gateway as usize;
        debug_assert!(self.gateway_down_depth[g] > 0, "recovery without outage");
        self.gateway_down_depth[g] -= 1;
        if self.gateway_down_depth[g] == 0 {
            self.gateway_grid.insert(gateway, self.gateways[g]);
            self.collector.on_gateway_up(now);
            observer.on_gateway_outage(&GatewayOutageChanged {
                time: now,
                gateway,
                down: false,
            });
        }
    }

    /// Resolves reception at every in-service gateway; returns the best
    /// RSSI among gateways that decoded this flight, if any. Lost-to-
    /// interference receptions are counted on the collector.
    pub(super) fn resolve_gateways(
        &mut self,
        channel: &mut Channel,
        overlaps: &[(u64, Point)],
        flight: FlightRef<'_>,
    ) -> Option<f64> {
        let range = self.gateway_range_m;
        let mut best: Option<f64> = None;
        // Gateways are static: the grid narrows the scan to the cells
        // around the sender. Grid order is (cell key, id) — id-sorted
        // only *within* each cell — so the explicit sort below restores
        // the historical full-scan iteration order (and the exact range
        // check re-applies); RNG draw order matches a full scan bit for
        // bit. Do not remove the sort.
        let mut nearby = std::mem::take(&mut self.scratch_gateways);
        self.gateway_grid
            .within_into(flight.pos, range + 1.0, &mut self.scratch_within_gw);
        nearby.clear();
        nearby.extend(self.scratch_within_gw.iter().map(|&(i, _)| i));
        nearby.sort_unstable();
        for &gi in &nearby {
            let gw = self.gateways[gi as usize];
            if gw.distance(flight.pos) > range {
                continue;
            }
            let reception = channel.receive(overlaps, gw, range, flight.seq);
            match reception.rssi {
                Some(rssi) => best = Some(best.map_or(rssi, |b: f64| b.max(rssi))),
                None if reception.interfered => self.collector.on_collision(),
                None => {}
            }
        }
        self.scratch_gateways = nearby;
        best
    }

    /// [`Delivery::resolve_gateways`] for the sharded engine: the
    /// grid query is replaced by the flight's precomputed plan. The
    /// planned gateways are exactly the in-range set in ascending index
    /// order — the sequence the serial grid query + sort + range check
    /// yields — with the outage filter (worker-invisible state) applied
    /// here, reproducing the serial path's receiver sequence and RNG
    /// draw order bit for bit.
    pub(super) fn resolve_gateways_planned(
        &mut self,
        channel: &mut Channel,
        plan: &FlightPlan,
        dynamic: &[(u64, Point)],
        flight: FlightRef<'_>,
    ) -> Option<f64> {
        let range = self.gateway_range_m;
        let mut best: Option<f64> = None;
        for pg in &plan.gateways {
            if self.gateway_down_depth[pg.gateway as usize] != 0 {
                continue;
            }
            let gw = self.gateways[pg.gateway as usize];
            let reception = channel.receive_planned(
                plan.slice(pg.start, pg.len),
                dynamic,
                gw,
                range,
                flight.seq,
            );
            match reception.rssi {
                Some(rssi) => best = Some(best.map_or(rssi, |b: f64| b.max(rssi))),
                None if reception.interfered => self.collector.on_collision(),
                None => {}
            }
        }
        best
    }

    /// Records server reception of a decoded bundle (instant backhaul):
    /// one delivery event per unique message, duplicates filtered by the
    /// collector.
    pub(super) fn deliver(
        &mut self,
        messages: &[AppMessage],
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        for msg in messages {
            if let Some((delay, hops)) = self.collector.on_delivered(msg, now) {
                observer.on_delivery(&MessageDelivered {
                    time: now,
                    message: msg.id,
                    origin: msg.origin,
                    delay,
                    hops,
                });
            }
        }
    }

    /// Per-gateway outage depths — checkpoint counterpart of
    /// [`Delivery::restore_outages`].
    pub(super) fn outage_depths(&self) -> &[u32] {
        &self.gateway_down_depth
    }

    /// Restores checkpointed outage depths, pulling downed gateways out
    /// of the grid *silently* — no collector bookkeeping, no observer
    /// events: the checkpoint's collector already carries the outage
    /// history, and the outage-start events fired before the snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `depths` does not cover every gateway.
    pub(super) fn restore_outages(&mut self, depths: Vec<u32>) {
        assert_eq!(depths.len(), self.gateways.len(), "outage depth count");
        for (g, &depth) in depths.iter().enumerate() {
            if depth > 0 {
                let removed = self.gateway_grid.remove(g as u32, self.gateways[g]);
                debug_assert!(removed, "downed gateway missing from grid");
            }
        }
        self.gateway_down_depth = depths;
    }

    /// Verifies that the incrementally maintained gateway grid matches a
    /// from-scratch rebuild over the gateways currently in service —
    /// the invariant the outage/recovery mutation paths preserve.
    pub(super) fn grid_matches_rebuild(&self, area: BBox) -> bool {
        let cell = self.gateway_range_m.max(200.0);
        let rebuilt = GridIndex::build(
            self.gateways
                .iter()
                .enumerate()
                .filter(|&(i, _)| self.gateway_down_depth[i] == 0)
                .map(|(i, &p)| (i as u32, p)),
            cell,
        );
        // A query covering the whole area yields membership in canonical
        // (cell key, id) order for both grids.
        let radius = area.width().max(area.height()) + cell;
        let mut live: Vec<(u32, Point)> = Vec::new();
        let mut fresh: Vec<(u32, Point)> = Vec::new();
        self.gateway_grid
            .within_into(area.center(), radius, &mut live);
        rebuilt.within_into(area.center(), radius, &mut fresh);
        live == fresh && self.gateway_grid.len() == rebuilt.len()
    }
}
