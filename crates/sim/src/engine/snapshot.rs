//! Engine snapshots: serialize complete mid-run state into a versioned
//! `.mlss` container, resume it bit-identically, and fork what-if
//! branches under additional disruption overlays.
//!
//! A [`Snapshot`] captures *everything* the event loop's future depends
//! on: the scenario configuration (embedded verbatim in the `.mlsc`
//! wire format), the pending event queue with its sequence counter, the
//! full per-device state (queues, duty-cycle clocks, retransmission
//! counters, routing estimators, traffic cursors), the flight slab with
//! its generation structure and free list, every RNG stream's exact
//! words, gateway outage depths, applied withdrawals and the mid-run
//! metric collector. [`Engine::resume`] rebuilds the deterministic
//! substrate (mobility network, gateway placement) from the stored
//! master seed and overlays the captured dynamic state, so stepping the
//! resumed engine processes exactly the event sequence the original
//! uninterrupted run would — bit for bit, for any scheme, with traffic
//! and disruptions active, across shard counts.
//!
//! The container reuses the scenario format's block framing (checksummed
//! 64 KiB blocks, varint/f64 primitives) under its own `MLSS` magic;
//! see the format notes in the `scenario-io` crate docs.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::path::Path;

use mlora_core::{
    CaEtxEstimator, ContactTracker, DonorLedger, Ewma, RcaEtxEstimator, RoutingState,
};
use mlora_geo::Point;
use mlora_mac::{AppMessage, DataQueue, DutyCycleTracker, Priority, RetransmitPolicy, UplinkFrame};
use mlora_scenario_io::{Enc, ScenarioIoError, ScenarioReader, ScenarioWriter};
use mlora_simcore::stats::{TimeSeries, Welford};
use mlora_simcore::{
    AnyEventQueue, DenseMap, MessageId, NodeId, QueueKind, SimDuration, SimRng, SimTime, SlabKey,
};

use super::channel::{Flight, FlightRef};
use super::world::{Device, DeviceHot, DeviceTraffic};
use super::{Engine, Event};
use crate::metrics::Collector;
use crate::{
    DeviceClassChoice, DisruptionEvent, DisruptionPlan, ProfileReport, ScenarioFileError,
    SimConfig, SimReport,
};

/// The four magic bytes every engine snapshot starts with — the `.mlss`
/// sibling of the scenario format's `MLSC`.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"MLSS";

// Section ids, in file order. The layout is strict: resume decodes the
// sections in exactly this sequence and treats any other order as
// corruption, so the format stays trivially versionable.
const SEC_HEADER: u8 = 1;
const SEC_CONFIG: u8 = 2;
const SEC_EVENTS: u8 = 3;
const SEC_DEVICES: u8 = 4;
const SEC_WITHDRAWN: u8 = 5;
const SEC_FLIGHT_SLOTS: u8 = 6;
const SEC_FLIGHT_FREE: u8 = 7;
const SEC_STREAMS: u8 = 8;
const SEC_DELIVERY: u8 = 9;
const SEC_COLLECTOR: u8 = 10;

/// Error taking, loading or resuming an engine snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// An underlying IO operation failed.
    Io(std::io::Error),
    /// The snapshot container is malformed (bad magic, truncation,
    /// checksum mismatch, structural corruption).
    Format(ScenarioIoError),
    /// The embedded scenario configuration failed to encode or decode —
    /// including [`ScenarioFileError::UnsupportedPolicy`] when the
    /// engine runs an explicit forwarding policy, which cannot be
    /// serialized.
    Scenario(ScenarioFileError),
    /// [`Engine::snapshot`] was called outside the snapshottable window;
    /// the message says which side was violated.
    NotRunning(&'static str),
    /// A fork overlay is inconsistent with the snapshot (invalid plan,
    /// or events scheduled at or before the snapshot instant).
    Overlay(String),
    /// A forked branch panicked inside
    /// [`Runner::fork`](crate::Runner::fork).
    BranchPanicked {
        /// Index of the overlay whose branch died.
        branch: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::Format(e) => write!(f, "snapshot container: {e}"),
            SnapshotError::Scenario(e) => write!(f, "snapshot scenario: {e}"),
            SnapshotError::NotRunning(what) => {
                write!(f, "engine cannot be snapshotted: {what}")
            }
            SnapshotError::Overlay(what) => write!(f, "fork overlay rejected: {what}"),
            SnapshotError::BranchPanicked { branch, message } => {
                write!(f, "fork branch {branch} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Format(e) => Some(e),
            SnapshotError::Scenario(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<ScenarioIoError> for SnapshotError {
    fn from(e: ScenarioIoError) -> Self {
        SnapshotError::Format(e)
    }
}

impl From<ScenarioFileError> for SnapshotError {
    fn from(e: ScenarioFileError) -> Self {
        SnapshotError::Scenario(e)
    }
}

/// A complete mid-run engine checkpoint (see the module docs).
///
/// Opaque bytes plus a cached header; [`Engine::resume`] reconstructs a
/// running engine from it, [`Snapshot::to_file`]/[`Snapshot::from_file`]
/// move it through the `.mlss` on-disk format.
#[derive(Debug, Clone)]
pub struct Snapshot {
    bytes: Vec<u8>,
    seed: u64,
    shards: usize,
    time: SimTime,
}

impl Snapshot {
    /// The simulation instant the snapshot was taken at (the timestamp
    /// of the last processed event).
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The master seed of the captured run.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard count the captured run executes with (resume rebuilds
    /// the same spatial partitioning).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The raw serialized container, exactly what
    /// [`Snapshot::to_writer`] emits.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The scenario configuration embedded in the snapshot (with the
    /// captured shard count restored — the scenario wire format itself
    /// does not carry one).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Format`] on a corrupt container,
    /// [`SnapshotError::Scenario`] when the embedded configuration does
    /// not decode.
    pub fn config(&self) -> Result<SimConfig, SnapshotError> {
        let mut r = ScenarioReader::with_magic(self.bytes.as_slice(), SNAPSHOT_MAGIC)?;
        let header = read_header(&mut r)?;
        read_config(&mut r, header.shards)
    }

    /// Writes the serialized snapshot into `out`.
    ///
    /// # Errors
    ///
    /// Propagates IO errors from `out`.
    pub fn to_writer<W: Write>(&self, mut out: W) -> Result<(), SnapshotError> {
        out.write_all(&self.bytes)?;
        Ok(())
    }

    /// Writes the snapshot to a `.mlss` file.
    ///
    /// # Errors
    ///
    /// Propagates IO errors.
    pub fn to_file(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let file = std::fs::File::create(path)?;
        let mut out = std::io::BufWriter::new(file);
        self.to_writer(&mut out)?;
        out.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        Ok(())
    }

    /// Reads a serialized snapshot from `input`, validating its magic,
    /// version and header section.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on read failures, [`SnapshotError::Format`]
    /// on a foreign, newer-format or corrupt container.
    pub fn from_reader<R: Read>(mut input: R) -> Result<Self, SnapshotError> {
        let mut bytes = Vec::new();
        input.read_to_end(&mut bytes)?;
        Snapshot::from_bytes(bytes)
    }

    /// Loads a snapshot from a `.mlss` file.
    ///
    /// # Errors
    ///
    /// As [`Snapshot::from_reader`].
    pub fn from_file(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let file = std::fs::File::open(path)?;
        Snapshot::from_reader(std::io::BufReader::new(file))
    }

    /// Wraps already-serialized snapshot bytes, validating the magic,
    /// version and header section (deep validation of the remaining
    /// sections happens at [`Engine::resume`]).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Format`] on a foreign, newer-format or corrupt
    /// container.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        let mut r = ScenarioReader::with_magic(bytes.as_slice(), SNAPSHOT_MAGIC)?;
        let header = read_header(&mut r)?;
        Ok(Snapshot {
            seed: header.seed,
            shards: header.shards,
            time: header.now,
            bytes,
        })
    }
}

/// The decoded header section: run identity and loop counters.
struct Header {
    seed: u64,
    shards: usize,
    now: SimTime,
    next_msg: u64,
    events_processed: u64,
    event_seq: u64,
}

impl Engine {
    /// Captures the engine's complete mid-run state as a [`Snapshot`].
    ///
    /// The engine must be *mid-run*: started (at least one
    /// [`Engine::run_until`] call) and not yet finished. The engine is
    /// not perturbed — stepping on after a snapshot produces exactly
    /// the run that would have happened without one.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::NotRunning`] outside the snapshottable window,
    /// [`SnapshotError::Scenario`] when the configuration cannot be
    /// serialized (explicit forwarding policies have no wire form).
    pub fn snapshot(&self) -> Result<Snapshot, SnapshotError> {
        if !self.started {
            return Err(SnapshotError::NotRunning(
                "not started; step it with run_until first",
            ));
        }
        if self.executed {
            return Err(SnapshotError::NotRunning(
                "run already finished; nothing left to capture",
            ));
        }
        let mut cfg_blob = Vec::new();
        self.cfg.to_writer(&mut cfg_blob)?;

        let mut w = ScenarioWriter::with_magic(Vec::new(), SNAPSHOT_MAGIC)?;

        // Header: run identity and loop counters. The queue's records
        // come out in heap layout order for the heap kind (what
        // historical snapshots hold) and ascending key order for the
        // calendar kind; either order rebuilds either kind, so the
        // snapshot never records which one was running.
        let (queue_records, event_seq) = self.events.checkpoint_events();
        w.begin_section(SEC_HEADER, 1)?;
        let enc = w.enc();
        enc.put_varint(self.seed);
        enc.put_varint(self.cfg.shards as u64);
        enc.put_varint(self.now.as_millis());
        enc.put_varint(self.next_msg);
        enc.put_varint(self.events_processed);
        enc.put_varint(event_seq);
        w.end_record()?;
        w.end_section()?;

        // The scenario, embedded verbatim as one `.mlsc` blob (records
        // never span blocks, but one record may fill a whole block).
        w.begin_section(SEC_CONFIG, 1)?;
        w.enc().put_bytes(&cfg_blob);
        w.end_record()?;
        w.end_section()?;

        // The event queue, in record order (see above) so the restored
        // queue pops in exactly the original sequence.
        w.begin_section(SEC_EVENTS, queue_records.len() as u64)?;
        for &(key, ev) in &queue_records {
            let enc = w.enc();
            enc.put_varint((key >> 64) as u64);
            enc.put_varint(key as u64);
            put_event(enc, ev);
            w.end_record()?;
        }
        w.end_section()?;

        // Every device ever activated, active or retired, in id order.
        // Hot-column values are gathered back into a row view so the
        // per-device wire record is byte-identical to the AoS era.
        w.begin_section(SEC_DEVICES, self.world.devices.len() as u64)?;
        for (idx, dev) in self.world.devices.iter() {
            let hot = self.world.hot.device_hot(idx);
            let enc = w.enc();
            enc.put_varint(idx as u64);
            put_device(enc, dev, hot);
            w.end_record()?;
        }
        w.end_section()?;

        // Applied withdrawals, in application order: resume replays the
        // trip truncations against the freshly regenerated network.
        w.begin_section(SEC_WITHDRAWN, self.withdrawn.len() as u64)?;
        for &(node, t) in &self.withdrawn {
            let enc = w.enc();
            enc.put_varint(node.raw() as u64);
            enc.put_varint(t.as_millis());
            w.end_record()?;
        }
        w.end_section()?;

        // The flight slab, slot by slot (vacant included) plus the free
        // list, so restored slab keys resolve identically.
        let slot_count = self.channel.flight_slot_count() as u64;
        w.begin_section(SEC_FLIGHT_SLOTS, slot_count)?;
        for (generation, flight) in self.channel.raw_flight_slots() {
            let enc = w.enc();
            enc.put_varint(generation as u64);
            match flight {
                None => enc.put_bool(false),
                Some(f) => {
                    enc.put_bool(true);
                    put_flight(enc, f);
                }
            }
            w.end_record()?;
        }
        w.end_section()?;
        let free = self.channel.flight_free_list();
        w.begin_section(SEC_FLIGHT_FREE, free.len() as u64)?;
        for &i in free {
            w.enc().put_varint(i as u64);
            w.end_record()?;
        }
        w.end_section()?;

        // Every RNG stream's exact words plus the channel and world
        // runtime scalars.
        let (channel_rng, next_flight_seq, active_noise) = self.channel.checkpoint_parts();
        w.begin_section(SEC_STREAMS, 1)?;
        let enc = w.enc();
        put_rng(enc, channel_rng);
        enc.put_varint(next_flight_seq);
        enc.put_varint(active_noise.len() as u64);
        for &b in active_noise {
            enc.put_varint(b as u64);
        }
        put_rng(enc, self.disruption_rng.state());
        put_rng(enc, self.traffic_root.state());
        enc.put_varint(self.world.grid_refresh_due().as_millis());
        w.end_record()?;
        w.end_section()?;

        // Gateway outage depths.
        let depths = self.delivery.outage_depths();
        w.begin_section(SEC_DELIVERY, 1)?;
        let enc = w.enc();
        enc.put_varint(depths.len() as u64);
        for &d in depths {
            enc.put_varint(d as u64);
        }
        w.end_record()?;
        w.end_section()?;

        // The mid-run metric collector, wholesale.
        let c = &self.delivery.collector;
        w.begin_section(SEC_COLLECTOR, 1)?;
        let enc = w.enc();
        put_report(enc, &c.report);
        enc.put_varint(c.arrived.len() as u64);
        for (idx, &t) in c.arrived.iter() {
            enc.put_varint(idx as u64);
            enc.put_varint(t.as_millis());
        }
        enc.put_varint(c.transfers.len() as u64);
        for (idx, &n) in c.transfers.iter() {
            enc.put_varint(idx as u64);
            enc.put_varint(n as u64);
        }
        enc.put_varint(c.outage_depth as u64);
        enc.put_varint(c.outage_since.as_millis());
        enc.put_varint(c.outage_generated.len() as u64);
        for (idx, _) in c.outage_generated.iter() {
            enc.put_varint(idx as u64);
        }
        w.end_record()?;
        w.end_section()?;

        let bytes = w.finish()?;
        Ok(Snapshot {
            bytes,
            seed: self.seed,
            shards: self.cfg.shards,
            time: self.now,
        })
    }

    /// Reconstructs a running engine from `snapshot`, positioned exactly
    /// where the capture left off. Stepping it (or [`Engine::finish`])
    /// produces results bit-identical to the uninterrupted original run.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Format`]/[`SnapshotError::Scenario`] on a
    /// corrupt or undecodable container.
    pub fn resume(snapshot: &Snapshot) -> Result<Engine, SnapshotError> {
        Engine::resume_with_overlay(snapshot, DisruptionPlan::default())
    }

    /// [`Engine::resume_with_overlay`] on an explicit event-queue kind.
    ///
    /// The queue kind is a host-execution knob snapshots deliberately do
    /// not record (see [`SimConfig::queue`](crate::SimConfig)): the
    /// default entry points resume on the binary heap, and this one lets
    /// the host pick — resuming a heap-recorded snapshot on the calendar
    /// queue (or vice versa) is bit-identical either way.
    ///
    /// # Errors
    ///
    /// As [`Engine::resume_with_overlay`].
    pub fn resume_on_queue(
        snapshot: &Snapshot,
        overlay: DisruptionPlan,
        queue: QueueKind,
    ) -> Result<Engine, SnapshotError> {
        Engine::resume_inner(snapshot, overlay, queue)
    }

    /// [`Engine::resume`] with an additional [`DisruptionPlan`] overlay
    /// — the what-if fork primitive. The resumed branch replays the
    /// captured state exactly, then diverges only once the overlay's
    /// first event fires: overlay outages, withdrawals and noise bursts
    /// are appended to the scenario's own plan (original disruption
    /// indices stay stable) and their compiled events are scheduled on
    /// top of the restored queue.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Overlay`] when the overlay is invalid for the
    /// captured scenario or schedules an event at or before the
    /// snapshot instant; container errors as [`Engine::resume`].
    pub fn resume_with_overlay(
        snapshot: &Snapshot,
        overlay: DisruptionPlan,
    ) -> Result<Engine, SnapshotError> {
        Engine::resume_inner(snapshot, overlay, QueueKind::default())
    }

    fn resume_inner(
        snapshot: &Snapshot,
        overlay: DisruptionPlan,
        queue: QueueKind,
    ) -> Result<Engine, SnapshotError> {
        let mut r = ScenarioReader::with_magic(snapshot.bytes.as_slice(), SNAPSHOT_MAGIC)?;
        let header = read_header(&mut r)?;
        let mut cfg = read_config(&mut r, header.shards)?;
        // Like `shards`, the queue kind is host state, not snapshot
        // content: the loaded config defaults to the heap and the
        // caller's choice lands here, before the engine is built.
        cfg.queue = queue;
        let original = cfg.disruptions.clone();

        // Compile the overlay against the captured horizon, offsetting
        // its plan-internal indices past the original plan's tables
        // (gateway indices are global and need none).
        let overlay_events = if overlay.is_empty() {
            Vec::new()
        } else {
            overlay
                .validate(cfg.num_gateways)
                .map_err(|e| SnapshotError::Overlay(e.to_string()))?;
            let withdraw_off = original.withdrawals.len() as u32;
            let noise_off = original.noise_bursts.len() as u32;
            let compiled: Vec<(SimTime, DisruptionEvent)> = overlay
                .compile(cfg.horizon)
                .into_iter()
                .map(|(t, ev)| (t, offset_event(ev, withdraw_off, noise_off)))
                .collect();
            if let Some(&(t, _)) = compiled.iter().find(|&&(t, _)| t <= header.now) {
                return Err(SnapshotError::Overlay(format!(
                    "overlay event at {} s is not after the snapshot instant ({} s)",
                    t.as_millis() as f64 / 1e3,
                    header.now.as_millis() as f64 / 1e3,
                )));
            }
            // Merge the overlay into the scenario's own plan by
            // appending, so the channel's noise table and the
            // withdrawal table grow without renumbering.
            cfg.disruptions
                .outages
                .extend(overlay.outages.iter().cloned());
            cfg.disruptions
                .withdrawals
                .extend(overlay.withdrawals.iter().cloned());
            cfg.disruptions
                .noise_bursts
                .extend(overlay.noise_bursts.iter().cloned());
            compiled
        };

        let mut engine = Engine::new(cfg, header.seed);
        // Engine::new compiled the *merged* plan, which interleaves
        // overlay events among the originals by time — breaking the
        // index stability the restored `Disruption(i)` queue events
        // rely on. Rebuild: original timeline verbatim, overlay events
        // appended past it.
        let overlay_base = {
            let mut timeline = original.compile(engine.cfg.horizon);
            let base = timeline.len();
            timeline.extend(overlay_events.iter().cloned());
            engine.timeline = timeline;
            base
        };
        engine.started = true;
        engine.now = header.now;
        engine.next_msg = header.next_msg;
        engine.events_processed = header.events_processed;

        // Pending events, in the writer's record order (heap layout or
        // ascending keys — either rebuilds either queue kind).
        let n = expect_section(&mut r, SEC_EVENTS, "snapshot events")?;
        let mut records = Vec::with_capacity(n as usize);
        for _ in 0..n {
            r.begin_record()?;
            let time_ms = r.varint()?;
            let seq = r.varint()?;
            let ev = get_event(&mut r)?;
            records.push(((u128::from(time_ms) << 64) | u128::from(seq), ev));
        }
        engine.events = AnyEventQueue::from_events(engine.cfg.queue, records, header.event_seq);
        // Overlay disruptions are scheduled *after* the queue restore so
        // they take fresh (higher) sequence numbers: at equal times they
        // fire after everything the original run had already scheduled.
        for (j, &(t, _)) in overlay_events.iter().enumerate() {
            engine
                .events
                .schedule(t, Event::Disruption((overlay_base + j) as u32));
        }

        // Devices: active ones re-enter the world through activate()
        // (which rebuilds the sorted active set and the neighbour grid),
        // retired ones only re-enter the device map.
        let n = expect_section(&mut r, SEC_DEVICES, "snapshot devices")?;
        for _ in 0..n {
            r.begin_record()?;
            let node = NodeId::new(u32::try_from(r.varint()?).map_err(bad_index)?);
            let (dev, hot) = get_device(&mut r, &engine.cfg)?;
            if hot.active {
                let pos = dev.grid_pos;
                engine.world.activate(node, dev, pos);
            } else {
                engine.world.devices.insert(node, dev);
            }
            // Scatter the captured hot row over activate()'s defaults —
            // retired devices keep their historical transmit state, so
            // a re-snapshot reproduces the original bytes.
            engine.world.hot.set(node.index(), hot);
        }

        // Replay withdrawals against the regenerated network — before
        // the shard runtime below clones it for the workers.
        let n = expect_section(&mut r, SEC_WITHDRAWN, "snapshot withdrawals")?;
        for _ in 0..n {
            r.begin_record()?;
            let node = NodeId::new(u32::try_from(r.varint()?).map_err(bad_index)?);
            let t = SimTime::from_millis(r.varint()?);
            engine.world.withdraw_trip(node, t);
            engine.withdrawn.push((node, t));
        }

        // The flight slab: slots verbatim (vacant included), then the
        // free list.
        let n = expect_section(&mut r, SEC_FLIGHT_SLOTS, "snapshot flight slots")?;
        let mut slots = Vec::with_capacity(n as usize);
        for _ in 0..n {
            r.begin_record()?;
            let generation = u32::try_from(r.varint()?).map_err(bad_index)?;
            let flight = if r.bool()? {
                Some(get_flight(&mut r)?)
            } else {
                None
            };
            slots.push((generation, flight));
        }
        let n = expect_section(&mut r, SEC_FLIGHT_FREE, "snapshot flight free list")?;
        let mut free = Vec::with_capacity(n as usize);
        for _ in 0..n {
            r.begin_record()?;
            free.push(u32::try_from(r.varint()?).map_err(bad_index)?);
        }
        // RNG streams and runtime scalars.
        expect_section(&mut r, SEC_STREAMS, "snapshot streams")?;
        r.begin_record()?;
        let channel_rng = get_rng(&mut r)?;
        let next_flight_seq = r.varint()?;
        let n_noise = r.varint()?;
        let mut active_noise = Vec::with_capacity(n_noise as usize);
        for _ in 0..n_noise {
            active_noise.push(u32::try_from(r.varint()?).map_err(bad_index)?);
        }
        engine
            .channel
            .restore(channel_rng, slots, free, next_flight_seq, active_noise);
        engine.disruption_rng = get_rng(&mut r)?;
        engine.traffic_root = get_rng(&mut r)?;
        let grid_refresh_due = SimTime::from_millis(r.varint()?);
        engine.world.restore_runtime(grid_refresh_due);

        // Gateway outage depths (silently re-applied to the grid).
        expect_section(&mut r, SEC_DELIVERY, "snapshot delivery")?;
        r.begin_record()?;
        let n_gw = r.varint()? as usize;
        if n_gw != engine.delivery.gateways().len() {
            return Err(ScenarioIoError::Corrupt("gateway count mismatch").into());
        }
        let mut depths = Vec::with_capacity(n_gw);
        for _ in 0..n_gw {
            depths.push(u32::try_from(r.varint()?).map_err(bad_index)?);
        }
        engine.delivery.restore_outages(depths);

        // The mid-run collector, wholesale.
        expect_section(&mut r, SEC_COLLECTOR, "snapshot collector")?;
        r.begin_record()?;
        let report = get_report(&mut r)?;
        let n = r.varint()?;
        let mut arrived = DenseMap::new();
        for _ in 0..n {
            let id = MessageId::new(r.varint()?);
            arrived.insert(id, SimTime::from_millis(r.varint()?));
        }
        let n = r.varint()?;
        let mut transfers = DenseMap::new();
        for _ in 0..n {
            let id = MessageId::new(r.varint()?);
            transfers.insert(id, u32::try_from(r.varint()?).map_err(bad_index)?);
        }
        let outage_depth = u32::try_from(r.varint()?).map_err(bad_index)?;
        let outage_since = SimTime::from_millis(r.varint()?);
        let n = r.varint()?;
        let mut outage_generated = DenseMap::new();
        for _ in 0..n {
            outage_generated.insert(MessageId::new(r.varint()?), ());
        }
        engine.delivery.collector = Collector {
            report,
            arrived,
            transfers,
            outage_depth,
            outage_since,
            outage_generated,
        };

        if r.next_section()?.is_some() {
            return Err(ScenarioIoError::Corrupt("unexpected trailing section").into());
        }

        // A sharded run rebuilds its commit-side runtime from scratch:
        // fresh workers, the original barrier sequence re-broadcast up
        // to `now`, and every retained flight re-announced (ascending by
        // sequence, as launches were). Only flights whose
        // transmission-end event is still pending request a plan.
        if engine.cfg.shards > 1 {
            let mut rt = engine.build_shard_runtime();
            rt.pump_barriers(engine.now);
            let mut pending: HashSet<u64> = HashSet::new();
            let (queue_records, _) = engine.events.checkpoint_events();
            for &(_, ev) in &queue_records {
                if let Event::TxEnd(key) = ev {
                    if let Some(hot) = engine.channel.flight_hot(key) {
                        pending.insert(hot.seq);
                    }
                }
            }
            let mut retained: Vec<(u64, NodeId, Point, SimTime, SimTime)> = engine
                .channel
                .iter_hot()
                .map(|h| (h.seq, h.sender, h.pos, h.start, h.end))
                .collect();
            retained.sort_unstable_by_key(|&(seq, ..)| seq);
            for (seq, sender, pos, start, end) in retained {
                rt.ring.push_back((seq, pos, start, end));
                rt.announce(seq, sender, pos, start, end, pending.contains(&seq));
            }
            engine.shard_rt = Some(rt);
        }

        Ok(engine)
    }
}

/// Maps an out-of-range stored index to a typed corruption error.
fn bad_index(_: std::num::TryFromIntError) -> ScenarioIoError {
    ScenarioIoError::Corrupt("stored index out of range")
}

/// Requires the next section to be `id`; `what` names it for the error.
fn expect_section<R: Read>(
    r: &mut ScenarioReader<R>,
    id: u8,
    what: &'static str,
) -> Result<u64, ScenarioIoError> {
    match r.next_section()? {
        Some((got, records)) if got == id => Ok(records),
        Some(_) => Err(ScenarioIoError::Corrupt("snapshot sections out of order")),
        None => Err(ScenarioIoError::MissingSection(what)),
    }
}

/// Decodes the header section (which must come first).
fn read_header<R: Read>(r: &mut ScenarioReader<R>) -> Result<Header, ScenarioIoError> {
    match expect_section(r, SEC_HEADER, "snapshot header")? {
        1 => {}
        _ => return Err(ScenarioIoError::Corrupt("snapshot header record count")),
    }
    r.begin_record()?;
    let seed = r.varint()?;
    let shards = r.varint()? as usize;
    if shards == 0 {
        return Err(ScenarioIoError::Corrupt("snapshot shard count is zero"));
    }
    let now = SimTime::from_millis(r.varint()?);
    let next_msg = r.varint()?;
    let events_processed = r.varint()?;
    let event_seq = r.varint()?;
    Ok(Header {
        seed,
        shards,
        now,
        next_msg,
        events_processed,
        event_seq,
    })
}

/// Decodes the embedded scenario, restoring the captured shard count
/// (the scenario wire format does not carry one).
fn read_config<R: Read>(
    r: &mut ScenarioReader<R>,
    shards: usize,
) -> Result<SimConfig, SnapshotError> {
    match expect_section(r, SEC_CONFIG, "snapshot config")? {
        1 => {}
        _ => return Err(ScenarioIoError::Corrupt("snapshot config record count").into()),
    }
    r.begin_record()?;
    let blob = r.bytes()?;
    let mut cfg = SimConfig::from_reader(blob.as_slice())?;
    cfg.shards = shards;
    Ok(cfg)
}

/// Shifts an overlay event's plan-internal indices past the original
/// plan's tables; gateway indices are global and pass through.
fn offset_event(ev: DisruptionEvent, withdraw_off: u32, noise_off: u32) -> DisruptionEvent {
    match ev {
        DisruptionEvent::Withdraw { withdrawal } => DisruptionEvent::Withdraw {
            withdrawal: withdrawal + withdraw_off,
        },
        DisruptionEvent::NoiseStart { burst } => DisruptionEvent::NoiseStart {
            burst: burst + noise_off,
        },
        DisruptionEvent::NoiseEnd { burst } => DisruptionEvent::NoiseEnd {
            burst: burst + noise_off,
        },
        gateway => gateway,
    }
}

fn put_event(enc: &mut Enc, ev: Event) {
    match ev {
        Event::TripStart(n) => {
            enc.put_u8(0);
            enc.put_varint(n.raw() as u64);
        }
        Event::TripEnd(n) => {
            enc.put_u8(1);
            enc.put_varint(n.raw() as u64);
        }
        Event::Generate(n) => {
            enc.put_u8(2);
            enc.put_varint(n.raw() as u64);
        }
        Event::TxStart(n) => {
            enc.put_u8(3);
            enc.put_varint(n.raw() as u64);
        }
        Event::TxEnd(key) => {
            enc.put_u8(4);
            enc.put_varint(key.index() as u64);
            enc.put_varint(key.generation() as u64);
        }
        Event::Disruption(i) => {
            enc.put_u8(5);
            enc.put_varint(i as u64);
        }
    }
}

fn get_event<R: Read>(r: &mut ScenarioReader<R>) -> Result<Event, ScenarioIoError> {
    let node = |raw: u64| u32::try_from(raw).map(NodeId::new).map_err(bad_index);
    Ok(match r.u8()? {
        0 => Event::TripStart(node(r.varint()?)?),
        1 => Event::TripEnd(node(r.varint()?)?),
        2 => Event::Generate(node(r.varint()?)?),
        3 => Event::TxStart(node(r.varint()?)?),
        4 => {
            let index = u32::try_from(r.varint()?).map_err(bad_index)?;
            let generation = u32::try_from(r.varint()?).map_err(bad_index)?;
            Event::TxEnd(SlabKey::from_parts(index, generation))
        }
        5 => Event::Disruption(u32::try_from(r.varint()?).map_err(bad_index)?),
        _ => return Err(ScenarioIoError::Corrupt("unknown event tag")),
    })
}

fn put_time(enc: &mut Enc, t: SimTime) {
    enc.put_varint(t.as_millis());
}

fn get_time<R: Read>(r: &mut ScenarioReader<R>) -> Result<SimTime, ScenarioIoError> {
    Ok(SimTime::from_millis(r.varint()?))
}

fn put_dur(enc: &mut Enc, d: SimDuration) {
    enc.put_varint(d.as_millis());
}

fn get_dur<R: Read>(r: &mut ScenarioReader<R>) -> Result<SimDuration, ScenarioIoError> {
    Ok(SimDuration::from_millis(r.varint()?))
}

fn put_opt_time(enc: &mut Enc, t: Option<SimTime>) {
    match t {
        None => enc.put_bool(false),
        Some(t) => {
            enc.put_bool(true);
            put_time(enc, t);
        }
    }
}

fn get_opt_time<R: Read>(r: &mut ScenarioReader<R>) -> Result<Option<SimTime>, ScenarioIoError> {
    Ok(if r.bool()? { Some(get_time(r)?) } else { None })
}

fn put_rng(enc: &mut Enc, state: (u64, [u64; 4])) {
    enc.put_varint(state.0);
    for w in state.1 {
        enc.put_varint(w);
    }
}

fn get_rng<R: Read>(r: &mut ScenarioReader<R>) -> Result<SimRng, ScenarioIoError> {
    let seed = r.varint()?;
    let mut words = [0u64; 4];
    for w in &mut words {
        *w = r.varint()?;
    }
    Ok(SimRng::from_state(seed, words))
}

fn put_welford(enc: &mut Enc, w: &Welford) {
    let (count, mean, m2, min, max) = w.raw_parts();
    enc.put_varint(count);
    enc.put_f64(mean);
    enc.put_f64(m2);
    enc.put_f64(min);
    enc.put_f64(max);
}

fn get_welford<R: Read>(r: &mut ScenarioReader<R>) -> Result<Welford, ScenarioIoError> {
    let count = r.varint()?;
    let mean = r.f64()?;
    let m2 = r.f64()?;
    let min = r.f64()?;
    let max = r.f64()?;
    Ok(Welford::from_raw_parts(count, mean, m2, min, max))
}

fn put_message(enc: &mut Enc, m: &AppMessage) {
    enc.put_varint(m.id.raw());
    enc.put_varint(m.origin.raw() as u64);
    put_time(enc, m.created);
    enc.put_varint(m.payload_bytes as u64);
    enc.put_u8(m.profile);
    enc.put_u8(match m.priority {
        Priority::Low => 0,
        Priority::Normal => 1,
        Priority::High => 2,
    });
}

fn get_message<R: Read>(r: &mut ScenarioReader<R>) -> Result<AppMessage, ScenarioIoError> {
    let id = MessageId::new(r.varint()?);
    let origin = NodeId::new(u32::try_from(r.varint()?).map_err(bad_index)?);
    let created = get_time(r)?;
    let payload_bytes = u16::try_from(r.varint()?)
        .map_err(|_| ScenarioIoError::Corrupt("payload size out of range"))?;
    let profile = r.u8()?;
    let priority = match r.u8()? {
        0 => Priority::Low,
        1 => Priority::Normal,
        2 => Priority::High,
        _ => return Err(ScenarioIoError::Corrupt("unknown priority tag")),
    };
    Ok(AppMessage {
        id,
        origin,
        created,
        payload_bytes,
        profile,
        priority,
    })
}

fn put_flight(enc: &mut Enc, f: FlightRef<'_>) {
    enc.put_varint(f.seq);
    enc.put_varint(f.sender.raw() as u64);
    match f.target {
        None => enc.put_bool(false),
        Some(t) => {
            enc.put_bool(true);
            enc.put_varint(t.raw() as u64);
        }
    }
    put_time(enc, f.start);
    put_time(enc, f.end);
    enc.put_f64(f.pos.x);
    enc.put_f64(f.pos.y);
    enc.put_varint(f.frame.sender.raw() as u64);
    enc.put_varint(f.frame.messages.len() as u64);
    for m in &f.frame.messages {
        put_message(enc, m);
    }
    enc.put_f64(f.frame.rca_etx);
    enc.put_varint(f.frame.queue_len as u64);
}

fn get_flight<R: Read>(r: &mut ScenarioReader<R>) -> Result<Flight, ScenarioIoError> {
    let seq = r.varint()?;
    let sender = NodeId::new(u32::try_from(r.varint()?).map_err(bad_index)?);
    let target = if r.bool()? {
        Some(NodeId::new(u32::try_from(r.varint()?).map_err(bad_index)?))
    } else {
        None
    };
    let start = get_time(r)?;
    let end = get_time(r)?;
    let pos = Point {
        x: r.f64()?,
        y: r.f64()?,
    };
    let frame_sender = NodeId::new(u32::try_from(r.varint()?).map_err(bad_index)?);
    let n = r.varint()?;
    let mut messages = Vec::with_capacity(n as usize);
    for _ in 0..n {
        messages.push(get_message(r)?);
    }
    let rca_etx = r.f64()?;
    let queue_len = r.varint()? as usize;
    Ok(Flight {
        seq,
        sender,
        frame: UplinkFrame {
            sender: frame_sender,
            messages,
            rca_etx,
            queue_len,
        },
        target,
        start,
        end,
        pos,
    })
}

/// Writes one device record: the cold [`Device`] row plus its gathered
/// hot-column view, in the exact field order the AoS layout used — the
/// wire format is unchanged by the SoA split.
fn put_device(enc: &mut Enc, dev: &Device, hot: DeviceHot) {
    enc.put_bool(hot.active);
    put_time(enc, dev.activated_at);
    put_opt_time(enc, dev.retired_at);

    enc.put_varint(dev.queue.capacity() as u64);
    enc.put_varint(dev.queue.dropped());
    enc.put_varint(dev.queue.len() as u64);
    for m in dev.queue.iter() {
        put_message(enc, m);
    }

    let (duty_cycle, next_allowed, total_airtime, tx_count) = dev.duty.raw_parts();
    enc.put_f64(duty_cycle);
    put_time(enc, next_allowed);
    put_dur(enc, total_airtime);
    enc.put_varint(tx_count);

    enc.put_varint(dev.retransmit.max_attempts() as u64);
    enc.put_varint(dev.retransmit.attempts() as u64);

    let (estimator, ca, ledger) = dev.routing.raw_parts();
    let (tracker, ewma, rca_bits) = estimator.raw_parts();
    let (last_success, in_contact, successes, failures) = tracker.raw_parts();
    match last_success {
        None => enc.put_bool(false),
        Some((t, capacity)) => {
            enc.put_bool(true);
            put_time(enc, t);
            enc.put_f64(capacity);
        }
    }
    enc.put_bool(in_contact);
    enc.put_varint(successes);
    enc.put_varint(failures);
    enc.put_f64(ewma.alpha());
    match ewma.value() {
        None => enc.put_bool(false),
        Some(v) => {
            enc.put_bool(true);
            enc.put_f64(v);
        }
    }
    enc.put_f64(rca_bits);
    let (ca_bits, gaps, capacities, last_contact) = ca.raw_parts();
    enc.put_f64(ca_bits);
    put_welford(enc, &gaps);
    put_welford(enc, &capacities);
    put_opt_time(enc, last_contact);
    let donors = ledger.donors_sorted();
    enc.put_varint(donors.len() as u64);
    for d in donors {
        enc.put_varint(d.raw() as u64);
    }

    enc.put_bool(hot.transmitting);
    enc.put_bool(dev.tx_scheduled);
    match dev.pending_handover {
        None => enc.put_bool(false),
        Some((target, count)) => {
            enc.put_bool(true);
            enc.put_varint(target.raw() as u64);
            enc.put_varint(count as u64);
        }
    }
    put_opt_time(enc, hot.last_tx_end);
    match hot.tx_window {
        None => enc.put_bool(false),
        Some((a, b)) => {
            enc.put_bool(true);
            put_time(enc, a);
            put_time(enc, b);
        }
    }
    enc.put_f64(hot.gamma);
    put_dur(enc, dev.tx_time);
    put_dur(enc, dev.rx_window_time);
    enc.put_varint(dev.frames_sent);
    enc.put_f64(dev.grid_pos.x);
    enc.put_f64(dev.grid_pos.y);
    match &dev.traffic {
        None => enc.put_bool(false),
        Some(t) => {
            enc.put_bool(true);
            enc.put_varint(t.profile as u64);
            put_rng(enc, t.rng.state());
            enc.put_varint(t.burst_left as u64);
        }
    }
}

/// Reads one device record, splitting it back into the cold [`Device`]
/// row and the hot-column values the caller scatters into the world.
fn get_device<R: Read>(
    r: &mut ScenarioReader<R>,
    cfg: &SimConfig,
) -> Result<(Device, DeviceHot), ScenarioIoError> {
    let active = r.bool()?;
    let activated_at = get_time(r)?;
    let retired_at = get_opt_time(r)?;

    let capacity = r.varint()? as usize;
    let dropped = r.varint()?;
    let n = r.varint()?;
    let mut messages = Vec::with_capacity(n as usize);
    for _ in 0..n {
        messages.push(get_message(r)?);
    }
    let queue = DataQueue::from_parts(capacity, dropped, messages);

    let duty_cycle = r.f64()?;
    let next_allowed = get_time(r)?;
    let total_airtime = get_dur(r)?;
    let tx_count = r.varint()?;
    let duty = DutyCycleTracker::from_raw_parts(duty_cycle, next_allowed, total_airtime, tx_count);

    let max_attempts = u32::try_from(r.varint()?).map_err(bad_index)?;
    let attempts = u32::try_from(r.varint()?).map_err(bad_index)?;
    let retransmit = RetransmitPolicy::from_parts(max_attempts, attempts);

    let last_success = if r.bool()? {
        Some((get_time(r)?, r.f64()?))
    } else {
        None
    };
    let in_contact = r.bool()?;
    let successes = r.varint()?;
    let failures = r.varint()?;
    let tracker = ContactTracker::from_raw_parts(last_success, in_contact, successes, failures);
    let alpha = r.f64()?;
    let ewma_value = if r.bool()? { Some(r.f64()?) } else { None };
    let ewma = Ewma::from_raw_parts(alpha, ewma_value);
    let rca_bits = r.f64()?;
    let estimator = RcaEtxEstimator::from_raw_parts(tracker, ewma, rca_bits);
    let ca_bits = r.f64()?;
    let gaps = get_welford(r)?;
    let capacities = get_welford(r)?;
    let last_contact = get_opt_time(r)?;
    let ca = CaEtxEstimator::from_raw_parts(ca_bits, gaps, capacities, last_contact);
    let n_donors = r.varint()?;
    let mut donors = Vec::with_capacity(n_donors as usize);
    for _ in 0..n_donors {
        donors.push(NodeId::new(u32::try_from(r.varint()?).map_err(bad_index)?));
    }
    let ledger = DonorLedger::from_donors(donors);
    let routing_config = cfg.routing_config();
    let policy = routing_config.scheme.policy();
    let routing = RoutingState::from_raw_parts(routing_config, policy, estimator, ca, ledger);

    let transmitting = r.bool()?;
    let tx_scheduled = r.bool()?;
    let pending_handover = if r.bool()? {
        let target = NodeId::new(u32::try_from(r.varint()?).map_err(bad_index)?);
        let count = r.varint()? as usize;
        Some((target, count))
    } else {
        None
    };
    let last_tx_end = get_opt_time(r)?;
    let tx_window = if r.bool()? {
        Some((get_time(r)?, get_time(r)?))
    } else {
        None
    };
    let gamma = r.f64()?;
    let tx_time = get_dur(r)?;
    let rx_window_time = get_dur(r)?;
    let frames_sent = r.varint()?;
    let grid_pos = Point {
        x: r.f64()?,
        y: r.f64()?,
    };
    let traffic = if r.bool()? {
        let profile = u32::try_from(r.varint()?).map_err(bad_index)?;
        let rng = get_rng(r)?;
        let burst_left = u32::try_from(r.varint()?).map_err(bad_index)?;
        Some(DeviceTraffic {
            profile,
            rng,
            burst_left,
        })
    } else {
        None
    };

    let class = match cfg.device_class {
        DeviceClassChoice::ModifiedClassC => mlora_mac::DeviceClass::ModifiedClassC,
        DeviceClassChoice::QueueBasedClassA => mlora_mac::DeviceClass::QueueBasedClassA,
    };

    Ok((
        Device {
            activated_at,
            retired_at,
            queue,
            duty,
            retransmit,
            routing,
            class,
            tx_scheduled,
            pending_handover,
            tx_time,
            rx_window_time,
            frames_sent,
            grid_pos,
            traffic,
        },
        DeviceHot {
            active,
            transmitting,
            tx_window,
            last_tx_end,
            gamma,
        },
    ))
}

fn put_report(enc: &mut Enc, r: &SimReport) {
    enc.put_str(&r.scheme);
    enc.put_varint(r.generated);
    enc.put_varint(r.delivered);
    enc.put_varint(r.duplicates);
    enc.put_varint(r.stranded);
    enc.put_varint(r.queue_drops);
    put_welford(enc, &r.delay);
    put_welford(enc, &r.hops);
    put_dur(enc, r.throughput_series.bucket());
    enc.put_bool(r.throughput_series.is_bounded());
    enc.put_varint(r.throughput_series.counts().len() as u64);
    for &c in r.throughput_series.counts() {
        enc.put_varint(c);
    }
    enc.put_varint(r.frames_sent);
    enc.put_varint(r.messages_sent);
    enc.put_varint(r.handover_frames);
    enc.put_varint(r.handover_messages);
    enc.put_varint(r.collisions);
    enc.put_varint(r.devices_seen);
    enc.put_f64(r.total_energy_mj);
    enc.put_f64(r.total_active_s);
    enc.put_varint(r.gateway_outages);
    enc.put_varint(r.buses_withdrawn);
    enc.put_varint(r.noise_bursts);
    enc.put_f64(r.outage_time_s);
    enc.put_varint(r.generated_during_outage);
    enc.put_varint(r.delivered_of_outage_generated);
    enc.put_f64(r.total_airtime_s);
    enc.put_varint(r.profiles.len() as u64);
    for p in &r.profiles {
        enc.put_str(&p.name);
        enc.put_varint(p.generated);
        enc.put_varint(p.delivered);
        enc.put_varint(p.messages_sent);
        enc.put_varint(p.payload_bytes_sent);
        enc.put_f64(p.airtime_s);
        put_welford(enc, &p.delay);
    }
}

fn get_report<R: Read>(r: &mut ScenarioReader<R>) -> Result<SimReport, ScenarioIoError> {
    let scheme = r.string()?;
    let generated = r.varint()?;
    let delivered = r.varint()?;
    let duplicates = r.varint()?;
    let stranded = r.varint()?;
    let queue_drops = r.varint()?;
    let delay = get_welford(r)?;
    let hops = get_welford(r)?;
    let bucket = get_dur(r)?;
    let bounded = r.bool()?;
    let n = r.varint()?;
    let mut counts = Vec::with_capacity(n as usize);
    for _ in 0..n {
        counts.push(r.varint()?);
    }
    let throughput_series = TimeSeries::from_raw_parts(bucket, counts, bounded);
    let frames_sent = r.varint()?;
    let messages_sent = r.varint()?;
    let handover_frames = r.varint()?;
    let handover_messages = r.varint()?;
    let collisions = r.varint()?;
    let devices_seen = r.varint()?;
    let total_energy_mj = r.f64()?;
    let total_active_s = r.f64()?;
    let gateway_outages = r.varint()?;
    let buses_withdrawn = r.varint()?;
    let noise_bursts = r.varint()?;
    let outage_time_s = r.f64()?;
    let generated_during_outage = r.varint()?;
    let delivered_of_outage_generated = r.varint()?;
    let total_airtime_s = r.f64()?;
    let n = r.varint()?;
    let mut profiles = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let name = r.string()?;
        let generated = r.varint()?;
        let delivered = r.varint()?;
        let messages_sent = r.varint()?;
        let payload_bytes_sent = r.varint()?;
        let airtime_s = r.f64()?;
        let delay = get_welford(r)?;
        profiles.push(ProfileReport {
            name,
            generated,
            delivered,
            messages_sent,
            payload_bytes_sent,
            airtime_s,
            delay,
        });
    }
    Ok(SimReport {
        scheme,
        generated,
        delivered,
        duplicates,
        stranded,
        queue_drops,
        delay,
        hops,
        throughput_series,
        frames_sent,
        messages_sent,
        handover_frames,
        handover_messages,
        collisions,
        devices_seen,
        total_energy_mj,
        total_active_s,
        gateway_outages,
        buses_withdrawn,
        noise_bursts,
        outage_time_s,
        generated_during_outage,
        delivered_of_outage_generated,
        total_airtime_s,
        profiles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Environment;
    use mlora_core::Scheme;

    fn cfg() -> SimConfig {
        SimConfig::smoke_test(Scheme::Robc, Environment::Urban)
    }

    #[test]
    fn snapshot_requires_a_started_engine() {
        let engine = Engine::new(cfg(), 7);
        assert!(matches!(
            engine.snapshot(),
            Err(SnapshotError::NotRunning(_))
        ));
    }

    #[test]
    fn resume_matches_uninterrupted_run() {
        let baseline = Engine::new(cfg(), 7).run();
        let mut engine = Engine::new(cfg(), 7);
        engine.run_until(SimTime::from_secs(900));
        let snap = engine.snapshot().expect("snapshot mid-run");
        // The snapshotted engine keeps running unperturbed...
        assert_eq!(engine.finish(), baseline);
        // ...and the resumed copy reproduces the identical report.
        let resumed = Engine::resume(&snap).expect("resume");
        assert_eq!(resumed.finish(), baseline);
    }

    #[test]
    fn snapshot_bytes_roundtrip_through_files() {
        let mut engine = Engine::new(cfg(), 11);
        engine.run_until(SimTime::from_secs(600));
        let snap = engine.snapshot().expect("snapshot");
        let reloaded = Snapshot::from_bytes(snap.as_bytes().to_vec()).expect("reload");
        assert_eq!(reloaded.time(), snap.time());
        assert_eq!(reloaded.seed(), snap.seed());
        assert_eq!(reloaded.shards(), snap.shards());
        let a = Engine::resume(&snap).expect("resume original").finish();
        let b = Engine::resume(&reloaded).expect("resume reloaded").finish();
        assert_eq!(a, b);
    }

    #[test]
    fn overlay_must_be_in_the_future() {
        let mut engine = Engine::new(cfg(), 7);
        engine.run_until(SimTime::from_secs(1_000));
        let snap = engine.snapshot().expect("snapshot");
        let overlay = DisruptionPlan {
            outages: vec![crate::disruption::GatewayOutage {
                gateway: 0,
                start: SimTime::from_secs(10),
                duration: Some(SimDuration::from_secs(60)),
            }],
            ..DisruptionPlan::default()
        };
        assert!(matches!(
            Engine::resume_with_overlay(&snap, overlay),
            Err(SnapshotError::Overlay(_))
        ));
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let mut engine = Engine::new(cfg(), 7);
        engine.run_until(SimTime::from_secs(300));
        let snap = engine.snapshot().expect("snapshot");
        let bytes = snap.as_bytes();
        let cut = Snapshot::from_bytes(bytes[..bytes.len() / 2].to_vec());
        match cut {
            // Header fits in the first block: the cut surfaces on resume.
            Ok(snap) => assert!(Engine::resume(&snap).is_err()),
            Err(SnapshotError::Format(_)) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}
