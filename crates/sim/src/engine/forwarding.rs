//! The forwarding layer: beacon overhearing, policy dispatch, handover
//! acceptance and sender settlement.
//!
//! Every decision here goes through the device's
//! [`RoutingState`](mlora_core::RoutingState), which dispatches to the
//! pluggable [`ForwardingPolicy`](mlora_core::ForwardingPolicy) the
//! scenario configured — the paper's built-in schemes and user-defined
//! policies ride exactly the same code path.
//!
//! The serial and sharded engines share one candidate pipeline: the
//! geometric prefilter (sender/range) differs — a live grid query versus
//! a shard-precomputed [`FlightPlan`] — but the state-dependent
//! admission filters ([`Engine::neighbour_admitted`]) and the
//! post-reception policy dispatch ([`Engine::apply_reception`]) are the
//! same functions, so the two paths cannot drift apart.

use mlora_core::{Beacon, ForwardDecision};
use mlora_geo::Point;
use mlora_simcore::NodeId;

use super::channel::{FlightRef, Reception};
use super::comm::FlightPlan;
use super::Engine;
use crate::observer::{HandoverAccepted, SimObserver};

impl Engine {
    /// Resolves overhearing at every active neighbour. `candidates` is
    /// the batched prefilter's output — sender-excluded,
    /// exact-range-filtered `(id, position)` pairs in ascending id
    /// order (see [`World::batched_candidates`](super::world::World)) —
    /// so this loop is pure admission + collision resolution. Returns
    /// whether the handover target decoded the frame; devices that need
    /// a new transmission opportunity are appended to `to_schedule`.
    pub(super) fn resolve_neighbours(
        &mut self,
        flight: FlightRef<'_>,
        overlaps: &[(u64, Point)],
        candidates: &[(NodeId, Point)],
        to_schedule: &mut Vec<NodeId>,
        observer: &mut dyn SimObserver,
    ) -> bool {
        let d2d = self.cfg.environment.d2d_range_m();
        let mut accepted = false;

        for &(x, pos_x) in candidates {
            if !self.neighbour_admitted(x, flight) {
                continue;
            }
            // Collision resolution at x, under any regional noise at
            // its position.
            let reception = self.channel.receive(overlaps, pos_x, d2d, flight.seq);
            self.apply_reception(flight, x, reception, to_schedule, observer, &mut accepted);
        }
        accepted
    }

    /// [`Engine::resolve_neighbours`] for the sharded engine: the grid
    /// query + range check are replaced by the flight's precomputed
    /// candidate list (already sender-excluded, exact-range-filtered and
    /// id-sorted — the serial prefilter's output), while the
    /// state-dependent admission filters and policy dispatch run
    /// unchanged on the commit thread.
    pub(super) fn resolve_neighbours_planned(
        &mut self,
        flight: FlightRef<'_>,
        plan: &FlightPlan,
        dynamic: &[(u64, Point)],
        to_schedule: &mut Vec<NodeId>,
        observer: &mut dyn SimObserver,
    ) -> bool {
        let d2d = self.cfg.environment.d2d_range_m();
        let mut accepted = false;
        for pc in &plan.candidates {
            if !self.neighbour_admitted(pc.node, flight) {
                continue;
            }
            let reception = self.channel.receive_planned(
                plan.slice(pc.start, pc.len),
                dynamic,
                pc.pos,
                d2d,
                flight.seq,
            );
            self.apply_reception(
                flight,
                pc.node,
                reception,
                to_schedule,
                observer,
                &mut accepted,
            );
        }
        accepted
    }

    /// The state-dependent admission filters every reception candidate
    /// passes after the geometric prefilter: liveness, half-duplex and
    /// device-class receive windows. Draw-free, so rejected candidates
    /// leave no trace on the RNG stream.
    ///
    /// Reads only the world's hot columns — a handful of contiguous
    /// loads per candidate, no device-map lookup (the `active` column
    /// is `false` for ids that never activated, covering existence).
    /// The device class is scenario-uniform, so it comes from the
    /// configuration rather than a per-device field.
    fn neighbour_admitted(&self, x: NodeId, flight: FlightRef<'_>) -> bool {
        let i = x.index();
        let hot = &self.world.hot;
        if !hot.active[i] {
            return false;
        }
        // Half-duplex: a device transmitting during any part of the
        // frame cannot receive it.
        if let Some((s, e)) = hot.tx_window[i] {
            if s < flight.end && e > flight.start {
                return false;
            }
        }
        self.device_class().overhears(
            self.now,
            hot.last_tx_end[i],
            self.cfg.gen_interval,
            hot.gamma[i],
        )
    }

    /// Applies one neighbour's reception outcome: handover acceptance
    /// when `x` is the flight's target, beacon-driven policy dispatch
    /// otherwise, collision accounting when the frame was lost to
    /// interference.
    fn apply_reception(
        &mut self,
        flight: FlightRef<'_>,
        x: NodeId,
        reception: Reception,
        to_schedule: &mut Vec<NodeId>,
        observer: &mut dyn SimObserver,
        accepted: &mut bool,
    ) {
        let now = self.now;
        let Some(rssi) = reception.rssi else {
            if reception.interfered {
                self.delivery.collector.on_collision();
            }
            return;
        };

        if flight.target == Some(x) {
            // Accept the handover: enqueue the bundle, bar the donor,
            // try to move the data onwards.
            let dev = self.world.devices.get_mut(x).expect("neighbour exists");
            let dropped = dev.queue.push_bundle(&flight.frame.messages);
            if dropped > 0 {
                self.delivery.collector.on_queue_drop(dropped);
            }
            dev.routing.on_received_data(flight.sender);
            self.delivery
                .collector
                .on_handover_accepted(&flight.frame.messages);
            observer.on_forward(&HandoverAccepted {
                time: now,
                donor: flight.sender,
                acceptor: x,
                messages: flight.frame.messages.len(),
            });
            *accepted = true;
            // The acceptor holds the data until its own next slot
            // (§V.B.2); it does not transmit reactively.
        } else {
            // Treat as a beacon: should x hand its own data to the
            // flight's sender?
            let beacon = Beacon {
                sender: flight.sender,
                rca_etx: flight.frame.rca_etx,
                queue_len: flight.frame.queue_len,
            };
            let dev = self.world.devices.get_mut(x).expect("neighbour exists");
            // An already-armed offer wins: don't consult the policy
            // again, so stateful policies never spend budget on a
            // decision that would be discarded. (Built-in policies
            // are pure and draw no RNG, so skipping the call is
            // bit-identical to the historical always-decide path.)
            if dev.pending_handover.is_some() {
                return;
            }
            let wait_s = dev
                .duty
                .next_opportunity(now)
                .saturating_since(now)
                .as_secs_f64();
            let decision = dev
                .routing
                .decide(now, wait_s, dev.queue.len(), &beacon, rssi);
            if let ForwardDecision::Forward { target, count } = decision {
                dev.pending_handover = Some((target, count));
                to_schedule.push(x);
            }
        }
    }

    /// Applies the transmission outcome to the sender: queue updates,
    /// metric observation, retransmission bookkeeping, follow-up
    /// scheduling.
    pub(super) fn settle_sender(
        &mut self,
        flight: FlightRef<'_>,
        gateway_rssi: Option<f64>,
        accepted_by_target: bool,
        observer: &mut dyn SimObserver,
    ) {
        // Deliver to the server first (instant backhaul).
        if gateway_rssi.is_some() {
            self.delivery
                .deliver(&flight.frame.messages, self.now, observer);
        }
        let capacity = gateway_rssi.map(|r| self.cfg.capacity.capacity_bps(r));
        let sender = flight.sender;
        let Some(dev) = self.world.devices.get_mut(sender) else {
            return;
        };
        let wait_s = dev
            .duty
            .next_opportunity(self.now)
            .saturating_since(self.now)
            .as_secs_f64();

        let is_handover = flight.target.is_some();
        let delivered_somewhere = gateway_rssi.is_some() || accepted_by_target;
        if delivered_somewhere {
            // Instant-ACK assumption (§VII.A.5): remove the bundle.
            dev.queue.remove(&flight.frame.messages);
        }

        if is_handover {
            // Handover slots are not device-to-sink slots; only a lucky
            // gateway decode counts as contact (and clears the ledger).
            if let Some(cap) = capacity {
                dev.routing.on_sink_slot(self.now, Some(cap), wait_s);
                dev.retransmit.reset();
            }
        } else {
            dev.routing.on_sink_slot(self.now, capacity, wait_s);
            if gateway_rssi.is_some() {
                dev.retransmit.reset();
            } else if !dev.retransmit.record_failure() {
                // Retransmission budget exhausted (§VII.A.5): the backlog
                // holds until the next generation resets the counter.
                return;
            }
        }
        // Anything still queued — a failed bundle awaiting its duty-timer
        // retry, or backlog beyond the 12-message bundle — goes out at the
        // next legal opportunity. Draining at the duty-cycle service rate
        // (not the generation rate) is what gives well-connected relays
        // their higher RGQ service rate φ.
        if self.world.hot.active[sender.index()] && !dev.queue.is_empty() {
            self.maybe_schedule_tx(sender);
        }
    }
}
