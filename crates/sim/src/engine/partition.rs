//! Spatial partitioning of the world into grid tiles and shard regions.
//!
//! The parallel engine splits the plane into a uniform tile grid and
//! assigns contiguous row bands of tiles to shards. Each shard is
//! responsible for the *plans* of flights launched inside its own tiles
//! and tracks every device inside its tiles plus a **halo** — sized so
//! that any device that can possibly be a reception candidate for a
//! tile-local flight is already tracked, even though shard membership is
//! only refreshed at time-step barriers:
//!
//! * `device_halo_m` = device-to-device range + drift slack, where the
//!   slack covers the worst-case movement between a membership barrier
//!   and the latest reception it can serve (one barrier period plus one
//!   maximum frame airtime, at the fleet's top speed).
//! * `flight_halo_m` = twice the maximum RSSI range (+ float slack): a
//!   frame can interfere at a receiver of a tile-local flight only if
//!   its sender is within two radio ranges of the flight's position, by
//!   the triangle inequality.
//!
//! Everything here is pure geometry — tile assignment and halo
//! membership are exact functions of position, so `tests/
//! partition_properties.rs` checks them against brute-force
//! recomputation.

use mlora_geo::{BBox, Point};
use mlora_simcore::SimDuration;

use super::world::GRID_MARGIN_M;

/// Spatial partition of the simulation area: a uniform tile grid with
/// contiguous row bands of tiles assigned to shards, plus the halo and
/// barrier-pacing parameters derived from the radio and mobility
/// configuration (see the module docs).
#[derive(Debug, Clone)]
pub struct Partition {
    /// Lower-left corner of tile (0, 0).
    min: Point,
    /// Tile side length, metres.
    tile_m: f64,
    /// Tile columns (x direction).
    cols: u32,
    /// Tile rows (y direction).
    rows: u32,
    /// Per-shard owned row range `[lo, hi)`.
    shard_rows: Vec<(u32, u32)>,
    /// Device-membership halo around a shard's own tiles, metres.
    device_halo_m: f64,
    /// Flight-broadcast halo around a shard's own tiles, metres.
    flight_halo_m: f64,
    /// Extra radius on shard-side candidate queries, absorbing position
    /// drift since the last membership barrier, metres.
    query_slack_m: f64,
    /// Membership-barrier period.
    barrier_every: SimDuration,
}

impl Partition {
    /// Builds the partition for `shards` shards over `area`.
    ///
    /// `d2d_range_m`/`gateway_range_m` are the radio ranges,
    /// `max_speed_mps` the fleet's top service speed and `max_airtime`
    /// the worst-case frame airtime under the configured PHY — together
    /// they size the halos and the barrier period.
    pub fn new(
        area: BBox,
        shards: usize,
        d2d_range_m: f64,
        gateway_range_m: f64,
        max_speed_mps: f64,
        max_airtime: SimDuration,
    ) -> Partition {
        assert!(shards >= 1, "partition needs at least one shard");
        // Aim for a few rows of tiles per shard band (load balance)
        // without letting tiles degenerate below radio scale.
        let side = area.width().max(area.height());
        let tile_m = (side / (4.0 * shards as f64)).max(200.0);
        let cols = ((area.width() / tile_m).ceil() as u32).max(1);
        let rows = ((area.height() / tile_m).ceil() as u32).max(1);
        let shard_rows = (0..shards as u32)
            .map(|s| {
                let lo = (s * rows) / shards as u32;
                let hi = ((s + 1) * rows) / shards as u32;
                (lo, hi)
            })
            .collect();
        // Pace barriers like the serial engine's grid drift sweep, and
        // size the drift slack for the longest interval a barrier
        // snapshot must serve: one period plus one maximum airtime
        // (plans are requested at transmission start, consumed at end).
        let barrier_secs = (GRID_MARGIN_M / max_speed_mps * 0.95).max(0.5);
        let barrier_every = SimDuration::from_secs_f64(barrier_secs);
        let staleness_s =
            barrier_every.as_millis() as f64 / 1_000.0 + max_airtime.as_millis() as f64 / 1_000.0;
        let query_slack_m = max_speed_mps * staleness_s * 1.05 + 2.0;
        let max_range = d2d_range_m.max(gateway_range_m);
        Partition {
            min: area.min(),
            tile_m,
            cols,
            rows,
            shard_rows,
            device_halo_m: d2d_range_m + query_slack_m,
            flight_halo_m: 2.0 * max_range + 2.0,
            query_slack_m,
            barrier_every,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shard_rows.len()
    }

    /// Number of tiles (`cols × rows`).
    pub fn num_tiles(&self) -> u32 {
        self.cols * self.rows
    }

    /// Tile columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Tile rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Tile side length, metres.
    pub fn tile_m(&self) -> f64 {
        self.tile_m
    }

    /// Device-membership halo around a shard's own tiles, metres.
    pub fn device_halo_m(&self) -> f64 {
        self.device_halo_m
    }

    /// Flight-broadcast halo around a shard's own tiles, metres.
    pub fn flight_halo_m(&self) -> f64 {
        self.flight_halo_m
    }

    /// Extra candidate-query radius absorbing barrier-snapshot drift,
    /// metres.
    pub fn query_slack_m(&self) -> f64 {
        self.query_slack_m
    }

    /// Membership-barrier period.
    pub fn barrier_every(&self) -> SimDuration {
        self.barrier_every
    }

    /// The tile containing `p` (row-major index). Positions outside the
    /// area clamp to the boundary tiles, so every point has an owner.
    pub fn tile_of(&self, p: Point) -> u32 {
        let col =
            (((p.x - self.min.x) / self.tile_m).floor() as i64).clamp(0, self.cols as i64 - 1);
        let row =
            (((p.y - self.min.y) / self.tile_m).floor() as i64).clamp(0, self.rows as i64 - 1);
        row as u32 * self.cols + col as u32
    }

    /// The rectangle of tile `t` as `(lower-left, upper-right)`.
    pub fn tile_rect(&self, t: u32) -> (Point, Point) {
        let row = t / self.cols;
        let col = t % self.cols;
        let lo = Point::new(
            self.min.x + col as f64 * self.tile_m,
            self.min.y + row as f64 * self.tile_m,
        );
        (lo, Point::new(lo.x + self.tile_m, lo.y + self.tile_m))
    }

    /// The shard owning tile `t`: the unique band in `shard_rows`
    /// containing the tile's row. `lo_s = ⌊s·rows/shards⌋` bands invert
    /// to `s = ⌈(row+1)·shards/rows⌉ − 1`, the smallest shard whose
    /// band ends past `row` — NOT `⌊row·shards/rows⌋`, which disagrees
    /// with the band table whenever `rows % shards != 0`.
    pub fn shard_of_tile(&self, t: u32) -> usize {
        let row = t / self.cols;
        let shards = self.num_shards() as u32;
        (((row + 1) * shards).div_ceil(self.rows) - 1) as usize
    }

    /// The shard owning the tile containing `p`.
    pub fn shard_of(&self, p: Point) -> usize {
        self.shard_of_tile(self.tile_of(p))
    }

    /// Distance from `p` to the union of tiles owned by `shard` (zero
    /// inside it; infinite for a shard that owns no tiles).
    pub fn region_distance(&self, shard: usize, p: Point) -> f64 {
        let (lo, hi) = self.shard_rows[shard];
        if lo == hi {
            return f64::INFINITY;
        }
        // A shard's tiles form one axis-aligned band: full tile-grid
        // width, rows [lo, hi).
        let x0 = self.min.x;
        let x1 = self.min.x + self.cols as f64 * self.tile_m;
        let y0 = self.min.y + lo as f64 * self.tile_m;
        let y1 = self.min.y + hi as f64 * self.tile_m;
        let dx = (x0 - p.x).max(p.x - x1).max(0.0);
        let dy = (y0 - p.y).max(p.y - y1).max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// Whether disc(`p`, `radius`) touches the region of `shard`.
    pub fn shard_in_range(&self, shard: usize, p: Point, radius: f64) -> bool {
        self.region_distance(shard, p) <= radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(shards: usize) -> Partition {
        Partition::new(
            BBox::square(Point::ORIGIN, 20_000.0),
            shards,
            500.0,
            1_000.0,
            21.0,
            SimDuration::from_millis(400),
        )
    }

    #[test]
    fn every_tile_has_an_owner_and_bands_are_contiguous() {
        let p = part(4);
        let mut last = 0;
        for t in 0..p.num_tiles() {
            let s = p.shard_of_tile(t);
            assert!(s < 4);
            assert!(s >= last || t % p.cols() != 0);
            if t % p.cols() == 0 {
                last = s;
            }
        }
        // All shards own at least one row at this scale.
        let owned: std::collections::BTreeSet<usize> =
            (0..p.num_tiles()).map(|t| p.shard_of_tile(t)).collect();
        assert_eq!(owned.len(), 4);
    }

    #[test]
    fn tile_of_clamps_outside_points() {
        let p = part(2);
        assert_eq!(p.tile_of(Point::new(-500.0, -500.0)), 0);
        let far = p.tile_of(Point::new(1e9, 1e9));
        assert_eq!(far, p.num_tiles() - 1);
    }

    #[test]
    fn region_distance_zero_inside_own_tiles() {
        let p = part(4);
        for pt in [
            Point::new(1_000.0, 1_000.0),
            Point::new(19_000.0, 19_000.0),
            Point::new(10_000.0, 5_000.0),
        ] {
            let s = p.shard_of(pt);
            assert_eq!(p.region_distance(s, pt), 0.0);
        }
    }

    #[test]
    fn region_distance_matches_min_over_owned_tile_rects() {
        let p = part(3);
        for &pt in &[
            Point::new(3_333.0, 7_777.0),
            Point::new(0.0, 19_999.0),
            Point::new(20_000.0, 0.0),
            Point::new(-250.0, 10_000.0),
        ] {
            for s in 0..p.num_shards() {
                let brute = (0..p.num_tiles())
                    .filter(|&t| p.shard_of_tile(t) == s)
                    .map(|t| {
                        let (lo, hi) = p.tile_rect(t);
                        let dx = (lo.x - pt.x).max(pt.x - hi.x).max(0.0);
                        let dy = (lo.y - pt.y).max(pt.y - hi.y).max(0.0);
                        (dx * dx + dy * dy).sqrt()
                    })
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    (p.region_distance(s, pt) - brute).abs() < 1e-9,
                    "shard {s} point {pt:?}"
                );
            }
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let p = part(1);
        assert_eq!(p.shard_of(Point::new(12.0, 19_000.0)), 0);
        assert_eq!(p.region_distance(0, Point::new(-100.0, 5_000.0)), 100.0);
    }

    #[test]
    fn halos_cover_radio_ranges() {
        let p = part(4);
        assert!(p.device_halo_m() > 500.0);
        assert!(p.flight_halo_m() >= 2_000.0);
        assert!(p.query_slack_m() > 0.0);
        assert!(p.barrier_every() > SimDuration::ZERO);
    }
}
