//! The dense device world: fleet state, the incrementally maintained
//! neighbour grid, and device lifecycle (activation, retirement, energy
//! reconstruction, scripted withdrawals).
//!
//! [`World`] owns everything position- and device-shaped — the mobility
//! substrate, the `DenseMap` of live [`Device`]s, the sorted active set,
//! the spatial grid with its drift-sweep schedule and the per-device
//! polyline cursors — behind a narrow interface the event loop drives.
//! All scratch buffers for grid queries and withdrawal selection live
//! here too, so world queries are allocation-free in steady state.
//!
//! # Column layout
//!
//! The fields the event loop touches for *every* reception candidate —
//! liveness, half-duplex transmit state, the transmit window, the
//! Eq. 11 receive fraction and the last transmission end — live in
//! struct-of-arrays form in [`HotColumns`], indexed by
//! [`NodeId::index`] exactly like the position-hint cursors. A
//! transmission end at metro scale sweeps hundreds of candidates, and
//! each admission check now reads a handful of contiguous column
//! entries instead of pulling a whole [`Device`] (queue, routing
//! estimators, energy counters — several cache lines) through a map
//! lookup. The cold remainder of per-device state stays in [`Device`];
//! the split is invisible outside the engine, and snapshots write the
//! exact same per-device wire record by gathering a [`DeviceHot`] view
//! next to each device.

use mlora_core::RoutingState;
use mlora_geo::{GridIndex, Point};
use mlora_mac::{
    DataQueue, DeviceClass, DutyCycleTracker, EnergyAccount, EnergyModel, RadioState,
    RetransmitPolicy,
};
use mlora_simcore::{DenseMap, NodeId, SimDuration, SimRng, SimTime};

/// Query-radius slack absorbing stored-position drift in the neighbour
/// grid; exact distances are re-checked on the candidates, so the grid
/// only has to stay a superset of the truly-in-range set.
pub(super) const GRID_MARGIN_M: f64 = 120.0;

/// Per-device traffic-model state: which profile this device runs and
/// the dedicated RNG stream its arrival/payload draws come from.
/// `None` when the scenario's [`TrafficModel`](crate::TrafficModel) is
/// empty — the paper-exact periodic generator needs no state.
#[derive(Debug, Clone)]
pub(super) struct DeviceTraffic {
    /// Index into the model's profile mix.
    pub(super) profile: u32,
    /// Per-device stream forked from the engine's traffic root; the
    /// first draw assigns the profile, later draws sample arrivals and
    /// payload sizes.
    pub(super) rng: SimRng,
    /// Messages remaining in the current on-period of a bursty process.
    pub(super) burst_left: u32,
}

/// Per-device live state — the *cold* remainder after the per-event
/// hot fields moved into [`HotColumns`] (see the module docs).
#[derive(Debug, Clone)]
pub(super) struct Device {
    pub(super) activated_at: SimTime,
    pub(super) retired_at: Option<SimTime>,
    pub(super) queue: DataQueue,
    pub(super) duty: DutyCycleTracker,
    pub(super) retransmit: RetransmitPolicy,
    pub(super) routing: RoutingState,
    pub(super) class: DeviceClass,
    pub(super) tx_scheduled: bool,
    pub(super) pending_handover: Option<(NodeId, usize)>,
    /// Cumulative transmit airtime.
    pub(super) tx_time: SimDuration,
    /// Cumulative Queue-based Class-A listening time.
    pub(super) rx_window_time: SimDuration,
    /// Uplink frames sent (for Class-A RX-window energy).
    pub(super) frames_sent: u64,
    /// The position this device is filed under in the neighbour grid.
    pub(super) grid_pos: Point,
    /// Traffic-model state; `None` under the paper's default workload.
    pub(super) traffic: Option<DeviceTraffic>,
}

/// One device's hot-column values, gathered/scattered as a unit where
/// row-shaped access is the right interface (snapshot records).
#[derive(Debug, Clone, Copy)]
pub(super) struct DeviceHot {
    pub(super) active: bool,
    pub(super) transmitting: bool,
    pub(super) tx_window: Option<(SimTime, SimTime)>,
    pub(super) last_tx_end: Option<SimTime>,
    pub(super) gamma: f64,
}

/// Struct-of-arrays columns for the per-event hot fields, indexed by
/// [`NodeId::index`] (sized to the fleet at build time, like the
/// position-hint cursors). Entries for devices not yet activated hold
/// the inert defaults (`active == false`), so admission checks never
/// need a map lookup to distinguish "never existed" from "retired".
#[derive(Debug)]
pub(super) struct HotColumns {
    /// In service right now. `false` covers retired *and* never
    /// activated.
    pub(super) active: Vec<bool>,
    /// A frame from this device is on the air right now.
    pub(super) transmitting: Vec<bool>,
    /// Window of the most recent transmission, for half-duplex checks.
    pub(super) tx_window: Vec<Option<(SimTime, SimTime)>>,
    /// When the most recent transmission ended (Class-A receive
    /// windows open relative to it).
    pub(super) last_tx_end: Vec<Option<SimTime>>,
    /// Eq. 11 receive-window fraction, refreshed at each uplink.
    pub(super) gamma: Vec<f64>,
}

impl HotColumns {
    fn new(n: usize) -> Self {
        HotColumns {
            active: vec![false; n],
            transmitting: vec![false; n],
            tx_window: vec![None; n],
            last_tx_end: vec![None; n],
            gamma: vec![0.0; n],
        }
    }

    /// Gathers one device's row across the columns.
    pub(super) fn device_hot(&self, i: usize) -> DeviceHot {
        DeviceHot {
            active: self.active[i],
            transmitting: self.transmitting[i],
            tx_window: self.tx_window[i],
            last_tx_end: self.last_tx_end[i],
            gamma: self.gamma[i],
        }
    }

    /// Scatters one device's row across the columns (snapshot restore).
    pub(super) fn set(&mut self, i: usize, h: DeviceHot) {
        self.active[i] = h.active;
        self.transmitting[i] = h.transmitting;
        self.tx_window[i] = h.tx_window;
        self.last_tx_end[i] = h.last_tx_end;
        self.gamma[i] = h.gamma;
    }
}

/// What a retirement costs: the device's reconstructed radio energy and
/// its total in-service time, for the collector.
#[derive(Debug, Clone, Copy)]
pub(super) struct Retirement {
    pub(super) energy_mj: f64,
    pub(super) active: SimDuration,
}

/// The dense device world (see the module docs).
#[derive(Debug)]
pub(super) struct World {
    pub(super) net: mlora_mobility::BusNetwork,
    pub(super) devices: DenseMap<NodeId, Device>,
    /// The per-event hot fields, in column form (see the module docs).
    pub(super) hot: HotColumns,
    /// Device ids currently in service, kept sorted for determinism.
    pub(super) active: Vec<NodeId>,
    /// Incrementally maintained spatial index over active devices.
    grid: GridIndex<NodeId>,
    /// When the next periodic drift-relocation sweep is due.
    grid_refresh_due: SimTime,
    /// Sweep period: chosen so no stored position can drift more than
    /// [`GRID_MARGIN_M`] between sweeps at the fleet's top speed.
    grid_refresh_every: SimDuration,
    /// Per-device polyline segment cursors for O(1) position queries.
    pos_hints: Vec<u32>,
    /// Scratch: withdrawal candidate pool.
    scratch_withdraw: Vec<NodeId>,
}

impl World {
    /// Builds the world over a generated bus network. `cell_m` sizes the
    /// neighbour-grid cells and `max_speed_mps` paces the drift sweep.
    pub(super) fn new(net: mlora_mobility::BusNetwork, cell_m: f64, max_speed_mps: f64) -> Self {
        let num_trips = net.trips().len();
        // Sweep early enough that drift at the fastest service speed stays
        // inside the query margin (0.95: headroom for rounding to ms).
        let grid_refresh_every = SimDuration::from_secs_f64(GRID_MARGIN_M / max_speed_mps * 0.95);
        World {
            devices: DenseMap::with_capacity(num_trips),
            hot: HotColumns::new(num_trips),
            active: Vec::new(),
            grid: GridIndex::new(cell_m),
            grid_refresh_due: SimTime::ZERO,
            grid_refresh_every,
            pos_hints: vec![0; num_trips],
            scratch_withdraw: Vec::new(),
            net,
        }
    }

    /// The device's position at `now`, through its segment cursor.
    pub(super) fn position_now(&mut self, n: NodeId, now: SimTime) -> Point {
        self.net
            .position_hinted(n, now, &mut self.pos_hints[n.index()])
    }

    /// Relocates every active device's grid entry to its current
    /// position when the periodic drift sweep is due. Relocation is a
    /// no-op for devices that stayed within their cell.
    fn refresh_grid_if_due(&mut self, now: SimTime) {
        if now < self.grid_refresh_due {
            return;
        }
        self.grid_refresh_due = now + self.grid_refresh_every;
        for i in 0..self.active.len() {
            let n = self.active[i];
            let pos = self.position_now(n, now);
            let dev = self.devices.get_mut(n).expect("active device exists");
            let moved = self.grid.relocate(n, dev.grid_pos, pos);
            debug_assert!(moved, "active device missing from grid");
            dev.grid_pos = pos;
        }
    }

    /// Writes `(id, exact position)` of every active device other than
    /// `sender` truly within `radius` of `center` into `out`, sorted
    /// ascending by id.
    ///
    /// This is the batched form of the old per-device candidate walk:
    /// the grid's cell buckets inside the padded query box are visited
    /// as contiguous slices ([`GridIndex::for_each_bucket_within`]),
    /// each device's exact position is computed once through its
    /// polyline cursor, and the exact-distance filter runs during the
    /// sweep — so the caller receives the final candidate set and never
    /// touches the grid again. The result is the same set, in the same
    /// ascending-id order, as filtering a raw `within_into` query would
    /// produce: position values are cursor-order-independent, so
    /// computing them in bucket order instead of id order changes
    /// nothing downstream.
    pub(super) fn batched_candidates(
        &mut self,
        now: SimTime,
        sender: NodeId,
        center: Point,
        radius: f64,
        out: &mut Vec<(NodeId, Point)>,
    ) {
        self.refresh_grid_if_due(now);
        out.clear();
        let net = &self.net;
        let hints = &mut self.pos_hints;
        let coarse = radius + GRID_MARGIN_M;
        let coarse_sq = coarse * coarse;
        self.grid.for_each_bucket_within(center, coarse, |bucket| {
            for &(n, stale) in bucket {
                // Coarse filter on the grid's stale position first: a
                // device can have drifted at most `GRID_MARGIN_M` since
                // the last refresh, so anything outside the padded
                // circle is truly out of range — and the exact polyline
                // walk below runs only for the survivors.
                if n == sender || stale.distance_sq(center) > coarse_sq {
                    continue;
                }
                let pos = net.position_hinted(n, now, &mut hints[n.index()]);
                if pos.distance(center) <= radius {
                    out.push((n, pos));
                }
            }
        });
        out.sort_unstable_by_key(|&(n, _)| n);
    }

    /// Activates a device: files it in the device map, the sorted active
    /// set and the neighbour grid at `pos`, and resets its hot columns
    /// to the fresh-activation state.
    pub(super) fn activate(&mut self, n: NodeId, device: Device, pos: Point) {
        self.hot.set(
            n.index(),
            DeviceHot {
                active: true,
                transmitting: false,
                tx_window: None,
                last_tx_end: None,
                gamma: 0.0,
            },
        );
        self.devices.insert(n, device);
        if let Err(i) = self.active.binary_search(&n) {
            self.active.insert(i, n);
        }
        self.grid.insert(n, pos);
    }

    /// Retires a device at `now`: removes it from the active set and the
    /// grid and reconstructs its whole-service energy spend. Returns
    /// `None` when the device never existed or already retired.
    pub(super) fn retire(&mut self, n: NodeId, now: SimTime) -> Option<Retirement> {
        let dev = self.devices.get_mut(n)?;
        if dev.retired_at.is_some() {
            return None;
        }
        self.hot.active[n.index()] = false;
        dev.retired_at = Some(now);
        if let Ok(i) = self.active.binary_search(&n) {
            self.active.remove(i);
        }
        let removed = self.grid.remove(n, dev.grid_pos);
        debug_assert!(removed, "retired device missing from grid");
        // Energy: time-in-state reconstruction for the whole service window.
        let dev = self.devices.get_mut(n).expect("checked above");
        let active_dur = now.saturating_since(dev.activated_at);
        let tx = dev.tx_time.min(active_dur);
        let non_tx = active_dur.saturating_sub(tx);
        let rx = match dev.class {
            DeviceClass::ModifiedClassC | DeviceClass::ClassC => non_tx,
            DeviceClass::QueueBasedClassA => dev.rx_window_time.min(non_tx),
            DeviceClass::ClassA => SimDuration::from_millis(320).min(non_tx) * dev.frames_sent,
            DeviceClass::ClassB { .. } => non_tx.mul_f64(0.01),
        };
        let sleep = non_tx.saturating_sub(rx);
        let mut acct = EnergyAccount::new();
        acct.add(RadioState::Tx, tx);
        acct.add(RadioState::Rx, rx);
        acct.add(RadioState::Sleep, sleep);
        let energy_mj = acct.energy_mj(&EnergyModel::sx1276());
        Some(Retirement {
            energy_mj,
            active: active_dur,
        })
    }

    /// Selects a deterministic random `count`-strong subset of the
    /// active fleet for withdrawal: the sorted active set is shuffled
    /// with `rng` (so the subset is a pure function of the plan and
    /// seed), truncated and re-sorted. Return the buffer through
    /// [`World::return_withdraw_pool`] when done.
    pub(super) fn take_withdraw_pool(&mut self, count: usize, rng: &mut SimRng) -> Vec<NodeId> {
        let mut pool = std::mem::take(&mut self.scratch_withdraw);
        pool.clear();
        pool.extend_from_slice(&self.active);
        rng.shuffle(&mut pool);
        pool.truncate(count);
        pool.sort_unstable();
        pool
    }

    /// Returns the withdrawal scratch buffer for reuse.
    pub(super) fn return_withdraw_pool(&mut self, pool: Vec<NodeId>) {
        self.scratch_withdraw = pool;
    }

    /// Truncates a withdrawn bus's trip in the mobility substrate.
    pub(super) fn withdraw_trip(&mut self, n: NodeId, now: SimTime) {
        self.net.withdraw(n, now);
    }

    /// When the next periodic grid drift sweep is due — checkpoint
    /// counterpart of [`World::restore_runtime`].
    pub(super) fn grid_refresh_due(&self) -> SimTime {
        self.grid_refresh_due
    }

    /// Restores snapshot-captured runtime state: re-files every device
    /// (restored into `devices` by the caller via [`World::activate`],
    /// which rebuilt the grid and active set) and pins the drift-sweep
    /// schedule where the checkpoint left it. Position-hint cursors are
    /// deliberately *not* checkpointed: they are pure lookup
    /// accelerators that never change a position value, so fresh zeros
    /// resume bit-identically.
    pub(super) fn restore_runtime(&mut self, grid_refresh_due: SimTime) {
        self.grid_refresh_due = grid_refresh_due;
    }
}
