//! The dense device world: fleet state, the incrementally maintained
//! neighbour grid, and device lifecycle (activation, retirement, energy
//! reconstruction, scripted withdrawals).
//!
//! [`World`] owns everything position- and device-shaped — the mobility
//! substrate, the `DenseMap` of live [`Device`]s, the sorted active set,
//! the spatial grid with its drift-sweep schedule and the per-device
//! polyline cursors — behind a narrow interface the event loop drives.
//! All scratch buffers for grid queries and withdrawal selection live
//! here too, so world queries are allocation-free in steady state.

use mlora_core::RoutingState;
use mlora_geo::{GridIndex, Point};
use mlora_mac::{
    DataQueue, DeviceClass, DutyCycleTracker, EnergyAccount, EnergyModel, RadioState,
    RetransmitPolicy,
};
use mlora_simcore::{DenseMap, NodeId, SimDuration, SimRng, SimTime};

/// Query-radius slack absorbing stored-position drift in the neighbour
/// grid; exact distances are re-checked on the candidates, so the grid
/// only has to stay a superset of the truly-in-range set.
pub(super) const GRID_MARGIN_M: f64 = 120.0;

/// Per-device traffic-model state: which profile this device runs and
/// the dedicated RNG stream its arrival/payload draws come from.
/// `None` when the scenario's [`TrafficModel`](crate::TrafficModel) is
/// empty — the paper-exact periodic generator needs no state.
#[derive(Debug, Clone)]
pub(super) struct DeviceTraffic {
    /// Index into the model's profile mix.
    pub(super) profile: u32,
    /// Per-device stream forked from the engine's traffic root; the
    /// first draw assigns the profile, later draws sample arrivals and
    /// payload sizes.
    pub(super) rng: SimRng,
    /// Messages remaining in the current on-period of a bursty process.
    pub(super) burst_left: u32,
}

/// Per-device live state.
#[derive(Debug, Clone)]
pub(super) struct Device {
    pub(super) active: bool,
    pub(super) activated_at: SimTime,
    pub(super) retired_at: Option<SimTime>,
    pub(super) queue: DataQueue,
    pub(super) duty: DutyCycleTracker,
    pub(super) retransmit: RetransmitPolicy,
    pub(super) routing: RoutingState,
    pub(super) class: DeviceClass,
    pub(super) transmitting: bool,
    pub(super) tx_scheduled: bool,
    pub(super) pending_handover: Option<(NodeId, usize)>,
    pub(super) last_tx_end: Option<SimTime>,
    /// Window of the most recent transmission, for half-duplex checks.
    pub(super) tx_window: Option<(SimTime, SimTime)>,
    /// Eq. 11 receive-window fraction, refreshed at each uplink.
    pub(super) gamma: f64,
    /// Cumulative transmit airtime.
    pub(super) tx_time: SimDuration,
    /// Cumulative Queue-based Class-A listening time.
    pub(super) rx_window_time: SimDuration,
    /// Uplink frames sent (for Class-A RX-window energy).
    pub(super) frames_sent: u64,
    /// The position this device is filed under in the neighbour grid.
    pub(super) grid_pos: Point,
    /// Traffic-model state; `None` under the paper's default workload.
    pub(super) traffic: Option<DeviceTraffic>,
}

/// What a retirement costs: the device's reconstructed radio energy and
/// its total in-service time, for the collector.
#[derive(Debug, Clone, Copy)]
pub(super) struct Retirement {
    pub(super) energy_mj: f64,
    pub(super) active: SimDuration,
}

/// The dense device world (see the module docs).
#[derive(Debug)]
pub(super) struct World {
    pub(super) net: mlora_mobility::BusNetwork,
    pub(super) devices: DenseMap<NodeId, Device>,
    /// Device ids currently in service, kept sorted for determinism.
    pub(super) active: Vec<NodeId>,
    /// Incrementally maintained spatial index over active devices.
    grid: GridIndex<NodeId>,
    /// When the next periodic drift-relocation sweep is due.
    grid_refresh_due: SimTime,
    /// Sweep period: chosen so no stored position can drift more than
    /// [`GRID_MARGIN_M`] between sweeps at the fleet's top speed.
    grid_refresh_every: SimDuration,
    /// Per-device polyline segment cursors for O(1) position queries.
    pos_hints: Vec<u32>,
    /// Scratch: raw grid query output.
    scratch_within: Vec<(NodeId, Point)>,
    /// Scratch: withdrawal candidate pool.
    scratch_withdraw: Vec<NodeId>,
}

impl World {
    /// Builds the world over a generated bus network. `cell_m` sizes the
    /// neighbour-grid cells and `max_speed_mps` paces the drift sweep.
    pub(super) fn new(net: mlora_mobility::BusNetwork, cell_m: f64, max_speed_mps: f64) -> Self {
        let num_trips = net.trips().len();
        // Sweep early enough that drift at the fastest service speed stays
        // inside the query margin (0.95: headroom for rounding to ms).
        let grid_refresh_every = SimDuration::from_secs_f64(GRID_MARGIN_M / max_speed_mps * 0.95);
        World {
            devices: DenseMap::with_capacity(num_trips),
            active: Vec::new(),
            grid: GridIndex::new(cell_m),
            grid_refresh_due: SimTime::ZERO,
            grid_refresh_every,
            pos_hints: vec![0; num_trips],
            scratch_within: Vec::new(),
            scratch_withdraw: Vec::new(),
            net,
        }
    }

    /// The device's position at `now`, through its segment cursor.
    pub(super) fn position_now(&mut self, n: NodeId, now: SimTime) -> Point {
        self.net
            .position_hinted(n, now, &mut self.pos_hints[n.index()])
    }

    /// Relocates every active device's grid entry to its current
    /// position when the periodic drift sweep is due. Relocation is a
    /// no-op for devices that stayed within their cell.
    fn refresh_grid_if_due(&mut self, now: SimTime) {
        if now < self.grid_refresh_due {
            return;
        }
        self.grid_refresh_due = now + self.grid_refresh_every;
        for i in 0..self.active.len() {
            let n = self.active[i];
            let pos = self.position_now(n, now);
            let dev = self.devices.get_mut(n).expect("active device exists");
            let moved = self.grid.relocate(n, dev.grid_pos, pos);
            debug_assert!(moved, "active device missing from grid");
            dev.grid_pos = pos;
        }
    }

    /// Writes the sorted ids of active devices possibly within `radius`
    /// of `pos` into `out` (callers must re-check exact distances).
    pub(super) fn neighbour_candidates(
        &mut self,
        now: SimTime,
        pos: Point,
        radius: f64,
        out: &mut Vec<NodeId>,
    ) {
        self.refresh_grid_if_due(now);
        let mut within = std::mem::take(&mut self.scratch_within);
        self.grid
            .within_into(pos, radius + GRID_MARGIN_M, &mut within);
        out.clear();
        out.extend(within.iter().map(|&(n, _)| n));
        out.sort_unstable();
        self.scratch_within = within;
    }

    /// Activates a device: files it in the device map, the sorted active
    /// set and the neighbour grid at `pos`.
    pub(super) fn activate(&mut self, n: NodeId, device: Device, pos: Point) {
        self.devices.insert(n, device);
        if let Err(i) = self.active.binary_search(&n) {
            self.active.insert(i, n);
        }
        self.grid.insert(n, pos);
    }

    /// Retires a device at `now`: removes it from the active set and the
    /// grid and reconstructs its whole-service energy spend. Returns
    /// `None` when the device never existed or already retired.
    pub(super) fn retire(&mut self, n: NodeId, now: SimTime) -> Option<Retirement> {
        let dev = self.devices.get_mut(n)?;
        if dev.retired_at.is_some() {
            return None;
        }
        dev.active = false;
        dev.retired_at = Some(now);
        if let Ok(i) = self.active.binary_search(&n) {
            self.active.remove(i);
        }
        let removed = self.grid.remove(n, dev.grid_pos);
        debug_assert!(removed, "retired device missing from grid");
        // Energy: time-in-state reconstruction for the whole service window.
        let dev = self.devices.get_mut(n).expect("checked above");
        let active_dur = now.saturating_since(dev.activated_at);
        let tx = dev.tx_time.min(active_dur);
        let non_tx = active_dur.saturating_sub(tx);
        let rx = match dev.class {
            DeviceClass::ModifiedClassC | DeviceClass::ClassC => non_tx,
            DeviceClass::QueueBasedClassA => dev.rx_window_time.min(non_tx),
            DeviceClass::ClassA => SimDuration::from_millis(320).min(non_tx) * dev.frames_sent,
            DeviceClass::ClassB { .. } => non_tx.mul_f64(0.01),
        };
        let sleep = non_tx.saturating_sub(rx);
        let mut acct = EnergyAccount::new();
        acct.add(RadioState::Tx, tx);
        acct.add(RadioState::Rx, rx);
        acct.add(RadioState::Sleep, sleep);
        let energy_mj = acct.energy_mj(&EnergyModel::sx1276());
        Some(Retirement {
            energy_mj,
            active: active_dur,
        })
    }

    /// Selects a deterministic random `count`-strong subset of the
    /// active fleet for withdrawal: the sorted active set is shuffled
    /// with `rng` (so the subset is a pure function of the plan and
    /// seed), truncated and re-sorted. Return the buffer through
    /// [`World::return_withdraw_pool`] when done.
    pub(super) fn take_withdraw_pool(&mut self, count: usize, rng: &mut SimRng) -> Vec<NodeId> {
        let mut pool = std::mem::take(&mut self.scratch_withdraw);
        pool.clear();
        pool.extend_from_slice(&self.active);
        rng.shuffle(&mut pool);
        pool.truncate(count);
        pool.sort_unstable();
        pool
    }

    /// Returns the withdrawal scratch buffer for reuse.
    pub(super) fn return_withdraw_pool(&mut self, pool: Vec<NodeId>) {
        self.scratch_withdraw = pool;
    }

    /// Truncates a withdrawn bus's trip in the mobility substrate.
    pub(super) fn withdraw_trip(&mut self, n: NodeId, now: SimTime) {
        self.net.withdraw(n, now);
    }

    /// When the next periodic grid drift sweep is due — checkpoint
    /// counterpart of [`World::restore_runtime`].
    pub(super) fn grid_refresh_due(&self) -> SimTime {
        self.grid_refresh_due
    }

    /// Restores snapshot-captured runtime state: re-files every device
    /// (restored into `devices` by the caller via [`World::activate`],
    /// which rebuilt the grid and active set) and pins the drift-sweep
    /// schedule where the checkpoint left it. Position-hint cursors are
    /// deliberately *not* checkpointed: they are pure lookup
    /// accelerators that never change a position value, so fresh zeros
    /// resume bit-identically.
    pub(super) fn restore_runtime(&mut self, grid_refresh_due: SimTime) {
        self.grid_refresh_due = grid_refresh_due;
    }
}
