//! The event-driven network engine.
//!
//! A discrete-event loop over five event kinds: trips starting and
//! ending, message generation, and transmission start/end. All physics
//! (ranges, RSSI, collisions) resolve at transmission end; positions
//! are computed analytically from the mobility substrate, so there is
//! no per-tick stepping anywhere.
//!
//! The loop itself is single-threaded and processes events in canonical
//! `(time, seq)` order. With `shards > 1` the *spatial* work of
//! transmission-end resolution — the candidate/gateway/interferer
//! queries that dominate at metro scale — is precomputed by per-tile
//! shard workers ([`partition`], [`comm`]) while frames are on the air;
//! the loop replays those plans with every RNG draw, filter and
//! mutation in the serial order, so a sharded run is bit-identical to a
//! single-shard run.
//!
//! # Layout
//!
//! The engine is decomposed into focused subsystems, each owning its
//! state, scratch buffers and (where applicable) RNG fork behind a
//! narrow interface:
//!
//! * [`world`] — the dense device world: the fleet, the incrementally
//!   maintained neighbour grid, device lifecycle and energy accounting.
//! * [`channel`] — the shared radio: frames in flight, the one
//!   shadowing RNG stream, regional noise and capture-model collision
//!   resolution ([`channel::Channel::receive`] serves gateway and
//!   device receivers alike).
//! * [`forwarding`] — policy dispatch: beacon overhearing through each
//!   device's pluggable
//!   [`ForwardingPolicy`](mlora_core::ForwardingPolicy), handover
//!   acceptance and sender settlement.
//! * [`delivery`] — the sink side: gateway deployment and outage state,
//!   server-side delivery and the metric collector.
//!
//! This file owns the event queue and the loop driving those
//! subsystems.
//!
//! # Hot-path layout
//!
//! Per-event state is dense and index-addressed: devices live in a
//! `DenseMap` keyed by their already-dense [`NodeId`], frames in
//! flight live in a generational `Slab`, the neighbour grid is
//! maintained incrementally (insert on trip start, remove on retirement,
//! periodic drift relocation — never a from-scratch rebuild), and every
//! query writes into scratch buffers owned by its subsystem. In steady
//! state the event loop performs no per-event heap allocation on the
//! neighbour-resolution path.

mod channel;
pub mod comm;
mod delivery;
mod forwarding;
pub mod partition;
#[doc(hidden)]
pub mod probe;
mod snapshot;
mod world;

pub use self::snapshot::{Snapshot, SnapshotError, SNAPSHOT_MAGIC};

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use mlora_geo::Point;
use mlora_mac::{
    AppMessage, DataQueue, DeviceClass, DutyCycleTracker, Priority, RetransmitPolicy, UplinkFrame,
    MAX_BUNDLE, MAX_BUNDLE_BYTES,
};
use mlora_phy::AirtimeTable;
use mlora_simcore::{AnyEventQueue, NodeId, SimDuration, SimRng, SimTime, SlabKey};

use self::channel::{Channel, FlightRef};
use self::comm::{
    EdgeMessage, FlightPlan, LocalCommunicator, ShardCommunicator, ShardParams, ShardWorker,
};
use self::delivery::Delivery;
use self::partition::Partition;
use self::world::{Device, DeviceTraffic, World};
use crate::disruption::DisruptionEvent;
use crate::metrics::Collector;
use crate::observer::{
    BusWithdrawn, FrameTransmitted, MessageGenerated, NullObserver, SimObserver,
};
use crate::{place_gateways, DeviceClassChoice, SimConfig, SimReport};

/// Discrete events driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A bus enters service and becomes a live device.
    TripStart(NodeId),
    /// A bus leaves service.
    TripEnd(NodeId),
    /// A device generates one application message.
    Generate(NodeId),
    /// A device begins a transmission (uplink or handover).
    TxStart(NodeId),
    /// A transmission completes; receptions resolve.
    TxEnd(SlabKey),
    /// A scripted world disruption fires (index into the compiled
    /// timeline). An empty [`DisruptionPlan`](crate::DisruptionPlan)
    /// schedules none of these.
    Disruption(u32),
}

/// Execution statistics of one engine run, returned by
/// [`Engine::run_instrumented`] for throughput benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Discrete events processed by the main loop.
    pub events_processed: u64,
}

/// Commit-thread state of a sharded run: the transport to the shard
/// workers, barrier pacing, out-of-order plan buffering and the
/// recent-launch ring that supplies interferers launched after a
/// flight's plan was requested (see the [`comm`] module docs).
#[derive(Debug)]
struct ShardRuntime {
    comm: Box<dyn ShardCommunicator>,
    part: Arc<Partition>,
    /// Next membership barrier to broadcast.
    next_barrier: SimTime,
    /// Plans received ahead of their transmission-end event, by flight
    /// sequence number.
    pending: HashMap<u64, FlightPlan>,
    /// Recent launches `(seq, pos, start, end)` in ascending sequence
    /// order; entries older than one worst-case airtime can no longer
    /// overlap any pending flight and are pruned on push.
    ring: VecDeque<(u64, Point, SimTime, SimTime)>,
    /// Worst-case frame airtime under the configured PHY.
    max_airtime: SimDuration,
    /// Scratch: the subject flight's dynamic interferers.
    dyn_scratch: Vec<(u64, Point)>,
}

impl ShardRuntime {
    /// Broadcasts every membership barrier due at or before `t` —
    /// called before each event, so workers always plan against the
    /// latest barrier at or before the flight's launch. The commit
    /// thread never blocks here; synchronization happens worker-side.
    fn pump_barriers(&mut self, t: SimTime) {
        while t >= self.next_barrier {
            let until = self.next_barrier;
            for s in 0..self.comm.num_shards() {
                self.comm.send(s, EdgeMessage::Barrier { until });
            }
            self.next_barrier = until + self.part.barrier_every();
        }
    }

    /// Announces a launch to every shard whose region the frame's
    /// interference disc can touch; the tile owner also computes the
    /// flight's plan (requested now so the frame's airtime hides the
    /// round-trip).
    fn on_launch(&mut self, seq: u64, sender: NodeId, pos: Point, start: SimTime, end: SimTime) {
        while self
            .ring
            .front()
            .is_some_and(|&(_, _, s, _)| s + self.max_airtime < start)
        {
            self.ring.pop_front();
        }
        self.ring.push_back((seq, pos, start, end));
        self.announce(seq, sender, pos, start, end, true);
    }

    /// The shared announcement path: sends `FlightLaunched` to every
    /// shard in reach of the flight's interference disc. The tile owner
    /// computes a plan only when `wants_plan` — true for live launches;
    /// a snapshot resume re-announcing retained flights requests plans
    /// only for those whose transmission-end event is still pending.
    fn announce(
        &mut self,
        seq: u64,
        sender: NodeId,
        pos: Point,
        start: SimTime,
        end: SimTime,
        wants_plan: bool,
    ) {
        let owner = self.part.shard_of(pos);
        let reach = self.part.flight_halo_m();
        for s in 0..self.comm.num_shards() {
            if self.part.shard_in_range(s, pos, reach) {
                self.comm.send(
                    s,
                    EdgeMessage::FlightLaunched {
                        seq,
                        sender,
                        pos,
                        start,
                        end,
                        wants_plan: wants_plan && s == owner,
                    },
                );
            }
        }
    }

    /// Non-blocking: folds every plan the workers have already finished
    /// into the pending buffer. Called between events so the buffering
    /// happens off the transmission-end critical path and
    /// [`ShardRuntime::take_plan`] almost always hits the buffer.
    fn drain_plans(&mut self) {
        while let Some(plan) = self.comm.try_recv_plan() {
            self.pending.insert(plan.seq, plan);
        }
    }

    /// Blocks until the plan for flight `seq` is in hand; plans for
    /// other flights arriving first are buffered.
    fn take_plan(&mut self, seq: u64) -> FlightPlan {
        if let Some(plan) = self.pending.remove(&seq) {
            return plan;
        }
        loop {
            let plan = self.comm.recv_plan();
            if plan.seq == seq {
                return plan;
            }
            self.pending.insert(plan.seq, plan);
        }
    }

    /// Collects into `dyn_scratch` the frames launched *after* flight
    /// `seq`'s plan was requested that overlap it in time and whose
    /// sender is close enough to interfere at any of its receivers —
    /// ascending by sequence, continuing exactly where the plan's
    /// interferer slices stop.
    fn dynamic_overlaps(&mut self, seq: u64, pos: Point, start: SimTime, end: SimTime) {
        self.dyn_scratch.clear();
        let from = self.ring.partition_point(|&(s, _, _, _)| s <= seq);
        let reach = self.part.flight_halo_m();
        for &(s, p, st, en) in self.ring.iter().skip(from) {
            if st < end && en > start && p.distance(pos) <= reach {
                self.dyn_scratch.push((s, p));
            }
        }
    }
}

/// The simulation engine. Construct with [`Engine::new`], execute with
/// [`Engine::run`].
#[derive(Debug)]
pub struct Engine {
    cfg: SimConfig,
    /// The master seed the engine was built with; a snapshot carries it
    /// so a resume can regenerate the deterministic substrate (network,
    /// gateway placement, RNG stream identities).
    seed: u64,
    events: AnyEventQueue<Event>,
    /// Precomputed per-payload airtime under the configured PHY —
    /// bit-identical to calling `time_on_air` per transmission, one
    /// table load instead of the float formula on the hot path.
    airtime: AirtimeTable,
    now: SimTime,
    horizon: SimTime,
    next_msg: u64,
    /// The dense device world (fleet, neighbour grid, lifecycle).
    world: World,
    /// The shared radio (flights, shadowing RNG, noise, collisions).
    channel: Channel,
    /// The sink side (gateways, outages, collector).
    delivery: Delivery,
    /// Scratch: sorted neighbour candidates `(id, exact position)`.
    scratch_candidates: Vec<(NodeId, Point)>,
    /// Scratch: devices needing a transmission opportunity scheduled.
    scratch_schedule: Vec<NodeId>,
    /// Compiled disruption timeline, in firing order (empty for an
    /// undisrupted run).
    timeline: Vec<(SimTime, DisruptionEvent)>,
    /// Dedicated stream for withdrawal selection, so disruptions never
    /// perturb the channel/shadowing draws of the surviving fleet.
    disruption_rng: SimRng,
    /// Root of the per-device traffic streams (profile assignment,
    /// arrival gaps, payload sizes). Forked per device by node index, so
    /// a device's traffic is a pure function of the seed and its
    /// identity. Never drawn from when the model is empty.
    traffic_root: SimRng,
    /// Set once the engine has run: the engine keeps end-of-run state
    /// for inspection and must not be executed again.
    executed: bool,
    /// Set once initial events are seeded (and shard workers launched):
    /// stepping entry points start lazily, exactly once.
    started: bool,
    /// Events processed since the run began, across every stepping call.
    events_processed: u64,
    /// Every scripted withdrawal applied so far, as `(node, when)` in
    /// application order. A snapshot resume replays these against the
    /// freshly regenerated mobility substrate before anything else, so
    /// trip truncations survive the checkpoint.
    withdrawn: Vec<(NodeId, SimTime)>,
    /// Commit-side state of a sharded run; `None` while idle and for
    /// single-shard runs, which take the serial path untouched.
    shard_rt: Option<ShardRuntime>,
}

impl Engine {
    /// Builds an engine for the given configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; prefer
    /// [`SimConfig::run`](crate::SimConfig::run), which validates first.
    pub fn new(cfg: SimConfig, seed: u64) -> Self {
        let root = SimRng::new(seed);
        let mut deploy_rng = root.fork(10);
        // A prebuilt world (a metro-scale network loaded from a scenario
        // file) bypasses seeded generation entirely; fork(11) is then
        // simply never drawn from, which perturbs no other stream.
        let net = match &cfg.world {
            Some(world) => mlora_mobility::BusNetwork::clone(world),
            None => {
                let mut net_cfg = cfg.network.clone();
                net_cfg.horizon = cfg.horizon;
                mlora_mobility::BusNetwork::generate(&net_cfg, root.fork(11).seed())
            }
        };
        let gateways = place_gateways(net.area(), cfg.num_gateways, cfg.placement, &mut deploy_rng);
        let collector = Collector::new(
            cfg.scheme_label().to_string(),
            cfg.series_bucket,
            cfg.horizon,
            &cfg.traffic,
        );
        let horizon = SimTime::ZERO + cfg.horizon;
        let cell = cfg.environment.d2d_range_m().max(200.0);
        let world = World::new(net, cell, cfg.network.max_speed_mps);
        let airtime = AirtimeTable::new(&cfg.phy);
        // The 2 s floor keeps the historical window at fast spreading
        // factors; slow SFs (≳4 s airtime for a full bundle) need the
        // whole worst-case airtime or concurrent frames would be pruned
        // before their interference resolves.
        let flight_retention = airtime.max().max(SimDuration::from_secs(2));
        // Forking is a pure function of the master seed: deriving the
        // channel (12), disruption (13) and traffic (14) streams in this
        // fixed order leaves each subsystem's draws independent of the
        // others — an empty plan or model never draws from its stream
        // and stays bit-identical.
        let channel = Channel::new(
            root.fork(12),
            flight_retention,
            cfg.disruptions.noise_bursts.clone(),
            cfg.path_loss,
            cfg.phy.sensitivity_dbm(),
            cfg.phy.tx_power_dbm,
        );
        let delivery = Delivery::new(gateways, cfg.gateway_range_m, collector);
        let timeline = cfg.disruptions.compile(cfg.horizon);
        Engine {
            seed,
            events: AnyEventQueue::with_capacity(cfg.queue, 1 << 16),
            airtime,
            now: SimTime::ZERO,
            horizon,
            next_msg: 0,
            world,
            channel,
            delivery,
            scratch_candidates: Vec::new(),
            scratch_schedule: Vec::new(),
            timeline,
            disruption_rng: root.fork(13),
            traffic_root: root.fork(14),
            executed: false,
            started: false,
            events_processed: 0,
            withdrawn: Vec::new(),
            shard_rt: None,
            cfg,
        }
    }

    /// The gateway positions in use.
    pub fn gateways(&self) -> &[mlora_geo::Point] {
        self.delivery.gateways()
    }

    /// The generated mobility network.
    pub fn network(&self) -> &mlora_mobility::BusNetwork {
        &self.world.net
    }

    /// The one internal run driver: every public `run*` entry point is a
    /// thin projection of this. Consumes the engine (state is spent
    /// after a run) and returns everything any wrapper needs.
    fn drive(mut self, observer: &mut dyn SimObserver) -> (SimReport, EngineStats, Engine) {
        let (report, stats) = self.execute(observer);
        (report, stats, self)
    }

    /// Runs the simulation to the horizon and returns the report.
    pub fn run(self) -> SimReport {
        self.drive(&mut NullObserver).0
    }

    /// Runs the simulation and additionally returns execution statistics
    /// (processed-event counts) for throughput benchmarking.
    ///
    /// The report is identical to [`Engine::run`] for the same
    /// configuration and seed.
    pub fn run_instrumented(self) -> (SimReport, EngineStats) {
        let (report, stats, _) = self.drive(&mut NullObserver);
        (report, stats)
    }

    /// Runs the simulation, streaming events to `observer`.
    ///
    /// Observers are passive: the event stream and the returned report
    /// are identical to [`Engine::run`] for the same configuration and
    /// seed.
    pub fn run_with_observer(self, observer: &mut dyn SimObserver) -> SimReport {
        self.drive(observer).0
    }

    /// Runs the simulation and returns the spent engine alongside the
    /// report, for post-run invariant inspection (see
    /// [`Engine::gateway_grid_matches_rebuild`]). The report is
    /// identical to [`Engine::run`] for the same configuration and seed.
    ///
    /// The returned engine holds end-of-run state and is inspection-only:
    /// feeding it back into any `run*` method panics.
    pub fn run_returning_engine(self) -> (SimReport, Engine) {
        let (report, _, engine) = self.drive(&mut NullObserver);
        (report, engine)
    }

    /// Which gateways are in service after (or before) a run: `true`
    /// means up. All gateways start up; scripted outages toggle them.
    pub fn gateways_up(&self) -> Vec<bool> {
        self.delivery.gateways_up()
    }

    /// The current simulation time: the timestamp of the last processed
    /// event ([`SimTime::ZERO`] before any), the horizon after a full
    /// run.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the simulation through every event due at or before `t`
    /// (clamped to the horizon) and returns the number of events
    /// processed. The first call seeds the initial events (and launches
    /// shard workers for a parallel configuration); stepping to
    /// `t1 < t2 < …` processes exactly the event sequence one
    /// uninterrupted [`Engine::run`] would, so a [`Engine::snapshot`]
    /// taken between steps resumes bit-identically.
    ///
    /// # Panics
    ///
    /// Panics on an engine whose run already completed.
    pub fn run_until(&mut self, t: SimTime) -> u64 {
        self.advance_until(t, &mut NullObserver)
    }

    /// Completes the run from wherever the engine stands — the remaining
    /// events, horizon retirement and stranded accounting — and returns
    /// the report. `run_until(t)` followed by `finish()` yields a report
    /// bit-identical to [`Engine::run`] on the same configuration and
    /// seed.
    ///
    /// # Panics
    ///
    /// Panics on an engine whose run already completed.
    pub fn finish(mut self) -> SimReport {
        self.advance_until(self.horizon, &mut NullObserver);
        self.finalize(&mut NullObserver).0
    }

    /// Verifies that the incrementally maintained gateway grid matches a
    /// from-scratch rebuild over the gateways currently in service —
    /// the invariant the outage/recovery mutation paths preserve.
    pub fn gateway_grid_matches_rebuild(&self) -> bool {
        self.delivery.grid_matches_rebuild(self.world.net.area())
    }

    fn execute(&mut self, observer: &mut dyn SimObserver) -> (SimReport, EngineStats) {
        self.advance_until(self.horizon, observer);
        self.finalize(observer)
    }

    /// Seeds the initial events (trip lifecycle, compiled disruption
    /// timeline) and launches the shard workers of a parallel run.
    /// Idempotent: stepping entry points call it lazily; a snapshot
    /// resume marks the engine started and never seeds.
    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Spin up the shard workers for a parallel run; a single-shard
        // configuration takes the serial path with zero new machinery.
        if self.cfg.shards > 1 {
            self.shard_rt = Some(self.build_shard_runtime());
        }
        // Seed trip lifecycle events.
        for trip in self.world.net.trips() {
            if trip.depart() >= self.horizon {
                continue;
            }
            self.events
                .schedule(trip.depart(), Event::TripStart(trip.node()));
            self.events
                .schedule(trip.end().min(self.horizon), Event::TripEnd(trip.node()));
        }
        // Seed the compiled disruption timeline (no-op when the plan is
        // empty, leaving event sequence numbers — and therefore same-time
        // ordering — exactly as in an undisrupted build).
        for i in 0..self.timeline.len() {
            let (t, _) = self.timeline[i];
            if t <= self.horizon {
                self.events.schedule(t, Event::Disruption(i as u32));
            }
        }
    }

    /// Processes every event due at or before `limit` (clamped to the
    /// horizon), in canonical `(time, seq)` order. Events past the limit
    /// stay queued, so stepping to `t1 < t2 < …` processes exactly the
    /// event sequence one uninterrupted run to the horizon would.
    /// Returns the number of events processed by this call.
    fn advance_until(&mut self, limit: SimTime, observer: &mut dyn SimObserver) -> u64 {
        // The run consumers all take `self` by value, so this can only
        // trip if a future caller tries to re-run the engine returned by
        // `run_returning_engine` — whose state is spent.
        assert!(!self.executed, "engine already ran; build a new one");
        self.start();
        let limit = limit.min(self.horizon);
        let mut events_processed: u64 = 0;
        while let Some(t) = self.events.peek_time() {
            if t > limit {
                break;
            }
            let (t, ev) = self.events.pop().expect("peeked above");
            // Sharded runs broadcast membership barriers before the
            // event that crosses them, so shard-side state is always
            // synchronized to the latest barrier at or before any plan
            // request.
            if let Some(rt) = self.shard_rt.as_mut() {
                rt.pump_barriers(t);
                // Fold any plans the workers have already finished into
                // the pending buffer while the commit thread is between
                // events, instead of on the transmission-end critical
                // path.
                rt.drain_plans();
            }
            self.now = t;
            events_processed += 1;
            match ev {
                Event::TripStart(n) => self.on_trip_start(n),
                Event::TripEnd(n) => self.retire(n),
                Event::Generate(n) => self.on_generate(n, observer),
                Event::TxStart(n) => self.on_tx_start(n, observer),
                Event::TxEnd(key) => self.on_tx_end(key, observer),
                Event::Disruption(i) => self.on_disruption(i, observer),
            }
        }
        self.events_processed += events_processed;
        events_processed
    }

    /// Ends the run: retires the surviving fleet at the horizon, closes
    /// open outage windows, counts stranded messages and finishes the
    /// collector into the report. The engine is spent afterwards.
    fn finalize(&mut self, observer: &mut dyn SimObserver) -> (SimReport, EngineStats) {
        assert!(!self.executed, "engine already ran; build a new one");
        self.start();
        self.executed = true;

        // The run is over: release the shard workers.
        if let Some(mut rt) = self.shard_rt.take() {
            rt.comm.shutdown();
        }

        // Retire any device still in service at the horizon.
        let still_active: Vec<NodeId> = self.world.active.clone();
        self.now = self.horizon;
        for n in still_active {
            self.retire(n);
        }
        // Close any outage window still open at the horizon.
        self.delivery.collector.on_horizon(self.horizon);

        // Stranded = undelivered messages left in any queue, deduplicated
        // across holders (handovers can replicate a message).
        let mut stranded = std::collections::HashSet::new();
        for dev in self.world.devices.values() {
            for msg in dev.queue.iter() {
                if !self.delivery.collector.was_delivered(msg.id) {
                    stranded.insert(msg.id);
                }
            }
        }
        self.delivery.collector.on_stranded(stranded.len() as u64);

        let collector = std::mem::replace(
            &mut self.delivery.collector,
            Collector::new(
                self.cfg.scheme_label().to_string(),
                self.cfg.series_bucket,
                self.cfg.horizon,
                &self.cfg.traffic,
            ),
        );
        let report = collector.finish();
        observer.on_run_end(&report);
        (
            report,
            EngineStats {
                events_processed: self.events_processed,
            },
        )
    }

    /// Applies one compiled disruption event.
    fn on_disruption(&mut self, index: u32, observer: &mut dyn SimObserver) {
        let (_, ev) = self.timeline[index as usize];
        match ev {
            DisruptionEvent::GatewayDown { gateway } => {
                self.delivery.gateway_down(gateway, self.now, observer);
            }
            DisruptionEvent::GatewayUp { gateway } => {
                self.delivery.gateway_up(gateway, self.now, observer);
            }
            DisruptionEvent::Withdraw { withdrawal } => {
                self.on_withdrawal(withdrawal, observer);
            }
            DisruptionEvent::NoiseStart { burst } => {
                self.channel.noise_start(burst);
                self.delivery.collector.on_noise_burst();
                observer.on_noise_burst(&crate::observer::NoiseBurstChanged {
                    time: self.now,
                    burst,
                    active: true,
                });
            }
            DisruptionEvent::NoiseEnd { burst } => {
                self.channel.noise_end(burst);
                observer.on_noise_burst(&crate::observer::NoiseBurstChanged {
                    time: self.now,
                    burst,
                    active: false,
                });
            }
        }
    }

    /// Withdraws a deterministic random subset of the active fleet.
    fn on_withdrawal(&mut self, index: u32, observer: &mut dyn SimObserver) {
        let spec = self.cfg.disruptions.withdrawals[index as usize];
        let n = self.world.active.len();
        let count = ((spec.fraction * n as f64).round() as usize).min(n);
        if count == 0 {
            return;
        }
        // The pool is the sorted active set, so the shuffle (and with it
        // the withdrawn subset) is a pure function of the plan and seed.
        let pool = self
            .world
            .take_withdraw_pool(count, &mut self.disruption_rng);
        for &node in &pool {
            self.world.withdraw_trip(node, self.now);
            self.withdrawn.push((node, self.now));
            self.retire(node);
            self.delivery.collector.on_bus_withdrawn();
            observer.on_bus_withdrawn(&BusWithdrawn {
                time: self.now,
                device: node,
            });
        }
        self.world.return_withdraw_pool(pool);
    }

    fn device_class(&self) -> DeviceClass {
        match self.cfg.device_class {
            DeviceClassChoice::ModifiedClassC => DeviceClass::ModifiedClassC,
            DeviceClassChoice::QueueBasedClassA => DeviceClass::QueueBasedClassA,
        }
    }

    fn on_trip_start(&mut self, n: NodeId) {
        let pos = self.world.position_now(n, self.now);
        // Traffic state and the delay to the first reading. The paper
        // default draws its phase from the channel stream (the historical
        // behaviour, kept bit-identical); a heterogeneous model gives
        // every device its own stream — first draw assigns the profile,
        // the second the phase.
        let (traffic, first_gap) = if self.cfg.traffic.is_empty() {
            let phase_ms = self
                .channel
                .legacy_phase_ms(self.cfg.gen_interval.as_millis().max(1));
            (None, SimDuration::from_millis(phase_ms))
        } else {
            let mut rng = self.traffic_root.fork(n.index() as u64);
            let profile = self.cfg.traffic.pick_profile(&mut rng);
            let gap = self.cfg.traffic.profiles[profile]
                .arrivals
                .first_gap(&mut rng);
            (
                Some(DeviceTraffic {
                    profile: profile as u32,
                    rng,
                    burst_left: 0,
                }),
                gap,
            )
        };
        let device = Device {
            activated_at: self.now,
            retired_at: None,
            queue: DataQueue::new(self.cfg.queue_capacity),
            duty: DutyCycleTracker::new(self.cfg.duty_cycle),
            retransmit: RetransmitPolicy::new(self.cfg.max_attempts),
            routing: self.cfg.routing_state(),
            class: self.device_class(),
            tx_scheduled: false,
            pending_handover: None,
            tx_time: SimDuration::ZERO,
            rx_window_time: SimDuration::ZERO,
            frames_sent: 0,
            grid_pos: pos,
            traffic,
        };
        self.world.activate(n, device, pos);
        // First reading arrives after a per-device phase so the fleet does
        // not transmit in lockstep.
        self.events
            .schedule(self.now + first_gap, Event::Generate(n));
    }

    /// Retires a device (trip end, horizon, or withdrawal) and books its
    /// reconstructed energy on the collector.
    fn retire(&mut self, n: NodeId) {
        if let Some(retirement) = self.world.retire(n, self.now) {
            self.delivery
                .collector
                .on_device_retired(retirement.energy_mj, retirement.active);
        }
    }

    fn on_generate(&mut self, n: NodeId, observer: &mut dyn SimObserver) {
        let gen_interval = self.cfg.gen_interval;
        let now = self.now;
        if !self.world.hot.active[n.index()] {
            return;
        }
        let Some(dev) = self.world.devices.get_mut(n) else {
            return;
        };
        // Reading shape and the gap to the next one: the paper default
        // is a fixed 20-byte reading every `gen_interval`; a profile
        // samples both from the device's own traffic stream.
        let (payload, profile, priority, gap) = match dev.traffic.as_mut() {
            None => (
                mlora_mac::APP_MESSAGE_BYTES as u16,
                0u8,
                Priority::Normal,
                gen_interval,
            ),
            Some(state) => {
                let spec = &self.cfg.traffic.profiles[state.profile as usize];
                let payload = spec.payload.sample(&mut state.rng);
                let gap = spec
                    .arrivals
                    .next_gap(now, &mut state.burst_left, &mut state.rng);
                (payload, state.profile as u8, spec.priority, gap)
            }
        };
        let msg = AppMessage::new(mlora_simcore::MessageId::new(self.next_msg), n, self.now)
            .with_traffic(payload, profile, priority);
        self.next_msg += 1;
        let drops_before = dev.queue.dropped();
        dev.queue.push(msg);
        let dropped = dev.queue.dropped() - drops_before;
        self.delivery.collector.on_generated(&msg);
        observer.on_message_generated(&MessageGenerated {
            time: self.now,
            device: n,
            message: msg.id,
            profile,
            payload_bytes: payload,
        });
        if dropped > 0 {
            self.delivery.collector.on_queue_drop(dropped);
        }
        // A new packet resets the retransmission counter (§VII.A.5).
        dev.retransmit.reset();
        self.events.schedule(self.now + gap, Event::Generate(n));
        self.maybe_schedule_tx(n);
    }

    /// Schedules the next transmission opportunity for `n`, if one is
    /// needed and none is pending.
    pub(super) fn maybe_schedule_tx(&mut self, n: NodeId) {
        let i = n.index();
        if !self.world.hot.active[i] || self.world.hot.transmitting[i] {
            return;
        }
        let Some(dev) = self.world.devices.get_mut(n) else {
            return;
        };
        if dev.tx_scheduled {
            return;
        }
        let has_data = !dev.queue.is_empty() || dev.pending_handover.is_some_and(|(_, c)| c > 0);
        if !has_data {
            return;
        }
        let t = dev.duty.next_opportunity(self.now);
        dev.tx_scheduled = true;
        self.events.schedule(t, Event::TxStart(n));
    }

    fn on_tx_start(&mut self, n: NodeId, observer: &mut dyn SimObserver) {
        let gen_interval = self.cfg.gen_interval;
        let queue_capacity = self.cfg.queue_capacity;
        let i = n.index();
        let Some(dev) = self.world.devices.get_mut(n) else {
            return;
        };
        dev.tx_scheduled = false;
        if !self.world.hot.active[i] || self.world.hot.transmitting[i] {
            return;
        }
        if !dev.duty.can_transmit(self.now) {
            // Races between success-drain and retransmit scheduling can
            // land here; re-arm at the legal instant.
            dev.tx_scheduled = true;
            let t = dev.duty.next_opportunity(self.now);
            self.events.schedule(t, Event::TxStart(n));
            return;
        }

        // Handover takes precedence when armed and the target still lives.
        let mut target = None;
        let mut count = dev.queue.len().min(MAX_BUNDLE);
        if let Some((y, c)) = dev.pending_handover.take() {
            let target_alive = self.world.hot.active[y.index()];
            if target_alive {
                let c = c.min(MAX_BUNDLE);
                if c > 0 {
                    target = Some(y);
                    count = c;
                }
            }
        }
        let dev = self.world.devices.get_mut(n).expect("checked above");
        // Bundle the front of the queue under both caps: the 12-message
        // bundle limit and the PHY byte budget. Uniform 20-byte readings
        // saturate both at once (12 × 20 = 240), reproducing the legacy
        // count-only selection exactly; heterogeneous payloads stop at
        // whatever fits.
        let count = count.min(dev.queue.len());
        let messages = dev.queue.peek_front_within(count, MAX_BUNDLE_BYTES);
        if messages.is_empty() {
            return;
        }
        let frame = UplinkFrame::new(
            n,
            messages,
            dev.routing.beacon_metric_at(self.now, dev.queue.len()),
            dev.queue.len(),
        );
        let airtime = self.airtime.lookup(frame.payload_bytes());
        dev.duty.record_tx(self.now, airtime);
        self.world.hot.transmitting[i] = true;
        self.world.hot.tx_window[i] = Some((self.now, self.now + airtime));
        dev.tx_time += airtime;
        dev.frames_sent += 1;
        // Queue-based Class-A opens its Eq. 11 window after this uplink.
        if matches!(dev.class, DeviceClass::QueueBasedClassA) {
            let gamma = dev.routing.gamma(dev.queue.len(), queue_capacity);
            self.world.hot.gamma[i] = gamma;
            dev.rx_window_time += gen_interval.mul_f64(gamma);
        }
        self.delivery
            .collector
            .on_frame_sent(target.is_some(), &frame, airtime);
        observer.on_frame_tx(&FrameTransmitted {
            time: self.now,
            sender: n,
            bundled: frame.len(),
            payload_bytes: frame.payload_bytes(),
            airtime,
            handover_target: target,
        });

        let pos = self.world.position_now(n, self.now);
        let key = self
            .channel
            .launch(n, frame, target, self.now, self.now + airtime, pos);
        // A sharded run announces the launch immediately: the owning
        // shard computes the flight's plan while the frame is on the
        // air, so the commit thread rarely waits at transmission end.
        if let Some(rt) = self.shard_rt.as_mut() {
            let seq = self.channel.last_launched_seq();
            rt.on_launch(seq, n, pos, self.now, self.now + airtime);
        }
        self.events.schedule(self.now + airtime, Event::TxEnd(key));
    }

    fn on_tx_end(&mut self, key: SlabKey, observer: &mut dyn SimObserver) {
        if self.shard_rt.is_some() {
            return self.on_tx_end_sharded(key, observer);
        }
        // Expired-flight reclamation is deferred to the launch path
        // (`Channel::maybe_sweep`); a stale flight cannot pass the
        // time-overlap filter below, so nothing here depends on it. The
        // eager knob reinstates the historical per-event sweep for the
        // lazy-vs-eager property test.
        if self.channel.eager_prune {
            self.channel.sweep(self.now);
        }

        // Copy the subject's hot row out of the columns, then take the
        // cold table out of the channel so its frame can be borrowed
        // across the resolution calls without cloning.
        let Some(hot) = self.channel.flight_hot(key) else {
            return;
        };
        let flights = std::mem::take(&mut self.channel.flights);
        let Some(cold) = flights.get(key) else {
            self.channel.flights = flights;
            return;
        };
        let flight = FlightRef {
            seq: hot.seq,
            sender: hot.sender,
            frame: &cold.frame,
            target: cold.target,
            start: hot.start,
            end: hot.end,
            pos: hot.pos,
        };
        let sender = flight.sender;

        // Sender leaves the transmit state.
        self.world.hot.transmitting[sender.index()] = false;
        self.world.hot.last_tx_end[sender.index()] = Some(self.now);

        // Frames overlapping this one in time (including itself), in
        // creation order — one pass over the contiguous flight columns.
        let mut overlaps = std::mem::take(&mut self.channel.scratch_overlaps);
        self.channel
            .overlaps_into(flight.start, flight.end, &mut overlaps);

        let gateway_rssi = self
            .delivery
            .resolve_gateways(&mut self.channel, &overlaps, flight);
        let d2d = self.cfg.environment.d2d_range_m();
        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        self.world
            .batched_candidates(self.now, sender, flight.pos, d2d, &mut candidates);
        // Every device receiver sits within `d2d` of the sender, so an
        // overlapping frame farther than `2 * d2d` from the sender is out
        // of range of all of them (triangle inequality; +1 m float
        // margin, per-receiver exact check unchanged). One filter pass
        // here replaces a full-overlap distance scan per candidate; the
        // subset keeps creation order, so draw order is untouched.
        let mut near = std::mem::take(&mut self.channel.scratch_near_overlaps);
        near.clear();
        let reach_sq = (2.0 * d2d + 1.0) * (2.0 * d2d + 1.0);
        near.extend(
            overlaps
                .iter()
                .copied()
                .filter(|&(_, p)| p.distance_sq(flight.pos) <= reach_sq),
        );
        let mut to_schedule = std::mem::take(&mut self.scratch_schedule);
        to_schedule.clear();
        let accepted_by_target =
            self.resolve_neighbours(flight, &near, &candidates, &mut to_schedule, observer);
        self.settle_sender(flight, gateway_rssi, accepted_by_target, observer);
        for &n in &to_schedule {
            self.maybe_schedule_tx(n);
        }

        self.scratch_schedule = to_schedule;
        self.scratch_candidates = candidates;
        self.channel.scratch_near_overlaps = near;
        self.channel.scratch_overlaps = overlaps;
        self.channel.flights = flights;
    }

    /// [`Engine::on_tx_end`] for a sharded run: the overlap scan and
    /// the two spatial queries are replaced by the flight's precomputed
    /// [`FlightPlan`] plus the commit-side dynamic-interferer ring;
    /// every draw, filter and mutation then runs in the serial order.
    fn on_tx_end_sharded(&mut self, key: SlabKey, observer: &mut dyn SimObserver) {
        if self.channel.eager_prune {
            self.channel.sweep(self.now);
        }
        let Some(hot) = self.channel.flight_hot(key) else {
            return;
        };
        let flights = std::mem::take(&mut self.channel.flights);
        let Some(cold) = flights.get(key) else {
            self.channel.flights = flights;
            return;
        };
        let flight = FlightRef {
            seq: hot.seq,
            sender: hot.sender,
            frame: &cold.frame,
            target: cold.target,
            start: hot.start,
            end: hot.end,
            pos: hot.pos,
        };
        let sender = flight.sender;

        // Sender leaves the transmit state.
        self.world.hot.transmitting[sender.index()] = false;
        self.world.hot.last_tx_end[sender.index()] = Some(self.now);

        let mut rt = self.shard_rt.take().expect("sharded path");
        let plan = rt.take_plan(flight.seq);
        rt.dynamic_overlaps(flight.seq, flight.pos, flight.start, flight.end);
        let dynamic = std::mem::take(&mut rt.dyn_scratch);

        let gateway_rssi =
            self.delivery
                .resolve_gateways_planned(&mut self.channel, &plan, &dynamic, flight);
        let mut to_schedule = std::mem::take(&mut self.scratch_schedule);
        to_schedule.clear();
        let accepted_by_target =
            self.resolve_neighbours_planned(flight, &plan, &dynamic, &mut to_schedule, observer);
        self.settle_sender(flight, gateway_rssi, accepted_by_target, observer);
        for &n in &to_schedule {
            self.maybe_schedule_tx(n);
        }

        self.scratch_schedule = to_schedule;
        rt.dyn_scratch = dynamic;
        self.shard_rt = Some(rt);
        self.channel.flights = flights;
    }

    /// Builds the partition, the per-shard workers and the local
    /// transport for a parallel run.
    fn build_shard_runtime(&self) -> ShardRuntime {
        let shards = self.cfg.shards;
        let d2d = self.cfg.environment.d2d_range_m();
        let gw_range = self.cfg.gateway_range_m;
        let max_airtime = self.airtime.max();
        let part = Arc::new(Partition::new(
            self.world.net.area(),
            shards,
            d2d,
            gw_range,
            self.cfg.network.max_speed_mps,
            max_airtime,
        ));
        let net = Arc::new(self.world.net.clone());
        let mut departures: Vec<(SimTime, NodeId)> =
            net.trips().iter().map(|t| (t.depart(), t.node())).collect();
        departures.sort_unstable_by_key(|&(d, n)| (d, n.index()));
        let departures = Arc::new(departures);
        let params = ShardParams {
            d2d_range_m: d2d,
            gateway_range_m: gw_range,
            tx_power_dbm: self.cfg.phy.tx_power_dbm,
            path_loss: self.cfg.path_loss,
            flight_retention: max_airtime.max(SimDuration::from_secs(2)),
        };
        let workers = (0..shards)
            .map(|id| {
                // The static superset of gateways any tile-local flight
                // can reach (the serial grid query's `range + 1 m`
                // margin kept for float safety).
                let gateways = self
                    .delivery
                    .gateways()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &p)| part.shard_in_range(id, p, gw_range + 1.0))
                    .map(|(i, &p)| (i as u32, p))
                    .collect();
                ShardWorker::new(
                    id,
                    Arc::clone(&part),
                    Arc::clone(&net),
                    Arc::clone(&departures),
                    gateways,
                    params.clone(),
                )
            })
            .collect();
        ShardRuntime {
            comm: Box::new(LocalCommunicator::launch(workers)),
            part,
            next_barrier: SimTime::ZERO,
            pending: HashMap::new(),
            ring: VecDeque::new(),
            max_airtime,
            dyn_scratch: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Environment;
    use mlora_core::Scheme;

    fn smoke(scheme: Scheme) -> SimReport {
        SimConfig::smoke_test(scheme, Environment::Urban)
            .run(1234)
            .expect("valid config")
    }

    #[test]
    fn no_routing_runs_and_delivers() {
        let r = smoke(Scheme::NoRouting);
        assert!(r.generated > 100, "generated {}", r.generated);
        assert!(r.delivered > 0, "delivered {}", r.delivered);
        assert!(r.delivered <= r.generated);
        assert_eq!(r.handover_frames, 0);
        assert_eq!(r.handover_messages, 0);
        // Every delivery in the baseline is exactly one hop.
        assert_eq!(r.mean_hops(), 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = smoke(Scheme::Robc);
        let b = smoke(Scheme::Robc);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SimConfig::smoke_test(Scheme::NoRouting, Environment::Urban);
        let a = cfg.run(1).unwrap();
        let b = cfg.run(2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn forwarding_schemes_move_data_between_devices() {
        let r = smoke(Scheme::Robc);
        assert!(r.handover_frames > 0, "ROBC never handed over");
        assert!(r.mean_hops() >= 1.0);
    }

    #[test]
    fn rca_etx_scheme_hands_over() {
        let r = smoke(Scheme::RcaEtx);
        assert!(r.handover_frames > 0, "RCA-ETX never handed over");
    }

    #[test]
    fn message_conservation() {
        for scheme in Scheme::ALL {
            let r = smoke(scheme);
            assert!(
                r.delivered + r.stranded + r.queue_drops >= r.generated,
                "{scheme}: {} delivered + {} stranded + {} drops < {} generated",
                r.delivered,
                r.stranded,
                r.queue_drops,
                r.generated
            );
        }
    }

    #[test]
    fn overhead_ordering_matches_paper() {
        // Fig. 13: forwarding schemes send more frames per node.
        let base = smoke(Scheme::NoRouting).mean_frames_per_node();
        let robc = smoke(Scheme::Robc).mean_frames_per_node();
        // Smoke-scale runs are noisy; the paper-scale ordering (1.6–2.2×)
        // is asserted by the repro harness. Here we only require ROBC not
        // to transmit *less* than the baseline beyond noise.
        assert!(
            robc >= 0.9 * base,
            "ROBC overhead {robc} far below baseline {base}"
        );
    }

    #[test]
    fn energy_accounted_for_all_devices() {
        let r = smoke(Scheme::NoRouting);
        assert!(r.devices_seen > 0);
        assert!(r.total_energy_mj > 0.0);
        assert!(r.total_active_s > 0.0);
    }

    #[test]
    fn gateways_on_grid() {
        let cfg = SimConfig::smoke_test(Scheme::NoRouting, Environment::Urban);
        let engine = Engine::new(cfg.clone(), 9);
        assert_eq!(engine.gateways().len(), cfg.num_gateways);
        for gw in engine.gateways() {
            assert!(engine.network().area().contains(*gw));
        }
    }

    #[test]
    fn instrumented_run_matches_plain_run() {
        let cfg = SimConfig::smoke_test(Scheme::Robc, Environment::Urban);
        let plain = Engine::new(cfg.clone(), 7).run();
        let (report, stats) = Engine::new(cfg, 7).run_instrumented();
        assert_eq!(plain, report);
        assert!(
            stats.events_processed > report.generated + report.frames_sent,
            "loop must process at least one event per message and frame"
        );
    }

    #[test]
    fn queue_based_class_a_delivers_with_less_energy() {
        let mut cfg_c = SimConfig::smoke_test(Scheme::Robc, Environment::Urban);
        cfg_c.device_class = DeviceClassChoice::ModifiedClassC;
        let mut cfg_a = cfg_c.clone();
        cfg_a.device_class = DeviceClassChoice::QueueBasedClassA;
        let rc = cfg_c.run(7).unwrap();
        let ra = cfg_a.run(7).unwrap();
        assert!(ra.delivered > 0);
        assert!(
            ra.mean_energy_per_node_mj() < rc.mean_energy_per_node_mj(),
            "queue-based class A should save energy: {} vs {}",
            ra.mean_energy_per_node_mj(),
            rc.mean_energy_per_node_mj()
        );
    }
}
