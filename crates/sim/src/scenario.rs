//! Fluent scenario construction.
//!
//! [`Scenario`] is the front door of the simulator: it names an
//! environment, [`ScenarioBuilder`] tweaks whatever the experiment needs,
//! and [`ScenarioBuilder::build`] validates eagerly into a ready
//! [`SimConfig`]. The builder subsumes the older ad-hoc constructors
//! (`SimConfig::paper_default` / `smoke_test` / `bench_scale`), which
//! remain as thin presets behind [`ScenarioBuilder::smoke`] and
//! [`ScenarioBuilder::bench`].
//!
//! The builder also removes the paired-field footgun of raw
//! [`SimConfig`]: the simulation horizon and the mobility-schedule
//! horizon are always set together.
//!
//! # Example
//!
//! ```
//! use mlora_core::Scheme;
//! use mlora_sim::Scenario;
//!
//! let config = Scenario::urban()
//!     .gateways(80)
//!     .scheme(Scheme::Robc)
//!     .duration_h(24)
//!     .build()?;
//! assert_eq!(config.num_gateways, 80);
//! # Ok::<(), mlora_sim::ConfigError>(())
//! ```

use std::sync::Arc;

use mlora_core::Scheme;
use mlora_geo::Point;
use mlora_mobility::{BusNetwork, MetroConfig, MetroWorld};
use mlora_simcore::{QueueKind, SimDuration, SimTime};

use crate::{
    BusWithdrawal, ConfigError, DeviceClassChoice, DisruptionPlan, Environment, GatewayOutage,
    GatewayPlacement, NoiseBurst, SimConfig, SimObserver, SimReport, Snapshot, SnapshotError,
    TrafficModel, TrafficProfile,
};

/// Entry points for building simulation scenarios.
///
/// Each constructor yields a [`ScenarioBuilder`] seeded with the paper's
/// §VII.A configuration for that environment (600 km², 24 h, 60 grid
/// gateways, ROBC disabled until a scheme is chosen — the default scheme
/// is [`Scheme::NoRouting`]).
#[derive(Debug, Clone, Copy)]
pub struct Scenario;

impl Scenario {
    /// An urban scenario: buildings block signals, 500 m device-to-device
    /// range.
    pub fn urban() -> ScenarioBuilder {
        Scenario::custom(Environment::Urban)
    }

    /// A rural scenario: open terrain, 1 km device-to-device range.
    pub fn rural() -> ScenarioBuilder {
        Scenario::custom(Environment::Rural)
    }

    /// A scenario for an explicit environment.
    pub fn custom(environment: Environment) -> ScenarioBuilder {
        ScenarioBuilder {
            config: SimConfig::paper_default(Scheme::NoRouting, environment),
        }
    }

    /// A builder seeded with the scenario captured in `snapshot` — the
    /// configuration the snapshotted run executes, shard count included.
    /// Useful to spin fresh from-scratch variants of a checkpointed
    /// experiment (different seed, tweaked fields) next to its resumed
    /// branches.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the snapshot container or its embedded
    /// configuration does not decode.
    pub fn from_snapshot(snapshot: &Snapshot) -> Result<ScenarioBuilder, SnapshotError> {
        Ok(ScenarioBuilder::from(snapshot.config()?))
    }
}

/// Fluent builder over [`SimConfig`].
///
/// Setters are chainable and order-independent; [`ScenarioBuilder::build`]
/// validates the result eagerly and returns a typed [`ConfigError`] naming
/// the first offending field.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBuilder {
    config: SimConfig,
}

impl ScenarioBuilder {
    /// Applies the small, fast smoke-test preset (100 km², 2 h, ~40
    /// buses, 9 gateways) used by unit and integration tests.
    ///
    /// Scale presets overwrite area, fleet, horizon and gateway-count
    /// fields (environment and scheme are kept), so apply them *before*
    /// per-field setters.
    pub fn smoke(mut self) -> Self {
        self.config = SimConfig::smoke_test(self.config.scheme, self.config.environment);
        self
    }

    /// Applies the mid-scale bench preset (full 600 km² area, 6 h
    /// spanning the morning ramp, ~800-bus peak).
    ///
    /// Scale presets overwrite area, fleet, horizon and gateway-count
    /// fields (environment and scheme are kept), so apply them *before*
    /// per-field setters.
    pub fn bench(mut self) -> Self {
        self.config = SimConfig::bench_scale(self.config.scheme, self.config.environment);
        self
    }

    /// Sets the radio environment (device-to-device range follows).
    pub fn environment(mut self, environment: Environment) -> Self {
        self.config.environment = environment;
        self
    }

    /// Sets the number of gateways (the paper sweeps 40–100).
    pub fn gateways(mut self, count: usize) -> Self {
        self.config.num_gateways = count;
        self
    }

    /// Sets the gateway placement strategy.
    pub fn placement(mut self, placement: GatewayPlacement) -> Self {
        self.config.placement = placement;
        self
    }

    /// Sets the device-to-gateway range, metres (paper: 1 km).
    pub fn gateway_range_m(mut self, range_m: f64) -> Self {
        self.config.gateway_range_m = range_m;
        self
    }

    /// Sets the forwarding scheme under test.
    ///
    /// Clears any explicit [`ScenarioBuilder::policy`]: the last of the
    /// two setters wins, whichever order they were chained in.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.config.scheme = scheme;
        self.config.policy = None;
        self
    }

    /// Plugs in a user-defined forwarding policy, overriding the scheme.
    ///
    /// The boxed value acts as a prototype: every device instantiates
    /// its own copy through
    /// [`ForwardingPolicy::clone_box`](mlora_core::ForwardingPolicy::clone_box),
    /// and the policy's label flows into
    /// [`SimReport::scheme`](crate::SimReport) and every table keyed by
    /// scheme. Built-in schemes need no boxing — use
    /// [`ScenarioBuilder::scheme`].
    ///
    /// # Example
    ///
    /// ```
    /// use mlora_core::RobcPolicy;
    /// use mlora_sim::Scenario;
    ///
    /// let cfg = Scenario::urban()
    ///     .smoke()
    ///     .policy(Box::new(RobcPolicy))
    ///     .build()?;
    /// assert_eq!(cfg.scheme_label(), "ROBC");
    /// # Ok::<(), mlora_sim::ConfigError>(())
    /// ```
    pub fn policy(mut self, policy: Box<dyn mlora_core::ForwardingPolicy>) -> Self {
        self.config.policy = Some(crate::PolicySpec::new(policy));
        self
    }

    /// Sets the EWMA smoothing factor α of Eq. 4 (paper: 0.5).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Sets the device class for the whole fleet.
    pub fn device_class(mut self, class: DeviceClassChoice) -> Self {
        self.config.device_class = class;
        self
    }

    /// Sets the simulated horizon in whole hours.
    ///
    /// Keeps the mobility schedule horizon in lock-step — the two fields
    /// that had to be updated together on a raw [`SimConfig`].
    pub fn duration_h(self, hours: u64) -> Self {
        self.duration(SimDuration::from_hours(hours))
    }

    /// Sets the simulated horizon.
    pub fn duration(mut self, horizon: SimDuration) -> Self {
        self.config.horizon = horizon;
        self.config.network.horizon = horizon;
        self
    }

    /// Sets the application message generation interval (paper: 3 min).
    ///
    /// Drives the paper-exact periodic generator while the scenario's
    /// traffic model is empty; profiles attached through
    /// [`ScenarioBuilder::traffic`] / [`ScenarioBuilder::profile`] carry
    /// their own intervals.
    pub fn gen_interval(mut self, interval: SimDuration) -> Self {
        self.config.gen_interval = interval;
        self
    }

    /// Replaces the scenario's traffic model wholesale.
    ///
    /// The default model is empty — the paper's homogeneous periodic
    /// workload, bit-identical to a build without the traffic subsystem.
    /// Individual profiles append through [`ScenarioBuilder::profile`].
    ///
    /// # Example
    ///
    /// ```
    /// use mlora_sim::prelude::*;
    ///
    /// let cfg = Scenario::urban()
    ///     .smoke()
    ///     .traffic(TrafficModel::mix([
    ///         TrafficProfile::telemetry().weight(4.0),
    ///         TrafficProfile::alerts(),
    ///     ]))
    ///     .build()?;
    /// assert_eq!(cfg.traffic.profiles.len(), 2);
    /// # Ok::<(), mlora_sim::ConfigError>(())
    /// ```
    pub fn traffic(mut self, model: TrafficModel) -> Self {
        self.config.traffic = model;
        self
    }

    /// Appends one traffic profile to the scenario's model.
    ///
    /// Repeated calls build up a heterogeneous mix; fleet shares follow
    /// the profiles' weights.
    ///
    /// # Example
    ///
    /// ```
    /// use mlora_sim::prelude::*;
    ///
    /// let cfg = Scenario::urban()
    ///     .smoke()
    ///     .profile(TrafficProfile::tracking())
    ///     .profile(TrafficProfile::alerts())
    ///     .build()?;
    /// assert_eq!(cfg.traffic.profiles[1].name, "alerts");
    /// # Ok::<(), mlora_sim::ConfigError>(())
    /// ```
    pub fn profile(mut self, profile: TrafficProfile) -> Self {
        self.config.traffic.profiles.push(profile);
        self
    }

    /// Sets the per-device application queue capacity, messages.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Sets the engine shard count (see [`SimConfig::shards`]): `1`
    /// runs serially, `n > 1` spreads transmission-end resolution over
    /// `n` worker threads per run. Results are bit-identical for every
    /// shard count; [`Runner`](crate::Runner) divides its thread budget
    /// by this so plan-level × intra-run parallelism cannot
    /// oversubscribe the host.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Sets the event-queue implementation (see [`SimConfig::queue`]):
    /// the binary heap (the default) or the calendar queue. Like
    /// [`ScenarioBuilder::shards`] this is a host-execution knob —
    /// results are bit-identical for either kind, and scenario files
    /// and snapshots never carry it.
    pub fn queue(mut self, kind: QueueKind) -> Self {
        self.config.queue = kind;
        self
    }

    /// Sets the duty-cycle cap (paper: 1 %).
    pub fn duty_cycle(mut self, fraction: f64) -> Self {
        self.config.duty_cycle = fraction;
        self
    }

    /// Sets the maximum transmissions per frame (paper: 8).
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.config.max_attempts = attempts;
        self
    }

    /// Sets the width of the throughput time-series buckets.
    pub fn series_bucket(mut self, bucket: SimDuration) -> Self {
        self.config.series_bucket = bucket;
        self
    }

    /// Sets the side of the square simulation area, metres.
    pub fn area_side_m(mut self, side_m: f64) -> Self {
        self.config.network.area_side_m = side_m;
        self
    }

    /// Sets the peak number of simultaneously active buses.
    pub fn buses(mut self, peak: usize) -> Self {
        self.config.network.max_active_buses = peak;
        self
    }

    /// Sets the number of bus routes.
    pub fn routes(mut self, routes: usize) -> Self {
        self.config.network.num_routes = routes;
        self
    }

    /// Replaces the scenario's disruption timeline wholesale.
    ///
    /// The default plan is empty; an empty plan is bit-identical to an
    /// undisrupted run. Individual events append through
    /// [`ScenarioBuilder::gateway_outage`],
    /// [`ScenarioBuilder::withdraw_buses`] and
    /// [`ScenarioBuilder::noise_burst`].
    ///
    /// # Example
    ///
    /// ```
    /// use mlora_sim::prelude::*;
    ///
    /// let cfg = Scenario::urban()
    ///     .smoke()
    ///     .disruptions(DisruptionPlan::default())
    ///     .build()?;
    /// assert!(cfg.disruptions.is_empty());
    /// # Ok::<(), mlora_sim::ConfigError>(())
    /// ```
    pub fn disruptions(mut self, plan: DisruptionPlan) -> Self {
        self.config.disruptions = plan;
        self
    }

    /// Schedules a gateway outage: gateway `gateway` goes down `start`
    /// into the run and recovers after `duration` (pass
    /// [`ScenarioBuilder::gateway_outage_to_horizon`] for one that never
    /// recovers). Repeated calls append further outages.
    ///
    /// # Example
    ///
    /// ```
    /// use mlora_sim::Scenario;
    /// use mlora_simcore::SimDuration;
    ///
    /// let cfg = Scenario::urban()
    ///     .smoke()
    ///     .gateway_outage(4, SimDuration::from_mins(30), SimDuration::from_mins(30))
    ///     .build()?;
    /// assert_eq!(cfg.disruptions.outages.len(), 1);
    /// # Ok::<(), mlora_sim::ConfigError>(())
    /// ```
    pub fn gateway_outage(
        mut self,
        gateway: usize,
        start: SimDuration,
        duration: SimDuration,
    ) -> Self {
        self.config.disruptions.outages.push(GatewayOutage {
            gateway,
            start: SimTime::ZERO + start,
            duration: Some(duration),
        });
        self
    }

    /// Schedules a gateway outage that runs from `start` to the end of
    /// the simulation — a permanent failure.
    ///
    /// # Example
    ///
    /// ```
    /// use mlora_sim::Scenario;
    /// use mlora_simcore::SimDuration;
    ///
    /// let cfg = Scenario::urban()
    ///     .smoke()
    ///     .gateway_outage_to_horizon(0, SimDuration::from_hours(1))
    ///     .build()?;
    /// assert_eq!(cfg.disruptions.outages[0].duration, None);
    /// # Ok::<(), mlora_sim::ConfigError>(())
    /// ```
    pub fn gateway_outage_to_horizon(mut self, gateway: usize, start: SimDuration) -> Self {
        self.config.disruptions.outages.push(GatewayOutage {
            gateway,
            start: SimTime::ZERO + start,
            duration: None,
        });
        self
    }

    /// Schedules a fleet withdrawal: `fraction` of the then-active buses
    /// (rounded to whole vehicles, drawn from a dedicated deterministic
    /// RNG stream) retire early `at` into the run.
    ///
    /// # Example
    ///
    /// ```
    /// use mlora_sim::Scenario;
    /// use mlora_simcore::SimDuration;
    ///
    /// let cfg = Scenario::urban()
    ///     .smoke()
    ///     .withdraw_buses(SimDuration::from_mins(45), 0.25)
    ///     .build()?;
    /// assert_eq!(cfg.disruptions.withdrawals[0].fraction, 0.25);
    /// # Ok::<(), mlora_sim::ConfigError>(())
    /// ```
    pub fn withdraw_buses(mut self, at: SimDuration, fraction: f64) -> Self {
        self.config.disruptions.withdrawals.push(BusWithdrawal {
            at: SimTime::ZERO + at,
            fraction,
        });
        self
    }

    /// Schedules a regional noise burst: for `duration` starting `start`
    /// into the run, every reception at a position within `radius_m` of
    /// `center` loses `extra_loss_db` of RSSI (a raised noise floor).
    ///
    /// # Example
    ///
    /// ```
    /// use mlora_geo::Point;
    /// use mlora_sim::Scenario;
    /// use mlora_simcore::SimDuration;
    ///
    /// let cfg = Scenario::urban()
    ///     .smoke()
    ///     .noise_burst(
    ///         Point::new(5_000.0, 5_000.0),
    ///         3_000.0,
    ///         SimDuration::from_mins(20),
    ///         SimDuration::from_mins(40),
    ///         12.0,
    ///     )
    ///     .build()?;
    /// assert_eq!(cfg.disruptions.noise_bursts.len(), 1);
    /// # Ok::<(), mlora_sim::ConfigError>(())
    /// ```
    pub fn noise_burst(
        mut self,
        center: Point,
        radius_m: f64,
        start: SimDuration,
        duration: SimDuration,
        extra_loss_db: f64,
    ) -> Self {
        self.config.disruptions.noise_bursts.push(NoiseBurst {
            center,
            radius_m,
            start: SimTime::ZERO + start,
            duration: Some(duration),
            extra_loss_db,
        });
        self
    }

    /// Attaches a prebuilt world, bypassing seeded network generation.
    ///
    /// The scenario then runs on exactly this network regardless of the
    /// run seed — the path for metro-scale worlds built with
    /// [`ScenarioBuilder::metro`] or loaded from a scenario file. The
    /// builder keeps the dependent configuration fields in sync: the
    /// simulated horizon, the area side and the mobility speed ceiling
    /// (which sizes the engine's neighbour-grid drift bound) all follow
    /// the attached world.
    ///
    /// # Example
    ///
    /// ```
    /// use mlora_mobility::{BusNetwork, BusNetworkConfig};
    /// use mlora_sim::Scenario;
    ///
    /// let net = BusNetwork::generate(
    ///     &BusNetworkConfig {
    ///         area_side_m: 10_000.0,
    ///         num_routes: 8,
    ///         max_active_buses: 40,
    ///         min_route_length_m: 2_000.0,
    ///         ..BusNetworkConfig::default()
    ///     },
    ///     1,
    /// );
    /// let cfg = Scenario::urban().smoke().world(net).build()?;
    /// assert!(cfg.world.is_some());
    /// # Ok::<(), mlora_sim::ConfigError>(())
    /// ```
    pub fn world(mut self, world: impl Into<Arc<BusNetwork>>) -> Self {
        let world = world.into();
        let fastest = world
            .routes()
            .iter()
            .map(|r| r.speed_mps())
            .fold(0.0_f64, f64::max);
        self.config.network.max_speed_mps = self.config.network.max_speed_mps.max(fastest);
        self.config.network.area_side_m = world.area().width().max(world.area().height());
        self.config.horizon = world.horizon();
        self.config.network.horizon = world.horizon();
        self.config.world = Some(world);
        self
    }

    /// Generates a metro-scale world from `config` and `seed` and
    /// attaches it (see [`ScenarioBuilder::world`]). Identical
    /// `(config, seed)` pairs attach identical worlds.
    pub fn metro(self, config: &MetroConfig, seed: u64) -> Self {
        self.world(MetroWorld::generate(config, seed).into_network())
    }

    /// Applies an arbitrary tweak to the underlying [`SimConfig`] — the
    /// escape hatch for fields without a dedicated setter.
    pub fn tweak(mut self, f: impl FnOnce(&mut SimConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// The configuration as built so far, not yet validated.
    pub(crate) fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Validates and returns the finished configuration.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] naming the first offending field
    /// (zero gateways, NaN ranges, α ∉ (0, 1], …).
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }

    /// Builds and runs with `seed` in one step.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the scenario is invalid.
    pub fn run(self, seed: u64) -> Result<SimReport, ConfigError> {
        self.build()?.run(seed)
    }

    /// Builds and runs with `seed`, streaming events to `observer`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the scenario is invalid.
    pub fn run_with_observer(
        self,
        seed: u64,
        observer: &mut dyn SimObserver,
    ) -> Result<SimReport, ConfigError> {
        self.build()?.run_with_observer(seed, observer)
    }
}

impl From<SimConfig> for ScenarioBuilder {
    /// Wraps an existing configuration for further fluent adjustment.
    fn from(config: SimConfig) -> Self {
        ScenarioBuilder { config }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_paper_default() {
        let built = Scenario::urban()
            .scheme(Scheme::Robc)
            .build()
            .expect("paper defaults are valid");
        assert_eq!(
            built,
            SimConfig::paper_default(Scheme::Robc, Environment::Urban)
        );
    }

    #[test]
    fn smoke_preset_matches_constructor() {
        let built = Scenario::rural()
            .scheme(Scheme::RcaEtx)
            .smoke()
            .build()
            .unwrap();
        assert_eq!(
            built,
            SimConfig::smoke_test(Scheme::RcaEtx, Environment::Rural)
        );
    }

    #[test]
    fn duration_keeps_network_horizon_in_sync() {
        let cfg = Scenario::urban().duration_h(6).build().unwrap();
        assert_eq!(cfg.horizon, SimDuration::from_hours(6));
        assert_eq!(cfg.network.horizon, cfg.horizon);
    }

    #[test]
    fn build_rejects_invalid_scenarios_eagerly() {
        assert_eq!(
            Scenario::urban().gateways(0).build(),
            Err(ConfigError::Zero {
                field: "num_gateways"
            })
        );
        assert!(matches!(
            Scenario::urban().alpha(1.5).build(),
            Err(ConfigError::OutOfRange { field: "alpha", .. })
        ));
        assert!(matches!(
            Scenario::urban().gateway_range_m(f64::NAN).build(),
            Err(ConfigError::NotFinite {
                field: "gateway_range_m",
                ..
            })
        ));
    }

    #[test]
    fn builder_run_equals_config_run() {
        let seed = 77;
        let by_builder = Scenario::urban()
            .smoke()
            .scheme(Scheme::Robc)
            .run(seed)
            .unwrap();
        let by_config = SimConfig::smoke_test(Scheme::Robc, Environment::Urban)
            .run(seed)
            .unwrap();
        assert_eq!(by_builder, by_config);
    }

    #[test]
    fn disruption_setters_append_and_validate() {
        let cfg = Scenario::urban()
            .smoke()
            .gateway_outage(1, SimDuration::from_mins(10), SimDuration::from_mins(5))
            .gateway_outage_to_horizon(2, SimDuration::from_mins(20))
            .withdraw_buses(SimDuration::from_mins(30), 0.5)
            .noise_burst(
                Point::new(1_000.0, 1_000.0),
                500.0,
                SimDuration::from_mins(5),
                SimDuration::from_mins(10),
                6.0,
            )
            .build()
            .expect("valid disruptions");
        assert_eq!(cfg.disruptions.outages.len(), 2);
        assert_eq!(cfg.disruptions.withdrawals.len(), 1);
        assert_eq!(cfg.disruptions.noise_bursts.len(), 1);

        // Invalid entries surface through build() with the typed error.
        let err = Scenario::urban()
            .smoke()
            .withdraw_buses(SimDuration::from_mins(1), 0.0)
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "disruptions.withdrawals.fraction");
        let err = Scenario::urban()
            .smoke()
            .gateway_outage(99, SimDuration::from_mins(1), SimDuration::from_mins(1))
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "disruptions.outages.gateway");
    }

    #[test]
    fn traffic_setters_append_and_validate() {
        let cfg = Scenario::urban()
            .smoke()
            .profile(TrafficProfile::telemetry())
            .profile(TrafficProfile::alerts())
            .build()
            .expect("valid traffic mix");
        assert_eq!(cfg.traffic.profiles.len(), 2);
        assert_eq!(cfg.traffic.profiles[0].name, "telemetry");

        // traffic() replaces whatever profile() accumulated.
        let cfg = Scenario::urban()
            .smoke()
            .profile(TrafficProfile::telemetry())
            .traffic(TrafficModel::default())
            .build()
            .unwrap();
        assert!(cfg.traffic.is_empty());

        // Invalid profiles surface through build() with the typed error.
        let err = Scenario::urban()
            .smoke()
            .profile(TrafficProfile::telemetry().weight(f64::NAN))
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "traffic.profiles.weight");
    }

    #[test]
    fn policy_setter_overrides_and_scheme_clears() {
        use mlora_core::{RobcPolicy, Scheme};

        // policy() overrides the scheme for dispatch and labelling.
        let cfg = Scenario::urban()
            .smoke()
            .scheme(Scheme::NoRouting)
            .policy(Box::new(RobcPolicy))
            .build()
            .unwrap();
        assert_eq!(cfg.scheme_label(), "ROBC");
        assert!(cfg.policy.is_some());

        // Last setter wins: a later scheme() clears the explicit policy.
        let cfg = Scenario::urban()
            .smoke()
            .policy(Box::new(RobcPolicy))
            .scheme(Scheme::RcaEtx)
            .build()
            .unwrap();
        assert!(cfg.policy.is_none());
        assert_eq!(cfg.scheme_label(), "RCA-ETX");

        // A built-in policy runs bit-identically to its scheme.
        let by_policy = Scenario::urban()
            .smoke()
            .policy(Box::new(RobcPolicy))
            .run(77)
            .unwrap();
        let by_scheme = Scenario::urban()
            .smoke()
            .scheme(Scheme::Robc)
            .run(77)
            .unwrap();
        assert_eq!(by_policy, by_scheme);
    }

    #[test]
    fn tweak_reaches_any_field() {
        let cfg = Scenario::urban()
            .tweak(|c| c.network.center_bias = 0.9)
            .build()
            .unwrap();
        assert_eq!(cfg.network.center_bias, 0.9);
    }
}
