//! Declarative experiment plans and the parallel multi-seed runner.
//!
//! [`ExperimentPlan`] expresses a §VII-style sweep as axes over a base
//! configuration — environments × gateway counts × schemes × α ×
//! placement × device class — replicated over any number of seeds.
//! [`Runner`] executes every `(cell, seed)` pair across `std::thread`
//! workers and aggregates each cell into a [`ReplicatedReport`] with
//! mean / confidence-interval accessors.
//!
//! Results are bit-for-bit independent of the worker count: every run's
//! seed is derived from the plan alone (never from scheduling order), so
//! `Runner::new()` and [`Runner::single_threaded`] produce identical
//! output for the same plan.
//!
//! # Example
//!
//! ```
//! use mlora_sim::prelude::*;
//!
//! // A miniature Fig. 9: urban vs rural × two gateway densities × two
//! // schemes, three seeds per cell.
//! let base = Scenario::urban().smoke().duration_h(1).build()?;
//! let plan = ExperimentPlan::new(base)
//!     .environments([Environment::Urban, Environment::Rural])
//!     .gateway_counts([4, 9])
//!     .schemes([Scheme::NoRouting, Scheme::Robc])
//!     .replicate(3);
//! let cells = Runner::new().run(&plan)?;
//! assert_eq!(cells.len(), 8);
//! for cell in &cells {
//!     let (lo, hi) = cell.report.ci95(|r| r.delivery_ratio());
//!     assert!(lo <= hi);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mlora_core::{PolicySpec, Scheme};
use mlora_simcore::stats::Welford;

use crate::{
    ConfigError, DeviceClassChoice, DisruptionPlan, Environment, GatewayPlacement, SimConfig,
    SimReport, Snapshot, SnapshotError, TrafficModel,
};

/// The paper's gateway counts: 40–100 in steps of 10.
pub const PAPER_GATEWAY_COUNTS: [usize; 7] = [40, 50, 60, 70, 80, 90, 100];

/// How a plan assigns seeds to replicate runs.
#[derive(Debug, Clone, PartialEq)]
enum SeedPolicy {
    /// Replicate seeds are derived per `(cell, replicate)` from the
    /// plan's master seed, so every cell sees independent randomness.
    Derived {
        /// Runs per cell.
        replications: usize,
    },
    /// Every cell runs exactly these seeds (the classic "same fleet and
    /// traffic in every cell" comparison the paper's figures use).
    Fixed(Vec<u64>),
}

/// The coordinates of one sweep cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellKey {
    /// Radio environment.
    pub environment: Environment,
    /// Number of gateways deployed.
    pub gateways: usize,
    /// Forwarding scheme.
    pub scheme: Scheme,
    /// EWMA smoothing factor α.
    pub alpha: f64,
    /// Gateway placement strategy.
    pub placement: GatewayPlacement,
    /// Device class for the fleet.
    pub device_class: DeviceClassChoice,
    /// Index into the plan's disruption axis (0 when the axis was never
    /// set — the base configuration's own plan).
    pub disruption: usize,
    /// Index into the plan's traffic axis (0 when the axis was never
    /// set — the base configuration's own model).
    pub traffic: usize,
    /// Index into the plan's forwarding-policy axis (0 when the axis was
    /// never set — the base configuration's own scheme or policy). The
    /// policy's label is carried by every replicate's
    /// [`SimReport::scheme`](crate::SimReport).
    pub policy: usize,
    /// Number of engine shards this cell runs with (the base
    /// configuration's own count when the axis was never set).
    pub shards: usize,
}

/// One cell of a plan: its coordinates and the fully resolved config.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCell {
    /// Position of this cell in plan order.
    pub index: usize,
    /// The cell's coordinates.
    pub key: CellKey,
    /// The configuration every replicate of this cell runs.
    pub config: SimConfig,
}

/// A declarative sweep: axes over a base configuration plus a seed
/// policy.
///
/// Axes default to the base configuration's own value; setting an axis
/// replaces it. Cells enumerate in row-major order with environments
/// outermost, then gateway counts, schemes, alphas, placements, device
/// classes, disruption timelines, traffic models, forwarding policies
/// and shard counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentPlan {
    base: SimConfig,
    environments: Vec<Environment>,
    gateway_counts: Vec<usize>,
    schemes: Vec<Scheme>,
    alphas: Vec<f64>,
    placements: Vec<GatewayPlacement>,
    device_classes: Vec<DeviceClassChoice>,
    disruptions: Vec<DisruptionPlan>,
    traffics: Vec<TrafficModel>,
    /// `None` entries run the cell's scheme through its built-in policy;
    /// `Some` plug the spec in (the default single entry mirrors the
    /// base configuration).
    policies: Vec<Option<PolicySpec>>,
    shard_counts: Vec<usize>,
    /// Master seed for derived replication (set by [`ExperimentPlan::seed`];
    /// remembered even while a fixed-seed policy is active).
    base_seed: u64,
    seeds: SeedPolicy,
}

impl ExperimentPlan {
    /// A plan over `base` with every axis at the base's own value and a
    /// single derived seed.
    pub fn new(base: SimConfig) -> Self {
        ExperimentPlan {
            environments: vec![base.environment],
            gateway_counts: vec![base.num_gateways],
            schemes: vec![base.scheme],
            alphas: vec![base.alpha],
            placements: vec![base.placement],
            device_classes: vec![base.device_class],
            disruptions: vec![base.disruptions.clone()],
            traffics: vec![base.traffic.clone()],
            policies: vec![base.policy.clone()],
            shard_counts: vec![base.shards],
            base_seed: 0,
            seeds: SeedPolicy::Derived { replications: 1 },
            base,
        }
    }

    /// Sweeps the radio environment.
    pub fn environments(mut self, axis: impl IntoIterator<Item = Environment>) -> Self {
        self.environments = axis.into_iter().collect();
        self
    }

    /// Sweeps the gateway count (Figs. 8, 9, 12, 13 use 40–100).
    pub fn gateway_counts(mut self, axis: impl IntoIterator<Item = usize>) -> Self {
        self.gateway_counts = axis.into_iter().collect();
        self
    }

    /// Sweeps the forwarding scheme.
    pub fn schemes(mut self, axis: impl IntoIterator<Item = Scheme>) -> Self {
        self.schemes = axis.into_iter().collect();
        self
    }

    /// Sweeps the EWMA factor α (the §VII.C ablation).
    pub fn alphas(mut self, axis: impl IntoIterator<Item = f64>) -> Self {
        self.alphas = axis.into_iter().collect();
        self
    }

    /// Sweeps the gateway placement strategy.
    pub fn placements(mut self, axis: impl IntoIterator<Item = GatewayPlacement>) -> Self {
        self.placements = axis.into_iter().collect();
        self
    }

    /// Sweeps the device class (the §VI comparison).
    pub fn device_classes(mut self, axis: impl IntoIterator<Item = DeviceClassChoice>) -> Self {
        self.device_classes = axis.into_iter().collect();
        self
    }

    /// Sweeps the disruption timeline — e.g. increasing outage density
    /// for a resilience study. Cells carry the axis position in
    /// [`CellKey::disruption`].
    pub fn disruptions(mut self, axis: impl IntoIterator<Item = DisruptionPlan>) -> Self {
        self.disruptions = axis.into_iter().collect();
        self
    }

    /// Sweeps the traffic model — e.g. the paper's homogeneous workload
    /// against increasingly heterogeneous mixes. Cells carry the axis
    /// position in [`CellKey::traffic`].
    pub fn traffics(mut self, axis: impl IntoIterator<Item = TrafficModel>) -> Self {
        self.traffics = axis.into_iter().collect();
        self
    }

    /// Sweeps the forwarding policy — built-in schemes
    /// (`PolicySpec::from(Scheme::Robc)`) and user-defined
    /// [`ForwardingPolicy`](mlora_core::ForwardingPolicy)
    /// implementations side by side in one grid. Cells carry the axis
    /// position in [`CellKey::policy`]; each run's
    /// [`SimReport::scheme`](crate::SimReport) carries the policy's
    /// label, which is how
    /// [`report::scheme_table`](crate::report::scheme_table) names rows.
    ///
    /// Orthogonal to [`ExperimentPlan::schemes`]: a plan sweeping both
    /// runs every policy entry under every scheme coordinate (the policy
    /// overrides dispatch, the scheme remains a coordinate), so sweep
    /// only one of the two axes unless that cross is intended.
    pub fn policies(mut self, axis: impl IntoIterator<Item = PolicySpec>) -> Self {
        self.policies = axis.into_iter().map(Some).collect();
        self
    }

    /// Sweeps the engine shard count — e.g. `[1, 2, 4]` to check that a
    /// scenario is bit-identical across spatial partitionings, or to mix
    /// sharded and unsharded cells in one grid. Cells carry the value in
    /// [`CellKey::shards`]; the [`Runner`] budgets threads per cell's own
    /// count, so single-shard cells still run concurrently next to a
    /// heavily sharded one.
    pub fn shard_counts(mut self, axis: impl IntoIterator<Item = usize>) -> Self {
        self.shard_counts = axis.into_iter().collect();
        self
    }

    /// Replicates every cell over `n` seeds derived from the master seed
    /// (see [`ExperimentPlan::seed`]; default 0).
    ///
    /// Switches the plan to derived seeding: any earlier
    /// [`ExperimentPlan::fixed_seeds`] list is replaced, though a master
    /// seed set with [`ExperimentPlan::seed`] is kept.
    pub fn replicate(mut self, n: usize) -> Self {
        self.seeds = SeedPolicy::Derived { replications: n };
        self
    }

    /// Sets the master seed that replicate seeds derive from, and
    /// switches the plan to derived seeding (replacing any earlier
    /// [`ExperimentPlan::fixed_seeds`] list; the replication count is
    /// kept).
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        if let SeedPolicy::Fixed(ref s) = self.seeds {
            self.seeds = SeedPolicy::Derived {
                replications: s.len().max(1),
            };
        }
        self
    }

    /// Runs exactly these seeds in every cell, in order — the classic
    /// same-fleet-everywhere comparison. Replaces any earlier
    /// [`ExperimentPlan::seed`]/[`ExperimentPlan::replicate`] policy.
    pub fn fixed_seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = SeedPolicy::Fixed(seeds.into_iter().collect());
        self
    }

    /// Runs per cell under the current seed policy.
    pub fn replications(&self) -> usize {
        match &self.seeds {
            SeedPolicy::Derived { replications, .. } => *replications,
            SeedPolicy::Fixed(seeds) => seeds.len(),
        }
    }

    /// The seed of replicate `rep` in cell `cell` — a pure function of
    /// the plan, never of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `rep >= self.replications()` under a fixed-seed policy.
    pub fn seed_for(&self, cell: usize, rep: usize) -> u64 {
        match &self.seeds {
            SeedPolicy::Derived { .. } => derive_seed(self.base_seed, cell as u64, rep as u64),
            SeedPolicy::Fixed(seeds) => seeds[rep],
        }
    }

    /// The number of cells in the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Overflow`] when the product of the ten
    /// axis lengths does not fit a machine word — a plan that could
    /// never be materialized, caught before any allocation is sized
    /// from the wrapped product.
    pub fn num_cells(&self) -> Result<usize, ConfigError> {
        [
            self.gateway_counts.len(),
            self.schemes.len(),
            self.alphas.len(),
            self.placements.len(),
            self.device_classes.len(),
            self.disruptions.len(),
            self.traffics.len(),
            self.policies.len(),
            self.shard_counts.len(),
        ]
        .iter()
        .try_fold(self.environments.len(), |acc, &len| acc.checked_mul(len))
        .ok_or(ConfigError::Overflow {
            field: "experiment plan cells",
        })
    }

    /// Materializes every cell in plan order.
    pub fn cells(&self) -> Vec<PlanCell> {
        let mut out = Vec::with_capacity(self.num_cells().unwrap_or(0));
        for &environment in &self.environments {
            for &gateways in &self.gateway_counts {
                for &scheme in &self.schemes {
                    for &alpha in &self.alphas {
                        for &placement in &self.placements {
                            for &device_class in &self.device_classes {
                                for (disruption, plan) in self.disruptions.iter().enumerate() {
                                    for (traffic, model) in self.traffics.iter().enumerate() {
                                        for (policy, spec) in self.policies.iter().enumerate() {
                                            for &shards in &self.shard_counts {
                                                let key = CellKey {
                                                    environment,
                                                    gateways,
                                                    scheme,
                                                    alpha,
                                                    placement,
                                                    device_class,
                                                    disruption,
                                                    traffic,
                                                    policy,
                                                    shards,
                                                };
                                                let mut config = self.base.clone();
                                                config.environment = environment;
                                                config.num_gateways = gateways;
                                                config.scheme = scheme;
                                                config.alpha = alpha;
                                                config.placement = placement;
                                                config.device_class = device_class;
                                                config.disruptions = plan.clone();
                                                config.traffic = model.clone();
                                                config.policy = spec.clone();
                                                config.shards = shards;
                                                out.push(PlanCell {
                                                    index: out.len(),
                                                    key,
                                                    config,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Checks that every axis and the seed set are non-empty.
    fn check_axes(&self) -> Result<(), RunnerError> {
        for (axis, len) in [
            ("environments", self.environments.len()),
            ("gateway_counts", self.gateway_counts.len()),
            ("schemes", self.schemes.len()),
            ("alphas", self.alphas.len()),
            ("placements", self.placements.len()),
            ("device_classes", self.device_classes.len()),
            ("disruptions", self.disruptions.len()),
            ("traffics", self.traffics.len()),
            ("policies", self.policies.len()),
            ("shard_counts", self.shard_counts.len()),
            ("seeds", self.replications()),
        ] {
            if len == 0 {
                return Err(RunnerError::EmptyPlan { axis });
            }
        }
        self.num_cells()
            .map_err(|source| RunnerError::PlanOverflow { source })?;
        Ok(())
    }

    /// Checks that the plan has work to do and that every cell's
    /// configuration is valid.
    ///
    /// # Errors
    ///
    /// Returns [`RunnerError::EmptyPlan`] when an axis or the seed set is
    /// empty, or [`RunnerError::InvalidCell`] for the first bad cell.
    pub fn validate(&self) -> Result<(), RunnerError> {
        self.check_axes()?;
        validate_cells(&self.cells())
    }
}

/// Validates every materialized cell's configuration.
fn validate_cells(cells: &[PlanCell]) -> Result<(), RunnerError> {
    for cell in cells {
        cell.config
            .validate()
            .map_err(|source| RunnerError::InvalidCell {
                cell: cell.index,
                key: cell.key,
                source,
            })?;
    }
    Ok(())
}

/// SplitMix64 finalizer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes `(base, cell, rep)` into a decorrelated run seed.
fn derive_seed(base: u64, cell: u64, rep: u64) -> u64 {
    splitmix64(splitmix64(base ^ splitmix64(cell)) ^ rep)
}

/// Errors from plan validation or execution.
#[derive(Debug)]
pub enum RunnerError {
    /// An axis (or the seed set) of the plan is empty.
    EmptyPlan {
        /// The empty axis.
        axis: &'static str,
    },
    /// A cell's resolved configuration failed validation.
    InvalidCell {
        /// Index of the offending cell in plan order.
        cell: usize,
        /// The offending cell's coordinates.
        key: CellKey,
        /// The underlying configuration error.
        source: ConfigError,
    },
    /// The plan's cell count overflows a machine word and could never
    /// be materialized.
    PlanOverflow {
        /// The underlying overflow error.
        source: ConfigError,
    },
    /// A simulation run panicked inside a worker thread.
    RunPanicked {
        /// Index of the offending cell in plan order.
        cell: usize,
        /// The seed of the panicking run.
        seed: u64,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl std::fmt::Display for RunnerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunnerError::EmptyPlan { axis } => {
                write!(f, "experiment plan has an empty {axis} axis")
            }
            RunnerError::InvalidCell { cell, key, source } => {
                write!(f, "cell {cell} ({key:?}) is invalid: {source}")
            }
            RunnerError::PlanOverflow { source } => {
                write!(f, "experiment plan is unrealizably large: {source}")
            }
            RunnerError::RunPanicked {
                cell,
                seed,
                message,
            } => write!(f, "run (cell {cell}, seed {seed}) panicked: {message}"),
        }
    }
}

impl std::error::Error for RunnerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunnerError::InvalidCell { source, .. } | RunnerError::PlanOverflow { source } => {
                Some(source)
            }
            _ => None,
        }
    }
}

/// The replicated results of one cell: every `(seed, report)` pair plus
/// mean / spread / confidence-interval accessors over any scalar metric.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatedReport {
    runs: Vec<(u64, SimReport)>,
}

impl ReplicatedReport {
    /// Wraps a non-empty set of seeded runs.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty.
    pub fn new(runs: Vec<(u64, SimReport)>) -> Self {
        assert!(!runs.is_empty(), "a cell must have at least one run");
        ReplicatedReport { runs }
    }

    /// Number of replicate runs.
    pub fn n(&self) -> usize {
        self.runs.len()
    }

    /// The `(seed, report)` pairs, in replicate order.
    pub fn runs(&self) -> &[(u64, SimReport)] {
        &self.runs
    }

    /// The first replicate's report — the whole result when a cell ran a
    /// single seed.
    pub fn single(&self) -> &SimReport {
        &self.runs[0].1
    }

    /// Consumes the cell into its `(seed, report)` pairs.
    pub fn into_runs(self) -> Vec<(u64, SimReport)> {
        self.runs
    }

    /// The metric accumulator over `metric` across replicates.
    fn stats(&self, metric: impl Fn(&SimReport) -> f64) -> Welford {
        let mut w = Welford::new();
        for (_, report) in &self.runs {
            w.push(metric(report));
        }
        w
    }

    /// Mean of `metric` over replicates.
    pub fn mean(&self, metric: impl Fn(&SimReport) -> f64) -> f64 {
        self.stats(metric).mean()
    }

    /// Sample standard deviation of `metric` over replicates.
    pub fn std_dev(&self, metric: impl Fn(&SimReport) -> f64) -> f64 {
        self.stats(metric).std_dev()
    }

    /// Standard error of the mean of `metric`.
    pub fn std_error(&self, metric: impl Fn(&SimReport) -> f64) -> f64 {
        self.stats(metric).std_error()
    }

    /// A normal-approximation 95 % confidence interval `(lo, hi)` for the
    /// mean of `metric`. With one replicate the interval collapses to the
    /// point value.
    pub fn ci95(&self, metric: impl Fn(&SimReport) -> f64) -> (f64, f64) {
        let stats = self.stats(metric);
        let half = 1.96 * stats.std_error();
        (stats.mean() - half, stats.mean() + half)
    }

    /// Mean unique deliveries (the Fig. 9 measure).
    pub fn delivered_mean(&self) -> f64 {
        self.mean(|r| r.delivered as f64)
    }

    /// Mean delivery ratio.
    pub fn delivery_ratio_mean(&self) -> f64 {
        self.mean(|r| r.delivery_ratio())
    }

    /// Mean of the per-run mean end-to-end delay (the Fig. 8 measure).
    pub fn delay_mean_s(&self) -> f64 {
        self.mean(|r| r.mean_delay_s())
    }

    /// Mean of the per-run mean hop count (the Fig. 12 measure).
    pub fn hops_mean(&self) -> f64 {
        self.mean(|r| r.mean_hops())
    }
}

/// One executed cell: coordinates plus replicated results.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Index of the cell in plan order.
    pub index: usize,
    /// The cell's coordinates.
    pub key: CellKey,
    /// The cell's replicated results.
    pub report: ReplicatedReport,
}

/// Executes [`ExperimentPlan`]s across worker threads.
#[derive(Debug, Clone)]
pub struct Runner {
    workers: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

impl Runner {
    /// A runner using all available CPU parallelism.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Runner { workers }
    }

    /// A runner executing every run on the calling thread, in plan order.
    pub fn single_threaded() -> Self {
        Runner { workers: 1 }
    }

    /// Overrides the worker-thread count (clamped to ≥ 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Executes every `(cell, seed)` pair of `plan` and returns one
    /// [`CellResult`] per cell, in plan order.
    ///
    /// Output is identical for any worker count: run seeds derive from
    /// the plan, and results are placed by plan position.
    ///
    /// # Errors
    ///
    /// Returns [`RunnerError`] if the plan is empty or any cell is
    /// invalid (detected before any simulation starts), or if a run
    /// panics.
    pub fn run(&self, plan: &ExperimentPlan) -> Result<Vec<CellResult>, RunnerError> {
        plan.check_axes()?;
        let cells = plan.cells();
        validate_cells(&cells)?;
        let reps = plan.replications();
        let jobs = cells.len() * reps;

        let slots: Vec<Mutex<Option<SimReport>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let failure: Mutex<Option<RunnerError>> = Mutex::new(None);

        // One thread budget for both parallelism levels: a run whose cell
        // requests intra-run sharding (`SimConfig::shards`) spends that
        // many threads, so each run acquires its own cell's cost from a
        // counting semaphore sized to the budget. Budgeting per cell —
        // not by floor-dividing the budget by the plan-wide maximum —
        // keeps the single-shard cells of a mixed plan running
        // concurrently beside a heavily sharded one instead of
        // serializing the whole sweep. Results are unaffected either way
        // — runs are placed by plan position and every shard count is
        // bit-identical.
        let permits = Semaphore::new(self.workers);
        let worker_count = self.workers.min(jobs).max(1);
        std::thread::scope(|scope| {
            for _ in 0..worker_count {
                scope.spawn(|| loop {
                    let job = cursor.fetch_add(1, Ordering::Relaxed);
                    let failed = failure.lock().map(|g| g.is_some()).unwrap_or(true);
                    if job >= jobs || failed {
                        return;
                    }
                    let (cell_idx, rep) = (job / reps, job % reps);
                    let seed = plan.seed_for(cell_idx, rep);
                    let config = cells[cell_idx].config.clone();
                    let cost = run_cost(config.shards, self.workers);
                    permits.acquire(cost);
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        crate::Engine::new(config, seed).run()
                    }));
                    permits.release(cost);
                    match outcome {
                        Ok(report) => *slots[job].lock().expect("slot lock") = Some(report),
                        Err(payload) => {
                            let message = panic_message(payload.as_ref());
                            let mut failure = failure.lock().expect("failure lock");
                            failure.get_or_insert(RunnerError::RunPanicked {
                                cell: cell_idx,
                                seed,
                                message,
                            });
                            return;
                        }
                    }
                });
            }
        });

        if let Some(err) = failure.into_inner().expect("failure lock") {
            return Err(err);
        }

        let mut reports: Vec<Option<SimReport>> = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot lock"))
            .collect();
        let mut out = Vec::with_capacity(cells.len());
        for cell in cells {
            let runs = (0..reps)
                .map(|rep| {
                    let report = reports[cell.index * reps + rep]
                        .take()
                        .expect("every job completed");
                    (plan.seed_for(cell.index, rep), report)
                })
                .collect();
            out.push(CellResult {
                index: cell.index,
                key: cell.key,
                report: ReplicatedReport::new(runs),
            });
        }
        Ok(out)
    }

    /// Forks `snapshot` into one what-if branch per overlay and drives
    /// the branches concurrently under the runner's thread budget:
    /// branch `i` resumes the captured run under
    /// [`Engine::resume_with_overlay`](crate::Engine::resume_with_overlay)
    /// with `overlays[i]` and runs to the horizon. Reports come back in
    /// overlay order; an empty (default) overlay reproduces the
    /// uninterrupted run's report bit for bit, so a control branch is
    /// just `DisruptionPlan::default()`.
    ///
    /// Each branch costs the snapshot's shard count in threads, exactly
    /// like a sharded cell in [`Runner::run`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the snapshot is corrupt or an overlay is
    /// invalid for it (surfaced from the first failing branch in overlay
    /// order), or [`SnapshotError::BranchPanicked`] when a branch dies.
    pub fn fork(
        &self,
        snapshot: &Snapshot,
        overlays: &[DisruptionPlan],
    ) -> Result<Vec<SimReport>, SnapshotError> {
        let jobs = overlays.len();
        if jobs == 0 {
            return Ok(Vec::new());
        }

        let slots: Vec<Mutex<Option<Result<SimReport, SnapshotError>>>> =
            (0..jobs).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let panicked: Mutex<Option<SnapshotError>> = Mutex::new(None);
        let permits = Semaphore::new(self.workers);
        let cost = run_cost(snapshot.shards(), self.workers);
        let worker_count = self.workers.min(jobs).max(1);
        std::thread::scope(|scope| {
            for _ in 0..worker_count {
                scope.spawn(|| loop {
                    let job = cursor.fetch_add(1, Ordering::Relaxed);
                    let failed = panicked.lock().map(|g| g.is_some()).unwrap_or(true);
                    if job >= jobs || failed {
                        return;
                    }
                    let overlay = overlays[job].clone();
                    permits.acquire(cost);
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        crate::Engine::resume_with_overlay(snapshot, overlay)
                            .map(crate::Engine::finish)
                    }));
                    permits.release(cost);
                    match outcome {
                        Ok(result) => *slots[job].lock().expect("slot lock") = Some(result),
                        Err(payload) => {
                            let message = panic_message(payload.as_ref());
                            let mut panicked = panicked.lock().expect("failure lock");
                            panicked.get_or_insert(SnapshotError::BranchPanicked {
                                branch: job,
                                message,
                            });
                            return;
                        }
                    }
                });
            }
        });

        if let Some(err) = panicked.into_inner().expect("failure lock") {
            return Err(err);
        }

        // Surface per-branch resume errors in overlay order.
        let mut out = Vec::with_capacity(jobs);
        for slot in slots {
            out.push(slot.into_inner().expect("slot lock").expect("branch ran")?);
        }
        Ok(out)
    }
}

/// Thread cost of one run: the cell's shard count, clamped into the
/// budget so an oversized request degrades to exclusive use of the whole
/// budget instead of deadlocking.
fn run_cost(shards: usize, workers: usize) -> usize {
    shards.clamp(1, workers.max(1))
}

/// A minimal counting semaphore (std has none): `acquire(n)` blocks until
/// `n` permits are free and takes them atomically, `release(n)` returns
/// them. Acquisitions are all-or-nothing under one lock, so holders never
/// deadlock each other.
struct Semaphore {
    permits: Mutex<usize>,
    freed: std::sync::Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            freed: std::sync::Condvar::new(),
        }
    }

    fn acquire(&self, n: usize) {
        let mut free = self.permits.lock().expect("semaphore lock");
        while *free < n {
            free = self.freed.wait(free).expect("semaphore lock");
        }
        *free -= n;
    }

    /// Takes `n` permits if immediately available; never blocks.
    #[cfg(test)]
    fn try_acquire(&self, n: usize) -> bool {
        let mut free = self.permits.lock().expect("semaphore lock");
        if *free < n {
            return false;
        }
        *free -= n;
        true
    }

    fn release(&self, n: usize) {
        *self.permits.lock().expect("semaphore lock") += n;
        self.freed.notify_all();
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;
    use mlora_simcore::SimDuration;

    fn tiny() -> SimConfig {
        Scenario::urban()
            .smoke()
            .duration(SimDuration::from_mins(40))
            .build()
            .expect("tiny scenario is valid")
    }

    #[test]
    fn plan_enumerates_cross_product_in_order() {
        let plan = ExperimentPlan::new(tiny())
            .environments([Environment::Urban, Environment::Rural])
            .gateway_counts([4, 9])
            .schemes([Scheme::NoRouting, Scheme::Robc]);
        let cells = plan.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(plan.num_cells().unwrap(), 8);
        assert_eq!(cells[0].key.environment, Environment::Urban);
        assert_eq!(cells[0].key.gateways, 4);
        assert_eq!(cells[0].key.scheme, Scheme::NoRouting);
        assert_eq!(cells[1].key.scheme, Scheme::Robc);
        assert_eq!(cells[4].key.environment, Environment::Rural);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.config.num_gateways, cell.key.gateways);
            assert_eq!(cell.config.scheme, cell.key.scheme);
        }
    }

    #[test]
    fn empty_axis_is_rejected() {
        let plan = ExperimentPlan::new(tiny()).schemes([]);
        assert!(matches!(
            plan.validate(),
            Err(RunnerError::EmptyPlan { axis: "schemes" })
        ));
        let plan = ExperimentPlan::new(tiny()).fixed_seeds([]);
        assert!(matches!(
            plan.validate(),
            Err(RunnerError::EmptyPlan { axis: "seeds" })
        ));
    }

    #[test]
    fn overflowing_plan_is_rejected_before_materializing() {
        // Four axes of 2^16 entries each multiply to exactly 2^64 — one
        // past usize::MAX on 64-bit targets. The plan must refuse with a
        // typed overflow instead of wrapping and sizing an allocation
        // from the wrapped product.
        let plan = ExperimentPlan::new(tiny())
            .gateway_counts(vec![4; 1 << 16])
            .alphas(vec![0.5; 1 << 16])
            .traffics(vec![crate::TrafficModel::default(); 1 << 16])
            .disruptions(vec![crate::DisruptionPlan::default(); 1 << 16]);
        match plan.num_cells() {
            Err(ConfigError::Overflow { field }) => {
                assert_eq!(field, "experiment plan cells");
            }
            other => panic!("expected Overflow, got {other:?}"),
        }
        match plan.validate() {
            Err(RunnerError::PlanOverflow { source }) => {
                assert_eq!(source.field(), "experiment plan cells");
            }
            other => panic!("expected PlanOverflow, got {other:?}"),
        }
        // One entry fewer on a single axis fits again.
        let plan = ExperimentPlan::new(tiny())
            .gateway_counts(vec![4; (1 << 16) - 1])
            .alphas(vec![0.5; 1 << 16])
            .traffics(vec![crate::TrafficModel::default(); 1 << 16])
            .disruptions(vec![crate::DisruptionPlan::default(); 1 << 16]);
        assert_eq!(plan.num_cells().unwrap(), ((1usize << 16) - 1) << 48);
    }

    #[test]
    fn invalid_cell_is_rejected_before_running() {
        let plan = ExperimentPlan::new(tiny()).gateway_counts([4, 0]);
        match plan.validate() {
            Err(RunnerError::InvalidCell { cell, key, source }) => {
                assert_eq!(cell, 1);
                assert_eq!(key.gateways, 0);
                assert_eq!(source.field(), "num_gateways");
            }
            other => panic!("expected InvalidCell, got {other:?}"),
        }
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let plan = ExperimentPlan::new(tiny()).seed(2020).replicate(3);
        let s: Vec<u64> = (0..3).map(|rep| plan.seed_for(0, rep)).collect();
        assert_eq!(
            s,
            (0..3).map(|rep| plan.seed_for(0, rep)).collect::<Vec<_>>()
        );
        assert_ne!(s[0], s[1]);
        assert_ne!(s[1], s[2]);
        // Different cells draw different seeds for the same replicate.
        assert_ne!(plan.seed_for(0, 0), plan.seed_for(1, 0));
    }

    #[test]
    fn seed_policy_setters_compose_predictably() {
        // seed() survives a later fixed_seeds()/replicate() round-trip.
        let plan = ExperimentPlan::new(tiny())
            .seed(42)
            .fixed_seeds([5])
            .replicate(3);
        assert_eq!(plan.replications(), 3);
        assert_eq!(
            plan.seed_for(0, 0),
            ExperimentPlan::new(tiny())
                .seed(42)
                .replicate(3)
                .seed_for(0, 0)
        );
        // seed() after fixed_seeds() switches back to derived seeding,
        // keeping the replicate count.
        let plan = ExperimentPlan::new(tiny()).fixed_seeds([5, 6]).seed(42);
        assert_eq!(plan.replications(), 2);
        assert_ne!(plan.seed_for(0, 0), 5);
    }

    #[test]
    fn fixed_seeds_are_identical_across_cells() {
        let plan = ExperimentPlan::new(tiny())
            .schemes([Scheme::NoRouting, Scheme::Robc])
            .fixed_seeds([5, 6]);
        assert_eq!(plan.replications(), 2);
        assert_eq!(plan.seed_for(0, 1), 6);
        assert_eq!(plan.seed_for(1, 1), 6);
    }

    #[test]
    fn disruption_axis_multiplies_cells_and_reaches_configs() {
        use crate::{DisruptionPlan, GatewayOutage};
        use mlora_simcore::SimTime;

        let disrupted = DisruptionPlan {
            outages: vec![GatewayOutage {
                gateway: 0,
                start: SimTime::from_secs(600),
                duration: None,
            }],
            ..DisruptionPlan::default()
        };
        let plan = ExperimentPlan::new(tiny())
            .schemes([Scheme::NoRouting, Scheme::Robc])
            .disruptions([DisruptionPlan::default(), disrupted.clone()]);
        let cells = plan.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].key.disruption, 0);
        assert!(cells[0].config.disruptions.is_empty());
        assert_eq!(cells[1].key.disruption, 1);
        assert_eq!(cells[1].config.disruptions, disrupted);
        assert_eq!(plan.validate().map_err(|e| e.to_string()), Ok(()));
        // An invalid plan entry (gateway out of range) is caught before
        // any run starts.
        let bad = ExperimentPlan::new(tiny()).disruptions([DisruptionPlan {
            outages: vec![GatewayOutage {
                gateway: 10_000,
                start: SimTime::ZERO,
                duration: None,
            }],
            ..DisruptionPlan::default()
        }]);
        assert!(matches!(
            bad.validate(),
            Err(RunnerError::InvalidCell { .. })
        ));
    }

    #[test]
    fn traffic_axis_multiplies_cells_and_reaches_configs() {
        use crate::{TrafficModel, TrafficProfile};

        let mixed = TrafficModel::mix([
            TrafficProfile::telemetry().weight(3.0),
            TrafficProfile::alerts(),
        ]);
        let plan = ExperimentPlan::new(tiny())
            .schemes([Scheme::NoRouting, Scheme::Robc])
            .traffics([TrafficModel::default(), mixed.clone()]);
        let cells = plan.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].key.traffic, 0);
        assert!(cells[0].config.traffic.is_empty());
        assert_eq!(cells[1].key.traffic, 1);
        assert_eq!(cells[1].config.traffic, mixed);
        assert_eq!(plan.validate().map_err(|e| e.to_string()), Ok(()));
        // An invalid model in the axis is caught before any run starts.
        let bad =
            ExperimentPlan::new(tiny()).traffics([TrafficModel::mix([TrafficProfile::telemetry(
            )
            .weight(-2.0)])]);
        assert!(matches!(
            bad.validate(),
            Err(RunnerError::InvalidCell { .. })
        ));
        // An empty axis is rejected like any other.
        let empty = ExperimentPlan::new(tiny()).traffics([]);
        assert!(matches!(
            empty.validate(),
            Err(RunnerError::EmptyPlan { axis: "traffics" })
        ));
    }

    #[test]
    fn paper_gateway_counts_shape() {
        assert_eq!(PAPER_GATEWAY_COUNTS.len(), 7);
        assert_eq!(PAPER_GATEWAY_COUNTS[0], 40);
        assert_eq!(PAPER_GATEWAY_COUNTS[6], 100);
    }

    #[test]
    fn policy_axis_multiplies_cells_and_reaches_configs() {
        let plan = ExperimentPlan::new(tiny())
            .gateway_counts([4, 9])
            .policies([
                PolicySpec::from(Scheme::NoRouting),
                PolicySpec::from(Scheme::Robc),
            ]);
        let cells = plan.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].key.policy, 0);
        assert_eq!(cells[1].key.policy, 1);
        assert_eq!(
            cells[0].config.policy.as_ref().map(|p| p.label()),
            Some("LoRaWAN")
        );
        assert_eq!(
            cells[1].config.policy.as_ref().map(|p| p.label()),
            Some("ROBC")
        );
        assert_eq!(plan.validate().map_err(|e| e.to_string()), Ok(()));
        // A built-in spec runs bit-identically to the plain scheme cell.
        let by_policy = Runner::single_threaded()
            .run(
                &ExperimentPlan::new(tiny())
                    .policies([PolicySpec::from(Scheme::Robc)])
                    .fixed_seeds([11]),
            )
            .unwrap();
        let by_scheme = Runner::single_threaded()
            .run(
                &ExperimentPlan::new(tiny())
                    .schemes([Scheme::Robc])
                    .fixed_seeds([11]),
            )
            .unwrap();
        assert_eq!(
            by_policy[0].report.single(),
            by_scheme[0].report.single(),
            "policy-spec cell diverged from the scheme cell"
        );
        // An empty axis is rejected like any other.
        let empty = ExperimentPlan::new(tiny()).policies([]);
        assert!(matches!(
            empty.validate(),
            Err(RunnerError::EmptyPlan { axis: "policies" })
        ));
    }

    #[test]
    fn mixed_shard_budget_is_per_cell() {
        // The regression case: workers = 4, cells requesting shards
        // [3, 1, 1, 1]. The old plan-wide budget floor-divided by the
        // largest request — (4 / 3).max(1) == 1 — so the three
        // single-shard cells ran one at a time. Per-cell costs let all
        // three hold the budget concurrently.
        let sem = Semaphore::new(4);
        assert!(sem.try_acquire(run_cost(1, 4)));
        assert!(sem.try_acquire(run_cost(1, 4)));
        assert!(sem.try_acquire(run_cost(1, 4)));
        // The 3-shard run waits for budget instead of shrinking it.
        assert!(!sem.try_acquire(run_cost(3, 4)));
        sem.release(3);
        assert!(sem.try_acquire(run_cost(3, 4)));
        // 3 + 1 = 4: one single-shard run still fits beside it, a second
        // does not.
        assert!(sem.try_acquire(run_cost(1, 4)));
        assert!(!sem.try_acquire(run_cost(1, 4)));
        sem.release(4);
        // A request larger than the whole budget clamps to exclusive use
        // rather than deadlocking…
        assert_eq!(run_cost(64, 4), 4);
        assert!(sem.try_acquire(run_cost(64, 4)));
        sem.release(4);
        // …and a blocking acquire of such a clamped request completes.
        let sem = Semaphore::new(2);
        sem.acquire(run_cost(8, 2));
        sem.release(2);
        assert_eq!(run_cost(0, 4), 1);
        assert_eq!(run_cost(1, 0), 1);
    }

    #[test]
    fn shard_axis_multiplies_cells_and_reaches_configs() {
        let plan = ExperimentPlan::new(tiny())
            .schemes([Scheme::NoRouting, Scheme::Robc])
            .shard_counts([2, 1, 1, 1]);
        let cells = plan.cells();
        assert_eq!(cells.len(), 8);
        for cell in &cells {
            assert_eq!(cell.config.shards, cell.key.shards);
        }
        assert_eq!(cells[0].key.shards, 2);
        assert_eq!(cells[1].key.shards, 1);
        assert_eq!(plan.validate().map_err(|e| e.to_string()), Ok(()));
        // An empty axis is rejected like any other.
        let empty = ExperimentPlan::new(tiny()).shard_counts([]);
        assert!(matches!(
            empty.validate(),
            Err(RunnerError::EmptyPlan {
                axis: "shard_counts"
            })
        ));
        // An invalid count is caught before any run starts.
        let bad = ExperimentPlan::new(tiny()).shard_counts([10_000]);
        assert!(matches!(
            bad.validate(),
            Err(RunnerError::InvalidCell { .. })
        ));
    }

    #[test]
    fn mixed_shard_plan_matches_single_threaded_exactly() {
        // A mixed plan — one 2-shard cell beside three single-shard
        // cells — through a 4-worker runner must still be bit-identical
        // to serial execution, and the sharded cell bit-identical to its
        // unsharded twins.
        let plan = ExperimentPlan::new(tiny())
            .shard_counts([2, 1, 1, 1])
            .fixed_seeds([11]);
        let serial = Runner::single_threaded().run(&plan).unwrap();
        let parallel = Runner::new().workers(4).run(&plan).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 4);
        for cell in &serial[1..] {
            assert_eq!(cell.report.single(), serial[0].report.single());
        }
    }

    #[test]
    fn runner_matches_single_threaded_exactly() {
        let plan = ExperimentPlan::new(tiny())
            .gateway_counts([4, 9])
            .schemes([Scheme::NoRouting, Scheme::Robc])
            .seed(7)
            .replicate(2);
        let serial = Runner::single_threaded().run(&plan).unwrap();
        let parallel = Runner::new().workers(4).run(&plan).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 4);
        assert_eq!(serial[0].report.n(), 2);
    }

    #[test]
    fn replicated_report_statistics() {
        let plan = ExperimentPlan::new(tiny()).seed(3).replicate(3);
        let cells = Runner::new().run(&plan).unwrap();
        let cell = &cells[0];
        let mean = cell.report.delivery_ratio_mean();
        let (lo, hi) = cell.report.ci95(|r| r.delivery_ratio());
        assert!(lo <= mean && mean <= hi);
        assert!(cell.report.std_dev(|r| r.delivery_ratio()) >= 0.0);
        // The mean lies inside the replicate envelope.
        let values: Vec<f64> = cell
            .report
            .runs()
            .iter()
            .map(|(_, r)| r.delivery_ratio())
            .collect();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min <= mean && mean <= max);
    }

    #[test]
    fn single_seed_cell_exposes_its_report() {
        let plan = ExperimentPlan::new(tiny()).fixed_seeds([11]);
        let cells = Runner::new().run(&plan).unwrap();
        let direct = tiny().run(11).unwrap();
        assert_eq!(*cells[0].report.single(), direct);
    }
}
