//! Allocation accounting for the engine's flight hot paths: the
//! contiguous `FlightColumns` time-overlap scan (launch → scan → near
//! cut → capture resolution, with the deferred slab sweep recycling
//! slots) and the shard worker's batched interferer prefilter must not
//! touch the heap in steady state.
//!
//! Uses a counting wrapper around the system allocator; the counter is
//! a process-wide total, so each assertion brackets exactly the code
//! under test and nothing else runs concurrently (integration tests in
//! this binary run on one thread: there is only one test).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mlora_sim::probe::{FlightScanProbe, WorkerProbe};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn flight_scan_and_worker_prefilter_do_not_allocate() {
    // Serial channel: 8 launches per round with advancing time, so the
    // slab reaches its steady-state power-of-two size during warm-up and
    // the deferred sweep recycles slots from then on.
    let mut scan = FlightScanProbe::new(2020, 8);
    let warm = scan.churn(64);

    let before = allocations();
    let digest = scan.churn(64);
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "flight-column scan path allocated {} times in steady state",
        after - before
    );
    // The churn is deterministic per round window, not idempotent:
    // consume both digests so neither pass can be optimised away.
    std::hint::black_box((warm, digest));

    // Shard worker: the batched prefilter — overlap collection, the
    // gateway/device near cuts and the bucket-sweep candidate scan —
    // over a generated 200-bus network with 48 frames in flight.
    let mut worker = WorkerProbe::new(2020, 200, 48);
    let warm = worker.prefilter();

    let before = allocations();
    let mut last = (0usize, 0.0f64);
    for _ in 0..32 {
        last = worker.prefilter();
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "worker batched prefilter allocated {} times in steady state",
        after - before
    );
    assert_eq!(warm, last, "prefilter must be deterministic");
    assert!(last.0 > 0, "probe scenario must have in-range candidates");
}
