//! LoRa physical-layer substrate.
//!
//! Everything the MLoRa-SS simulation needs from the radio:
//!
//! * [`SpreadingFactor`], [`Bandwidth`], [`CodingRate`], [`PhyParams`] —
//!   LoRa modulation parameters (the paper fixes SF7/125 kHz, CR 4/5).
//! * [`time_on_air`] — the Semtech airtime formula, feeding the EU868
//!   1 % duty-cycle arithmetic in [`duty_cycle_wait`].
//! * [`LogDistanceModel`] — log-distance path loss with shadowing
//!   (path-loss exponent 2.32 per Petäjäjärvi et al., §VII.A.5).
//! * [`CapacityModel`] — the RSSI→link-capacity mapping of Eq. 5.
//! * [`resolve_collision`] — same-channel/same-SF collision with a 6 dB
//!   capture margin.

#![deny(missing_docs)]

mod airtime;
mod capacity;
mod channel;
mod params;
mod pathloss;

pub use airtime::{
    duty_cycle_wait, time_on_air, AirtimeTable, SfAirtimeTables, LORA_MAX_PAYLOAD_BYTES,
};
pub use capacity::CapacityModel;
pub use channel::{resolve_collision, CAPTURE_MARGIN_DB};
pub use params::{Bandwidth, CodingRate, PhyParams, SpreadingFactor};
pub use pathloss::LogDistanceModel;
