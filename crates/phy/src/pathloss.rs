//! Log-distance path loss with log-normal shadowing.

use mlora_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// The log-distance path-loss model with optional log-normal shadowing:
///
/// ```text
/// PL(d) = PL(d₀) + 10·n·log₁₀(d/d₀) + X_σ,   X_σ ~ N(0, σ²)
/// ```
///
/// Defaults follow Petäjäjärvi et al. ("On the coverage of LPWANs", ITST
/// 2015), the model the paper cites for its sub-urban LoRa channel:
/// `PL(1 km) = 128.95 dB`, `n = 2.32`.
///
/// # Example
///
/// ```
/// use mlora_phy::LogDistanceModel;
///
/// let model = LogDistanceModel::paper_default();
/// let rssi_1km = model.mean_rssi_dbm(14.0, 1_000.0);
/// let rssi_2km = model.mean_rssi_dbm(14.0, 2_000.0);
/// assert!(rssi_1km > rssi_2km); // further is weaker
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogDistanceModel {
    /// Path loss at the reference distance, in dB.
    pub pl0_db: f64,
    /// Reference distance in metres.
    pub d0_m: f64,
    /// Path-loss exponent `n`.
    pub exponent: f64,
    /// Shadowing standard deviation σ in dB (0 disables shadowing).
    pub shadowing_sigma_db: f64,
}

impl LogDistanceModel {
    /// The sub-urban model of §VII.A.5: `PL(1 km) = 128.95 dB`, `n = 2.32`,
    /// `σ = 7.8 dB` (the fit reported by Petäjäjärvi et al.).
    pub const fn paper_default() -> Self {
        LogDistanceModel {
            pl0_db: 128.95,
            d0_m: 1_000.0,
            exponent: 2.32,
            shadowing_sigma_db: 7.8,
        }
    }

    /// Deterministic variant of [`LogDistanceModel::paper_default`] with
    /// shadowing disabled; useful for reproducible unit tests.
    pub const fn deterministic() -> Self {
        LogDistanceModel {
            shadowing_sigma_db: 0.0,
            ..LogDistanceModel::paper_default()
        }
    }

    /// Mean path loss at `distance_m` metres, in dB (no shadowing term).
    ///
    /// Distances below 1 m are clamped to 1 m to keep the logarithm sane.
    pub fn mean_path_loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(1.0);
        self.pl0_db + 10.0 * self.exponent * (d / self.d0_m).log10()
    }

    /// Mean received signal strength for a transmit power, in dBm.
    pub fn mean_rssi_dbm(&self, tx_power_dbm: f64, distance_m: f64) -> f64 {
        tx_power_dbm - self.mean_path_loss_db(distance_m)
    }

    /// One shadowing term: a fresh `N(0, σ²)` draw, or exactly `0.0` when
    /// shadowing is disabled (so a disabled channel consumes no RNG).
    ///
    /// Splitting the draw out of [`LogDistanceModel::sample_rssi_dbm`]
    /// lets a caller precompute the deterministic mean elsewhere (e.g. on
    /// a worker thread) and recombine via
    /// [`LogDistanceModel::compose_rssi_dbm`] bit-identically.
    pub fn shadow_db(&self, rng: &mut SimRng) -> f64 {
        if self.shadowing_sigma_db > 0.0 {
            rng.normal(0.0, self.shadowing_sigma_db)
        } else {
            0.0
        }
    }

    /// Recombine a precomputed mean RSSI with a shadowing term and an
    /// extra channel impairment, preserving the exact float-operation
    /// order of the fused sampling paths:
    /// `(mean + shadow) - extra_loss_db`.
    ///
    /// `compose_rssi_dbm(mean_rssi_dbm(p, d), shadow_db(rng), x)` is
    /// bit-identical to `sample_rssi_dbm_attenuated(p, d, x, rng)`.
    #[inline]
    pub fn compose_rssi_dbm(mean_rssi_dbm: f64, shadow_db: f64, extra_loss_db: f64) -> f64 {
        (mean_rssi_dbm + shadow_db) - extra_loss_db
    }

    /// Received signal strength with a fresh shadowing draw, in dBm.
    ///
    /// Each call draws an independent `N(0, σ²)` shadowing term from `rng`;
    /// with `σ = 0` this equals [`LogDistanceModel::mean_rssi_dbm`].
    pub fn sample_rssi_dbm(&self, tx_power_dbm: f64, distance_m: f64, rng: &mut SimRng) -> f64 {
        self.mean_rssi_dbm(tx_power_dbm, distance_m) + self.shadow_db(rng)
    }

    /// [`LogDistanceModel::sample_rssi_dbm`] with an additional channel
    /// impairment of `extra_loss_db` subtracted from the result — the
    /// hook regional noise bursts (a raised noise floor inside a disc)
    /// use to degrade reception at affected receivers.
    ///
    /// Draws exactly one shadowing sample from `rng` regardless of
    /// `extra_loss_db`, and with `extra_loss_db = 0.0` the result is
    /// bit-identical to [`LogDistanceModel::sample_rssi_dbm`], so an
    /// undisrupted channel is unchanged down to the RNG stream.
    ///
    /// # Example
    ///
    /// ```
    /// use mlora_phy::LogDistanceModel;
    /// use mlora_simcore::SimRng;
    ///
    /// let model = LogDistanceModel::paper_default();
    /// let clean = model.sample_rssi_dbm(14.0, 500.0, &mut SimRng::new(7));
    /// let noisy = model.sample_rssi_dbm_attenuated(14.0, 500.0, 12.0, &mut SimRng::new(7));
    /// assert_eq!(noisy, clean - 12.0);
    /// ```
    pub fn sample_rssi_dbm_attenuated(
        &self,
        tx_power_dbm: f64,
        distance_m: f64,
        extra_loss_db: f64,
        rng: &mut SimRng,
    ) -> f64 {
        self.sample_rssi_dbm(tx_power_dbm, distance_m, rng) - extra_loss_db
    }

    /// The distance at which mean RSSI falls to `sensitivity_dbm`, in
    /// metres — the nominal communication range.
    pub fn range_for_sensitivity_m(&self, tx_power_dbm: f64, sensitivity_dbm: f64) -> f64 {
        let budget_db = tx_power_dbm - sensitivity_dbm - self.pl0_db;
        self.d0_m * 10f64.powf(budget_db / (10.0 * self.exponent))
    }
}

impl Default for LogDistanceModel {
    fn default() -> Self {
        LogDistanceModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_distance_loss() {
        let m = LogDistanceModel::deterministic();
        assert!((m.mean_path_loss_db(1_000.0) - 128.95).abs() < 1e-9);
    }

    #[test]
    fn loss_increases_with_distance() {
        let m = LogDistanceModel::deterministic();
        let mut last = 0.0;
        for d in [10.0, 100.0, 500.0, 1_000.0, 5_000.0, 15_000.0] {
            let pl = m.mean_path_loss_db(d);
            assert!(pl > last);
            last = pl;
        }
    }

    #[test]
    fn slope_is_10n_per_decade() {
        let m = LogDistanceModel::deterministic();
        let per_decade = m.mean_path_loss_db(10_000.0) - m.mean_path_loss_db(1_000.0);
        assert!((per_decade - 23.2).abs() < 1e-9);
    }

    #[test]
    fn tiny_distance_clamped() {
        let m = LogDistanceModel::deterministic();
        assert_eq!(m.mean_path_loss_db(0.0), m.mean_path_loss_db(1.0));
        assert_eq!(m.mean_path_loss_db(-5.0), m.mean_path_loss_db(1.0));
    }

    #[test]
    fn shadowing_statistics() {
        let m = LogDistanceModel::paper_default();
        let mut rng = SimRng::new(3);
        let n = 10_000;
        let mean_rssi = m.mean_rssi_dbm(14.0, 1_000.0);
        let samples: Vec<f64> = (0..n)
            .map(|_| m.sample_rssi_dbm(14.0, 1_000.0, &mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - mean_rssi).abs() < 0.3, "mean {mean} vs {mean_rssi}");
        assert!((var.sqrt() - 7.8).abs() < 0.3, "sigma {}", var.sqrt());
    }

    #[test]
    fn deterministic_sampling_equals_mean() {
        let m = LogDistanceModel::deterministic();
        let mut rng = SimRng::new(4);
        assert_eq!(
            m.sample_rssi_dbm(14.0, 500.0, &mut rng),
            m.mean_rssi_dbm(14.0, 500.0)
        );
    }

    #[test]
    fn attenuated_sampling_shifts_by_exact_offset() {
        let m = LogDistanceModel::paper_default();
        // Same seed, same single draw: the only difference is the offset.
        let clean = m.sample_rssi_dbm(14.0, 700.0, &mut SimRng::new(21));
        let noisy = m.sample_rssi_dbm_attenuated(14.0, 700.0, 9.5, &mut SimRng::new(21));
        assert_eq!(noisy, clean - 9.5);
    }

    #[test]
    fn zero_attenuation_is_bit_identical() {
        let m = LogDistanceModel::paper_default();
        let clean = m.sample_rssi_dbm(14.0, 700.0, &mut SimRng::new(22));
        let noisy = m.sample_rssi_dbm_attenuated(14.0, 700.0, 0.0, &mut SimRng::new(22));
        assert_eq!(clean.to_bits(), noisy.to_bits());
    }

    #[test]
    fn composed_rssi_is_bit_identical_to_fused_sampling() {
        let m = LogDistanceModel::paper_default();
        let fused = m.sample_rssi_dbm_attenuated(14.0, 700.0, 9.5, &mut SimRng::new(23));
        let mut rng = SimRng::new(23);
        let mean = m.mean_rssi_dbm(14.0, 700.0);
        let composed = LogDistanceModel::compose_rssi_dbm(mean, m.shadow_db(&mut rng), 9.5);
        assert_eq!(fused.to_bits(), composed.to_bits());
        // A disabled channel draws nothing and composes to the exact mean.
        let d = LogDistanceModel::deterministic();
        assert_eq!(
            LogDistanceModel::compose_rssi_dbm(mean, d.shadow_db(&mut SimRng::new(1)), 0.0)
                .to_bits(),
            mean.to_bits()
        );
    }

    #[test]
    fn range_inverts_loss() {
        let m = LogDistanceModel::deterministic();
        // SF7 sensitivity -123 dBm at +14 dBm: link budget 137 dB.
        let range = m.range_for_sensitivity_m(14.0, -123.0);
        let rssi_at_range = m.mean_rssi_dbm(14.0, range);
        assert!((rssi_at_range - (-123.0)).abs() < 1e-6);
        // The paper's 1 km urban figure is the right order of magnitude.
        assert!(range > 1_000.0 && range < 3_000.0, "range {range}");
    }
}
